//! The standard multiplier catalog and paper-name aliases.

use crate::{AxMul, MulArch};
use std::sync::Arc;

/// Aliases mapping the EvoApprox8b multiplier names used in the paper to
/// the accuracy-class-equivalent operators of this library.
///
/// The mapping is by accuracy *class* (near-accurate … highly
/// approximate), not bit-exact reproduction: `mul8s_1KVA` is EvoApprox's
/// most accurate 8-bit signed multiplier, `mul8s_1KR3` one of its most
/// aggressive ones, and the `T_9..T_13` set of Fig. 6 spans the middle.
/// See DESIGN.md §2 for the substitution rationale.
pub const PAPER_ALIASES: &[(&str, &str)] = &[
    ("mul8s_1KVA", "mul8s_tr1"),
    ("mul8s_1KVL", "mul8s_tr5"),
    ("mul8s_1KX2", "mul8s_loa6"),
    ("mul8s_1L1G", "mul8s_log"),
    ("mul8s_1L2D", "mul8s_drum4"),
    ("mul8s_1L2H", "mul8s_drum5"),
    ("mul8s_1KR3", "mul8s_bam_v4_h1"),
];

/// A named collection of library multipliers.
///
/// # Examples
///
/// ```
/// use clapped_axops::Catalog;
///
/// let cat = Catalog::standard();
/// // Paper names resolve through the alias table.
/// let m = cat.get("mul8s_1KVA").unwrap();
/// assert_eq!(m.name(), "mul8s_tr1");
/// # use clapped_axops::Mul8s;
/// ```
#[derive(Debug, Clone)]
pub struct Catalog {
    muls: Vec<Arc<AxMul>>,
}

impl Catalog {
    /// Builds the standard 24-operator catalog spanning near-exact to
    /// highly approximate designs.
    pub fn standard() -> Catalog {
        use MulArch::*;
        let specs: Vec<(String, MulArch)> = vec![
            ("mul8s_exact".into(), Exact),
            ("mul8s_tr1".into(), Truncated { k: 1 }),
            ("mul8s_tr2".into(), Truncated { k: 2 }),
            ("mul8s_tr3".into(), Truncated { k: 3 }),
            ("mul8s_tr4".into(), Truncated { k: 4 }),
            ("mul8s_tr5".into(), Truncated { k: 5 }),
            ("mul8s_tr6".into(), Truncated { k: 6 }),
            ("mul8s_bam_v4_h1".into(), BrokenArray { vbl: 4, hbl: 1 }),
            ("mul8s_bam_v6_h2".into(), BrokenArray { vbl: 6, hbl: 2 }),
            ("mul8s_bam_v8_h3".into(), BrokenArray { vbl: 8, hbl: 3 }),
            ("mul8s_cmp4".into(), ApproxCompressor { cols: 4 }),
            ("mul8s_cmp8".into(), ApproxCompressor { cols: 8 }),
            ("mul8s_cmp10".into(), ApproxCompressor { cols: 10 }),
            ("mul8s_loa4".into(), LoaFinal { k: 4 }),
            ("mul8s_loa6".into(), LoaFinal { k: 6 }),
            ("mul8s_loa8".into(), LoaFinal { k: 8 }),
            ("mul8s_booth".into(), Booth { trunc: 0 }),
            ("mul8s_booth_tr3".into(), Booth { trunc: 3 }),
            ("mul8s_booth_tr5".into(), Booth { trunc: 5 }),
            ("mul8s_log".into(), Mitchell),
            ("mul8s_drum3".into(), Drum { k: 3 }),
            ("mul8s_drum4".into(), Drum { k: 4 }),
            ("mul8s_drum5".into(), Drum { k: 5 }),
            ("mul8s_drum6".into(), Drum { k: 6 }),
        ];
        Catalog {
            muls: specs
                .into_iter()
                .map(|(name, arch)| Arc::new(AxMul::new(name, arch)))
                .collect(),
        }
    }

    /// Builds a catalog from explicit `(name, arch)` specs.
    pub fn from_specs(specs: impl IntoIterator<Item = (String, MulArch)>) -> Catalog {
        Catalog {
            muls: specs
                .into_iter()
                .map(|(name, arch)| Arc::new(AxMul::new(name, arch)))
                .collect(),
        }
    }

    /// Looks an operator up by library name or paper alias.
    pub fn get(&self, name: &str) -> Option<Arc<AxMul>> {
        let resolved = PAPER_ALIASES
            .iter()
            .find(|(alias, _)| *alias == name)
            .map(|(_, target)| *target)
            .unwrap_or(name);
        self.muls
            .iter()
            .find(|m| crate::Mul8s::name(&***m) == resolved)
            .cloned()
    }

    /// Operator at a positional index (catalog order is stable).
    pub fn at(&self, idx: usize) -> Option<Arc<AxMul>> {
        self.muls.get(idx).cloned()
    }

    /// Index of an operator by (resolved) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let target = self.get(name)?;
        self.muls
            .iter()
            .position(|m| Arc::ptr_eq(m, &target))
    }

    /// All operators in catalog order.
    pub fn muls(&self) -> &[Arc<AxMul>] {
        &self.muls
    }

    /// All operator names in catalog order.
    pub fn names(&self) -> Vec<&str> {
        self.muls.iter().map(|m| crate::Mul8s::name(&**m)).collect()
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.muls.len()
    }

    /// True when the catalog holds no operators.
    pub fn is_empty(&self) -> bool {
        self.muls.is_empty()
    }

    /// Iterates over the operators.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<AxMul>> {
        self.muls.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exhaustive_pairs, Mul8s};

    #[test]
    fn standard_catalog_has_expected_size_and_unique_names() {
        let cat = Catalog::standard();
        assert!(cat.len() >= 21);
        let mut names = cat.names();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn aliases_resolve() {
        let cat = Catalog::standard();
        for (alias, target) in PAPER_ALIASES {
            let m = cat.get(alias).unwrap_or_else(|| panic!("alias {alias}"));
            assert_eq!(m.name(), *target);
        }
    }

    #[test]
    fn index_roundtrip() {
        let cat = Catalog::standard();
        for (i, m) in cat.iter().enumerate() {
            assert_eq!(cat.index_of(m.name()), Some(i));
            assert_eq!(cat.at(i).unwrap().name(), m.name());
        }
        assert_eq!(cat.index_of("nope"), None);
        assert!(cat.at(10_000).is_none());
    }

    #[test]
    fn catalog_spans_wide_accuracy_range() {
        let cat = Catalog::standard();
        let mae = |m: &AxMul| -> f64 {
            let mut acc = 0.0;
            for (a, b) in exhaustive_pairs().step_by(17) {
                acc += f64::from((i32::from(m.mul(a, b)) - i32::from(a) * i32::from(b)).abs());
            }
            acc / (65_536.0 / 17.0)
        };
        let maes: Vec<f64> = cat.iter().map(|m| mae(m)).collect();
        let min = maes.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = maes.iter().cloned().fold(0.0f64, f64::max);
        assert_eq!(min, 0.0, "the exact multiplier has zero error");
        assert!(max > 100.0, "the catalog should include aggressive designs (max MAE {max})");
    }
}
