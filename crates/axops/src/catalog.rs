//! The standard multiplier catalog and paper-name aliases.

use crate::{AxMul, MulArch};
use std::fmt;
use std::sync::Arc;

/// Errors of catalog construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CatalogError {
    /// Two specs carried the same operator name. Name-based lookup
    /// (`get`/`index_of`) would silently resolve only the first entry,
    /// so duplicates are rejected at construction.
    DuplicateName {
        /// The name that appeared more than once.
        name: String,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::DuplicateName { name } => {
                write!(f, "duplicate operator name {name:?} in catalog specs")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// Aliases mapping the EvoApprox8b multiplier names used in the paper to
/// the accuracy-class-equivalent operators of this library.
///
/// The mapping is by accuracy *class* (near-accurate … highly
/// approximate), not bit-exact reproduction: `mul8s_1KVA` is EvoApprox's
/// most accurate 8-bit signed multiplier, `mul8s_1KR3` one of its most
/// aggressive ones, and the `T_9..T_13` set of Fig. 6 spans the middle.
/// See DESIGN.md §2 for the substitution rationale.
pub const PAPER_ALIASES: &[(&str, &str)] = &[
    ("mul8s_1KVA", "mul8s_tr1"),
    ("mul8s_1KVL", "mul8s_tr5"),
    ("mul8s_1KX2", "mul8s_loa6"),
    ("mul8s_1L1G", "mul8s_log"),
    ("mul8s_1L2D", "mul8s_drum4"),
    ("mul8s_1L2H", "mul8s_drum5"),
    ("mul8s_1KR3", "mul8s_bam_v4_h1"),
];

/// A named collection of library multipliers.
///
/// # Examples
///
/// ```
/// use clapped_axops::Catalog;
///
/// let cat = Catalog::standard();
/// // Paper names resolve through the alias table.
/// let m = cat.get("mul8s_1KVA").unwrap();
/// assert_eq!(m.name(), "mul8s_tr1");
/// # use clapped_axops::Mul8s;
/// ```
#[derive(Debug, Clone)]
pub struct Catalog {
    muls: Vec<Arc<AxMul>>,
}

impl Catalog {
    /// Builds the standard catalog of exactly 24 hand-picked multipliers
    /// spanning near-exact to highly approximate designs. (The "35
    /// operators" quoted elsewhere count these 24 multipliers plus the
    /// 11 adders of [`crate::adders::standard_adders`] — the full set
    /// the netlist lint gate covers.)
    pub fn standard() -> Catalog {
        use MulArch::*;
        let specs: Vec<(String, MulArch)> = vec![
            ("mul8s_exact".into(), Exact),
            ("mul8s_tr1".into(), Truncated { k: 1 }),
            ("mul8s_tr2".into(), Truncated { k: 2 }),
            ("mul8s_tr3".into(), Truncated { k: 3 }),
            ("mul8s_tr4".into(), Truncated { k: 4 }),
            ("mul8s_tr5".into(), Truncated { k: 5 }),
            ("mul8s_tr6".into(), Truncated { k: 6 }),
            ("mul8s_bam_v4_h1".into(), BrokenArray { vbl: 4, hbl: 1 }),
            ("mul8s_bam_v6_h2".into(), BrokenArray { vbl: 6, hbl: 2 }),
            ("mul8s_bam_v8_h3".into(), BrokenArray { vbl: 8, hbl: 3 }),
            ("mul8s_cmp4".into(), ApproxCompressor { cols: 4 }),
            ("mul8s_cmp8".into(), ApproxCompressor { cols: 8 }),
            ("mul8s_cmp10".into(), ApproxCompressor { cols: 10 }),
            ("mul8s_loa4".into(), LoaFinal { k: 4 }),
            ("mul8s_loa6".into(), LoaFinal { k: 6 }),
            ("mul8s_loa8".into(), LoaFinal { k: 8 }),
            ("mul8s_booth".into(), Booth { trunc: 0 }),
            ("mul8s_booth_tr3".into(), Booth { trunc: 3 }),
            ("mul8s_booth_tr5".into(), Booth { trunc: 5 }),
            ("mul8s_log".into(), Mitchell),
            ("mul8s_drum3".into(), Drum { k: 3 }),
            ("mul8s_drum4".into(), Drum { k: 4 }),
            ("mul8s_drum5".into(), Drum { k: 5 }),
            ("mul8s_drum6".into(), Drum { k: 6 }),
        ];
        match Catalog::from_specs(specs) {
            Ok(catalog) => catalog,
            Err(e) => unreachable!("standard catalog names are unique: {e}"),
        }
    }

    /// Builds a catalog from explicit `(name, arch)` specs.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::DuplicateName`] if two specs share a
    /// name: `get`/`index_of` resolve by name, so a duplicate would
    /// shadow every later entry. Generated catalogs (thousands of
    /// machine-derived specs) are the common way to hit this.
    pub fn from_specs(
        specs: impl IntoIterator<Item = (String, MulArch)>,
    ) -> Result<Catalog, CatalogError> {
        let specs: Vec<(String, MulArch)> = specs.into_iter().collect();
        // Reject duplicates before the (expensive) table builds.
        let mut seen: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for (name, _) in &specs {
            if !seen.insert(name.as_str()) {
                return Err(CatalogError::DuplicateName { name: name.clone() });
            }
        }
        Ok(Catalog {
            muls: specs
                .into_iter()
                .map(|(name, arch)| Arc::new(AxMul::new(name, arch)))
                .collect(),
        })
    }

    /// Looks an operator up by library name or paper alias.
    pub fn get(&self, name: &str) -> Option<Arc<AxMul>> {
        let resolved = PAPER_ALIASES
            .iter()
            .find(|(alias, _)| *alias == name)
            .map(|(_, target)| *target)
            .unwrap_or(name);
        self.muls
            .iter()
            .find(|m| crate::Mul8s::name(&***m) == resolved)
            .cloned()
    }

    /// Operator at a positional index (catalog order is stable).
    pub fn at(&self, idx: usize) -> Option<Arc<AxMul>> {
        self.muls.get(idx).cloned()
    }

    /// Index of an operator by (resolved) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let target = self.get(name)?;
        self.muls
            .iter()
            .position(|m| Arc::ptr_eq(m, &target))
    }

    /// All operators in catalog order.
    pub fn muls(&self) -> &[Arc<AxMul>] {
        &self.muls
    }

    /// All operator names in catalog order.
    pub fn names(&self) -> Vec<&str> {
        self.muls.iter().map(|m| crate::Mul8s::name(&**m)).collect()
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.muls.len()
    }

    /// True when the catalog holds no operators.
    pub fn is_empty(&self) -> bool {
        self.muls.is_empty()
    }

    /// Iterates over the operators.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<AxMul>> {
        self.muls.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exhaustive_pairs, Mul8s};

    #[test]
    fn standard_catalog_has_expected_size_and_unique_names() {
        let cat = Catalog::standard();
        // Pinned: exactly 24 multipliers (the "35" quoted in the roadmap
        // additionally counts the 11 standard adders).
        assert_eq!(cat.len(), 24);
        assert_eq!(crate::adders::standard_adders().len(), 11);
        let mut names = cat.names();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn from_specs_rejects_duplicate_names() {
        let err = Catalog::from_specs(vec![
            ("mul8s_exact".to_string(), MulArch::Exact),
            ("mul8s_dup".to_string(), MulArch::Truncated { k: 2 }),
            ("mul8s_dup".to_string(), MulArch::Truncated { k: 3 }),
        ])
        .unwrap_err();
        assert_eq!(err, CatalogError::DuplicateName { name: "mul8s_dup".to_string() });
        assert!(err.to_string().contains("mul8s_dup"));
        // Unique names construct fine and resolve each entry.
        let ok = Catalog::from_specs(vec![
            ("mul8s_exact".to_string(), MulArch::Exact),
            ("mul8s_tr2".to_string(), MulArch::Truncated { k: 2 }),
        ])
        .unwrap();
        assert_eq!(ok.index_of("mul8s_tr2"), Some(1));
    }

    #[test]
    fn aliases_resolve() {
        let cat = Catalog::standard();
        for (alias, target) in PAPER_ALIASES {
            let m = cat.get(alias).unwrap_or_else(|| panic!("alias {alias}"));
            assert_eq!(m.name(), *target);
        }
    }

    #[test]
    fn index_roundtrip() {
        let cat = Catalog::standard();
        for (i, m) in cat.iter().enumerate() {
            assert_eq!(cat.index_of(m.name()), Some(i));
            assert_eq!(cat.at(i).unwrap().name(), m.name());
        }
        assert_eq!(cat.index_of("nope"), None);
        assert!(cat.at(10_000).is_none());
    }

    #[test]
    fn catalog_spans_wide_accuracy_range() {
        let cat = Catalog::standard();
        let mae = |m: &AxMul| -> f64 {
            // Normalize by the actual sample count: step_by(17) over
            // 65 536 pairs yields ceil(65536/17) = 3856 samples, not
            // the 65536/17 ≈ 3855.06 a closed-form division suggests.
            let mut acc = 0.0;
            let mut samples = 0u32;
            for (a, b) in exhaustive_pairs().step_by(17) {
                acc += f64::from((i32::from(m.mul(a, b)) - i32::from(a) * i32::from(b)).abs());
                samples += 1;
            }
            assert_eq!(samples, 3856, "ceil(65536 / 17) samples");
            acc / f64::from(samples)
        };
        let maes: Vec<f64> = cat.iter().map(|m| mae(m)).collect();
        let min = maes.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = maes.iter().cloned().fold(0.0f64, f64::max);
        assert_eq!(min, 0.0, "the exact multiplier has zero error");
        assert!(max > 100.0, "the catalog should include aggressive designs (max MAE {max})");
    }
}
