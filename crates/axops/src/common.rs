//! Shared sign/magnitude helpers for sign-magnitude multiplier
//! architectures (Mitchell, DRUM).

use clapped_netlist::bus::{self, Bus};
use clapped_netlist::{Netlist, SignalId};

/// Splits a two's-complement bus into `(magnitude, sign)`.
///
/// The magnitude keeps the full operand width, so the most negative value
/// maps onto its unsigned magnitude (e.g. `-128 -> 0b1000_0000 = 128`).
pub(crate) fn abs_bus(n: &mut Netlist, a: &[SignalId]) -> (Bus, SignalId) {
    let sign = *a.last().expect("non-empty bus");
    let neg = bus::negate(n, a);
    let mag = bus::mux_bus(n, sign, &neg, a);
    (mag, sign)
}

/// Applies `sign` (negate when set) and a `nonzero` gate to a magnitude
/// bus: the result is `0` when `nonzero` is low, `-mag` when `sign` is
/// set, `mag` otherwise.
pub(crate) fn apply_sign_zero(
    n: &mut Netlist,
    mag: &[SignalId],
    sign: SignalId,
    nonzero: SignalId,
) -> Bus {
    let zero = bus::constant_bus(n, 0, mag.len());
    let gated = bus::mux_bus(n, nonzero, mag, &zero);
    let neg = bus::negate(n, &gated);
    bus::mux_bus(n, sign, &neg, &gated)
}
