//! The generative operator catalog: thousands of multiplier
//! configurations enumerated from the architecture generators, built
//! once, cached forever.
//!
//! [`GenSpace`] crosses the [`crate::MulArch::Composed`] axes
//! (truncation × broken-array lines × approximate 4:2 compression ×
//! LOA final adder) with the pure architecture families (Booth, DRUM,
//! Mitchell, …) into a raw spec list. [`GenerativeCatalog::build`]
//! shards the cold build over an [`Engine`]: per spec it derives the
//! netlist, validates it with the structural lint pass, simulates the
//! exhaustive behavioural table, digests the behaviour, and
//! characterizes cheap per-operator features (error statistics from the
//! table, gate/depth/fanout from the lint stats, LUT/delay/power/PDP
//! from one-shot synthesis). The resulting [`GenRecord`] is published
//! to a [`ResultCache`] keyed by a stable *spec digest* — so a warm
//! rebuild never builds a netlist, never simulates a table and never
//! synthesizes: it replays records straight from the (disk-backed)
//! cache. Entries are deduplicated by behaviour digest: two specs whose
//! exhaustive tables are identical collapse to the first one
//! enumerated.
//!
//! This reproduces the front half of the autoAx methodology (Mrazek et
//! al., arXiv 1902.10807): a large generated library with cheap
//! per-operator features, ready for learned quality/cost pre-filtering
//! (`clapped-core`'s `prefilter` module) before MBO ever sees it.

use crate::table::build_mul_table;
use crate::{AxMul, ComposedSpec, MulArch};
use clapped_exec::{
    CacheCodec, Engine, Fnv64, ResultCache, StructDigest, CODE_VERSION_SALT,
};
use clapped_netlist::{
    analyze_error_bounds, lint_netlist, synthesize, ErrBoundConfig, SynthConfig,
};
use serde_json::Value;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cache-role salt partitioning generative-catalog records from every
/// other consumer of a shared cache directory.
const GEN_ROLE_SALT: u64 = 0x4745_4e43_4154_0902; // "GENCAT" v02

/// Number of scalar features in a [`GenFeatures`] vector.
pub const GEN_FEATURE_DIM: usize = 15;

/// One named architecture specification of the generative space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenSpec {
    /// Unique operator name within the space.
    pub name: String,
    /// The architecture to instantiate.
    pub arch: MulArch,
}

/// The enumerated generative configuration space: an ordered list of
/// named architecture specs. Order matters — behaviour-digest
/// deduplication keeps the first spec of each equivalence class, and
/// the space always enumerates the exact multiplier first.
#[derive(Debug, Clone)]
pub struct GenSpace {
    specs: Vec<GenSpec>,
}

impl GenSpace {
    /// The full generative space: the composed Baugh-Wooley grid
    /// (truncation × break lines × ranged compression × LOA) crossed
    /// with the pure architecture families — several thousand raw specs,
    /// well over a thousand distinct behaviours after deduplication.
    ///
    /// The composed grid deliberately overlaps the pure families (a
    /// vertical break at `k` empties the low columns exactly like a
    /// truncation at `k`), so the raw space carries known duplicate mass
    /// that exercises the behaviour-digest dedup at scale.
    pub fn standard() -> GenSpace {
        let mut cmp = vec![(0u8, 0u8)];
        for lo in [0u8, 2, 4, 6, 8, 10] {
            for wid in [2u8, 3, 4, 6] {
                let hi = (lo + wid).min(14);
                if !cmp.contains(&(lo, hi)) {
                    cmp.push((lo, hi));
                }
            }
        }
        GenSpace::with_grids(
            &[0],
            &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
            &[0, 1, 2, 3, 4],
            &cmp,
            &[0, 4, 6, 8],
            true,
        )
    }

    /// A CI-sized space (a couple hundred specs): the same structure as
    /// [`GenSpace::standard`] on much coarser grids.
    pub fn quick() -> GenSpace {
        GenSpace::with_grids(
            &[0, 2],
            &[0, 4, 8],
            &[0, 2],
            &[(0, 0), (0, 8), (4, 8)],
            &[0, 6],
            true,
        )
    }

    /// Builds a space from explicit per-axis grids for the composed
    /// family (`cmp` entries are `(cmp_lo, cmp)` column ranges),
    /// optionally appending the pure architecture families. The all-zero
    /// composed spec (the exact multiplier) is always enumerated first,
    /// whether or not the grids contain zero.
    pub fn with_grids(
        trunc: &[u8],
        vbl: &[u8],
        hbl: &[u8],
        cmp: &[(u8, u8)],
        loa: &[u8],
        pure_families: bool,
    ) -> GenSpace {
        let mut specs = Vec::new();
        let exact = ComposedSpec { trunc: 0, vbl: 0, hbl: 0, cmp_lo: 0, cmp: 0, loa: 0 };
        specs.push(GenSpec { name: exact.name(), arch: MulArch::Composed(exact) });
        for &t in trunc {
            for &v in vbl {
                for &h in hbl {
                    for &(c_lo, c) in cmp {
                        for &l in loa {
                            let spec = ComposedSpec {
                                trunc: t,
                                vbl: v,
                                hbl: h,
                                cmp_lo: c_lo,
                                cmp: c,
                                loa: l,
                            };
                            if spec.is_exact() {
                                continue; // already first
                            }
                            specs.push(GenSpec {
                                name: spec.name(),
                                arch: MulArch::Composed(spec),
                            });
                        }
                    }
                }
            }
        }
        if pure_families {
            for k in 1..=8usize {
                specs.push(GenSpec {
                    name: format!("mul8s_gtr{k}"),
                    arch: MulArch::Truncated { k },
                });
            }
            for v in 1..=10usize {
                for h in 0..=4usize {
                    specs.push(GenSpec {
                        name: format!("mul8s_gbam_v{v}_h{h}"),
                        arch: MulArch::BrokenArray { vbl: v, hbl: h },
                    });
                }
            }
            for c in 1..=16usize {
                specs.push(GenSpec {
                    name: format!("mul8s_gcmp{c}"),
                    arch: MulArch::ApproxCompressor { cols: c },
                });
            }
            for k in 1..=12usize {
                specs.push(GenSpec {
                    name: format!("mul8s_gloa{k}"),
                    arch: MulArch::LoaFinal { k },
                });
            }
            specs.push(GenSpec { name: "mul8s_glog".to_string(), arch: MulArch::Mitchell });
            for k in 3..=7usize {
                specs.push(GenSpec { name: format!("mul8s_gdrum{k}"), arch: MulArch::Drum { k } });
            }
            for t in 0..=8usize {
                specs.push(GenSpec {
                    name: format!("mul8s_gbooth{t}"),
                    arch: MulArch::Booth { trunc: t },
                });
            }
        }
        GenSpace { specs }
    }

    /// The raw (pre-deduplication) spec list, in enumeration order.
    pub fn specs(&self) -> &[GenSpec] {
        &self.specs
    }

    /// Number of raw specs.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the space holds no specs.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// Cheap per-operator features, the autoAx pre-filter input: error
/// statistics from the exhaustive behavioural table, structure from the
/// netlist lint stats, and cost proxies from one-shot synthesis.
#[derive(Debug, Clone, PartialEq)]
pub struct GenFeatures {
    /// Mean absolute error over the full 65 536-pair input space.
    pub mae: f64,
    /// Root-mean-square error.
    pub rms: f64,
    /// Fraction of input pairs with a non-zero error.
    pub error_prob: f64,
    /// Largest absolute error.
    pub max_abs_error: f64,
    /// Signed mean error (bias).
    pub mean_error: f64,
    /// Logic gates (lint stats, pre-optimization).
    pub logic_gates: f64,
    /// Logic depth in gate levels.
    pub depth: f64,
    /// Largest signal fanout.
    pub max_fanout: f64,
    /// Mean fanout over read signals.
    pub mean_fanout: f64,
    /// LUTs after k-LUT technology mapping.
    pub luts: f64,
    /// Critical-path delay in nanoseconds.
    pub delay_ns: f64,
    /// Total estimated power in milliwatts.
    pub power_mw: f64,
    /// Power-delay product proxy in picojoules (`power_mw × delay_ns`).
    pub pdp_pj: f64,
    /// Statically *proved* worst-case error bound from the interval
    /// error-bound analyzer (`clapped-netlist`'s `errbound`) — an upper
    /// bound on `max_abs_error` that costs microseconds, not an
    /// exhaustive table.
    pub proved_wce: f64,
    /// Statically proved error-rate bound: `0` when the analyzer proves
    /// the operator exact, `1` otherwise (interval tier cannot count
    /// mismatches).
    pub proved_error_rate: f64,
}

impl GenFeatures {
    /// The features as a fixed-order vector of [`GEN_FEATURE_DIM`]
    /// scalars (the pre-filter model input encoding).
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.mae,
            self.rms,
            self.error_prob,
            self.max_abs_error,
            self.mean_error,
            self.logic_gates,
            self.depth,
            self.max_fanout,
            self.mean_fanout,
            self.luts,
            self.delay_ns,
            self.power_mw,
            self.pdp_pj,
            self.proved_wce,
            self.proved_error_rate,
        ]
    }

    /// Rebuilds features from a [`GenFeatures::to_vec`] vector; `None`
    /// if the dimension is wrong or any value is non-finite.
    pub fn from_vec(v: &[f64]) -> Option<GenFeatures> {
        if v.len() != GEN_FEATURE_DIM || v.iter().any(|x| !x.is_finite()) {
            return None;
        }
        Some(GenFeatures {
            mae: v[0],
            rms: v[1],
            error_prob: v[2],
            max_abs_error: v[3],
            mean_error: v[4],
            logic_gates: v[5],
            depth: v[6],
            max_fanout: v[7],
            mean_fanout: v[8],
            luts: v[9],
            delay_ns: v[10],
            power_mw: v[11],
            pdp_pj: v[12],
            proved_wce: v[13],
            proved_error_rate: v[14],
        })
    }
}

/// The cached build product of one spec: its behaviour digest and
/// feature vector. Everything a warm catalog rebuild needs — tables and
/// netlists are only ever derived cold.
#[derive(Debug, Clone, PartialEq)]
pub struct GenRecord {
    /// FNV-1a digest of the exhaustive behavioural table.
    pub behaviour_digest: u64,
    /// The operator's pre-filter features.
    pub features: GenFeatures,
}

impl CacheCodec for GenRecord {
    fn to_cache_json(&self) -> Option<Value> {
        let features: Option<Vec<Value>> = self
            .features
            .to_vec()
            .iter()
            .map(|f| f.to_cache_json())
            .collect();
        let mut obj = serde_json::Map::new();
        obj.insert("bd".to_string(), Value::from(self.behaviour_digest));
        obj.insert("f".to_string(), Value::Array(features?));
        Some(Value::Object(obj))
    }

    fn from_cache_json(value: &Value) -> Option<Self> {
        let behaviour_digest = value.get("bd")?.as_u64()?;
        let raw: Option<Vec<f64>> = value
            .get("f")?
            .as_array()?
            .iter()
            .map(|v| v.as_f64())
            .collect();
        let features = GenFeatures::from_vec(&raw?)?;
        Some(GenRecord { behaviour_digest, features })
    }
}

/// One deduplicated operator of a built [`GenerativeCatalog`].
#[derive(Debug, Clone)]
pub struct GenEntry {
    /// Unique operator name (from the first spec of the behaviour
    /// class).
    pub name: String,
    /// The architecture to instantiate for this entry.
    pub arch: MulArch,
    /// FNV-1a digest of the exhaustive behavioural table.
    pub behaviour_digest: u64,
    /// The operator's pre-filter features.
    pub features: GenFeatures,
}

impl GenEntry {
    /// Materializes the entry into a full library operator (netlist +
    /// behavioural table). Expensive — intended for pre-filter
    /// *survivors*, not the whole catalog.
    pub fn materialize(&self) -> AxMul {
        AxMul::new(self.name.clone(), self.arch)
    }
}

/// Counters of one [`GenerativeCatalog::build`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GenBuildStats {
    /// Raw specs enumerated.
    pub raw_specs: usize,
    /// Specs rejected by the structural netlist lint.
    pub lint_rejects: usize,
    /// Specs rejected because synthesis failed.
    pub synth_rejects: usize,
    /// Exhaustive behavioural tables actually simulated by this build —
    /// zero on a fully warm cache.
    pub tables_built: u64,
    /// Distinct behaviours after deduplication.
    pub distinct: usize,
    /// Specs collapsed into an earlier entry with identical behaviour.
    pub duplicates: usize,
}

/// A built, deduplicated generative catalog: lazily-materializable
/// entries with behaviour digests and pre-filter features.
#[derive(Debug, Clone)]
pub struct GenerativeCatalog {
    entries: Vec<GenEntry>,
    stats: GenBuildStats,
}

impl GenerativeCatalog {
    /// Builds the catalog from a spec space, sharding cold per-spec work
    /// over `engine` and replaying warm specs from `cache` (construct it
    /// with [`gen_cache_with_disk`] / [`gen_cache_in_memory`] so key
    /// salting is consistent).
    ///
    /// Cold path per spec: build netlist → structural lint (unclean
    /// specs are rejected) → exhaustive behavioural table → behaviour
    /// digest → feature extraction → publish the record. Warm path:
    /// one cache probe by spec digest, nothing else — no netlist, no
    /// simulation, no synthesis. The result is deterministic and
    /// thread-count independent: records are pure functions of their
    /// spec, and dedup runs over results in enumeration order.
    pub fn build(
        space: &GenSpace,
        engine: &Engine,
        cache: &ResultCache<GenRecord>,
    ) -> GenerativeCatalog {
        let tables_built = AtomicU64::new(0);
        let lint_rejects = AtomicU64::new(0);
        let synth_rejects = AtomicU64::new(0);
        let synth_cfg = SynthConfig {
            verify_rounds: 0,
            formal_verify_limit: None,
            ..SynthConfig::default()
        };
        // Interval-only static error bounds against one shared exact
        // reference: the BDD exact tier is disabled (`bdd_node_limit: 0`)
        // because it costs hundreds of milliseconds per 8×8 miter, while
        // the interval pass costs microseconds and still proves
        // exact-behaviour specs equal through congruence.
        let exact_ref = MulArch::Exact.build_netlist();
        let errbound_cfg = ErrBoundConfig { bdd_node_limit: 0, signed_outputs: true };
        let records: Vec<Option<GenRecord>> =
            engine.evaluate_many(space.specs(), |_, spec| {
                let key = spec_digest(&spec.arch);
                if let Some(rec) = cache.get(key) {
                    return Some(rec);
                }
                let netlist = spec.arch.build_netlist();
                let report = lint_netlist(&netlist);
                if !report.is_clean() {
                    lint_rejects.fetch_add(1, Ordering::Relaxed);
                    clapped_obs::count("axops.gen.lint_reject", 1);
                    return None;
                }
                let table = build_mul_table(&netlist);
                tables_built.fetch_add(1, Ordering::Relaxed);
                clapped_obs::count("axops.gen.table_built", 1);
                let behaviour_digest = table_digest(&table);
                let Ok(synth) = synthesize(&netlist, &synth_cfg) else {
                    synth_rejects.fetch_add(1, Ordering::Relaxed);
                    clapped_obs::count("axops.gen.synth_reject", 1);
                    return None;
                };
                let bounds = analyze_error_bounds(&netlist, &exact_ref, &errbound_cfg);
                let (proved_wce, proved_error_rate) = match &bounds {
                    Ok(b) => (b.best_wce() as f64, b.proved_error_rate()),
                    // Interface mismatch against the reference cannot
                    // happen for generated 8×8 specs; fall back to the
                    // trivial sound bounds rather than reject the spec.
                    Err(_) => (f64::from(u16::MAX), 1.0),
                };
                let stats = &report.stats;
                let power_mw = synth.power.total_mw();
                let features = GenFeatures {
                    mae: table_mae(&table),
                    rms: table_rms(&table),
                    error_prob: table_error_prob(&table),
                    max_abs_error: table_max_abs(&table),
                    mean_error: table_bias(&table),
                    logic_gates: stats.logic_gates as f64,
                    depth: f64::from(stats.depth),
                    max_fanout: f64::from(stats.max_fanout),
                    mean_fanout: stats.mean_fanout,
                    luts: synth.lut_count as f64,
                    delay_ns: synth.cpd_ns,
                    power_mw,
                    pdp_pj: power_mw * synth.cpd_ns,
                    proved_wce,
                    proved_error_rate,
                };
                let rec = GenRecord { behaviour_digest, features };
                cache.insert(key, rec.clone());
                Some(rec)
            });
        // Deduplicate by behaviour digest, keeping the first spec of
        // each class (enumeration order — the exact multiplier leads).
        let mut seen: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        let mut entries = Vec::new();
        let mut duplicates = 0usize;
        for (spec, rec) in space.specs().iter().zip(&records) {
            let Some(rec) = rec else { continue };
            if seen.insert(rec.behaviour_digest) {
                entries.push(GenEntry {
                    name: spec.name.clone(),
                    arch: spec.arch,
                    behaviour_digest: rec.behaviour_digest,
                    features: rec.features.clone(),
                });
            } else {
                duplicates += 1;
            }
        }
        let stats = GenBuildStats {
            raw_specs: space.len(),
            lint_rejects: lint_rejects.load(Ordering::Relaxed) as usize,
            synth_rejects: synth_rejects.load(Ordering::Relaxed) as usize,
            tables_built: tables_built.load(Ordering::Relaxed),
            distinct: entries.len(),
            duplicates,
        };
        clapped_obs::observe("axops.gen.distinct", stats.distinct as u64);
        GenerativeCatalog { entries, stats }
    }

    /// The deduplicated entries, in enumeration order (entry 0 is the
    /// exact multiplier for a [`GenSpace`]-built catalog).
    pub fn entries(&self) -> &[GenEntry] {
        &self.entries
    }

    /// Build counters of the run that produced this catalog.
    pub fn stats(&self) -> &GenBuildStats {
        &self.stats
    }

    /// Number of distinct entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entry survived.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> impl Iterator<Item = &GenEntry> {
        self.entries.iter()
    }
}

/// A memory-only record cache with the canonical generative-catalog key
/// salting.
pub fn gen_cache_in_memory(capacity: usize) -> ResultCache<GenRecord> {
    ResultCache::in_memory(capacity)
        .salted(CODE_VERSION_SALT)
        .salted(GEN_ROLE_SALT)
}

/// A disk-backed record cache under `dir` with the canonical
/// generative-catalog key salting — warm rebuilds replay from here
/// across processes.
pub fn gen_cache_with_disk(
    capacity: usize,
    dir: impl AsRef<std::path::Path>,
) -> ResultCache<GenRecord> {
    ResultCache::with_disk(capacity, dir)
        .salted(CODE_VERSION_SALT)
        .salted(GEN_ROLE_SALT)
}

/// Stable content digest of an architecture spec — the record cache
/// key. Derived from the spec parameters only (never the netlist), so a
/// warm rebuild computes it without building anything; the
/// [`CODE_VERSION_SALT`] folded into the cache invalidates records
/// whenever generator semantics change.
pub fn spec_digest(arch: &MulArch) -> u64 {
    StructDigest::new("axops.gen.spec")
        .field("arch", format!("{arch:?}").as_str())
        .finish()
}

/// FNV-1a digest of an exhaustive behavioural table: equal digests are
/// the dedup criterion, and the digest is a pure function of table
/// contents, so equal digests identify behaviourally identical
/// operators (modulo 64-bit collisions, which the dedup soundness tests
/// probe for).
pub fn table_digest(table: &[i16]) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(table.len() as u64);
    for &v in table {
        h.write(&v.to_le_bytes());
    }
    h.finish()
}

fn table_err(table: &[i16], idx: usize) -> f64 {
    let a = (idx >> 8) as u8 as i8;
    let b = (idx & 0xff) as u8 as i8;
    f64::from(i32::from(table[idx]) - i32::from(a) * i32::from(b))
}

fn table_mae(table: &[i16]) -> f64 {
    (0..table.len()).map(|i| table_err(table, i).abs()).sum::<f64>() / table.len() as f64
}

fn table_rms(table: &[i16]) -> f64 {
    ((0..table.len()).map(|i| table_err(table, i).powi(2)).sum::<f64>() / table.len() as f64)
        .sqrt()
}

fn table_error_prob(table: &[i16]) -> f64 {
    (0..table.len()).filter(|&i| table_err(table, i) != 0.0).count() as f64 / table.len() as f64
}

fn table_max_abs(table: &[i16]) -> f64 {
    (0..table.len()).map(|i| table_err(table, i).abs()).fold(0.0, f64::max)
}

fn table_bias(table: &[i16]) -> f64 {
    (0..table.len()).map(|i| table_err(table, i)).sum::<f64>() / table.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mul8s;

    #[test]
    fn quick_space_builds_and_dedups() {
        let space = GenSpace::quick();
        assert!(space.len() > 20, "quick space too small: {}", space.len());
        let engine = Engine::serial();
        let cache = gen_cache_in_memory(4096);
        let cat = GenerativeCatalog::build(&space, &engine, &cache);
        let stats = cat.stats();
        assert_eq!(stats.raw_specs, space.len());
        assert_eq!(stats.lint_rejects, 0, "generated netlists must lint clean");
        assert_eq!(stats.synth_rejects, 0, "generated netlists must synthesize");
        assert!(stats.distinct >= 20, "distinct {}", stats.distinct);
        assert!(stats.duplicates > 0, "the grid must contain behavioural duplicates");
        assert_eq!(stats.distinct + stats.duplicates, stats.raw_specs);
        // Entry 0 is the exact multiplier.
        let exact = cat.entries()[0].materialize();
        assert_eq!(exact.mul(-7, 9), -63);
        assert_eq!(cat.entries()[0].features.mae, 0.0);
        // The interval analyzer proves the exact entry equal to the
        // reference, and every entry's proved WCE dominates the observed
        // table maximum (soundness, for free in every build).
        assert_eq!(cat.entries()[0].features.proved_wce, 0.0);
        assert_eq!(cat.entries()[0].features.proved_error_rate, 0.0);
        for e in cat.iter() {
            assert!(
                e.features.proved_wce >= e.features.max_abs_error,
                "{}: proved {} < observed {}",
                e.name,
                e.features.proved_wce,
                e.features.max_abs_error
            );
        }
        // Names are unique.
        let mut names: Vec<&str> = cat.iter().map(|e| e.name.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn warm_rebuild_recomputes_nothing() {
        let space = GenSpace::quick();
        let engine = Engine::serial();
        let cache = gen_cache_in_memory(4096);
        let cold = GenerativeCatalog::build(&space, &engine, &cache);
        assert!(cold.stats().tables_built > 0, "cold build simulates tables");
        let warm = GenerativeCatalog::build(&space, &engine, &cache);
        assert_eq!(warm.stats().tables_built, 0, "warm build replays the cache");
        assert_eq!(warm.len(), cold.len());
        for (a, b) in cold.iter().zip(warm.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.behaviour_digest, b.behaviour_digest);
            assert_eq!(a.features, b.features);
        }
    }

    #[test]
    fn build_is_thread_count_independent() {
        let space = GenSpace::quick();
        let serial = GenerativeCatalog::build(&space, &Engine::serial(), &gen_cache_in_memory(4096));
        let wide = GenerativeCatalog::build(
            &space,
            &Engine::new(clapped_exec::ExecConfig::with_jobs(8)),
            &gen_cache_in_memory(4096),
        );
        assert_eq!(serial.len(), wide.len());
        for (a, b) in serial.iter().zip(wide.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.behaviour_digest, b.behaviour_digest);
            assert_eq!(a.features, b.features);
        }
    }

    #[test]
    fn record_round_trips_through_cache_json() {
        let rec = GenRecord {
            behaviour_digest: 0x1234_5678_9abc_def0,
            features: GenFeatures::from_vec(&[
                1.5, 2.5, 0.25, 800.0, -0.5, 300.0, 20.0, 9.0, 1.8, 80.0, 5.5, 12.0, 66.0,
                1024.0, 1.0,
            ])
            .expect("15 finite values"),
        };
        let json = rec.to_cache_json().expect("encodable");
        let back = GenRecord::from_cache_json(&json).expect("decodable");
        assert_eq!(back, rec);
        // Large digests survive (u64 beyond f64's 2^53 mantissa).
        let big = GenRecord { behaviour_digest: u64::MAX - 1, ..rec };
        let back = GenRecord::from_cache_json(&big.to_cache_json().expect("encodable"))
            .expect("decodable");
        assert_eq!(back.behaviour_digest, u64::MAX - 1);
        // Malformed JSON decodes to None, never panics.
        assert!(GenRecord::from_cache_json(&Value::from("nope")).is_none());
        assert!(GenRecord::from_cache_json(&Value::Array(vec![])).is_none());
    }

    #[test]
    fn spec_digest_is_stable_and_distinguishes_arches() {
        let a = spec_digest(&MulArch::Truncated { k: 3 });
        let b = spec_digest(&MulArch::Truncated { k: 4 });
        let c = spec_digest(&MulArch::Truncated { k: 3 });
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_ne!(
            spec_digest(&MulArch::Composed(ComposedSpec {
                trunc: 3,
                vbl: 0,
                hbl: 0,
                cmp_lo: 0,
                cmp: 0,
                loa: 0
            })),
            a,
            "composed and pure specs key separately even when behaviourally equal"
        );
    }

    #[test]
    #[ignore = "minutes-scale: builds the full standard space; bench_catalog pins the floor in CI"]
    fn standard_space_yields_at_least_1000_distinct_operators() {
        let space = GenSpace::standard();
        let engine = Engine::new(clapped_exec::ExecConfig::default());
        let cache = gen_cache_in_memory(space.len() + 1);
        let t0 = std::time::Instant::now();
        let cat = GenerativeCatalog::build(&space, &engine, &cache);
        let stats = *cat.stats();
        println!(
            "standard space: raw={} distinct={} dup={} lint_rej={} synth_rej={} cold={:?}",
            stats.raw_specs,
            stats.distinct,
            stats.duplicates,
            stats.lint_rejects,
            stats.synth_rejects,
            t0.elapsed()
        );
        assert_eq!(stats.lint_rejects, 0);
        assert_eq!(stats.synth_rejects, 0);
        assert!(stats.distinct >= 1000, "distinct {} < 1000", stats.distinct);
    }

    #[test]
    fn table_features_of_the_exact_multiplier_are_zero() {
        let table = build_mul_table(&MulArch::Exact.build_netlist());
        assert_eq!(table_mae(&table), 0.0);
        assert_eq!(table_rms(&table), 0.0);
        assert_eq!(table_error_prob(&table), 0.0);
        assert_eq!(table_max_abs(&table), 0.0);
        assert_eq!(table_bias(&table), 0.0);
        let trunc = build_mul_table(&MulArch::Truncated { k: 4 }.build_netlist());
        assert!(table_mae(&trunc) > 0.0);
        assert!(table_rms(&trunc) >= table_mae(&trunc));
        assert!(table_error_prob(&trunc) > 0.0);
    }
}
