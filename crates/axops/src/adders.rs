//! Approximate 8-bit signed adders.
//!
//! The paper's Section II-A reports that polynomial-regression models also
//! beat curve fitting on 8-bit approximate *adders*; this module provides
//! the adder library for that experiment (and for composing approximate
//! accumulation datapaths).

use clapped_netlist::bus::{self, sign_extend};
use clapped_netlist::{pack_bus_samples, unpack_bus_samples, Netlist};
use std::fmt;
use std::sync::Arc;

/// An 8-bit signed adder producing a 9-bit signed sum.
pub trait Add8s: Send + Sync + fmt::Debug {
    /// Unique operator name (e.g. `"add8s_loa4"`).
    fn name(&self) -> &str;

    /// Adds two signed 8-bit values, possibly approximately.
    fn add(&self, a: i8, b: i8) -> i16;
}

/// An 8-bit signed adder architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AddArch {
    /// Exact ripple-carry adder.
    Exact,
    /// Lower-part OR adder: low `k` sum bits are ORs, the upper part is
    /// exact with carry-in `a[k-1] & b[k-1]`.
    Loa {
        /// Approximated low width (`0..=8`).
        k: usize,
    },
    /// OR-based lower part without carry compensation.
    OrLower {
        /// Approximated low width (`0..=8`).
        k: usize,
    },
    /// Truncated adder: low `k` sum bits are zero, no carry from them.
    Truncated {
        /// Truncated low width (`0..=8`).
        k: usize,
    },
}

impl AddArch {
    /// Builds the gate-level netlist (inputs `a[8]`, `b[8]`, output
    /// `s[9]`, all two's complement).
    ///
    /// # Panics
    ///
    /// Panics if `k > 8`.
    pub fn build_netlist(&self) -> Netlist {
        let mut n = Netlist::new(format!("{self:?}"));
        let a = n.input_bus("a", 8);
        let b = n.input_bus("b", 8);
        let a9 = sign_extend(&a, 9);
        let b9 = sign_extend(&b, 9);
        let s = match *self {
            AddArch::Exact => bus::ripple_carry_add(&mut n, &a9, &b9, None).0,
            AddArch::Loa { k } => {
                assert!(k <= 8);
                bus::loa_add(&mut n, &a9, &b9, k).0
            }
            AddArch::OrLower { k } => {
                assert!(k <= 8);
                // Low k bits are ORs; upper bits add exactly with no carry
                // compensation from the approximated part.
                let mut s: Vec<_> = a9[..k]
                    .iter()
                    .zip(&b9[..k])
                    .map(|(&x, &y)| n.or(x, y))
                    .collect();
                let (hi, _) = bus::ripple_carry_add(&mut n, &a9[k..], &b9[k..], None);
                s.extend(hi);
                s
            }
            AddArch::Truncated { k } => {
                assert!(k <= 8);
                bus::truncated_add(&mut n, &a9, &b9, k).0
            }
        };
        n.output_bus("s", &s);
        n
    }
}

/// A library adder: architecture plus exhaustively-derived behavioural
/// table.
#[derive(Clone)]
pub struct AxAdd {
    name: String,
    arch: AddArch,
    netlist: Arc<Netlist>,
    table: Arc<[i16]>,
}

impl AxAdd {
    /// Instantiates an adder architecture under a given name.
    pub fn new(name: impl Into<String>, arch: AddArch) -> AxAdd {
        let netlist = arch.build_netlist();
        let table = build_add_table(&netlist);
        AxAdd {
            name: name.into(),
            arch,
            netlist: Arc::new(netlist),
            table: table.into(),
        }
    }

    /// The instantiated architecture.
    pub fn arch(&self) -> &AddArch {
        &self.arch
    }

    /// The adder's gate-level netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }
}

impl Add8s for AxAdd {
    fn name(&self) -> &str {
        &self.name
    }

    fn add(&self, a: i8, b: i8) -> i16 {
        let idx = ((a as u8 as usize) << 8) | (b as u8 as usize);
        self.table[idx]
    }
}

impl fmt::Debug for AxAdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AxAdd")
            .field("name", &self.name)
            .field("arch", &self.arch)
            .finish()
    }
}

/// The standard adder catalog used by the Section II-A experiment.
pub fn standard_adders() -> Vec<Arc<AxAdd>> {
    let mut v = Vec::new();
    v.push(Arc::new(AxAdd::new("add8s_exact", AddArch::Exact)));
    for k in [2usize, 3, 4, 5, 6] {
        v.push(Arc::new(AxAdd::new(format!("add8s_loa{k}"), AddArch::Loa { k })));
    }
    for k in [2usize, 4, 6] {
        v.push(Arc::new(AxAdd::new(
            format!("add8s_or{k}"),
            AddArch::OrLower { k },
        )));
    }
    for k in [2usize, 4] {
        v.push(Arc::new(AxAdd::new(
            format!("add8s_tr{k}"),
            AddArch::Truncated { k },
        )));
    }
    v
}

fn build_add_table(netlist: &Netlist) -> Vec<i16> {
    assert_eq!(netlist.inputs().len(), 16);
    assert_eq!(netlist.outputs().len(), 9);
    let mut table = vec![0i16; 65_536];
    let pairs: Vec<(i8, i8)> = crate::exhaustive_pairs().collect();
    for chunk in pairs.chunks(64) {
        let a_vals: Vec<i64> = chunk.iter().map(|p| p.0 as i64).collect();
        let b_vals: Vec<i64> = chunk.iter().map(|p| p.1 as i64).collect();
        let mut words = pack_bus_samples(&a_vals, 8);
        words.extend(pack_bus_samples(&b_vals, 8));
        let outs = netlist
            .simulate_words(&words)
            .expect("adder netlist interface verified above");
        let sums = unpack_bus_samples(&outs, chunk.len(), true);
        for (&(a, b), &s) in chunk.iter().zip(&sums) {
            let idx = ((a as u8 as usize) << 8) | (b as u8 as usize);
            table[idx] = s as i16;
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive_pairs;

    #[test]
    fn exact_adder_is_exact_everywhere() {
        let add = AxAdd::new("exact", AddArch::Exact);
        for (a, b) in exhaustive_pairs() {
            assert_eq!(add.add(a, b), a as i16 + b as i16, "{a}+{b}");
        }
    }

    #[test]
    fn loa_zero_is_exact() {
        let add = AxAdd::new("loa0", AddArch::Loa { k: 0 });
        for (a, b) in exhaustive_pairs().step_by(111) {
            assert_eq!(add.add(a, b), a as i16 + b as i16);
        }
    }

    #[test]
    fn loa_error_bound_holds() {
        let k = 4;
        let add = AxAdd::new("loa4", AddArch::Loa { k });
        for (a, b) in exhaustive_pairs() {
            let err = (i32::from(add.add(a, b)) - (i32::from(a) + i32::from(b))).abs();
            assert!(err < (1 << k), "err {err} for {a}+{b}");
        }
    }

    #[test]
    fn approximate_adders_have_error() {
        for add in standard_adders() {
            if add.name() == "add8s_exact" {
                continue;
            }
            let any_err = exhaustive_pairs()
                .any(|(a, b)| add.add(a, b) != a as i16 + b as i16);
            assert!(any_err, "{} should be approximate", add.name());
        }
    }

    #[test]
    fn catalog_names_are_unique() {
        let adders = standard_adders();
        let mut names: Vec<&str> = adders.iter().map(|a| a.name()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
