// Index-based loops over multiple coupled arrays are the clearest idiom
// for the numeric kernels in this crate.
#![allow(clippy::needless_range_loop)]

//! Approximate arithmetic operator library.
//!
//! This crate is CLAppED's analogue of the EvoApprox8b / SMApproxlib
//! operator libraries the paper draws its multipliers from. Every operator
//! is defined by a **gate-level netlist** (built with `clapped-netlist`'s
//! structural builders) from which a behavioural lookup table is derived
//! by exhaustive simulation — so the "software model" and the "hardware"
//! are equivalent by construction, and the same artifact can be both
//! executed in application models and pushed through the synthesis flow.
//!
//! Implemented multiplier architectures (all 8-bit signed, 16-bit product):
//!
//! - exact Baugh-Wooley array ([`MulArch::Exact`]),
//! - LSB-column truncation ([`MulArch::Truncated`]),
//! - broken-array multipliers ([`MulArch::BrokenArray`]),
//! - approximate 4:2-compressor reduction ([`MulArch::ApproxCompressor`]),
//! - lower-part-OR final adder ([`MulArch::LoaFinal`]),
//! - Mitchell logarithmic multiplication ([`MulArch::Mitchell`]),
//! - DRUM-style dynamic-range multiplication ([`MulArch::Drum`]),
//! - radix-4 Booth recoding with truncation ([`MulArch::Booth`]),
//! - composed Baugh-Wooley approximation axes ([`MulArch::Composed`]) —
//!   the combinatorial configuration space behind the generative catalog
//!   ([`GenerativeCatalog`]).
//!
//! Approximate adders (8-bit signed) live in [`adders`].
//!
//! # Examples
//!
//! ```
//! use clapped_axops::{Catalog, Mul8s};
//!
//! let catalog = Catalog::standard();
//! let exact = catalog.get("mul8s_exact").unwrap();
//! assert_eq!(exact.mul(-7, 9), -63);
//! let approx = catalog.get("mul8s_tr3").unwrap();
//! // A truncated multiplier drops low-order information.
//! assert_ne!(approx.mul(3, 3), 9);
//! ```

pub mod adders;
mod arch;
mod booth;
mod catalog;
mod common;
mod drum;
mod fault;
pub mod gen;
mod logmul;
mod table;

pub use arch::{ComposedSpec, MulArch};
pub use catalog::{Catalog, CatalogError, PAPER_ALIASES};
pub use booth::booth_reference;
pub use drum::drum_reference;
pub use fault::{build_mul_table_with_faults, FaultedMul};
pub use gen::{
    gen_cache_in_memory, gen_cache_with_disk, spec_digest, table_digest, GenBuildStats, GenEntry,
    GenFeatures, GenRecord, GenSpace, GenSpec, GenerativeCatalog, GEN_FEATURE_DIM,
};
pub use logmul::mitchell_reference;
pub use table::{
    build_mul_table, build_mul_table_cached, build_mul_table_ref64, exhaustive_pairs,
    table_cache_stats,
};

use clapped_netlist::Netlist;
use std::fmt;
use std::sync::Arc;

/// An 8-bit signed multiplier: the operator abstraction every CLAppED
/// stage consumes.
///
/// Implementors must be deterministic pure functions of their inputs.
/// Besides the library operators ([`AxMul`]), the polynomial-regression
/// estimator in `clapped-errmodel` also implements this trait so that
/// PR-based operator models can be dropped into application code.
pub trait Mul8s: Send + Sync + fmt::Debug {
    /// Unique operator name (e.g. `"mul8s_tr3"`).
    fn name(&self) -> &str;

    /// Multiplies two signed 8-bit values, possibly approximately.
    fn mul(&self, a: i8, b: i8) -> i16;

    /// The operator's behavioural column for a fixed second operand:
    /// entry `a` is `self.mul(a, b)` for `a in 0..=127`.
    ///
    /// This is the lowering hook for compiled convolution plans
    /// (`clapped-imgproc`): quantized pixels only span `0..=127` and a
    /// kernel coefficient is fixed per tap, so one column replaces the
    /// per-pixel virtual `mul` dispatch with a direct 128-entry lookup.
    /// Table-backed operators override this with a slice copy of their
    /// existing 256×256 behavioural table; the default derives the
    /// column through 128 `mul` calls.
    fn column(&self, b: i8) -> Vec<i16> {
        (0..=127i8).map(|a| self.mul(a, b)).collect()
    }

    /// A stable content digest of the operator's behaviour, if one is
    /// available, used to memoize derived artifacts (e.g. compiled
    /// convolution-plan LUTs) across operator instances. `None` opts out
    /// of memoization: derived artifacts are rebuilt per use, which is
    /// the safe default for operators without a cheap stable identity.
    ///
    /// Implementations must return equal digests only for operators with
    /// identical `mul` behaviour.
    fn behaviour_digest(&self) -> Option<u64> {
        None
    }
}

/// A library multiplier: an architecture instantiated into a gate-level
/// netlist plus its exhaustively-derived behavioural table.
///
/// # Examples
///
/// ```
/// use clapped_axops::{AxMul, MulArch, Mul8s};
///
/// let m = AxMul::new("demo", MulArch::Truncated { k: 2 });
/// assert_eq!(m.mul(16, 16), 256); // high bits unaffected
/// assert!(m.netlist().logic_gate_count() > 0);
/// ```
#[derive(Clone)]
pub struct AxMul {
    name: String,
    arch: MulArch,
    netlist: Arc<Netlist>,
    table: Arc<[i16]>,
    digest: u64,
}

impl AxMul {
    /// Instantiates an architecture under a given operator name.
    ///
    /// Builds the gate-level netlist and derives the behavioural table by
    /// exhaustive 64-lane simulation of all 65 536 input pairs.
    ///
    /// # Panics
    ///
    /// Panics if the architecture parameters are out of range (e.g. a
    /// truncation width larger than the product) — operator construction
    /// is a programming-time activity, not a runtime input.
    pub fn new(name: impl Into<String>, arch: MulArch) -> AxMul {
        let netlist = arch.build_netlist();
        // Memoized process-wide: repeated instantiations of the same
        // architecture (e.g. every Catalog::standard() call) share one
        // table allocation and never re-simulate.
        let table = table::build_mul_table_cached(&netlist);
        // The digest walks the whole netlist, so compute it once here:
        // behaviour_digest() sits on the convolution-plan hot path.
        let digest = netlist.content_digest();
        AxMul {
            name: name.into(),
            arch,
            netlist: Arc::new(netlist),
            table,
            digest,
        }
    }

    /// The architecture this operator instantiates.
    pub fn arch(&self) -> &MulArch {
        &self.arch
    }

    /// The operator's gate-level netlist (16 inputs `a[0..8], b[0..8]`,
    /// 16 outputs `p[0..16]`).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Iterates over `((a, b), product)` for the full input space.
    pub fn iter_exhaustive(&self) -> impl Iterator<Item = ((i8, i8), i16)> + '_ {
        exhaustive_pairs().map(move |(a, b)| ((a, b), self.mul(a, b)))
    }

    /// True when both operators share the *same* behavioural-table
    /// allocation — the observable proof that the process-wide table
    /// memo deduplicated their construction.
    pub fn shares_table_with(&self, other: &AxMul) -> bool {
        Arc::ptr_eq(&self.table, &other.table)
    }
}

impl Mul8s for AxMul {
    fn name(&self) -> &str {
        &self.name
    }

    fn mul(&self, a: i8, b: i8) -> i16 {
        let idx = ((a as u8 as usize) << 8) | (b as u8 as usize);
        self.table[idx]
    }

    fn column(&self, b: i8) -> Vec<i16> {
        // Slice the existing behavioural table: row `a`, fixed column
        // `b` — a strided copy, no simulation and no virtual calls.
        let b = b as u8 as usize;
        (0..=127usize).map(|a| self.table[(a << 8) | b]).collect()
    }

    fn behaviour_digest(&self) -> Option<u64> {
        // The behavioural table is derived from the netlist by
        // exhaustive simulation, so the netlist digest identifies the
        // behaviour exactly (cached at construction).
        Some(self.digest)
    }
}

impl fmt::Debug for AxMul {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AxMul")
            .field("name", &self.name)
            .field("arch", &self.arch)
            .field("gates", &self.netlist.logic_gate_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_multiplier_is_exact_everywhere() {
        let m = AxMul::new("exact", MulArch::Exact);
        for (a, b) in exhaustive_pairs() {
            assert_eq!(m.mul(a, b), a as i16 * b as i16, "{a}*{b}");
        }
    }

    #[test]
    fn table_lookup_matches_netlist_simulation() {
        // Spot-check a non-trivial arch on a sample of the space.
        let m = AxMul::new("t", MulArch::Truncated { k: 3 });
        let pairs: Vec<(i64, i64)> = [(0i64, 0i64), (1, 1), (-1, -1), (127, 127), (-128, -128), (37, -91)]
            .to_vec();
        let sim = m
            .netlist()
            .simulate_binary_op(8, 8, &pairs, true)
            .unwrap();
        for (s, &(a, b)) in sim.iter().zip(&pairs) {
            assert_eq!(*s as i16, m.mul(a as i8, b as i8));
        }
    }

    #[test]
    fn repeated_instantiation_shares_one_table() {
        let a = AxMul::new("first", MulArch::Truncated { k: 5 });
        let b = AxMul::new("second", MulArch::Truncated { k: 5 });
        let c = AxMul::new("third", MulArch::Truncated { k: 4 });
        assert!(a.shares_table_with(&b), "same netlist → one memoized table");
        assert!(!a.shares_table_with(&c), "different netlist → different table");
    }

    #[test]
    fn column_matches_mul_and_digest_tracks_behaviour() {
        let exact = AxMul::new("exact", MulArch::Exact);
        let trunc = AxMul::new("trunc", MulArch::Truncated { k: 3 });
        for m in [&exact, &trunc] {
            for b in [-128i8, -17, 0, 1, 63, 127] {
                let col = m.column(b);
                assert_eq!(col.len(), 128);
                for (a, &p) in col.iter().enumerate() {
                    assert_eq!(p, m.mul(a as i8, b), "{}[{a}, {b}]", Mul8s::name(m));
                }
            }
        }
        assert_eq!(exact.behaviour_digest(), exact.behaviour_digest());
        assert_ne!(exact.behaviour_digest(), trunc.behaviour_digest());
        assert!(exact.behaviour_digest().is_some());
    }

    #[test]
    fn debug_impl_is_informative() {
        let m = AxMul::new("dbg", MulArch::Exact);
        let s = format!("{m:?}");
        assert!(s.contains("dbg"));
        assert!(s.contains("gates"));
    }
}
