//! Faulted operator instances: gate-level faults lifted to the
//! [`Mul8s`] abstraction.
//!
//! A [`FaultedMul`] is built by re-simulating an operator's netlist
//! under a [`FaultSet`] over all 65 536 input pairs, yielding a new
//! behavioural table. Because every CLAppED stage consumes operators
//! through [`Mul8s`], the faulted instance can be dropped straight into
//! application models — which is how gate-level fault injection is
//! propagated to application-level quality in `clapped-core`.

use crate::table::exhaustive_pairs;
use crate::{AxMul, Mul8s};
use clapped_exec::{Memo, StructDigest};
use clapped_netlist::{pack_bus_samples, unpack_bus_samples, FaultSet, Netlist};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Builds the 256×256 product table of a multiplier netlist simulated
/// under `faults`. With an empty fault set the table is bit-identical to
/// [`crate::build_mul_table`]'s.
///
/// # Errors
///
/// Propagates [`clapped_netlist::NetlistError::InvalidFaultSite`] for
/// out-of-range fault sites.
///
/// # Panics
///
/// Panics if the netlist interface does not match the operator
/// convention (16 inputs `a[0..8], b[0..8]`, 16-bit signed product).
pub fn build_mul_table_with_faults(
    netlist: &Netlist,
    faults: &FaultSet,
) -> clapped_netlist::Result<Vec<i16>> {
    assert_eq!(netlist.inputs().len(), 16, "expected 16 inputs (a, b)");
    assert_eq!(netlist.outputs().len(), 16, "expected a 16-bit product");
    let mut table = vec![0i16; 65_536];
    let mut batch: Vec<(i8, i8)> = Vec::with_capacity(64);
    let flush = |batch: &mut Vec<(i8, i8)>,
                 table: &mut Vec<i16>|
     -> clapped_netlist::Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let a_vals: Vec<i64> = batch.iter().map(|p| p.0 as i64).collect();
        let b_vals: Vec<i64> = batch.iter().map(|p| p.1 as i64).collect();
        let mut words = pack_bus_samples(&a_vals, 8);
        words.extend(pack_bus_samples(&b_vals, 8));
        let outs = netlist.simulate_words_with_faults(&words, faults)?;
        let products = unpack_bus_samples(&outs, batch.len(), true);
        for (&(a, b), &p) in batch.iter().zip(&products) {
            let idx = ((a as u8 as usize) << 8) | (b as u8 as usize);
            table[idx] = p as i16;
        }
        batch.clear();
        Ok(())
    };
    for (a, b) in exhaustive_pairs() {
        batch.push((a, b));
        if batch.len() == 64 {
            flush(&mut batch, &mut table)?;
        }
    }
    flush(&mut batch, &mut table)?;
    Ok(table)
}

/// An operator with injected gate-level faults, usable anywhere a
/// [`Mul8s`] is.
#[derive(Clone)]
pub struct FaultedMul {
    name: String,
    table: Arc<[i16]>,
    digest: u64,
}

impl FaultedMul {
    /// Builds the faulted instance of `base` by exhaustive simulation of
    /// its netlist under `faults`. The operator name gains a `!faulty`
    /// suffix so reports distinguish it from the healthy instance.
    ///
    /// # Errors
    ///
    /// Propagates fault-site validation errors from the simulator.
    pub fn new(base: &AxMul, faults: &FaultSet) -> clapped_netlist::Result<FaultedMul> {
        // Memoized per (netlist, fault set): fault campaigns revisit the
        // same sites across iterations, and each rebuild is a full
        // 65 536-pair simulation. Failures are not cached (they carry no
        // table), so an invalid site still errors on every call.
        type FaultTableMemo = Memo<(u64, u64), Arc<[i16]>>;
        static MEMO: OnceLock<FaultTableMemo> = OnceLock::new();
        let memo = MEMO.get_or_init(Memo::new);
        let key = (base.netlist().content_digest(), faults.content_digest());
        let table = match memo.get(&key) {
            Some(t) => t,
            None => {
                let built: Arc<[i16]> = build_mul_table_with_faults(base.netlist(), faults)?.into();
                memo.get_or_insert_with(key, || built)
            }
        };
        Ok(FaultedMul {
            name: format!("{}!faulty", base.name()),
            table,
            // The faulted behaviour is fully determined by the (netlist,
            // fault set) pair, so its digest is a stable behaviour key.
            digest: StructDigest::new("FaultedMul")
                .field("netlist", &key.0)
                .field("faults", &key.1)
                .finish(),
        })
    }

    /// Number of input pairs whose product differs from `base`'s.
    pub fn corrupted_entries(&self, base: &dyn Mul8s) -> usize {
        exhaustive_pairs()
            .filter(|&(a, b)| self.mul(a, b) != base.mul(a, b))
            .count()
    }
}

impl Mul8s for FaultedMul {
    fn name(&self) -> &str {
        &self.name
    }

    fn mul(&self, a: i8, b: i8) -> i16 {
        let idx = ((a as u8 as usize) << 8) | (b as u8 as usize);
        self.table[idx]
    }

    fn column(&self, b: i8) -> Vec<i16> {
        let b = b as u8 as usize;
        (0..=127usize).map(|a| self.table[(a << 8) | b]).collect()
    }

    fn behaviour_digest(&self) -> Option<u64> {
        Some(self.digest)
    }
}

impl fmt::Debug for FaultedMul {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultedMul").field("name", &self.name).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MulArch;
    use clapped_netlist::{FaultKind, SignalId};

    #[test]
    fn empty_fault_set_reproduces_base_table() {
        let base = AxMul::new("exact", MulArch::Exact);
        let faulted = FaultedMul::new(&base, &FaultSet::empty()).unwrap();
        assert_eq!(faulted.corrupted_entries(&base), 0);
        assert_eq!(faulted.name(), "exact!faulty");
    }

    #[test]
    fn stuck_output_corrupts_products() {
        let base = AxMul::new("exact", MulArch::Exact);
        // Stuck-at-1 on the MSB product output forces huge magnitudes.
        let msb = base.netlist().outputs().last().unwrap().1;
        let faults = FaultSet::empty().stuck_at(msb, FaultKind::StuckAt1);
        let faulted = FaultedMul::new(&base, &faults).unwrap();
        assert!(faulted.corrupted_entries(&base) > 0);
        // Positive×positive products have a 0 sign bit; the fault flips
        // them negative.
        assert!(faulted.mul(10, 10) < 0);
    }

    #[test]
    fn invalid_site_propagates() {
        let base = AxMul::new("exact", MulArch::Exact);
        let bad = FaultSet::empty().stuck_at(SignalId::from_index(1 << 20), FaultKind::StuckAt0);
        assert!(FaultedMul::new(&base, &bad).is_err());
    }
}
