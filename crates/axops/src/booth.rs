//! Radix-4 (modified) Booth multiplier, exact and with truncated
//! partial products.
//!
//! Booth recoding halves the partial-product count (4 rows for 8-bit
//! operands) at the cost of recoding logic — a different LUT/delay
//! trade-off point than the Baugh-Wooley array, which widens the
//! hardware diversity the accelerator-performance models must learn.

use clapped_netlist::bus::{self, Bus};
use clapped_netlist::{Netlist, SignalId};

/// Builds an 8×8 signed radix-4 Booth multiplier netlist
/// (`a[8], b[8] -> p[16]`). The low `trunc` product columns' partial
/// product bits are dropped (0 = exact).
///
/// The multiplicand is `a`; `b` is recoded into 4 signed digits in
/// `{-2,-1,0,1,2}`.
///
/// # Panics
///
/// Panics if `trunc > 8`.
pub(crate) fn build_booth(trunc: usize) -> Netlist {
    assert!(trunc <= 8, "truncation must be at most 8 columns");
    let mut n = Netlist::new(format!("mul8s_booth_tr{trunc}_net"));
    let a = n.input_bus("a", 8);
    let b = n.input_bus("b", 8);

    // Precompute multiplicand multiples over 10 bits (enough headroom
    // for ±2A of an 8-bit signed value).
    let a10 = bus::sign_extend(&a, 10);
    let zero = n.constant(false);
    let mut a2 = vec![zero];
    a2.extend_from_slice(&a[..]);
    let a2 = bus::sign_extend(&a2, 10); // 2A

    let mut cols = bus::Columns::new(16);
    let mut correction_bits: Vec<(usize, SignalId)> = Vec::new();
    for digit in 0..4 {
        // Booth window: b[2d+1], b[2d], b[2d-1] (b[-1] = 0).
        let b_hi = b[2 * digit + 1];
        let b_mid = b[2 * digit];
        let b_lo = if digit == 0 { zero } else { b[2 * digit - 1] };
        // neg = b_hi; two = hi&mid&lo == hi ^ (mid|lo)? Standard recode:
        //   zero  when all three equal
        //   two   when (hi, mid, lo) = (0,1,1)->+2? no: (1,0,0) = -2, (0,1,1) = +2
        //   one   otherwise (sign = hi)
        let one = n.xor(b_mid, b_lo);
        let not_hi = n.not(b_hi);
        let pos_two = n.and(not_hi, b_mid);
        let pos_two = n.and(pos_two, b_lo); // (0,1,1) -> +2
        let not_mid = n.not(b_mid);
        let not_lo = n.not(b_lo);
        let neg_two_t = n.and(b_hi, not_mid);
        let neg_two = n.and(neg_two_t, not_lo); // (1,0,0) -> -2
        let two = n.or(pos_two, neg_two);
        // Negative when hi=1 and the window is not all-ones (zero digit).
        let all = n.and3(b_hi, b_mid, b_lo);
        let not_all = n.not(all);
        let neg = n.and(b_hi, not_all);

        // Select |multiple|: two ? 2A : (one ? A : 0).
        let sel_one: Bus = a10.iter().map(|&bit| n.and(bit, one)).collect();
        let selected = bus::mux_bus(&mut n, two, &a2, &sel_one);
        // Conditional inversion; the +1 goes into the matrix column.
        let inverted: Bus = selected.iter().map(|&bit| n.xor(bit, neg)).collect();

        // Place into columns at weight 4^digit, sign-extended to the top.
        let base = 2 * digit;
        for (k, &bit) in inverted.iter().enumerate() {
            if base + k < 16 {
                cols.push(base + k, bit);
            }
        }
        let msb = *inverted.last().expect("non-empty");
        for k in (base + 10)..16 {
            cols.push(k, msb);
        }
        correction_bits.push((base, neg));
    }
    for (col, bit) in correction_bits {
        cols.push(col, bit);
    }
    // Truncation: clear the low product columns.
    for c in 0..trunc {
        cols.take_col(c);
    }
    let p = cols.finalize(&mut n, 16);
    n.output_bus("p", &p);
    n
}

/// Behavioural reference of the radix-4 Booth recoding (exact digits),
/// used as the oracle for the exact variant.
pub fn booth_reference(a: i8, b: i8) -> i16 {
    let mut acc: i32 = 0;
    let bu = b as i32;
    for digit in 0..4 {
        let hi = (bu >> (2 * digit + 1)) & 1;
        let mid = (bu >> (2 * digit)) & 1;
        let lo = if digit == 0 { 0 } else { (bu >> (2 * digit - 1)) & 1 };
        let d = match (hi, mid, lo) {
            (0, 0, 0) | (1, 1, 1) => 0,
            (0, 0, 1) | (0, 1, 0) => 1,
            (0, 1, 1) => 2,
            (1, 0, 0) => -2,
            (1, 0, 1) | (1, 1, 0) => -1,
            _ => unreachable!("3-bit window"),
        };
        acc += (d * i32::from(a)) << (2 * digit);
    }
    acc as i16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{build_mul_table, exhaustive_pairs};

    #[test]
    fn booth_reference_is_exact() {
        for (a, b) in exhaustive_pairs().step_by(11) {
            assert_eq!(booth_reference(a, b), a as i16 * b as i16, "{a}*{b}");
        }
    }

    #[test]
    fn exact_booth_netlist_is_exact_exhaustively() {
        let table = build_mul_table(&build_booth(0));
        for (a, b) in exhaustive_pairs() {
            let idx = ((a as u8 as usize) << 8) | (b as u8 as usize);
            assert_eq!(table[idx], a as i16 * b as i16, "{a}*{b}");
        }
    }

    #[test]
    fn truncated_booth_error_is_bounded() {
        let table = build_mul_table(&build_booth(4));
        let mut max_err = 0i32;
        for (a, b) in exhaustive_pairs().step_by(7) {
            let idx = ((a as u8 as usize) << 8) | (b as u8 as usize);
            let err = (i32::from(table[idx]) - i32::from(a) * i32::from(b)).abs();
            max_err = max_err.max(err);
        }
        assert!(max_err > 0, "truncated Booth must be approximate");
        // Dropping 4 columns of up to 5 rows (4 digits + corrections)
        // bounds the error by a few times 2^4.
        assert!(max_err <= 5 * 16, "max err {max_err}");
    }

    #[test]
    fn booth_uses_fewer_partial_product_rows() {
        use clapped_netlist::optimize;
        // Booth should trade AND-array area for recoding logic; both
        // must land in the same ballpark as the BW array.
        let booth = optimize(&build_booth(0)).logic_gate_count();
        let bw = optimize(&crate::MulArch::Exact.build_netlist()).logic_gate_count();
        assert!(booth < bw * 2, "booth {booth} vs bw {bw}");
    }
}
