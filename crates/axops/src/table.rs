//! Exhaustive behavioural-table extraction from operator netlists.
//!
//! Table construction is the single most expensive operator-layer
//! operation (a 65 536-pair exhaustive simulation), and the same
//! netlists recur constantly — every [`crate::Catalog::standard`] call
//! instantiates the same 24 operators. [`build_mul_table_cached`]
//! therefore memoizes tables process-wide, keyed by the netlist's
//! stable content digest: a given netlist's table is built **once per
//! process ever**, and all operator instances share one allocation.

use clapped_exec::{Memo, MemoStats};
use clapped_netlist::{pack_bus_samples, transpose8x8, unpack_bus_samples, Netlist};
use std::sync::{Arc, OnceLock};

/// Iterates over all 65 536 signed 8-bit input pairs, `a` outermost.
///
/// # Examples
///
/// ```
/// let n = clapped_axops::exhaustive_pairs().count();
/// assert_eq!(n, 65_536);
/// ```
pub fn exhaustive_pairs() -> impl Iterator<Item = (i8, i8)> {
    (i8::MIN..=i8::MAX).flat_map(|a| (i8::MIN..=i8::MAX).map(move |b| (a, b)))
}

/// Builds the 256×256 product table of a multiplier netlist by exhaustive
/// wide-word simulation: 1024 lanes per evaluation pass, four values of
/// `a` per pass.
///
/// The netlist must have inputs `a[0..8]` then `b[0..8]` and a 16-bit
/// signed product output. Table index is `(a as u8) << 8 | (b as u8)`.
///
/// The exhaustive sweep has exploitable structure at this width: within
/// each 256-lane quarter of a block the `a` byte is constant (each bit
/// broadcasts to all-zeros or all-ones per quarter) and the `b` byte
/// counts `0..=255`, so its bit patterns are the same fixed blocks for
/// every pass. Inputs are therefore assembled with a handful of word
/// writes per pass instead of per-lane packing, the evaluation scratch
/// is reused across all 64 passes, and the product rows are unpacked
/// from the output bitplanes eight lanes at a time through
/// [`transpose8x8`]. Bit-identical to [`build_mul_table_ref64`], which
/// is pinned by tests over the whole standard catalog.
///
/// # Panics
///
/// Panics if the netlist interface does not match (wrong input/output
/// arity).
pub fn build_mul_table(netlist: &Netlist) -> Vec<i16> {
    assert_eq!(netlist.inputs().len(), 16, "expected 16 inputs (a, b)");
    assert_eq!(netlist.outputs().len(), 16, "expected a 16-bit product");
    const W: usize = 16;
    const LANES: usize = 64 * W;
    // Words per 256-lane quarter (one `a` value spans one quarter).
    const QW: usize = 4;
    const A_PER_PASS: usize = LANES / 256;
    // b counts 0..=255 inside every quarter: fixed counting patterns.
    let mut b_bits = [[0u64; W]; 8];
    for lane in 0..LANES {
        let b = lane & 0xff;
        for (k, block) in b_bits.iter_mut().enumerate() {
            block[lane / 64] |= (((b >> k) & 1) as u64) << (lane % 64);
        }
    }
    let mut inputs: Vec<[u64; W]> = vec![[0u64; W]; 16];
    inputs[8..16].copy_from_slice(&b_bits);
    let mut table = vec![0i16; 65_536];
    let mut scratch: Vec<[u64; W]> = Vec::new();
    let mut outs: Vec<[u64; W]> = Vec::new();
    for pass in 0..256 / A_PER_PASS {
        // a is constant across each quarter: broadcast each bit.
        for sub in 0..A_PER_PASS {
            let a_byte = pass * A_PER_PASS + sub;
            for (k, input) in inputs[..8].iter_mut().enumerate() {
                let word = if (a_byte >> k) & 1 == 1 { !0u64 } else { 0 };
                input[sub * QW..(sub + 1) * QW].fill(word);
            }
        }
        netlist
            .simulate_blocks_into::<W>(&inputs, &mut scratch, &mut outs)
            .expect("operator netlist interface verified above");
        // Rebuild the product rows from the 16 output bitplanes, eight
        // lanes per transpose (low byte from planes 0..8, high from
        // 8..16).
        let (lo_planes, hi_planes) = outs.split_at(8);
        for sub in 0..A_PER_PASS {
            let a_byte = pass * A_PER_PASS + sub;
            let row = &mut table[a_byte << 8..(a_byte + 1) << 8];
            for qw in 0..QW {
                let w = sub * QW + qw;
                for octet in 0..8 {
                    let mut lo = 0u64;
                    let mut hi = 0u64;
                    for k in 0..8 {
                        lo |= ((lo_planes[k][w] >> (8 * octet)) & 0xff) << (8 * k);
                        hi |= ((hi_planes[k][w] >> (8 * octet)) & 0xff) << (8 * k);
                    }
                    let lo = transpose8x8(lo);
                    let hi = transpose8x8(hi);
                    for lane in 0..8 {
                        let p = ((lo >> (8 * lane)) & 0xff) as u16 // lint-allow(no-silent-truncation): both casts masked to 0xff
                            | ((((hi >> (8 * lane)) & 0xff) as u16) << 8);
                        // lint-allow(no-silent-truncation): bit-for-bit reinterpretation of the 16 product bits
                        row[qw * 64 + octet * 8 + lane] = p as i16;
                    }
                }
            }
        }
    }
    table
}

/// The retained 64-lane reference table builder: per-batch `Vec`
/// packing through [`pack_bus_samples`]/[`unpack_bus_samples`] exactly
/// as shipped before the wide-word simulator. [`build_mul_table`] is
/// pinned bit-identical to this path by tests and benchmarked against
/// it in `bench_sim`.
///
/// # Panics
///
/// Panics if the netlist interface does not match (wrong input/output
/// arity).
pub fn build_mul_table_ref64(netlist: &Netlist) -> Vec<i16> {
    assert_eq!(netlist.inputs().len(), 16, "expected 16 inputs (a, b)");
    assert_eq!(netlist.outputs().len(), 16, "expected a 16-bit product");
    let mut table = vec![0i16; 65_536];
    let mut batch: Vec<(i8, i8)> = Vec::with_capacity(64);
    let flush = |batch: &mut Vec<(i8, i8)>, table: &mut Vec<i16>| {
        if batch.is_empty() {
            return;
        }
        let a_vals: Vec<i64> = batch.iter().map(|p| p.0 as i64).collect();
        let b_vals: Vec<i64> = batch.iter().map(|p| p.1 as i64).collect();
        let mut words = pack_bus_samples(&a_vals, 8);
        words.extend(pack_bus_samples(&b_vals, 8));
        let outs = netlist
            .simulate_words(&words)
            .expect("operator netlist interface verified above");
        let products = unpack_bus_samples(&outs, batch.len(), true);
        for (&(a, b), &p) in batch.iter().zip(&products) {
            // lint-allow(no-silent-truncation): i8→u8 is a lossless bit reinterpretation for indexing
            let idx = ((a as u8 as usize) << 8) | (b as u8 as usize);
            // lint-allow(no-silent-truncation): an 8×8 signed product always fits i16
            table[idx] = p as i16;
        }
        batch.clear();
    };
    for (a, b) in exhaustive_pairs() {
        batch.push((a, b));
        if batch.len() == 64 {
            flush(&mut batch, &mut table);
        }
    }
    flush(&mut batch, &mut table);
    table
}

fn table_memo() -> &'static Memo<u64, Arc<[i16]>> {
    static MEMO: OnceLock<Memo<u64, Arc<[i16]>>> = OnceLock::new();
    MEMO.get_or_init(Memo::new)
}

/// [`build_mul_table`] memoized process-wide by the netlist's content
/// digest. The first call for a given netlist builds the table; every
/// later call (any thread, any operator instance) returns a clone of the
/// same `Arc` — zero rebuilds, shared storage.
///
/// # Panics
///
/// See [`build_mul_table`].
pub fn build_mul_table_cached(netlist: &Netlist) -> Arc<[i16]> {
    table_memo().get_or_insert_with(netlist.content_digest(), || build_mul_table(netlist).into())
}

/// Hit/miss counters of the process-wide behavioural-table memo. A warm
/// process shows `misses` frozen at the number of distinct netlists ever
/// built while `hits` keeps climbing — the "zero rebuilds on a warm
/// cache" acceptance check.
pub fn table_cache_stats() -> MemoStats {
    table_memo().stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapped_netlist::bus;

    #[test]
    fn exhaustive_pairs_covers_corners() {
        let v: Vec<(i8, i8)> = exhaustive_pairs().collect();
        assert_eq!(v.first(), Some(&(-128, -128)));
        assert_eq!(v.last(), Some(&(127, 127)));
        assert_eq!(v.len(), 65_536);
    }

    #[test]
    fn wide_table_matches_ref64_builder() {
        let mut n = Netlist::new("exact8");
        let a = n.input_bus("a", 8);
        let b = n.input_bus("b", 8);
        let p = bus::baugh_wooley_mul(&mut n, &a, &b);
        n.output_bus("p", &p);
        assert_eq!(build_mul_table(&n), build_mul_table_ref64(&n));
    }

    #[test]
    fn table_of_exact_multiplier_is_exact() {
        let mut n = Netlist::new("exact8");
        let a = n.input_bus("a", 8);
        let b = n.input_bus("b", 8);
        let p = bus::baugh_wooley_mul(&mut n, &a, &b);
        n.output_bus("p", &p);
        let table = build_mul_table(&n);
        for (a, b) in [(0i8, 0i8), (1, -1), (127, 127), (-128, 127), (-128, -128), (45, -3)] {
            let idx = ((a as u8 as usize) << 8) | (b as u8 as usize);
            assert_eq!(table[idx], a as i16 * b as i16, "{a}*{b}");
        }
    }
}
