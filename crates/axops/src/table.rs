//! Exhaustive behavioural-table extraction from operator netlists.

use clapped_netlist::{pack_bus_samples, unpack_bus_samples, Netlist};

/// Iterates over all 65 536 signed 8-bit input pairs, `a` outermost.
///
/// # Examples
///
/// ```
/// let n = clapped_axops::exhaustive_pairs().count();
/// assert_eq!(n, 65_536);
/// ```
pub fn exhaustive_pairs() -> impl Iterator<Item = (i8, i8)> {
    (i8::MIN..=i8::MAX).flat_map(|a| (i8::MIN..=i8::MAX).map(move |b| (a, b)))
}

/// Builds the 256×256 product table of a multiplier netlist by exhaustive
/// 64-lane simulation.
///
/// The netlist must have inputs `a[0..8]` then `b[0..8]` and a 16-bit
/// signed product output. Table index is `(a as u8) << 8 | (b as u8)`.
///
/// # Panics
///
/// Panics if the netlist interface does not match (wrong input/output
/// arity).
pub fn build_mul_table(netlist: &Netlist) -> Vec<i16> {
    assert_eq!(netlist.inputs().len(), 16, "expected 16 inputs (a, b)");
    assert_eq!(netlist.outputs().len(), 16, "expected a 16-bit product");
    let mut table = vec![0i16; 65_536];
    let mut batch: Vec<(i8, i8)> = Vec::with_capacity(64);
    let flush = |batch: &mut Vec<(i8, i8)>, table: &mut Vec<i16>| {
        if batch.is_empty() {
            return;
        }
        let a_vals: Vec<i64> = batch.iter().map(|p| p.0 as i64).collect();
        let b_vals: Vec<i64> = batch.iter().map(|p| p.1 as i64).collect();
        let mut words = pack_bus_samples(&a_vals, 8);
        words.extend(pack_bus_samples(&b_vals, 8));
        let outs = netlist
            .simulate_words(&words)
            .expect("operator netlist interface verified above");
        let products = unpack_bus_samples(&outs, batch.len(), true);
        for (&(a, b), &p) in batch.iter().zip(&products) {
            let idx = ((a as u8 as usize) << 8) | (b as u8 as usize);
            table[idx] = p as i16;
        }
        batch.clear();
    };
    for (a, b) in exhaustive_pairs() {
        batch.push((a, b));
        if batch.len() == 64 {
            flush(&mut batch, &mut table);
        }
    }
    flush(&mut batch, &mut table);
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapped_netlist::bus;

    #[test]
    fn exhaustive_pairs_covers_corners() {
        let v: Vec<(i8, i8)> = exhaustive_pairs().collect();
        assert_eq!(v.first(), Some(&(-128, -128)));
        assert_eq!(v.last(), Some(&(127, 127)));
        assert_eq!(v.len(), 65_536);
    }

    #[test]
    fn table_of_exact_multiplier_is_exact() {
        let mut n = Netlist::new("exact8");
        let a = n.input_bus("a", 8);
        let b = n.input_bus("b", 8);
        let p = bus::baugh_wooley_mul(&mut n, &a, &b);
        n.output_bus("p", &p);
        let table = build_mul_table(&n);
        for (a, b) in [(0i8, 0i8), (1, -1), (127, 127), (-128, 127), (-128, -128), (45, -3)] {
            let idx = ((a as u8 as usize) << 8) | (b as u8 as usize);
            assert_eq!(table[idx], a as i16 * b as i16, "{a}*{b}");
        }
    }
}
