//! Exhaustive behavioural-table extraction from operator netlists.
//!
//! Table construction is the single most expensive operator-layer
//! operation (a 65 536-pair exhaustive simulation), and the same
//! netlists recur constantly — every [`crate::Catalog::standard`] call
//! instantiates the same 24 operators. [`build_mul_table_cached`]
//! therefore memoizes tables process-wide, keyed by the netlist's
//! stable content digest: a given netlist's table is built **once per
//! process ever**, and all operator instances share one allocation.

use clapped_exec::{Memo, MemoStats};
use clapped_netlist::{pack_bus_samples, unpack_bus_samples, Netlist};
use std::sync::{Arc, OnceLock};

/// Iterates over all 65 536 signed 8-bit input pairs, `a` outermost.
///
/// # Examples
///
/// ```
/// let n = clapped_axops::exhaustive_pairs().count();
/// assert_eq!(n, 65_536);
/// ```
pub fn exhaustive_pairs() -> impl Iterator<Item = (i8, i8)> {
    (i8::MIN..=i8::MAX).flat_map(|a| (i8::MIN..=i8::MAX).map(move |b| (a, b)))
}

/// Builds the 256×256 product table of a multiplier netlist by exhaustive
/// 64-lane simulation.
///
/// The netlist must have inputs `a[0..8]` then `b[0..8]` and a 16-bit
/// signed product output. Table index is `(a as u8) << 8 | (b as u8)`.
///
/// # Panics
///
/// Panics if the netlist interface does not match (wrong input/output
/// arity).
pub fn build_mul_table(netlist: &Netlist) -> Vec<i16> {
    assert_eq!(netlist.inputs().len(), 16, "expected 16 inputs (a, b)");
    assert_eq!(netlist.outputs().len(), 16, "expected a 16-bit product");
    let mut table = vec![0i16; 65_536];
    let mut batch: Vec<(i8, i8)> = Vec::with_capacity(64);
    let flush = |batch: &mut Vec<(i8, i8)>, table: &mut Vec<i16>| {
        if batch.is_empty() {
            return;
        }
        let a_vals: Vec<i64> = batch.iter().map(|p| p.0 as i64).collect();
        let b_vals: Vec<i64> = batch.iter().map(|p| p.1 as i64).collect();
        let mut words = pack_bus_samples(&a_vals, 8);
        words.extend(pack_bus_samples(&b_vals, 8));
        let outs = netlist
            .simulate_words(&words)
            .expect("operator netlist interface verified above");
        let products = unpack_bus_samples(&outs, batch.len(), true);
        for (&(a, b), &p) in batch.iter().zip(&products) {
            let idx = ((a as u8 as usize) << 8) | (b as u8 as usize);
            table[idx] = p as i16;
        }
        batch.clear();
    };
    for (a, b) in exhaustive_pairs() {
        batch.push((a, b));
        if batch.len() == 64 {
            flush(&mut batch, &mut table);
        }
    }
    flush(&mut batch, &mut table);
    table
}

fn table_memo() -> &'static Memo<u64, Arc<[i16]>> {
    static MEMO: OnceLock<Memo<u64, Arc<[i16]>>> = OnceLock::new();
    MEMO.get_or_init(Memo::new)
}

/// [`build_mul_table`] memoized process-wide by the netlist's content
/// digest. The first call for a given netlist builds the table; every
/// later call (any thread, any operator instance) returns a clone of the
/// same `Arc` — zero rebuilds, shared storage.
///
/// # Panics
///
/// See [`build_mul_table`].
pub fn build_mul_table_cached(netlist: &Netlist) -> Arc<[i16]> {
    table_memo().get_or_insert_with(netlist.content_digest(), || build_mul_table(netlist).into())
}

/// Hit/miss counters of the process-wide behavioural-table memo. A warm
/// process shows `misses` frozen at the number of distinct netlists ever
/// built while `hits` keeps climbing — the "zero rebuilds on a warm
/// cache" acceptance check.
pub fn table_cache_stats() -> MemoStats {
    table_memo().stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapped_netlist::bus;

    #[test]
    fn exhaustive_pairs_covers_corners() {
        let v: Vec<(i8, i8)> = exhaustive_pairs().collect();
        assert_eq!(v.first(), Some(&(-128, -128)));
        assert_eq!(v.last(), Some(&(127, 127)));
        assert_eq!(v.len(), 65_536);
    }

    #[test]
    fn table_of_exact_multiplier_is_exact() {
        let mut n = Netlist::new("exact8");
        let a = n.input_bus("a", 8);
        let b = n.input_bus("b", 8);
        let p = bus::baugh_wooley_mul(&mut n, &a, &b);
        n.output_bus("p", &p);
        let table = build_mul_table(&n);
        for (a, b) in [(0i8, 0i8), (1, -1), (127, 127), (-128, 127), (-128, -128), (45, -3)] {
            let idx = ((a as u8 as usize) << 8) | (b as u8 as usize);
            assert_eq!(table[idx], a as i16 * b as i16, "{a}*{b}");
        }
    }
}
