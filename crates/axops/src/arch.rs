//! Multiplier architectures and their netlist builders.

use crate::{booth, drum, logmul};
use clapped_netlist::bus::{self, Columns};
use clapped_netlist::Netlist;

/// Width of library operands in bits.
pub(crate) const W: usize = 8;
/// Width of the product in bits.
pub(crate) const PW: usize = 16;

/// An 8-bit signed multiplier architecture.
///
/// Each variant describes a family of FPGA-oriented approximate multiplier
/// designs from the literature; [`MulArch::build_netlist`] instantiates the
/// corresponding gate-level structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum MulArch {
    /// Exact Baugh-Wooley array multiplier.
    Exact,
    /// Truncated multiplier: the `k` least-significant product columns of
    /// the partial-product matrix are removed, zeroing the low `k` output
    /// bits.
    Truncated {
        /// Number of truncated LSB columns (`0..=8`).
        k: usize,
    },
    /// Broken-array multiplier: partial products below a vertical break
    /// line (column index `< vbl`) and in the lowest `hbl` rows of the
    /// array are omitted.
    BrokenArray {
        /// Vertical break line: drop partial products in columns `< vbl`.
        vbl: usize,
        /// Horizontal break line: drop partial products of the lowest
        /// `hbl` multiplier rows (`b` bits).
        hbl: usize,
    },
    /// The low `cols` product columns are compressed with carry-free
    /// approximate 4:2 compressors instead of exact counters.
    ApproxCompressor {
        /// Number of approximately-compressed LSB columns (`0..=16`).
        cols: usize,
    },
    /// Exact partial-product reduction, but the final carry-propagate
    /// adder is a lower-part-OR adder whose low `k` bits are OR gates.
    LoaFinal {
        /// Approximate width of the final adder (`0..=16`).
        k: usize,
    },
    /// Mitchell's logarithmic multiplier (sign-magnitude with leading-one
    /// detection and linear mantissa interpolation).
    Mitchell,
    /// DRUM-style dynamic-range multiplier: each magnitude is reduced to
    /// its top `k` significant bits (LSB forced to 1 for unbiasing), the
    /// `k×k` core product is exact, and the result is shifted back.
    Drum {
        /// Core width in bits (`3..=7`).
        k: usize,
    },
    /// Radix-4 (modified) Booth multiplier with `trunc` truncated LSB
    /// product columns (`0` = exact Booth).
    Booth {
        /// Number of truncated LSB columns (`0..=8`).
        trunc: usize,
    },
    /// Composition of the Baugh-Wooley approximation axes into one
    /// generator: broken-array partial-product filtering, LSB-column
    /// truncation, approximate 4:2 compression of the low columns, and a
    /// lower-part-OR final adder. The all-zero spec degenerates to
    /// [`MulArch::Exact`]; each single-axis spec matches the
    /// corresponding pure family — this variant is the combinatorial
    /// configuration space the generative catalog enumerates.
    Composed(ComposedSpec),
}

/// Parameters of a [`MulArch::Composed`] multiplier. Kept as a nested
/// struct so the variant stays `Copy + Eq + Hash` and specs enumerate
/// cheaply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ComposedSpec {
    /// Truncated LSB product columns (`0..=8`), applied after filtering.
    pub trunc: u8,
    /// Vertical break line: drop partial products in columns `< vbl`
    /// (`0..=16`).
    pub vbl: u8,
    /// Horizontal break line: drop partial products of the lowest `hbl`
    /// multiplier rows (`0..=8`).
    pub hbl: u8,
    /// First product column compressed with carry-free approximate 4:2
    /// compressors (`0..=16`). The compressed range is `cmp_lo..cmp`;
    /// `cmp_lo == 0` reproduces the pure low-column family, while a
    /// raised floor targets the mid/high columns — behaviourally a
    /// different design point, since the dropped carries weigh `2^c`.
    pub cmp_lo: u8,
    /// One past the last product column compressed with carry-free
    /// approximate 4:2 compressors (`0..=16`, `cmp <= cmp_lo` disables
    /// the compression stage).
    pub cmp: u8,
    /// Approximate (OR) width of the lower-part-OR final adder
    /// (`0..=16`, `0` = exact ripple carry).
    pub loa: u8,
}

impl ComposedSpec {
    /// True when every axis is zero — the spec degenerates to the exact
    /// Baugh-Wooley multiplier.
    pub fn is_exact(&self) -> bool {
        self.trunc == 0
            && self.vbl == 0
            && self.hbl == 0
            && self.cmp_lo >= self.cmp
            && self.loa == 0
    }

    /// Canonical operator name encoding every axis, unique per spec:
    /// `mul8s_g_t{trunc}_v{vbl}_h{hbl}_c{cmp_lo}-{cmp}_l{loa}`.
    pub fn name(&self) -> String {
        format!(
            "mul8s_g_t{}_v{}_h{}_c{}-{}_l{}",
            self.trunc, self.vbl, self.hbl, self.cmp_lo, self.cmp, self.loa
        )
    }
}

impl MulArch {
    /// Builds the gate-level netlist for this architecture.
    ///
    /// The netlist interface is fixed: inputs `a[0..8]`, `b[0..8]` (LSB
    /// first, two's complement) and outputs `p[0..16]`.
    ///
    /// # Panics
    ///
    /// Panics if architecture parameters are out of their documented
    /// ranges.
    pub fn build_netlist(&self) -> Netlist {
        match *self {
            MulArch::Exact => build_filtered_bw("mul8s_exact_net", |_, _| true, 0),
            MulArch::Truncated { k } => {
                assert!(k <= W, "truncation width must be at most 8");
                build_filtered_bw(format!("mul8s_tr{k}_net"), move |i, j| i + j >= k, k)
            }
            MulArch::BrokenArray { vbl, hbl } => {
                assert!(vbl <= PW && hbl <= W, "break lines out of range");
                build_filtered_bw(
                    format!("mul8s_bam_v{vbl}_h{hbl}_net"),
                    move |i, j| i + j >= vbl && j >= hbl,
                    0,
                )
            }
            MulArch::ApproxCompressor { cols } => build_approx_compressor(cols),
            MulArch::LoaFinal { k } => build_loa_final(k),
            MulArch::Mitchell => logmul::build_mitchell(),
            MulArch::Drum { k } => drum::build_drum(k),
            MulArch::Booth { trunc } => booth::build_booth(trunc),
            MulArch::Composed(spec) => build_composed(spec),
        }
    }

    /// A short human-readable architecture description.
    pub fn describe(&self) -> String {
        match *self {
            MulArch::Exact => "exact Baugh-Wooley array".to_string(),
            MulArch::Truncated { k } => format!("truncated array (drop {k} LSB columns)"),
            MulArch::BrokenArray { vbl, hbl } => {
                format!("broken array (VBL {vbl}, HBL {hbl})")
            }
            MulArch::ApproxCompressor { cols } => {
                format!("approximate 4:2 compressors on {cols} LSB columns")
            }
            MulArch::LoaFinal { k } => format!("LOA-{k} final adder"),
            MulArch::Mitchell => "Mitchell logarithmic".to_string(),
            MulArch::Drum { k } => format!("dynamic-range, {k}-bit core"),
            MulArch::Booth { trunc } => {
                format!("radix-4 Booth (drop {trunc} LSB columns)")
            }
            MulArch::Composed(s) => format!(
                "composed array (drop {} LSB cols, VBL {}, HBL {}, 4:2 on {} cols, LOA-{})",
                s.trunc, s.vbl, s.hbl, s.cmp, s.loa
            ),
        }
    }
}

/// Builds a Baugh-Wooley multiplier keeping only the partial products for
/// which `keep(i, j)` holds (`i` indexes bits of `a`, `j` bits of `b`).
/// Columns below `zero_cols` are cleared entirely after matrix
/// construction (used by truncation so correction constants in dropped
/// columns disappear too).
fn build_filtered_bw(
    name: impl Into<String>,
    keep: impl Fn(usize, usize) -> bool,
    zero_cols: usize,
) -> Netlist {
    let mut n = Netlist::new(name);
    let a = n.input_bus("a", W);
    let b = n.input_bus("b", W);
    let mut cols = Columns::new(PW);
    for i in 0..W {
        for j in 0..W {
            if !keep(i, j) {
                continue;
            }
            let and = n.and(a[i], b[j]);
            let pp = if (i == W - 1) ^ (j == W - 1) {
                n.not(and)
            } else {
                and
            };
            cols.push(i + j, pp);
        }
    }
    let one = n.constant(true);
    cols.push(W, one);
    cols.push(2 * W - 1, one);
    for c in 0..zero_cols {
        cols.take_col(c);
    }
    let p = cols.finalize(&mut n, PW);
    n.output_bus("p", &p);
    n
}

/// Builds a [`MulArch::Composed`] multiplier: filtered Baugh-Wooley
/// matrix (broken-array lines + truncation), approximate 4:2 compression
/// of the low columns, carry-save reduction to two rows, and a
/// lower-part-OR final adder. With every axis at zero each stage
/// degenerates to its exact form, so the all-zero spec *is* the exact
/// multiplier.
fn build_composed(spec: ComposedSpec) -> Netlist {
    let (trunc, vbl, hbl) = (spec.trunc as usize, spec.vbl as usize, spec.hbl as usize);
    let (cmp_lo, cmp, loa) = (spec.cmp_lo as usize, spec.cmp as usize, spec.loa as usize);
    assert!(trunc <= W, "truncation width must be at most 8");
    assert!(vbl <= PW && hbl <= W, "break lines out of range");
    assert!(cmp <= PW && cmp_lo <= PW, "approximate column range out of range");
    assert!(loa <= PW, "LOA width out of range");
    let mut n = Netlist::new(format!("{}_net", spec.name()));
    let a = n.input_bus("a", W);
    let b = n.input_bus("b", W);
    let mut cols = Columns::new(PW);
    for i in 0..W {
        for j in 0..W {
            if i + j < vbl || j < hbl {
                continue;
            }
            let and = n.and(a[i], b[j]);
            let pp = if (i == W - 1) ^ (j == W - 1) {
                n.not(and)
            } else {
                and
            };
            cols.push(i + j, pp);
        }
    }
    let one = n.constant(true);
    cols.push(W, one);
    cols.push(2 * W - 1, one);
    for c in 0..trunc {
        cols.take_col(c);
    }
    // Carry-free approximate 4:2 compression of the `cmp_lo..cmp` column
    // range — with a zero floor, exactly the pure ApproxCompressor
    // family.
    loop {
        let mut changed = false;
        for c in cmp_lo..cmp.min(cols.width()) {
            while cols.col(c).len() >= 4 {
                let mut bits = cols.take_col(c);
                let x4 = bits.pop().expect("len >= 4");
                let x3 = bits.pop().expect("len >= 3");
                let x2 = bits.pop().expect("len >= 2");
                let x1 = bits.pop().expect("len >= 1");
                for bit in bits {
                    cols.push(c, bit);
                }
                let (sum, carry) = bus::compressor_4_2_approx(&mut n, x1, x2, x3, x4);
                cols.push(c, sum);
                cols.push(c + 1, carry);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Reduce to two rows and close with a lower-part-OR adder — the
    // `loa == 0` case is a plain ripple carry, bit-identical to
    // `Columns::finalize`.
    cols.reduce(&mut n, 2);
    let zero = n.constant(false);
    let mut row_a = Vec::with_capacity(PW);
    let mut row_b = Vec::with_capacity(PW);
    for k in 0..PW {
        let col = cols.take_col(k);
        let mut it = col.into_iter();
        row_a.push(it.next().unwrap_or(zero));
        row_b.push(it.next().unwrap_or(zero));
    }
    let (p, _) = bus::loa_add(&mut n, &row_a, &row_b, loa);
    n.output_bus("p", &p);
    n
}

fn build_approx_compressor(approx_cols: usize) -> Netlist {
    assert!(approx_cols <= PW, "approximate column count out of range");
    let mut n = Netlist::new(format!("mul8s_cmp{approx_cols}_net"));
    let a = n.input_bus("a", W);
    let b = n.input_bus("b", W);
    let mut cols = bus::baugh_wooley_matrix(&mut n, &a, &b);
    // Compress the low columns with carry-free approximate 4:2
    // compressors until no column holds four or more bits.
    loop {
        let mut changed = false;
        for c in 0..approx_cols.min(cols.width()) {
            while cols.col(c).len() >= 4 {
                let mut bits = cols.take_col(c);
                let x4 = bits.pop().expect("len >= 4");
                let x3 = bits.pop().expect("len >= 3");
                let x2 = bits.pop().expect("len >= 2");
                let x1 = bits.pop().expect("len >= 1");
                for bit in bits {
                    cols.push(c, bit);
                }
                let (sum, carry) = bus::compressor_4_2_approx(&mut n, x1, x2, x3, x4);
                cols.push(c, sum);
                cols.push(c + 1, carry);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let p = cols.finalize(&mut n, PW);
    n.output_bus("p", &p);
    n
}

fn build_loa_final(k: usize) -> Netlist {
    assert!(k <= PW, "LOA width out of range");
    let mut n = Netlist::new(format!("mul8s_loa{k}_net"));
    let a = n.input_bus("a", W);
    let b = n.input_bus("b", W);
    // Row-based carry-save reduction: keep the partial products as dense
    // 16-bit rows and 3:2-compress rows (not columns) so the final
    // carry-propagate adder genuinely sees two dense operands — the
    // structure LOA-final-adder designs approximate.
    let zero = n.constant(false);
    let mut rows: Vec<Vec<clapped_netlist::SignalId>> = Vec::with_capacity(W + 1);
    for j in 0..W {
        let mut row = vec![zero; PW];
        for (i, &ai) in a.iter().enumerate() {
            let and = n.and(ai, b[j]);
            row[i + j] = if (i == W - 1) ^ (j == W - 1) {
                n.not(and)
            } else {
                and
            };
        }
        rows.push(row);
    }
    // Baugh-Wooley correction constants as one extra row.
    let one = n.constant(true);
    let mut corr = vec![zero; PW];
    corr[W] = one;
    corr[2 * W - 1] = one;
    rows.push(corr);
    // 3:2 carry-save row compression.
    while rows.len() > 2 {
        let r3 = rows.split_off(rows.len() - 3);
        let mut sum_row = Vec::with_capacity(PW);
        let mut carry_row = vec![zero; PW];
        for bit in 0..PW {
            let (s, c) = bus::full_adder(&mut n, r3[0][bit], r3[1][bit], r3[2][bit]);
            sum_row.push(s);
            if bit + 1 < PW {
                carry_row[bit + 1] = c;
            }
        }
        rows.push(sum_row);
        rows.push(carry_row);
    }
    let (p, _) = bus::loa_add(&mut n, &rows[0], &rows[1], k);
    n.output_bus("p", &p);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{build_mul_table, exhaustive_pairs};

    fn table_of(arch: MulArch) -> Vec<i16> {
        build_mul_table(&arch.build_netlist())
    }

    fn lookup(table: &[i16], a: i8, b: i8) -> i16 {
        table[((a as u8 as usize) << 8) | (b as u8 as usize)]
    }

    fn mae_of(table: &[i16]) -> f64 {
        let mut acc = 0.0;
        for (a, b) in exhaustive_pairs() {
            acc += f64::from((lookup(table, a, b) as i32 - a as i32 * b as i32).abs());
        }
        acc / 65_536.0
    }

    /// Software reference of the filtered Baugh-Wooley matrix semantics.
    fn bw_reference(a: i8, b: i8, keep: impl Fn(usize, usize) -> bool, zero_cols: usize) -> i16 {
        let (au, bu) = (a as u8, b as u8);
        let mut sum: u32 = 0;
        for i in 0..8 {
            for j in 0..8 {
                if !keep(i, j) || i + j < zero_cols {
                    continue;
                }
                let mut bit = ((au >> i) & 1) & ((bu >> j) & 1);
                if (i == 7) ^ (j == 7) {
                    bit ^= 1;
                }
                sum = sum.wrapping_add(u32::from(bit) << (i + j));
            }
        }
        if 8 >= zero_cols {
            sum = sum.wrapping_add(1 << 8);
        }
        sum = sum.wrapping_add(1 << 15);
        // Carries that would land in dropped columns cannot exist (all
        // contributions are at columns >= zero_cols), so plain masking is
        // exact.
        let masked = if zero_cols > 0 {
            sum & !((1u32 << zero_cols) - 1)
        } else {
            sum
        };
        (masked & 0xFFFF) as u16 as i16
    }

    #[test]
    fn truncated_matches_software_reference() {
        for k in [1usize, 2, 4] {
            let table = table_of(MulArch::Truncated { k });
            for (a, b) in exhaustive_pairs().step_by(97) {
                let want = bw_reference(a, b, |i, j| i + j >= k, k);
                assert_eq!(lookup(&table, a, b), want, "tr{k}: {a}*{b}");
            }
        }
    }

    #[test]
    fn broken_array_matches_software_reference() {
        let (vbl, hbl) = (4usize, 2usize);
        let table = table_of(MulArch::BrokenArray { vbl, hbl });
        for (a, b) in exhaustive_pairs().step_by(89) {
            let want = bw_reference(a, b, |i, j| i + j >= vbl && j >= hbl, 0);
            assert_eq!(lookup(&table, a, b), want, "bam: {a}*{b}");
        }
    }

    #[test]
    fn zero_parameter_variants_are_exact() {
        for arch in [
            MulArch::Truncated { k: 0 },
            MulArch::BrokenArray { vbl: 0, hbl: 0 },
            MulArch::ApproxCompressor { cols: 0 },
            MulArch::LoaFinal { k: 0 },
        ] {
            let table = table_of(arch);
            for (a, b) in exhaustive_pairs().step_by(101) {
                assert_eq!(lookup(&table, a, b), a as i16 * b as i16, "{arch:?}: {a}*{b}");
            }
        }
    }

    #[test]
    fn truncation_error_grows_with_k() {
        let m2 = mae_of(&table_of(MulArch::Truncated { k: 2 }));
        let m4 = mae_of(&table_of(MulArch::Truncated { k: 4 }));
        let m6 = mae_of(&table_of(MulArch::Truncated { k: 6 }));
        assert!(m2 < m4 && m4 < m6, "MAE {m2} {m4} {m6}");
    }

    #[test]
    fn loa_error_is_bounded_by_low_part() {
        let k = 6;
        let table = table_of(MulArch::LoaFinal { k });
        let bound = (1i32 << k) * 2;
        for (a, b) in exhaustive_pairs().step_by(61) {
            let err = (lookup(&table, a, b) as i32 - a as i32 * b as i32).abs();
            assert!(err <= bound, "LOA err {err} for {a}*{b}");
        }
    }

    #[test]
    fn approx_compressor_is_reasonably_accurate_on_high_magnitudes() {
        let table = table_of(MulArch::ApproxCompressor { cols: 8 });
        let mae = mae_of(&table);
        assert!(mae > 0.0, "an approximate design must have error");
        assert!(mae < 2_000.0, "MAE {mae} is implausibly large");
    }

    #[test]
    fn composed_all_zero_spec_is_exact() {
        let spec = ComposedSpec { trunc: 0, vbl: 0, hbl: 0, cmp_lo: 0, cmp: 0, loa: 0 };
        assert!(spec.is_exact());
        let table = table_of(MulArch::Composed(spec));
        for (a, b) in exhaustive_pairs().step_by(73) {
            assert_eq!(lookup(&table, a, b), a as i16 * b as i16, "{a}*{b}");
        }
        // Same behaviour as the pure exact multiplier: identical tables.
        assert_eq!(table, table_of(MulArch::Exact));
    }

    #[test]
    fn composed_single_axis_specs_match_the_pure_families() {
        // Each single-axis composed spec must reproduce its pure family's
        // behavioural table exactly.
        let cases: Vec<(ComposedSpec, MulArch)> = vec![
            (
                ComposedSpec { trunc: 3, vbl: 0, hbl: 0, cmp_lo: 0, cmp: 0, loa: 0 },
                MulArch::Truncated { k: 3 },
            ),
            (
                ComposedSpec { trunc: 0, vbl: 6, hbl: 2, cmp_lo: 0, cmp: 0, loa: 0 },
                MulArch::BrokenArray { vbl: 6, hbl: 2 },
            ),
            (
                ComposedSpec { trunc: 0, vbl: 0, hbl: 0, cmp_lo: 0, cmp: 8, loa: 0 },
                MulArch::ApproxCompressor { cols: 8 },
            ),
        ];
        for (spec, pure) in cases {
            assert_eq!(
                table_of(MulArch::Composed(spec)),
                table_of(pure),
                "{spec:?} vs {pure:?}"
            );
        }
    }

    #[test]
    fn composed_matrix_axes_match_software_reference() {
        // trunc × vbl × hbl with exact compression/final adder follows
        // the filtered-BW reference.
        let spec = ComposedSpec { trunc: 2, vbl: 4, hbl: 1, cmp_lo: 0, cmp: 0, loa: 0 };
        let table = table_of(MulArch::Composed(spec));
        for (a, b) in exhaustive_pairs().step_by(83) {
            let want = bw_reference(a, b, |i, j| i + j >= 4 && j >= 1, 2);
            assert_eq!(lookup(&table, a, b), want, "{a}*{b}");
        }
    }

    #[test]
    fn composed_loa_axis_error_is_bounded() {
        let spec = ComposedSpec { trunc: 0, vbl: 0, hbl: 0, cmp_lo: 0, cmp: 0, loa: 5 };
        let table = table_of(MulArch::Composed(spec));
        let bound = (1i32 << 5) * 2;
        let mut worst = 0i32;
        for (a, b) in exhaustive_pairs().step_by(67) {
            let err = (lookup(&table, a, b) as i32 - a as i32 * b as i32).abs();
            worst = worst.max(err);
            assert!(err <= bound, "LOA err {err} for {a}*{b}");
        }
        assert!(worst > 0, "a LOA-5 final adder must be approximate");
    }

    #[test]
    fn composed_axes_stack_monotonically_in_error() {
        // Stacking more approximation axes cannot *reduce* exhaustive MAE
        // below the single-axis base in these nested cases.
        let base = mae_of(&table_of(MulArch::Composed(ComposedSpec {
            trunc: 3,
            vbl: 0,
            hbl: 0,
            cmp_lo: 0,
            cmp: 0,
            loa: 0,
        })));
        let stacked = mae_of(&table_of(MulArch::Composed(ComposedSpec {
            trunc: 3,
            vbl: 5,
            hbl: 2,
            cmp_lo: 0,
            cmp: 0,
            loa: 0,
        })));
        assert!(stacked > base, "stacked {stacked} vs base {base}");
    }

    #[test]
    fn gate_counts_shrink_with_approximation() {
        use clapped_netlist::{optimize, Netlist};
        let gates = |n: &Netlist| optimize(n).logic_gate_count();
        let exact = gates(&MulArch::Exact.build_netlist());
        let tr4 = gates(&MulArch::Truncated { k: 4 }.build_netlist());
        let bam = gates(&MulArch::BrokenArray { vbl: 6, hbl: 2 }.build_netlist());
        assert!(tr4 < exact, "tr4 {tr4} vs exact {exact}");
        assert!(bam < exact, "bam {bam} vs exact {exact}");
    }
}
