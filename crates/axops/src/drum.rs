//! DRUM-style dynamic-range unbiased multiplier (8-bit signed).
//!
//! Each magnitude is reduced to a `k`-bit core anchored at its leading
//! one; the discarded low part is compensated by forcing the core's LSB to
//! 1 (the "unbiasing" trick of DRUM). The `k×k` core product is exact and
//! shifted back into place. Larger `k` trades LUTs for accuracy.

use crate::common::{abs_bus, apply_sign_zero};
use clapped_netlist::bus::{self, Bus};
use clapped_netlist::{Netlist, SignalId};

/// Builds the DRUM netlist for core width `k` (interface
/// `a[8], b[8] -> p[16]`).
///
/// # Panics
///
/// Panics if `k` is not in `3..=7`.
pub(crate) fn build_drum(k: usize) -> Netlist {
    assert!((3..=7).contains(&k), "DRUM core width must be in 3..=7");
    let mut n = Netlist::new(format!("mul8s_drum{k}_net"));
    let a = n.input_bus("a", 8);
    let b = n.input_bus("b", 8);

    let (mag_a, sa) = abs_bus(&mut n, &a);
    let (mag_b, sb) = abs_bus(&mut n, &b);

    let (core_a, sh_a, nz_a) = drum_operand(&mut n, &mag_a, k);
    let (core_b, sh_b, nz_b) = drum_operand(&mut n, &mag_b, k);

    // Exact k×k unsigned core product (2k bits).
    let prod = bus::array_mul_unsigned(&mut n, &core_a, &core_b);

    // Shift back by sh_a + sh_b (each fits 3 bits; sum fits 4).
    let sh_a4 = bus::zero_extend(&mut n, &sh_a, 4);
    let sh_b4 = bus::zero_extend(&mut n, &sh_b, 4);
    let (total_sh, _) = bus::ripple_carry_add(&mut n, &sh_a4, &sh_b4, None);
    let prod_ext = bus::zero_extend(&mut n, &prod, 16);
    let p_mag = bus::barrel_shift_left(&mut n, &prod_ext, &total_sh);

    let nz = n.and(nz_a, nz_b);
    let sign = n.xor(sa, sb);
    let p = apply_sign_zero(&mut n, &p_mag, sign, nz);
    n.output_bus("p", &p);
    n
}

/// Reduces a magnitude to its `k`-bit core: returns
/// `(core, shift, nonzero)` with `core` of width `k` and `shift` of width
/// 3 such that the approximated magnitude is `core << shift`.
fn drum_operand(
    n: &mut Netlist,
    mag: &[SignalId],
    k: usize,
) -> (Bus, Bus, SignalId) {
    let (oh, nz) = bus::leading_one_detect(n, mag);
    let t = bus::encode_one_hot(n, &oh); // 3-bit leading-one position

    // shift = max(t - (k - 1), 0); t and the constant widened to 4 bits so
    // the subtraction's carry-out signals t >= k-1.
    let t4 = bus::zero_extend(n, &t, 4);
    let km1 = bus::constant_bus(n, (k - 1) as i64, 4);
    let (diff, no_borrow) = bus::ripple_carry_sub(n, &t4, &km1);
    let zero3 = bus::constant_bus(n, 0, 3);
    let shift = bus::mux_bus(n, no_borrow, &diff[..3], &zero3);

    // core = (mag >> shift) with the LSB forced high when we truncated.
    let shifted = bus::barrel_shift_right(n, mag, &shift);
    let mut core: Bus = shifted[..k].to_vec();
    let truncated = n.or_reduce(&shift);
    let lsb_forced = n.or(core[0], truncated);
    core[0] = lsb_forced;
    (core, shift, nz)
}

/// Behavioural reference model of the DRUM multiplier, used as an
/// independent oracle in tests.
///
/// # Panics
///
/// Panics if `k` is not in `3..=7`.
pub fn drum_reference(a: i8, b: i8, k: usize) -> i16 {
    assert!((3..=7).contains(&k));
    if a == 0 || b == 0 {
        return 0;
    }
    let sign = (a < 0) ^ (b < 0);
    let reduce = |m: u32| -> (u32, u32) {
        let t = 31 - m.leading_zeros();
        if (t as usize) < k {
            (m, 0)
        } else {
            let sh = t as usize - (k - 1);
            ((m >> sh) | 1, sh as u32)
        }
    };
    let (ca, sa) = reduce((a as i32).unsigned_abs());
    let (cb, sb) = reduce((b as i32).unsigned_abs());
    let mag = (ca * cb) << (sa + sb);
    let v = if sign { -(mag as i64) } else { mag as i64 };
    v as i16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{build_mul_table, exhaustive_pairs};

    #[test]
    fn netlist_matches_reference_exhaustively() {
        for k in [3usize, 4, 6] {
            let table = build_mul_table(&build_drum(k));
            for (a, b) in exhaustive_pairs() {
                let idx = ((a as u8 as usize) << 8) | (b as u8 as usize);
                assert_eq!(table[idx], drum_reference(a, b, k), "drum{k}: {a}*{b}");
            }
        }
    }

    #[test]
    fn small_magnitudes_are_exact() {
        let k = 4;
        for a in -7i8..=7 {
            for b in -7i8..=7 {
                assert_eq!(drum_reference(a, b, k), a as i16 * b as i16, "{a}*{b}");
            }
        }
    }

    #[test]
    fn accuracy_improves_with_core_width() {
        let mae = |k: usize| -> f64 {
            let mut acc = 0.0;
            for (a, b) in exhaustive_pairs() {
                acc += f64::from((i32::from(drum_reference(a, b, k)) - i32::from(a) * i32::from(b)).abs());
            }
            acc / 65_536.0
        };
        let (m3, m5, m7) = (mae(3), mae(5), mae(7));
        assert!(m3 > m5 && m5 > m7, "MAE {m3} {m5} {m7}");
    }

    #[test]
    fn relative_error_is_bounded() {
        // DRUM-k relative error is bounded by ~2^-(k-1) per operand.
        let k = 5;
        for (a, b) in exhaustive_pairs().step_by(7) {
            let exact = i32::from(a) * i32::from(b);
            if exact == 0 {
                continue;
            }
            let approx = i32::from(drum_reference(a, b, k));
            let rel = (exact - approx).abs() as f64 / exact.unsigned_abs() as f64;
            assert!(rel < 0.15, "rel {rel} for {a}*{b}");
        }
    }
}
