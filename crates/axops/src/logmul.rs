//! Mitchell's logarithmic multiplier (8-bit signed).
//!
//! The operands are converted to sign-magnitude form; each magnitude `A`
//! is approximated as `2^k (1 + q/128)` where `k` is the leading-one
//! position and `q` the mantissa left-aligned to 7 bits. The logarithms
//! are added and the antilogarithm is taken with the same linear
//! interpolation, yielding the classic ≤ ~11 % underestimating error
//! profile of Mitchell multipliers.

use crate::common::{abs_bus, apply_sign_zero};
use clapped_netlist::bus::{self};
use clapped_netlist::Netlist;

/// Builds the Mitchell multiplier netlist (interface `a[8], b[8] -> p[16]`).
pub(crate) fn build_mitchell() -> Netlist {
    let mut n = Netlist::new("mul8s_log_net");
    let a = n.input_bus("a", 8);
    let b = n.input_bus("b", 8);

    let (mag_a, sa) = abs_bus(&mut n, &a);
    let (mag_b, sb) = abs_bus(&mut n, &b);

    // Leading-one detection and 3-bit characteristic for each magnitude.
    let (oh_a, nz_a) = bus::leading_one_detect(&mut n, &mag_a);
    let (oh_b, nz_b) = bus::leading_one_detect(&mut n, &mag_b);
    let k_a = bus::encode_one_hot(&mut n, &oh_a);
    let k_b = bus::encode_one_hot(&mut n, &oh_b);

    // Mantissa: q = (A << (7 - k)) & 0x7F. For 3-bit k, 7 - k = !k.
    let mantissa = |n: &mut Netlist, mag: &[clapped_netlist::SignalId], k: &[clapped_netlist::SignalId]| {
        let shamt: Vec<_> = k.iter().map(|&s| n.not(s)).collect();
        let shifted = bus::barrel_shift_left(n, mag, &shamt);
        shifted[..7].to_vec()
    };
    let q_a = mantissa(&mut n, &mag_a, &k_a);
    let q_b = mantissa(&mut n, &mag_b, &k_b);

    // Log approximations L = {k, q} in Q7; sum them.
    let mut l_a = q_a;
    l_a.extend(k_a.iter().copied());
    let mut l_b = q_b;
    l_b.extend(k_b.iter().copied());
    let (s, cout) = bus::ripple_carry_add(&mut n, &l_a, &l_b, None);

    // Antilog: magnitude = (128 + frac) << ks >> 7.
    let frac = &s[..7];
    let mut ks = s[7..10].to_vec();
    ks.push(cout);
    let one = n.constant(true);
    let mut m = frac.to_vec();
    m.push(one);
    let m_ext = bus::zero_extend(&mut n, &m, 23);
    let shifted = bus::barrel_shift_left(&mut n, &m_ext, &ks);
    let p_mag = shifted[7..23].to_vec();

    let nz = n.and(nz_a, nz_b);
    let sign = n.xor(sa, sb);
    let p = apply_sign_zero(&mut n, &p_mag, sign, nz);
    n.output_bus("p", &p);
    n
}

/// Behavioural reference model of the Mitchell multiplier, used as an
/// independent oracle in tests.
pub fn mitchell_reference(a: i8, b: i8) -> i16 {
    if a == 0 || b == 0 {
        return 0;
    }
    let sign = (a < 0) ^ (b < 0);
    let ma = (a as i32).unsigned_abs();
    let mb = (b as i32).unsigned_abs();
    let ka = 31 - ma.leading_zeros();
    let kb = 31 - mb.leading_zeros();
    let qa = (ma << (7 - ka)) & 0x7F;
    let qb = (mb << (7 - kb)) & 0x7F;
    let s = (ka << 7) + qa + (kb << 7) + qb;
    let ks = s >> 7;
    let frac = s & 0x7F;
    let mag = ((128 + frac) << ks) >> 7;
    let v = if sign { -(mag as i64) } else { mag as i64 };
    v as i16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{build_mul_table, exhaustive_pairs};

    #[test]
    fn netlist_matches_reference_exhaustively() {
        let table = build_mul_table(&build_mitchell());
        for (a, b) in exhaustive_pairs() {
            let idx = ((a as u8 as usize) << 8) | (b as u8 as usize);
            assert_eq!(table[idx], mitchell_reference(a, b), "{a}*{b}");
        }
    }

    #[test]
    fn powers_of_two_are_exact() {
        for &a in &[1i8, 2, 4, 8, 16, 32, 64, -1, -2, -64] {
            for &b in &[1i8, 2, 4, 8, 32, -4, -16] {
                assert_eq!(
                    mitchell_reference(a, b),
                    a as i16 * b as i16,
                    "{a}*{b} should be exact for powers of two"
                );
            }
        }
    }

    #[test]
    fn mitchell_underestimates_magnitude() {
        for (a, b) in exhaustive_pairs().step_by(13) {
            let approx = i32::from(mitchell_reference(a, b));
            let exact = i32::from(a) * i32::from(b);
            assert!(
                approx.unsigned_abs() <= exact.unsigned_abs(),
                "|approx| {approx} > |exact| {exact} for {a}*{b}"
            );
            // Classic Mitchell bound: relative error below ~11.2 %.
            if exact != 0 {
                let rel = (exact - approx).abs() as f64 / exact.unsigned_abs() as f64;
                assert!(rel <= 0.12, "relative error {rel} for {a}*{b}");
            }
        }
    }

    #[test]
    fn zero_inputs_give_zero() {
        for v in [-128i8, -1, 0, 1, 127] {
            assert_eq!(mitchell_reference(0, v), 0);
            assert_eq!(mitchell_reference(v, 0), 0);
        }
    }
}
