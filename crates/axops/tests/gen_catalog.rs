//! Property tests for the generative catalog: every generated
//! configuration lints clean, behaves exactly like its exhaustive
//! table, deduplicates soundly by behaviour digest, and rebuilds warm
//! without recomputing a single table.

use clapped_axops::{
    build_mul_table, gen_cache_in_memory, table_digest, ComposedSpec, GenSpace,
    GenerativeCatalog, MulArch,
};
use clapped_exec::Engine;
use clapped_netlist::lint_netlist;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Tables are expensive (exhaustive 65 536-pair simulation); cache them
/// across proptest cases keyed by spec.
fn cached_table(spec: ComposedSpec) -> Arc<Vec<i16>> {
    static CACHE: Mutex<Option<HashMap<String, Arc<Vec<i16>>>>> = Mutex::new(None);
    let key = spec.name();
    let mut guard = CACHE.lock().expect("cache lock");
    let map = guard.get_or_insert_with(HashMap::new);
    map.entry(key)
        .or_insert_with(|| Arc::new(build_mul_table(&MulArch::Composed(spec).build_netlist())))
        .clone()
}

/// Decodes six independently-drawn axis values into an in-range spec
/// (the vendored proptest has no tuple/`prop_map` strategies).
fn spec_of(trunc: u8, vbl: u8, hbl: u8, cmp_lo: u8, cmp: u8, loa: u8) -> ComposedSpec {
    ComposedSpec { trunc, vbl, hbl, cmp_lo, cmp, loa }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every in-range composed spec builds a structurally clean
    /// netlist: no cycles, no dangling fanins, no error-severity
    /// findings.
    #[test]
    fn generated_netlists_lint_clean(
        trunc in 0u8..=8, vbl in 0u8..=16, hbl in 0u8..=8,
        cmp_lo in 0u8..=16, cmp in 0u8..=16, loa in 0u8..=16,
    ) {
        let spec = spec_of(trunc, vbl, hbl, cmp_lo, cmp, loa);
        let netlist = MulArch::Composed(spec).build_netlist();
        let report = lint_netlist(&netlist);
        prop_assert!(
            report.is_clean(),
            "{} lints dirty: {:?}",
            spec.name(),
            report.findings
        );
    }

    /// The exhaustive behavioural table agrees with gate-level
    /// simulation of the same netlist at arbitrary inputs — the
    /// "software model ≡ hardware" invariant, extended to the whole
    /// generative space.
    #[test]
    fn table_matches_netlist_simulation(
        trunc in 0u8..=6, vbl in 0u8..=10, hbl in 0u8..=4,
        cmp_lo in 0u8..=10, cmp in 0u8..=14, loa in 0u8..=10,
        a: i8, b: i8,
    ) {
        let spec = spec_of(trunc, vbl, hbl, cmp_lo, cmp, loa);
        let table = cached_table(spec);
        let idx = ((a as u8 as usize) << 8) | (b as u8 as usize);
        let sim = MulArch::Composed(spec)
            .build_netlist()
            .simulate_binary_op(8, 8, &[(i64::from(a), i64::from(b))], true)
            .expect("simulates");
        prop_assert_eq!(sim[0] as i16, table[idx], "{} at {}x{}", spec.name(), a, b);
    }

    /// Dedup soundness: two specs share a behaviour digest **iff** their
    /// exhaustive tables are identical. (FNV-1a could collide in
    /// principle; this hunts for collisions across the spec space where
    /// a collision would silently merge distinct operators.)
    #[test]
    fn equal_digest_iff_equal_table(
        ta_ in 0u8..=6, va in 0u8..=10, ha in 0u8..=4, ca_lo in 0u8..=10,
        ca in 0u8..=14, la in 0u8..=10,
        tb_ in 0u8..=6, vb in 0u8..=10, hb in 0u8..=4, cb_lo in 0u8..=10,
        cb in 0u8..=14, lb in 0u8..=10,
    ) {
        let sa = spec_of(ta_, va, ha, ca_lo, ca, la);
        let sb = spec_of(tb_, vb, hb, cb_lo, cb, lb);
        let ta = cached_table(sa);
        let tb = cached_table(sb);
        let (da, db) = (table_digest(&ta), table_digest(&tb));
        prop_assert_eq!(
            da == db,
            ta == tb,
            "digest/table disagreement between {} and {}",
            sa.name(),
            sb.name()
        );
    }

    /// A warm rebuild over any sub-grid replays every record from the
    /// cache: zero tables simulated, bit-identical entries, at any
    /// engine width.
    #[test]
    fn warm_rebuild_recomputes_zero_tables(
        vbl_mask in 1u8..16,
        hbl_mask in 1u8..4,
        loa_mask in 1u8..4,
        jobs in 1usize..=4,
    ) {
        // Non-zero bitmasks select non-empty axis subsets.
        let pick = |mask: u8, options: &[u8]| -> Vec<u8> {
            options
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask & (1 << i) != 0)
                .map(|(_, &v)| v)
                .collect()
        };
        let vbl = pick(vbl_mask, &[0, 2, 5, 8]);
        let hbl = pick(hbl_mask, &[0, 2]);
        let loa = pick(loa_mask, &[0, 6]);
        let space = GenSpace::with_grids(&[0], &vbl, &hbl, &[(0, 0), (3, 7)], &loa, false);
        let cache = gen_cache_in_memory(space.len() + 1);
        let cold = GenerativeCatalog::build(&space, &Engine::serial(), &cache);
        prop_assert!(cold.stats().tables_built > 0);
        let engine = Engine::new(clapped_exec::ExecConfig::with_jobs(jobs));
        let warm = GenerativeCatalog::build(&space, &engine, &cache);
        prop_assert_eq!(warm.stats().tables_built, 0, "warm build must replay the cache");
        prop_assert_eq!(warm.len(), cold.len());
        for (a, b) in cold.iter().zip(warm.iter()) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.behaviour_digest, b.behaviour_digest);
            prop_assert_eq!(&a.features, &b.features);
        }
    }
}
