//! Wide-word equivalence over the whole operator catalog: for every
//! standard multiplier netlist, `simulate_blocks::<W>` must be
//! bit-identical to lane-by-lane `simulate_words` for
//! W ∈ {1, 2, 4, 8, 16} (partial final blocks included), and the wide
//! exhaustive table builder must reproduce the 64-lane reference table
//! exactly.

use clapped_axops::{build_mul_table, build_mul_table_ref64, Catalog, Mul8s};
use clapped_netlist::Netlist;

/// Deterministic xorshift stimulus — no RNG crates in test inputs.
struct Stim(u64);

impl Stim {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn assert_blocks_match_words<const W: usize>(n: &Netlist, name: &str, stim: &mut Stim) {
    let n_inputs = n.inputs().len();
    // One partial and one full block per width.
    for batches in [1, W] {
        let word_batches: Vec<Vec<u64>> =
            (0..batches).map(|_| (0..n_inputs).map(|_| stim.next()).collect()).collect();
        let blocks: Vec<[u64; W]> = (0..n_inputs)
            .map(|k| {
                let mut block = [0u64; W];
                for (w, batch) in word_batches.iter().enumerate() {
                    block[w] = batch[k];
                }
                block
            })
            .collect();
        let wide = n.simulate_blocks::<W>(&blocks).expect("wide simulates");
        for (w, batch) in word_batches.iter().enumerate() {
            let narrow = n.simulate_words(batch).expect("narrow simulates");
            for (k, out) in wide.iter().enumerate() {
                assert_eq!(out[w], narrow[k], "{name}: W={W} word={w} output={k}");
            }
        }
    }
}

#[test]
fn catalog_wide_blocks_match_words_for_all_widths() {
    let cat = Catalog::standard();
    assert!(cat.len() >= 24, "standard catalog shrank unexpectedly");
    let mut stim = Stim(0x9E3779B97F4A7C15);
    for m in cat.iter() {
        let name = Mul8s::name(&**m).to_string();
        let n = m.netlist();
        assert_blocks_match_words::<1>(n, &name, &mut stim);
        assert_blocks_match_words::<2>(n, &name, &mut stim);
        assert_blocks_match_words::<4>(n, &name, &mut stim);
        // The production widths: campaigns and streamsim run W = 8,
        // table derivation runs W = 16.
        assert_blocks_match_words::<8>(n, &name, &mut stim);
        assert_blocks_match_words::<16>(n, &name, &mut stim);
    }
}

#[test]
fn catalog_wide_tables_match_ref64_tables() {
    let cat = Catalog::standard();
    for m in cat.iter() {
        let name = Mul8s::name(&**m).to_string();
        let n = m.netlist();
        assert_eq!(
            build_mul_table(n),
            build_mul_table_ref64(n),
            "{name}: wide table diverges from 64-lane reference"
        );
    }
}
