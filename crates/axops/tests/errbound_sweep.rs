//! Catalog-wide error-bound soundness sweeps: every generated operator's
//! statically proved worst-case error must dominate the maximum error
//! observed in its exhaustive behavioural table. The quick-space sweep
//! runs on every `cargo test`; the full standard space (1000+ distinct
//! operators) is minutes-scale and gated behind `--ignored`.

use clapped_axops::{
    build_mul_table, gen_cache_in_memory, GenSpace, GenerativeCatalog, MulArch,
};
use clapped_exec::{Engine, ExecConfig};
use clapped_netlist::{analyze_error_bounds, ErrBoundConfig};

/// Max |table entry − a·b| and the number of erring input pairs.
fn observed_table_error(table: &[i16]) -> (u64, u64) {
    let mut max_abs = 0u64;
    let mut mismatches = 0u64;
    for (idx, &got) in table.iter().enumerate() {
        let a = (idx >> 8) as u8 as i8;
        let b = (idx & 0xff) as u8 as i8;
        let err = i64::from(i32::from(got) - i32::from(a) * i32::from(b)).unsigned_abs();
        if err > 0 {
            mismatches += 1;
            max_abs = max_abs.max(err);
        }
    }
    (max_abs, mismatches)
}

fn sweep(space: &GenSpace, jobs: usize) {
    let engine = Engine::new(ExecConfig::with_jobs(jobs));
    let cache = gen_cache_in_memory(space.len() + 1);
    let cat = GenerativeCatalog::build(space, &engine, &cache);
    assert!(!cat.is_empty());
    let reference = MulArch::Exact.build_netlist();
    let cfg = ErrBoundConfig { bdd_node_limit: 0, signed_outputs: true };
    let mut proved_equal = 0usize;
    for entry in cat.iter() {
        // Recompute both sides independently of the features the build
        // embedded — the sweep cross-checks the analyzer itself, not the
        // catalog plumbing.
        let netlist = entry.arch.build_netlist();
        let table = build_mul_table(&netlist);
        let (observed_max, mismatches) = observed_table_error(&table);
        let bounds = analyze_error_bounds(&netlist, &reference, &cfg)
            .unwrap_or_else(|e| panic!("{}: analysis failed: {e}", entry.name));
        assert!(
            bounds.proved_wce >= observed_max,
            "{}: proved WCE {} < observed {} — unsound bound",
            entry.name,
            bounds.proved_wce,
            observed_max
        );
        if bounds.proved_equal() {
            assert_eq!(mismatches, 0, "{}: proved equal but the table errs", entry.name);
            proved_equal += 1;
        }
        // The features recorded at build time agree with a fresh run.
        assert_eq!(entry.features.proved_wce, bounds.best_wce() as f64, "{}", entry.name);
        assert_eq!(entry.features.proved_error_rate, bounds.proved_error_rate(), "{}", entry.name);
    }
    // The interval pass must prove at least the exact-behaviour entry
    // equal through congruence alone.
    assert!(proved_equal >= 1, "no entry proved equal");
}

#[test]
fn quick_space_bounds_are_sound() {
    sweep(&GenSpace::quick(), 4);
}

#[test]
#[ignore = "minutes-scale: sweeps every distinct operator of the full standard space"]
fn standard_space_bounds_are_sound() {
    sweep(&GenSpace::standard(), 0);
}
