//! Property tests for the operator library: tables equal netlists,
//! references agree, and approximation parameters order error
//! monotonically.

use clapped_axops::{
    booth_reference, drum_reference, mitchell_reference, AxMul, Mul8s, MulArch,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Mutex;

/// Operator instantiation is expensive (netlist + exhaustive table);
/// cache instances across proptest cases.
fn cached(arch: MulArch) -> std::sync::Arc<AxMul> {
    static CACHE: Mutex<Option<HashMap<String, std::sync::Arc<AxMul>>>> = Mutex::new(None);
    let key = format!("{arch:?}");
    let mut guard = CACHE.lock().expect("cache lock");
    let map = guard.get_or_insert_with(HashMap::new);
    map.entry(key)
        .or_insert_with(|| std::sync::Arc::new(AxMul::new("prop", arch)))
        .clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every architecture's table agrees with simulating its netlist.
    #[test]
    fn table_equals_netlist(a: i8, b: i8, arch_pick in 0usize..8) {
        let arch = [
            MulArch::Exact,
            MulArch::Truncated { k: 3 },
            MulArch::BrokenArray { vbl: 5, hbl: 2 },
            MulArch::ApproxCompressor { cols: 6 },
            MulArch::LoaFinal { k: 6 },
            MulArch::Mitchell,
            MulArch::Drum { k: 4 },
            MulArch::Booth { trunc: 2 },
        ][arch_pick];
        let m = cached(arch);
        let sim = m
            .netlist()
            .simulate_binary_op(8, 8, &[(i64::from(a), i64::from(b))], true)
            .expect("simulates");
        prop_assert_eq!(sim[0] as i16, m.mul(a, b), "{:?} at {}x{}", arch, a, b);
    }

    /// Behavioural reference oracles agree with the instantiated
    /// operators.
    #[test]
    fn references_agree(a: i8, b: i8) {
        prop_assert_eq!(cached(MulArch::Mitchell).mul(a, b), mitchell_reference(a, b));
        prop_assert_eq!(cached(MulArch::Drum { k: 4 }).mul(a, b), drum_reference(a, b, 4));
        prop_assert_eq!(cached(MulArch::Booth { trunc: 0 }).mul(a, b), booth_reference(a, b));
    }

    /// Zero annihilates for every architecture that defines it to
    /// (sign-magnitude families; array families with zero operand give
    /// only correction-constant residue bounded by the dropped columns).
    #[test]
    fn zero_operand_behaviour(v: i8) {
        for arch in [MulArch::Mitchell, MulArch::Drum { k: 5 }] {
            let m = cached(arch);
            prop_assert_eq!(m.mul(0, v), 0, "{:?}", arch);
            prop_assert_eq!(m.mul(v, 0), 0, "{:?}", arch);
        }
        prop_assert_eq!(cached(MulArch::Exact).mul(0, v), 0);
    }

    /// Truncation error is bounded by the dropped column mass.
    #[test]
    fn truncation_error_is_pointwise_monotone(a: i8, b: i8) {
        let exact = i32::from(a) * i32::from(b);
        // Truncation zeroes progressively more low bits: the dropped
        // value is exact mod 2^k, so |err_k| <= |err_{k+2}| + 2^k bound;
        // check the simple aggregate property instead: err_k is exactly
        // exact mod 2^k rounded down (non-positive for positive products).
        let m2 = cached(MulArch::Truncated { k: 2 });
        let m5 = cached(MulArch::Truncated { k: 5 });
        let e2 = (i32::from(m2.mul(a, b)) - exact).unsigned_abs();
        let e5 = (i32::from(m5.mul(a, b)) - exact).unsigned_abs();
        // Dropping columns < k removes at most (c+2) entries of weight
        // 2^c per column (array row + corrections): bound (k+2)·2^k.
        prop_assert!(e2 <= (2 + 2) << 2, "tr2 err {} at {}x{}", e2, a, b);
        prop_assert!(e5 <= (5 + 2) << 5, "tr5 err {} at {}x{}", e5, a, b);
    }

    /// Booth truncation error is bounded by the dropped columns.
    #[test]
    fn booth_truncation_error_bounded(a: i8, b: i8) {
        let exact = i32::from(a) * i32::from(b);
        let m = cached(MulArch::Booth { trunc: 3 });
        let err = (i32::from(m.mul(a, b)) - exact).abs();
        // At most 5 dropped rows of weight < 2^3 each.
        prop_assert!(err <= 5 * 8, "err {} at {}x{}", err, a, b);
    }
}
