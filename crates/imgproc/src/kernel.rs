//! Quantized Gaussian convolution kernels.

/// A Gaussian kernel quantized to signed 8-bit weights with a
/// power-of-two scale.
///
/// The 2D weights satisfy `sum(coeffs) ≈ 2^shift`, so normalizing a
/// convolution sum is a right shift — matching the fixed-point HLS
/// implementation the paper characterizes. Separable 1D factors are kept
/// for the 1DH→1DV convolution mode.
///
/// # Examples
///
/// ```
/// use clapped_imgproc::QuantKernel;
///
/// let k = QuantKernel::gaussian(3, 0.85);
/// assert_eq!(k.window(), 3);
/// assert_eq!(k.coeffs_2d().len(), 9);
/// // Weights sum close to 2^shift.
/// let sum: i32 = k.coeffs_2d().iter().map(|&c| i32::from(c)).sum();
/// assert!((sum - (1 << k.shift())).abs() <= 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantKernel {
    window: usize,
    coeffs_2d: Vec<i8>,
    coeffs_1d: Vec<i8>,
    shift: u32,
    shift_1d: u32,
}

impl QuantKernel {
    /// Builds a `window × window` Gaussian kernel with standard deviation
    /// `sigma`, quantized to i8.
    ///
    /// # Panics
    ///
    /// Panics if `window` is even, zero, or larger than 9, or if `sigma`
    /// is not positive.
    pub fn gaussian(window: usize, sigma: f64) -> QuantKernel {
        assert!(window % 2 == 1 && window > 0 && window <= 9, "window must be odd, 1..=9");
        assert!(sigma > 0.0, "sigma must be positive");
        let half = (window / 2) as isize;
        let g1: Vec<f64> = (-half..=half)
            .map(|d| (-(d * d) as f64 / (2.0 * sigma * sigma)).exp())
            .collect();
        let norm1: f64 = g1.iter().sum();
        let g1: Vec<f64> = g1.iter().map(|v| v / norm1).collect();

        // 1D quantization: max weight is the centre; pick the largest
        // shift keeping every weight <= 127.
        let max1 = g1.iter().cloned().fold(0.0f64, f64::max);
        let shift_1d = (0..8)
            .rev()
            .find(|&s| max1 * f64::from(1u32 << s) <= 127.0)
            .unwrap_or(0);
        let coeffs_1d: Vec<i8> = g1
            .iter()
            .map(|&v| (v * f64::from(1u32 << shift_1d)).round() as i8)
            .collect();

        // 2D kernel from the outer product of the *real* 1D Gaussian.
        let g2: Vec<f64> = (0..window * window)
            .map(|i| g1[i / window] * g1[i % window])
            .collect();
        let max2 = g2.iter().cloned().fold(0.0f64, f64::max);
        let shift = (0..14)
            .rev()
            .find(|&s| max2 * f64::from(1u32 << s) <= 127.0)
            .unwrap_or(0);
        let coeffs_2d: Vec<i8> = g2
            .iter()
            .map(|&v| (v * f64::from(1u32 << shift)).round() as i8)
            .collect();

        QuantKernel {
            window,
            coeffs_2d,
            coeffs_1d,
            shift,
            shift_1d,
        }
    }

    /// Builds a kernel from explicit signed 2D weights and a
    /// normalization shift (for non-Gaussian filters such as Sobel).
    /// The separable factors are left empty: such kernels only support
    /// 2D-mode convolution.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != window²`, `window` is even or zero, or
    /// `shift > 14`.
    pub fn from_coeffs(window: usize, coeffs: &[i8], shift: u32) -> QuantKernel {
        assert!(window % 2 == 1 && window > 0 && window <= 9, "window must be odd, 1..=9");
        assert_eq!(coeffs.len(), window * window, "one weight per tap");
        assert!(shift <= 14, "shift out of range");
        QuantKernel {
            window,
            coeffs_2d: coeffs.to_vec(),
            coeffs_1d: Vec::new(),
            shift,
            shift_1d: 0,
        }
    }

    /// True when the kernel carries separable 1D factors (Gaussian
    /// kernels do; explicit-coefficient kernels do not).
    pub fn is_separable(&self) -> bool {
        !self.coeffs_1d.is_empty()
    }

    /// Window size (odd).
    pub fn window(&self) -> usize {
        self.window
    }

    /// Row-major 2D weights (`window²` entries).
    pub fn coeffs_2d(&self) -> &[i8] {
        &self.coeffs_2d
    }

    /// 1D factor weights (`window` entries) for separable convolution.
    pub fn coeffs_1d(&self) -> &[i8] {
        &self.coeffs_1d
    }

    /// Normalization shift of the 2D weights.
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// Normalization shift of the 1D weights (applied per pass).
    pub fn shift_1d(&self) -> u32 {
        self.shift_1d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_is_symmetric_and_centre_heavy() {
        let k = QuantKernel::gaussian(3, 0.85);
        let c = k.coeffs_2d();
        assert_eq!(c[0], c[2]);
        assert_eq!(c[0], c[6]);
        assert_eq!(c[0], c[8]);
        assert_eq!(c[1], c[3]);
        assert!(c[4] > c[1], "centre must dominate");
        assert!(c[1] > c[0], "edge must dominate corner");
    }

    #[test]
    fn weights_fit_i8_and_sum_to_shift() {
        for (w, sigma) in [(3usize, 0.6), (3, 1.0), (5, 1.2), (7, 1.8)] {
            let k = QuantKernel::gaussian(w, sigma);
            assert!(k.coeffs_2d().iter().all(|&c| c >= 0));
            let sum: i32 = k.coeffs_2d().iter().map(|&c| i32::from(c)).sum();
            let target = 1i32 << k.shift();
            assert!(
                (sum - target).abs() <= target / 8 + w as i32,
                "window {w}: sum {sum} vs 2^{}", k.shift()
            );
            let sum1: i32 = k.coeffs_1d().iter().map(|&c| i32::from(c)).sum();
            let target1 = 1i32 << k.shift_1d();
            assert!((sum1 - target1).abs() <= target1 / 8 + w as i32);
        }
    }

    #[test]
    fn wider_sigma_flattens_kernel() {
        let sharp = QuantKernel::gaussian(3, 0.5);
        let flat = QuantKernel::gaussian(3, 2.0);
        let ratio = |k: &QuantKernel| f64::from(k.coeffs_2d()[4]) / f64::from(k.coeffs_2d()[0].max(1));
        assert!(ratio(&sharp) > ratio(&flat));
    }

    #[test]
    #[should_panic(expected = "window must be odd")]
    fn even_window_rejected() {
        let _ = QuantKernel::gaussian(4, 1.0);
    }

    #[test]
    fn explicit_coefficient_kernels() {
        let coeffs: Vec<i8> = vec![-1, 0, 1, -2, 0, 2, -1, 0, 1];
        let k = QuantKernel::from_coeffs(3, &coeffs, 0);
        assert_eq!(k.coeffs_2d(), coeffs.as_slice());
        assert!(!k.is_separable());
        assert!(QuantKernel::gaussian(3, 1.0).is_separable());
    }

    #[test]
    #[should_panic(expected = "one weight per tap")]
    fn wrong_coefficient_count_rejected() {
        let _ = QuantKernel::from_coeffs(3, &[1, 2, 3], 0);
    }
}
