//! The cross-layer DoF-aware convolution engine.
//!
//! Execution is **plan-compiled**: [`ConvEngine::convolve`] lowers each
//! tap's `(operator, coefficient)` pair into a 128-entry column LUT
//! (see [`crate::plan`]) and runs an interior/border split — interior
//! rows take a clamp-free sliding loop over flat row slices, only the
//! `window/2` border ring pays clamped access. The historical
//! per-pixel virtual-dispatch path is kept as
//! [`ConvEngine::convolve_naive`], the bit-identical reference the
//! property tests and benchmarks compare against.

use crate::plan::ConvPlan;
use crate::{ConvError, Image, QuantKernel, RawBuf, Result};
use clapped_axops::Mul8s;
use std::sync::Arc;

/// Convolution mode: full 2D window or separable 1D-horizontal followed
/// by 1D-vertical passes (the paper's SOFTWARE "Mode" DoF).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ConvMode {
    /// One 2D sliding window, `window²` multiplications per pixel.
    #[default]
    TwoD,
    /// 1DH → 1DV separable filtering, `2·window` multiplications per
    /// pixel.
    Separable,
}

/// A cross-layer configuration of the convolution application.
///
/// # Examples
///
/// ```
/// use clapped_imgproc::{ConvConfig, ConvMode};
///
/// let config = ConvConfig { stride: 2, downsample: true, ..ConvConfig::default() };
/// assert_eq!(config.window, 3);
/// assert_eq!(config.mode, ConvMode::TwoD);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvConfig {
    /// Window size (odd; must match the engine's kernel).
    pub window: usize,
    /// Sliding stride (`1..=4`).
    pub stride: usize,
    /// With `stride > 1`: shrink the output (`true`) or keep the input
    /// size by replicating the last computed pixel (`false`).
    pub downsample: bool,
    /// 2D or separable mode.
    pub mode: ConvMode,
    /// Input (DATA) scaling factor (`1..=4`): the input is average-pooled
    /// by this factor before filtering.
    pub scale: usize,
}

impl Default for ConvConfig {
    fn default() -> Self {
        ConvConfig {
            window: 3,
            stride: 1,
            downsample: false,
            mode: ConvMode::TwoD,
            scale: 1,
        }
    }
}

impl ConvConfig {
    /// Number of tap multipliers this configuration consumes:
    /// `window²` for 2D, `2·window` for separable.
    pub fn taps(&self) -> usize {
        match self.mode {
            ConvMode::TwoD => self.window * self.window,
            ConvMode::Separable => 2 * self.window,
        }
    }

    /// Total size-reduction factor of the output relative to the input
    /// (`scale`, times `stride` when downsampling).
    pub fn reduction_factor(&self) -> usize {
        self.scale * if self.downsample { self.stride } else { 1 }
    }

    fn validate(&self, kernel_window: usize) -> Result<()> {
        if self.window != kernel_window {
            return Err(ConvError::BadConfig {
                reason: format!(
                    "config window {} does not match kernel window {kernel_window}",
                    self.window
                ),
            });
        }
        if !(1..=4).contains(&self.stride) {
            return Err(ConvError::BadConfig {
                reason: format!("stride {} out of 1..=4", self.stride),
            });
        }
        if !(1..=4).contains(&self.scale) {
            return Err(ConvError::BadConfig {
                reason: format!("scale {} out of 1..=4", self.scale),
            });
        }
        Ok(())
    }
}

/// Tap-multiplier assignment: one operator per multiplication site.
pub type TapMuls = [Arc<dyn Mul8s>];

/// The convolution engine: a quantized kernel plus the execution logic
/// for every configuration of the cross-layer DoFs.
#[derive(Debug, Clone)]
pub struct ConvEngine {
    kernel: QuantKernel,
}

impl ConvEngine {
    /// Creates an engine over a quantized kernel.
    pub fn new(kernel: QuantKernel) -> ConvEngine {
        ConvEngine { kernel }
    }

    /// The engine's kernel.
    pub fn kernel(&self) -> &QuantKernel {
        &self.kernel
    }

    /// Runs the configured convolution with the given per-tap
    /// multipliers, through a compiled plan (LUT-lowered taps with an
    /// interior/border split — see [`crate::plan`]).
    ///
    /// The output's natural size is the input size divided by
    /// [`ConvConfig::reduction_factor`]; use [`Image::upscale_to`] to
    /// compare against full-size references. Results are bit-identical
    /// to [`ConvEngine::convolve_naive`].
    ///
    /// # Errors
    ///
    /// Returns [`ConvError::BadConfig`] for invalid configurations and
    /// [`ConvError::BadAssignment`] when `muls.len() != config.taps()`.
    pub fn convolve(
        &self,
        image: &Image,
        config: &ConvConfig,
        muls: &TapMuls,
    ) -> Result<Image> {
        self.check(config, muls)?;
        let work = image.downscale(config.scale);
        let out = match config.mode {
            ConvMode::TwoD => {
                let plan = ConvPlan::compile(
                    self.kernel.window(),
                    self.kernel.coeffs_2d(),
                    self.kernel.shift(),
                    muls,
                );
                let (gw, gh, accs) = plan.run_2d(&work, config.stride);
                let grid: Vec<u8> = accs.iter().map(|&a| requant(a)).collect();
                finish_grid(grid, gw, gh, &work, config, true, true)
            }
            ConvMode::Separable => {
                self.check_separable()?;
                let w = self.kernel.window();
                let plan = ConvPlan::compile(
                    w,
                    self.kernel.coeffs_1d(),
                    self.kernel.shift_1d(),
                    &muls[..w],
                );
                let (gw, gh, accs) = plan.run_1d(&work, config.stride, true);
                let grid: Vec<u8> = accs.iter().map(|&a| requant(a)).collect();
                let h = finish_grid(grid, gw, gh, &work, config, true, false);
                let plan = ConvPlan::compile(
                    w,
                    self.kernel.coeffs_1d(),
                    self.kernel.shift_1d(),
                    &muls[w..],
                );
                let (gw, gh, accs) = plan.run_1d(&h, config.stride, false);
                let grid: Vec<u8> = accs.iter().map(|&a| requant(a)).collect();
                finish_grid(grid, gw, gh, &h, config, false, true)
            }
        };
        Ok(out)
    }

    /// The naive reference implementation of [`ConvEngine::convolve`]:
    /// per-pixel virtual `mul` dispatch and clamped access everywhere.
    /// Kept (and property-tested bit-identical to the compiled path)
    /// as the semantics reference and benchmark baseline.
    ///
    /// # Errors
    ///
    /// Same contract as [`ConvEngine::convolve`].
    pub fn convolve_naive(
        &self,
        image: &Image,
        config: &ConvConfig,
        muls: &TapMuls,
    ) -> Result<Image> {
        self.check(config, muls)?;
        let work = image.downscale(config.scale);
        let out = match config.mode {
            ConvMode::TwoD => self.conv2d(&work, config, muls),
            ConvMode::Separable => {
                self.check_separable()?;
                let w = self.kernel.window();
                let h = self.horizontal_pass(&work, config, &muls[..w]);
                self.vertical_pass(&h, config, &muls[w..])
            }
        };
        Ok(out)
    }

    /// Runs a 2D convolution returning the *raw* normalized accumulator
    /// per stride-grid position (no clamping or rescaling), for
    /// applications whose post-processing differs from intensity
    /// clamping (e.g. gradient magnitudes). Scaling/downsampling follow
    /// the same semantics as [`ConvEngine::convolve`]; execution uses
    /// the same compiled plan.
    ///
    /// # Errors
    ///
    /// Rejects separable mode (raw accumulation is 2D only) and invalid
    /// configurations.
    pub fn convolve_raw(
        &self,
        image: &Image,
        config: &ConvConfig,
        muls: &TapMuls,
    ) -> Result<RawBuf> {
        if config.mode != ConvMode::TwoD {
            return Err(ConvError::BadConfig {
                reason: "raw convolution supports 2D mode only".to_string(),
            });
        }
        self.check(config, muls)?;
        let work = image.downscale(config.scale);
        let plan = ConvPlan::compile(
            self.kernel.window(),
            self.kernel.coeffs_2d(),
            self.kernel.shift(),
            muls,
        );
        let (gw, gh, accs) = plan.run_2d(&work, config.stride);
        Ok(RawBuf::from_vec(gw, gh, accs))
    }

    fn check(&self, config: &ConvConfig, muls: &TapMuls) -> Result<()> {
        config.validate(self.kernel.window())?;
        if muls.len() != config.taps() {
            return Err(ConvError::BadAssignment {
                expected: config.taps(),
                found: muls.len(),
            });
        }
        Ok(())
    }

    fn check_separable(&self) -> Result<()> {
        if !self.kernel.is_separable() {
            return Err(ConvError::BadConfig {
                reason: "kernel has no separable factors".to_string(),
            });
        }
        Ok(())
    }

    fn conv2d(&self, img: &Image, config: &ConvConfig, muls: &TapMuls) -> Image {
        let w = self.kernel.window();
        let half = (w / 2) as isize;
        let coeffs = self.kernel.coeffs_2d();
        let shift = self.kernel.shift();
        let compute = |x: usize, y: usize| -> u8 {
            let mut acc: i32 = 0;
            for dy in 0..w {
                for dx in 0..w {
                    let px = quant_pixel(img.get_clamped(
                        x as isize + dx as isize - half,
                        y as isize + dy as isize - half,
                    ));
                    let c = coeffs[dy * w + dx];
                    acc += i32::from(muls[dy * w + dx].mul(px, c));
                }
            }
            dequant_result(acc, shift)
        };
        strided_map(img, config, compute)
    }

    fn horizontal_pass(&self, img: &Image, config: &ConvConfig, muls: &TapMuls) -> Image {
        let w = self.kernel.window();
        let half = (w / 2) as isize;
        let coeffs = self.kernel.coeffs_1d();
        let shift = self.kernel.shift_1d();
        // Horizontal pass strides along x only (the axis flag below).
        strided_map_axis(img, config, true, |x, y| {
            let mut acc: i32 = 0;
            for dx in 0..w {
                let px = quant_pixel(img.get_clamped(x as isize + dx as isize - half, y as isize));
                acc += i32::from(muls[dx].mul(px, coeffs[dx]));
            }
            dequant_result(acc, shift)
        })
    }

    fn vertical_pass(&self, img: &Image, config: &ConvConfig, muls: &TapMuls) -> Image {
        let w = self.kernel.window();
        let half = (w / 2) as isize;
        let coeffs = self.kernel.coeffs_1d();
        let shift = self.kernel.shift_1d();
        strided_map_axis(img, config, false, |x, y| {
            let mut acc: i32 = 0;
            for dy in 0..w {
                let px = quant_pixel(img.get_clamped(x as isize, y as isize + dy as isize - half));
                acc += i32::from(muls[dy].mul(px, coeffs[dy]));
            }
            dequant_result(acc, shift)
        })
    }
}

/// Quantizes an 8-bit pixel into the signed-operand range `0..=127`.
fn quant_pixel(v: u8) -> i8 {
    (v >> 1) as i8
}

/// Normalizes an accumulated product sum and rescales to `0..=255`.
fn dequant_result(acc: i32, shift: u32) -> u8 {
    requant(acc >> shift)
}

/// Rescales an already-normalized accumulator to `0..=255`.
fn requant(v: i32) -> u8 {
    (v.clamp(0, 127) << 1) as u8
}

/// Assembles a computed stride grid into the output image: the grid
/// itself when downsampling, otherwise a zero-order-hold replication
/// back to the source size. `strided_x`/`strided_y` select which axes
/// the grid was strided along (both for 2D, one for separable passes).
fn finish_grid(
    grid: Vec<u8>,
    gw: usize,
    gh: usize,
    src: &Image,
    config: &ConvConfig,
    strided_x: bool,
    strided_y: bool,
) -> Image {
    if config.downsample || config.stride == 1 {
        return Image::from_vec(gw, gh, grid);
    }
    let sx = if strided_x { config.stride } else { 1 };
    let sy = if strided_y { config.stride } else { 1 };
    replicate_grid(&grid, gw, src.width(), src.height(), sx, sy)
}

/// Zero-order-hold replication of a stride grid back to `width ×
/// height`, by row-slice copying: each grid row is column-expanded once
/// into a scratch row, then the scratch row is copied for every output
/// row it covers — no per-pixel `x / s, y / s` divisions.
fn replicate_grid(grid: &[u8], gw: usize, width: usize, height: usize, sx: usize, sy: usize) -> Image {
    let mut data = Vec::with_capacity(width * height);
    let mut expanded = vec![0u8; width];
    let gh = grid.len() / gw;
    for gy in 0..gh {
        let row = &grid[gy * gw..(gy + 1) * gw];
        if sx == 1 {
            expanded.copy_from_slice(row);
        } else {
            for (x, e) in expanded.iter_mut().enumerate() {
                *e = row[x / sx];
            }
        }
        for _ in gy * sy..((gy + 1) * sy).min(height) {
            data.extend_from_slice(&expanded);
        }
    }
    Image::from_vec(width, height, data)
}

/// Applies `compute` on the stride grid in both axes; shrinks the output
/// when downsampling, otherwise replicates (zero-order hold).
fn strided_map(img: &Image, config: &ConvConfig, mut compute: impl FnMut(usize, usize) -> u8) -> Image {
    let s = config.stride;
    let ow = img.width().div_ceil(s);
    let oh = img.height().div_ceil(s);
    let mut grid = Vec::with_capacity(ow * oh);
    for oy in 0..oh {
        for ox in 0..ow {
            grid.push(compute(ox * s, oy * s));
        }
    }
    finish_grid(grid, ow, oh, img, config, true, true)
}

/// Like [`strided_map`] but striding a single axis (`horizontal` = x).
fn strided_map_axis(
    img: &Image,
    config: &ConvConfig,
    horizontal: bool,
    mut compute: impl FnMut(usize, usize) -> u8,
) -> Image {
    let s = config.stride;
    let (sw, sh) = if horizontal { (s, 1) } else { (1, s) };
    let ow = img.width().div_ceil(sw);
    let oh = img.height().div_ceil(sh);
    let mut grid = Vec::with_capacity(ow * oh);
    for oy in 0..oh {
        for ox in 0..ow {
            grid.push(compute(ox * sw, oy * sh));
        }
    }
    finish_grid(grid, ow, oh, img, config, horizontal, !horizontal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthKind;
    use clapped_axops::Catalog;

    fn exact_taps(n: usize) -> Vec<Arc<dyn Mul8s>> {
        let cat = Catalog::standard();
        let exact = cat.get("mul8s_exact").unwrap();
        (0..n).map(|_| exact.clone() as Arc<dyn Mul8s>).collect()
    }

    fn engine3() -> ConvEngine {
        ConvEngine::new(QuantKernel::gaussian(3, 0.85))
    }

    #[test]
    fn flat_image_stays_flat() {
        let img = Image::filled(16, 16, 128);
        let out = engine3()
            .convolve(&img, &ConvConfig::default(), &exact_taps(9))
            .unwrap();
        // A normalized kernel on a flat image must approximately preserve
        // the level (quantization costs a couple of LSBs).
        for &v in out.as_slice() {
            assert!((f64::from(v) - 128.0).abs() <= 6.0, "{v}");
        }
    }

    #[test]
    fn smoothing_reduces_high_frequency_energy() {
        let img = Image::synthetic(SynthKind::Checkerboard, 32, 32, 0);
        let out = engine3()
            .convolve(&img, &ConvConfig::default(), &exact_taps(9))
            .unwrap();
        let variance = |im: &Image| {
            let m = im.mean();
            im.as_slice()
                .iter()
                .map(|&v| (f64::from(v) - m) * (f64::from(v) - m))
                .sum::<f64>()
                / im.as_slice().len() as f64
        };
        assert!(variance(&out) < variance(&img));
    }

    #[test]
    fn downsampling_shrinks_output() {
        let img = Image::filled(16, 16, 100);
        let cfg = ConvConfig {
            stride: 2,
            downsample: true,
            ..ConvConfig::default()
        };
        let out = engine3().convolve(&img, &cfg, &exact_taps(9)).unwrap();
        assert_eq!(out.width(), 8);
        assert_eq!(out.height(), 8);
    }

    #[test]
    fn stride_without_downsampling_keeps_size() {
        let img = Image::synthetic(SynthKind::Gradient, 16, 16, 0);
        let cfg = ConvConfig {
            stride: 2,
            downsample: false,
            ..ConvConfig::default()
        };
        let out = engine3().convolve(&img, &cfg, &exact_taps(9)).unwrap();
        assert_eq!(out.width(), 16);
        assert_eq!(out.height(), 16);
        // Zero-order hold: neighbours within a stride cell are equal.
        assert_eq!(out.get(0, 0), out.get(1, 1));
    }

    #[test]
    fn separable_approximates_2d_for_gaussian() {
        let img = Image::synthetic(SynthKind::SmoothField, 32, 32, 1);
        let cfg2d = ConvConfig::default();
        let cfg_sep = ConvConfig {
            mode: ConvMode::Separable,
            ..ConvConfig::default()
        };
        let out2d = engine3().convolve(&img, &cfg2d, &exact_taps(9)).unwrap();
        let out_sep = engine3().convolve(&img, &cfg_sep, &exact_taps(6)).unwrap();
        // Gaussian is separable: both outputs must agree within
        // quantization noise.
        let diff = crate::app_error_percent(&out2d, &out_sep);
        assert!(diff < 3.0, "2D vs separable differ by {diff}%");
    }

    #[test]
    fn scale_reduces_work_and_output() {
        let img = Image::synthetic(SynthKind::SmoothField, 32, 32, 2);
        let cfg = ConvConfig {
            scale: 2,
            ..ConvConfig::default()
        };
        let out = engine3().convolve(&img, &cfg, &exact_taps(9)).unwrap();
        assert_eq!(out.width(), 16);
        assert_eq!(cfg.reduction_factor(), 2);
    }

    #[test]
    fn approximate_multipliers_change_output() {
        let img = Image::synthetic(SynthKind::SmoothField, 16, 16, 3);
        let cat = Catalog::standard();
        let rough = cat.get("mul8s_bam_v8_h3").unwrap();
        let taps: Vec<Arc<dyn Mul8s>> = (0..9).map(|_| rough.clone() as Arc<dyn Mul8s>).collect();
        let out_ax = engine3().convolve(&img, &ConvConfig::default(), &taps).unwrap();
        let out_ex = engine3()
            .convolve(&img, &ConvConfig::default(), &exact_taps(9))
            .unwrap();
        assert_ne!(out_ax, out_ex);
    }

    #[test]
    fn compiled_matches_naive_on_representative_configs() {
        // The exhaustive DoF cross lives in tests/prop_conv_plan.rs;
        // this is the in-crate smoke check.
        let img = Image::synthetic(SynthKind::Blobs, 17, 11, 5);
        let engine = engine3();
        for cfg in [
            ConvConfig::default(),
            ConvConfig { stride: 3, downsample: true, ..ConvConfig::default() },
            ConvConfig { stride: 2, scale: 2, ..ConvConfig::default() },
            ConvConfig { mode: ConvMode::Separable, stride: 2, ..ConvConfig::default() },
        ] {
            let taps = exact_taps(cfg.taps());
            let fast = engine.convolve(&img, &cfg, &taps).unwrap();
            let slow = engine.convolve_naive(&img, &cfg, &taps).unwrap();
            assert_eq!(fast, slow, "{cfg:?}");
        }
    }

    #[test]
    fn wrong_tap_count_is_rejected() {
        let img = Image::filled(8, 8, 10);
        let err = engine3()
            .convolve(&img, &ConvConfig::default(), &exact_taps(4))
            .unwrap_err();
        assert!(matches!(err, ConvError::BadAssignment { expected: 9, found: 4 }));
    }

    #[test]
    fn invalid_stride_is_rejected() {
        let img = Image::filled(8, 8, 10);
        let cfg = ConvConfig {
            stride: 9,
            ..ConvConfig::default()
        };
        assert!(matches!(
            engine3().convolve(&img, &cfg, &exact_taps(9)),
            Err(ConvError::BadConfig { .. })
        ));
    }

    #[test]
    fn raw_convolution_matches_clamped_path() {
        let img = Image::synthetic(SynthKind::SmoothField, 12, 12, 4);
        let engine = engine3();
        let cfg = ConvConfig::default();
        let raw = engine.convolve_raw(&img, &cfg, &exact_taps(9)).unwrap();
        let clamped = engine.convolve(&img, &cfg, &exact_taps(9)).unwrap();
        for y in 0..12 {
            for x in 0..12 {
                let want = (raw.get(x, y).clamp(0, 127) << 1) as u8;
                assert_eq!(clamped.get(x, y), want, "at ({x},{y})");
            }
        }
    }

    #[test]
    fn raw_convolution_rejects_separable() {
        let img = Image::filled(8, 8, 10);
        let cfg = ConvConfig {
            mode: ConvMode::Separable,
            ..ConvConfig::default()
        };
        assert!(engine3().convolve_raw(&img, &cfg, &exact_taps(6)).is_err());
    }

    #[test]
    fn separable_mode_rejected_for_explicit_kernels() {
        let k = QuantKernel::from_coeffs(3, &[0, 1, 0, 1, 2, 1, 0, 1, 0], 3);
        let engine = ConvEngine::new(k);
        let img = Image::filled(8, 8, 10);
        let cfg = ConvConfig {
            mode: ConvMode::Separable,
            ..ConvConfig::default()
        };
        assert!(engine.convolve(&img, &cfg, &exact_taps(6)).is_err());
        assert!(engine.convolve_naive(&img, &cfg, &exact_taps(6)).is_err());
    }

    #[test]
    fn taps_counts() {
        assert_eq!(ConvConfig::default().taps(), 9);
        let sep = ConvConfig {
            mode: ConvMode::Separable,
            ..ConvConfig::default()
        };
        assert_eq!(sep.taps(), 6);
        let big = ConvConfig {
            window: 5,
            ..ConvConfig::default()
        };
        assert_eq!(big.taps(), 25);
    }
}
