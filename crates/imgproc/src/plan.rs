//! Compiled convolution plans: LUT lowering of tap operators.
//!
//! The behavioural evaluation loop runs the 2D-convolution model under
//! thousands of cross-layer configurations, and its inner loop used to
//! pay a `dyn Mul8s` virtual call plus a branchy clamped pixel access
//! per tap of every pixel. A [`ConvPlan`] removes both costs at
//! `convolve()` time:
//!
//! - **LUT lowering**: quantized pixels span `0..=127` and the kernel
//!   coefficient of a tap is fixed, so each tap's `(operator,
//!   coefficient)` pair lowers to a contiguous 128-entry `i16` column of
//!   the operator's behavioural table ([`clapped_axops::Mul8s::column`]).
//!   Executing a tap is then a single L1-resident array lookup — no
//!   virtual dispatch, no 64 KiB 256×256 table walk.
//! - **Interior/border split**: interior output pixels (where the whole
//!   window is in bounds) run a clamp-free sliding loop over flat row
//!   slices; only the `window/2` border ring takes the clamped slow
//!   path.
//!
//! Plans are cheap to build (`window²` column copies) and the columns
//! themselves are memoized process-wide per `(operator behaviour digest,
//! coefficient)` via [`clapped_exec::Memo`], so repeated evaluations of
//! related configurations — the DSE common case, where thousands of
//! candidates reuse the same few hundred `(operator, coeff)` pairs —
//! share LUT allocations and never re-derive a column.
//!
//! Compiled execution is **bit-identical** to the naive reference path
//! by construction: `lut[px] == operator.mul(px, coeff)` for every
//! quantized pixel, and the border path applies the same clamp-to-edge
//! semantics as the reference. A property test asserts this across the
//! full DoF grid.

use crate::Image;
use clapped_axops::Mul8s;
use clapped_exec::{Memo, MemoStats};
use std::sync::{Arc, OnceLock};

/// One tap's compiled form: `lut[px] = operator.mul(px, coeff)` for the
/// quantized pixel range `px in 0..=127`.
type TapLut = Arc<[i16]>;

fn lut_memo() -> &'static Memo<(u64, i8), TapLut> {
    static MEMO: OnceLock<Memo<(u64, i8), TapLut>> = OnceLock::new();
    MEMO.get_or_init(Memo::new)
}

/// Hit/miss counters of the process-wide compiled-LUT memo. Warm DSE
/// runs show `misses` frozen at the number of distinct `(operator,
/// coefficient)` pairs ever lowered while `hits` climbs with every
/// compiled convolution.
pub fn plan_cache_stats() -> MemoStats {
    lut_memo().stats()
}

/// Lowers one `(operator, coefficient)` tap into its column LUT,
/// memoized per `(behaviour digest, coefficient)` when the operator
/// carries a stable digest.
fn lower_tap(op: &dyn Mul8s, coeff: i8) -> TapLut {
    match op.behaviour_digest() {
        Some(d) => lut_memo().get_or_insert_with((d, coeff), || op.column(coeff).into()),
        None => op.column(coeff).into(),
    }
}

/// A compiled convolution plan: one column LUT per tap plus the
/// normalization shift. Usable for both 2D windows (`window²` taps) and
/// separable 1D passes (`window` taps).
///
/// The memoized per-tap columns are concatenated into one flat buffer
/// (`tap t` occupies `flat[t*128..][..128]`): executing a tap indexes a
/// 128-entry slice with a `u8 >> 1` value, which the compiler can prove
/// in-bounds, so the interior loops carry no bounds checks and no
/// pointer chasing.
#[derive(Debug, Clone)]
pub(crate) struct ConvPlan {
    window: usize,
    shift: u32,
    flat: Vec<i16>,
}

impl ConvPlan {
    /// Compiles taps against their kernel coefficients.
    ///
    /// # Panics
    ///
    /// Panics unless `muls.len() == coeffs.len()` (the engine validates
    /// tap counts before compiling).
    pub(crate) fn compile(
        window: usize,
        coeffs: &[i8],
        shift: u32,
        muls: &[Arc<dyn Mul8s>],
    ) -> ConvPlan {
        assert_eq!(muls.len(), coeffs.len(), "one operator per coefficient");
        let _span = clapped_obs::span("imgproc.plan.compile");
        let mut flat = Vec::with_capacity(muls.len() * 128);
        for (m, &c) in muls.iter().zip(coeffs) {
            flat.extend_from_slice(&lower_tap(m.as_ref(), c));
        }
        ConvPlan { window, shift, flat }
    }

    /// Tap `t`'s 128-entry LUT as a fixed-size slice (the `[..128]`
    /// shape lets the optimizer elide the `px >> 1` bounds check).
    #[inline]
    fn lut(&self, t: usize) -> &[i16] {
        &self.flat[t * 128..][..128]
    }

    /// Runs the 2D window over the stride grid, returning the normalized
    /// accumulators (`acc >> shift`, no clamping) row-major at
    /// `(width.div_ceil(stride), height.div_ceil(stride))`.
    pub(crate) fn run_2d(&self, img: &Image, stride: usize) -> (usize, usize, Vec<i32>) {
        let _span = clapped_obs::span("imgproc.plan.execute");
        let w = self.window;
        let half = w / 2;
        let (iw, ih) = (img.width(), img.height());
        let data = img.as_slice();
        let ow = iw.div_ceil(stride);
        let oh = ih.div_ceil(stride);
        let mut out = Vec::with_capacity(ow * oh);
        // Grid columns whose whole window is x-interior: half <= x and
        // x + half < iw. Empty when the image is narrower than the
        // window (everything takes the clamped path).
        let (ox_lo, ox_hi) = interior_span(iw, half, stride);
        // Row accumulator for the interior span, reused across rows. The
        // sweep is tap-major: each (dy, dx) tap adds its LUT over the
        // whole span in one sequential pass, so one LUT stays hot per
        // pass and per-pixel slice construction disappears. Per pixel
        // the adds still happen in (dy, dx) order — integer addition, so
        // the total is exactly the naive path's.
        let mut accrow = vec![0i32; ox_hi.saturating_sub(ox_lo)];
        for oy in 0..oh {
            let y = oy * stride;
            if y >= half && y + half < ih && ox_lo < ox_hi {
                for ox in 0..ox_lo {
                    out.push(self.clamped_2d(img, ox * stride, y));
                }
                let y0 = y - half;
                accrow.fill(0);
                for dy in 0..w {
                    let src = &data[(y0 + dy) * iw..(y0 + dy + 1) * iw];
                    if stride == 1 {
                        self.sweep_row(&mut accrow, src, ox_lo - half, dy * w, w);
                    } else {
                        for dx in 0..w {
                            let lut = self.lut(dy * w + dx);
                            for (o, a) in accrow.iter_mut().enumerate() {
                                let p = src[(ox_lo + o) * stride - half + dx];
                                *a += i32::from(lut[(p >> 1) as usize]);
                            }
                        }
                    }
                }
                out.extend(accrow.iter().map(|&a| a >> self.shift));
                for ox in ox_hi..ow {
                    out.push(self.clamped_2d(img, ox * stride, y));
                }
            } else {
                for ox in 0..ow {
                    out.push(self.clamped_2d(img, ox * stride, y));
                }
            }
        }
        (ow, oh, out)
    }

    /// Runs the 1D window along one axis (`horizontal` strides and
    /// slides in x, vertical in y) over that axis' stride grid.
    pub(crate) fn run_1d(
        &self,
        img: &Image,
        stride: usize,
        horizontal: bool,
    ) -> (usize, usize, Vec<i32>) {
        let _span = clapped_obs::span("imgproc.plan.execute");
        let w = self.window;
        let half = w / 2;
        let (iw, ih) = (img.width(), img.height());
        let data = img.as_slice();
        let (sx, sy) = if horizontal { (stride, 1) } else { (1, stride) };
        let ow = iw.div_ceil(sx);
        let oh = ih.div_ceil(sy);
        let mut out = Vec::with_capacity(ow * oh);
        if horizontal {
            let (ox_lo, ox_hi) = interior_span(iw, half, stride);
            let mut accrow = vec![0i32; ox_hi.saturating_sub(ox_lo)];
            for y in 0..ih {
                let row = &data[y * iw..(y + 1) * iw];
                for ox in 0..ox_lo {
                    out.push(self.clamped_1d(img, ox * sx, y, true));
                }
                if !accrow.is_empty() {
                    accrow.fill(0);
                    if stride == 1 {
                        self.sweep_row(&mut accrow, row, ox_lo - half, 0, w);
                    } else {
                        for dx in 0..w {
                            let lut = self.lut(dx);
                            for (o, a) in accrow.iter_mut().enumerate() {
                                let p = row[(ox_lo + o) * stride - half + dx];
                                *a += i32::from(lut[(p >> 1) as usize]);
                            }
                        }
                    }
                    out.extend(accrow.iter().map(|&a| a >> self.shift));
                }
                for ox in ox_hi..ow {
                    out.push(self.clamped_1d(img, ox * sx, y, true));
                }
            }
        } else {
            let (oy_lo, oy_hi) = interior_span(ih, half, stride);
            let mut accrow = vec![0i32; iw];
            for oy in 0..oh {
                let y = oy * sy;
                if oy >= oy_lo && oy < oy_hi {
                    let y0 = y - half;
                    accrow.fill(0);
                    for dy in 0..w {
                        let lut = self.lut(dy);
                        let src = &data[(y0 + dy) * iw..(y0 + dy + 1) * iw];
                        for (a, &p) in accrow.iter_mut().zip(src) {
                            *a += i32::from(lut[(p >> 1) as usize]);
                        }
                    }
                    out.extend(accrow.iter().map(|&a| a >> self.shift));
                } else {
                    for x in 0..iw {
                        out.push(self.clamped_1d(img, x, y, false));
                    }
                }
            }
        }
        (ow, oh, out)
    }

    /// Adds `w` consecutive taps (starting at LUT index `tap0`, x-offsets
    /// `0..w` from `x0`) over one stride-1 source row into `acc`. The 3-
    /// and 5-tap windows get fused fixed-width kernels — one sweep per
    /// window row with all taps' LUTs hot — with a tap-major fallback for
    /// other widths. Per pixel the adds keep the `dx` order; the sums are
    /// `i32`, so grouping cannot change the result.
    fn sweep_row(&self, acc: &mut [i32], src: &[u8], x0: usize, tap0: usize, w: usize) {
        match w {
            3 => sweep_fused::<3>(
                acc,
                src,
                x0,
                std::array::from_fn(|d| self.lut(tap0 + d)),
            ),
            5 => sweep_fused::<5>(
                acc,
                src,
                x0,
                std::array::from_fn(|d| self.lut(tap0 + d)),
            ),
            _ => {
                for dx in 0..w {
                    let lut = self.lut(tap0 + dx);
                    let seg = &src[x0 + dx..][..acc.len()];
                    for (a, &p) in acc.iter_mut().zip(seg) {
                        *a += i32::from(lut[(p >> 1) as usize]);
                    }
                }
            }
        }
    }

    /// Border (clamp-to-edge) 2D tap sum at one grid point.
    fn clamped_2d(&self, img: &Image, x: usize, y: usize) -> i32 {
        let w = self.window;
        let half = (w / 2) as isize;
        let mut acc = 0i32;
        for dy in 0..w {
            for dx in 0..w {
                let px = img.get_clamped(
                    x as isize + dx as isize - half,
                    y as isize + dy as isize - half,
                ) >> 1;
                acc += i32::from(self.lut(dy * w + dx)[px as usize]);
            }
        }
        acc >> self.shift
    }

    /// Border (clamp-to-edge) 1D tap sum at one grid point.
    fn clamped_1d(&self, img: &Image, x: usize, y: usize, horizontal: bool) -> i32 {
        let w = self.window;
        let half = (w / 2) as isize;
        let mut acc = 0i32;
        for d in 0..w {
            let off = d as isize - half;
            let px = if horizontal {
                img.get_clamped(x as isize + off, y as isize)
            } else {
                img.get_clamped(x as isize, y as isize + off)
            } >> 1;
            acc += i32::from(self.lut(d)[px as usize]);
        }
        acc >> self.shift
    }
}

/// One fused pass of `N` x-adjacent taps over a row segment:
/// `acc[i] += Σ_d luts[d][src[x0 + i + d] >> 1]`.
#[inline]
fn sweep_fused<const N: usize>(acc: &mut [i32], src: &[u8], x0: usize, luts: [&[i16]; N]) {
    let len = acc.len();
    let segs: [&[u8]; N] = std::array::from_fn(|d| &src[x0 + d..x0 + d + len]);
    for (i, a) in acc.iter_mut().enumerate() {
        let mut s = 0i32;
        for d in 0..N {
            s += i32::from(luts[d][(segs[d][i] >> 1) as usize]);
        }
        *a += s;
    }
}

/// The `[lo, hi)` range of stride-grid indices whose window is fully in
/// bounds along an axis of length `len`: `half <= i*stride` and
/// `i*stride + half < len`. Empty (`lo >= hi`) when the axis is shorter
/// than the window.
fn interior_span(len: usize, half: usize, stride: usize) -> (usize, usize) {
    if len <= 2 * half {
        return (0, 0);
    }
    let lo = half.div_ceil(stride);
    // Largest grid index with i*stride <= len - 1 - half, exclusive end.
    let hi = (len - 1 - half) / stride + 1;
    (lo, hi.max(lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapped_axops::Catalog;

    #[test]
    fn interior_span_bounds() {
        // 3-tap window on a width-8 axis: x in 1..=6 are interior.
        assert_eq!(interior_span(8, 1, 1), (1, 7));
        assert_eq!(interior_span(8, 1, 2), (1, 4)); // x = 2, 4, 6
        assert_eq!(interior_span(8, 2, 3), (1, 2)); // x = 3
        assert_eq!(interior_span(3, 2, 1), (0, 0)); // narrower than window
        assert_eq!(interior_span(5, 2, 1), (2, 3)); // single interior column
    }

    #[test]
    fn taps_are_memoized_per_digest_and_coeff() {
        let cat = Catalog::standard();
        let m = cat.get("mul8s_tr2").unwrap();
        let before = plan_cache_stats();
        let a = lower_tap(m.as_ref(), 11);
        let b = lower_tap(m.as_ref(), 11);
        let c = lower_tap(m.as_ref(), 12);
        assert!(Arc::ptr_eq(&a, &b), "same (digest, coeff) shares one LUT");
        assert!(!Arc::ptr_eq(&a, &c));
        let after = plan_cache_stats();
        assert!(after.hits > before.hits);
    }

    #[test]
    fn lowered_lut_matches_operator() {
        let cat = Catalog::standard();
        let m = cat.get("mul8s_log").unwrap();
        let lut = lower_tap(m.as_ref(), -77);
        for px in 0..=127i8 {
            assert_eq!(lut[px as usize], m.mul(px, -77));
        }
    }
}
