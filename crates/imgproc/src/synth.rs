//! Synthetic image generation and noise injection.
//!
//! The paper evaluates Gaussian smoothing on real photographs; this crate
//! substitutes deterministic synthetic images with comparable spatial
//! frequency content (see DESIGN.md §2). All generators are seeded and
//! reproducible.

use crate::Image;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::f64::consts::PI;

/// Families of synthetic test images.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SynthKind {
    /// Smooth random field: a sum of random low-frequency cosines —
    /// the closest analogue of natural photographic content.
    SmoothField,
    /// Diagonal luminance gradient.
    Gradient,
    /// Checkerboard with 4-pixel tiles (high-frequency content).
    Checkerboard,
    /// Soft circular blobs on a dark background.
    Blobs,
    /// Horizontal bars with sharp edges.
    Bars,
}

impl SynthKind {
    /// All generator kinds.
    pub const ALL: [SynthKind; 5] = [
        SynthKind::SmoothField,
        SynthKind::Gradient,
        SynthKind::Checkerboard,
        SynthKind::Blobs,
        SynthKind::Bars,
    ];
}

impl Image {
    /// Generates a synthetic image of the given kind, deterministically
    /// from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn synthetic(kind: SynthKind, width: usize, height: usize, seed: u64) -> Image {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        match kind {
            SynthKind::SmoothField => {
                // 6 random cosine waves of low spatial frequency.
                let waves: Vec<(f64, f64, f64, f64)> = (0..6)
                    .map(|_| {
                        (
                            rng.gen_range(0.5..3.0),  // fx cycles/image
                            rng.gen_range(0.5..3.0),  // fy
                            rng.gen_range(0.0..2.0 * PI),
                            rng.gen_range(0.3..1.0), // amplitude
                        )
                    })
                    .collect();
                let norm: f64 = waves.iter().map(|w| w.3).sum();
                Image::from_fn(width, height, |x, y| {
                    let u = x as f64 / width as f64;
                    let v = y as f64 / height as f64;
                    let s: f64 = waves
                        .iter()
                        .map(|&(fx, fy, ph, amp)| {
                            amp * (2.0 * PI * (fx * u + fy * v) + ph).cos()
                        })
                        .sum();
                    (127.5 + 120.0 * s / norm).clamp(0.0, 255.0) as u8
                })
            }
            SynthKind::Gradient => Image::from_fn(width, height, |x, y| {
                (255 * (x + y) / (width + height - 2).max(1)) as u8
            }),
            SynthKind::Checkerboard => Image::from_fn(width, height, |x, y| {
                if ((x / 4) + (y / 4)) % 2 == 0 {
                    40
                } else {
                    215
                }
            }),
            SynthKind::Blobs => {
                let blobs: Vec<(f64, f64, f64)> = (0..5)
                    .map(|_| {
                        (
                            rng.gen_range(0.1..0.9),
                            rng.gen_range(0.1..0.9),
                            rng.gen_range(0.05..0.25),
                        )
                    })
                    .collect();
                Image::from_fn(width, height, |x, y| {
                    let u = x as f64 / width as f64;
                    let v = y as f64 / height as f64;
                    let s: f64 = blobs
                        .iter()
                        .map(|&(cx, cy, r)| {
                            let d2 = (u - cx) * (u - cx) + (v - cy) * (v - cy);
                            (-d2 / (2.0 * r * r)).exp()
                        })
                        .sum();
                    (30.0 + 220.0 * s.min(1.0)) as u8
                })
            }
            SynthKind::Bars => Image::from_fn(width, height, |_, y| {
                if (y / 6) % 2 == 0 {
                    60
                } else {
                    190
                }
            }),
        }
    }

    /// Returns a copy with additive Gaussian noise of the given standard
    /// deviation (pixels clamped to `0..=255`), deterministic in `seed`.
    pub fn with_gaussian_noise(&self, sigma: f64, seed: u64) -> Image {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut out = self.clone();
        for y in 0..self.height() {
            for x in 0..self.width() {
                // Box-Muller from two uniforms.
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let g = (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos();
                let v = f64::from(self.get(x, y)) + sigma * g;
                out.set(x, y, v.clamp(0.0, 255.0) as u8);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psnr;

    #[test]
    fn generators_are_deterministic() {
        for kind in SynthKind::ALL {
            let a = Image::synthetic(kind, 16, 16, 7);
            let b = Image::synthetic(kind, 16, 16, 7);
            assert_eq!(a, b, "{kind:?} must be deterministic");
        }
    }

    #[test]
    fn different_seeds_differ_for_random_kinds() {
        let a = Image::synthetic(SynthKind::SmoothField, 16, 16, 1);
        let b = Image::synthetic(SynthKind::SmoothField, 16, 16, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn smooth_field_spans_a_range() {
        let img = Image::synthetic(SynthKind::SmoothField, 32, 32, 3);
        let min = *img.as_slice().iter().min().unwrap();
        let max = *img.as_slice().iter().max().unwrap();
        assert!(max - min > 60, "field should have contrast, got {min}..{max}");
    }

    #[test]
    fn noise_reduces_psnr_monotonically() {
        let clean = Image::synthetic(SynthKind::SmoothField, 32, 32, 5);
        let light = clean.with_gaussian_noise(5.0, 11);
        let heavy = clean.with_gaussian_noise(25.0, 11);
        assert!(psnr(&clean, &light) > psnr(&clean, &heavy));
        assert!(psnr(&clean, &light) > 25.0);
    }

    #[test]
    fn noise_is_deterministic() {
        let clean = Image::synthetic(SynthKind::Gradient, 16, 16, 0);
        assert_eq!(
            clean.with_gaussian_noise(10.0, 3),
            clean.with_gaussian_noise(10.0, 3)
        );
    }
}
