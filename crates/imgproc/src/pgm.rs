//! Plain PGM (P2/P5) image I/O, so workloads and results can be
//! exchanged with standard tools.

use crate::Image;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

impl Image {
    /// Serializes the image as binary PGM (P5, maxval 255).
    pub fn to_pgm(&self) -> Vec<u8> {
        let mut header = String::new();
        write!(header, "P5\n{} {}\n255\n", self.width(), self.height()).expect("string write");
        let mut out = header.into_bytes();
        out.extend_from_slice(self.as_slice());
        out
    }

    /// Writes the image to a PGM file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_pgm(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_pgm())
    }

    /// Parses a PGM image (binary P5 or ASCII P2, maxval ≤ 255).
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] on malformed input.
    pub fn from_pgm(bytes: &[u8]) -> io::Result<Image> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        // Tokenize the header: magic, width, height, maxval, skipping
        // comments.
        let mut pos = 0usize;
        let mut tokens: Vec<String> = Vec::new();
        while tokens.len() < 4 && pos < bytes.len() {
            let b = bytes[pos];
            if b == b'#' {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            } else if b.is_ascii_whitespace() {
                pos += 1;
            } else {
                let start = pos;
                while pos < bytes.len()
                    && !bytes[pos].is_ascii_whitespace()
                    && bytes[pos] != b'#'
                {
                    pos += 1;
                }
                tokens.push(String::from_utf8_lossy(&bytes[start..pos]).into_owned());
            }
        }
        if tokens.len() < 4 {
            return Err(bad("truncated PGM header"));
        }
        let magic = tokens[0].as_str();
        let width: usize = tokens[1].parse().map_err(|_| bad("bad width"))?;
        let height: usize = tokens[2].parse().map_err(|_| bad("bad height"))?;
        let maxval: usize = tokens[3].parse().map_err(|_| bad("bad maxval"))?;
        if width == 0 || height == 0 {
            return Err(bad("zero dimension"));
        }
        if maxval == 0 || maxval > 255 {
            return Err(bad("unsupported maxval"));
        }
        let scale = 255.0 / maxval as f64;
        let data: Vec<u8> = match magic {
            "P5" => {
                // One whitespace byte after maxval, then raw bytes.
                pos += 1;
                let need = width * height;
                if bytes.len() < pos + need {
                    return Err(bad("truncated P5 payload"));
                }
                bytes[pos..pos + need]
                    .iter()
                    .map(|&v| (f64::from(v) * scale).round().min(255.0) as u8)
                    .collect()
            }
            "P2" => {
                let text = String::from_utf8_lossy(&bytes[pos..]);
                let vals: Vec<u8> = text
                    .split_whitespace()
                    .take(width * height)
                    .map(|t| {
                        t.parse::<usize>()
                            .map(|v| ((v as f64) * scale).round().min(255.0) as u8)
                    })
                    .collect::<Result<_, _>>()
                    .map_err(|_| bad("bad P2 sample"))?;
                if vals.len() != width * height {
                    return Err(bad("truncated P2 payload"));
                }
                vals
            }
            _ => return Err(bad("not a PGM (P2/P5) file")),
        };
        Ok(Image::from_vec(width, height, data))
    }

    /// Loads a PGM file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and format errors.
    pub fn load_pgm(path: impl AsRef<Path>) -> io::Result<Image> {
        Image::from_pgm(&fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthKind;

    #[test]
    fn p5_roundtrip() {
        let img = Image::synthetic(SynthKind::SmoothField, 17, 9, 4);
        let back = Image::from_pgm(&img.to_pgm()).unwrap();
        assert_eq!(img, back);
    }

    #[test]
    fn p2_parsing_with_comments() {
        let text = b"P2\n# a comment\n3 2\n255\n0 128 255\n64 32 16\n";
        let img = Image::from_pgm(text).unwrap();
        assert_eq!(img.width(), 3);
        assert_eq!(img.height(), 2);
        assert_eq!(img.get(1, 0), 128);
        assert_eq!(img.get(2, 1), 16);
    }

    #[test]
    fn maxval_rescaling() {
        let text = b"P2\n2 1\n15\n0 15\n";
        let img = Image::from_pgm(text).unwrap();
        assert_eq!(img.get(0, 0), 0);
        assert_eq!(img.get(1, 0), 255);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(Image::from_pgm(b"P6\n2 2\n255\n....").is_err());
        assert!(Image::from_pgm(b"P5\n2 2\n255\nab").is_err()); // truncated
        assert!(Image::from_pgm(b"P2\n0 2\n255\n").is_err());
        assert!(Image::from_pgm(b"P2\n2 2\n70000\n1 2 3 4").is_err());
        assert!(Image::from_pgm(b"").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("clapped_pgm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pgm");
        let img = Image::synthetic(SynthKind::Blobs, 8, 8, 1);
        img.save_pgm(&path).unwrap();
        let back = Image::load_pgm(&path).unwrap();
        assert_eq!(img, back);
    }
}
