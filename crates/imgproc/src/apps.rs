//! The Gaussian noise-removal application (the paper's test case).

use crate::{ConvConfig, ConvEngine, ConvError, Image, QuantKernel, Result, SynthKind};
use clapped_axops::Mul8s;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Quality figures of one configuration evaluated on the application's
/// image set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppResult {
    /// Mean PSNR of the configuration's outputs against the clean images
    /// (higher is better denoising).
    pub psnr_db: f64,
    /// Mean application-level error (%) against the golden
    /// configuration's outputs — the paper's Fig. 12b x-axis.
    pub error_percent: f64,
}

/// Gaussian image smoothing for noise removal, evaluated over a set of
/// noisy synthetic images with a golden (exact, stride-1, unscaled, 2D)
/// reference.
///
/// # Examples
///
/// ```
/// use clapped_axops::Catalog;
/// use clapped_imgproc::{ConvConfig, GaussianDenoise};
///
/// let catalog = Catalog::standard();
/// let exact = catalog.get("mul8s_exact").unwrap();
/// let app = GaussianDenoise::standard(32, 12.0, exact.clone(), 42);
/// let taps: Vec<_> = (0..9).map(|_| exact.clone() as std::sync::Arc<dyn clapped_axops::Mul8s>).collect();
/// let r = app.evaluate(&ConvConfig::default(), &taps).unwrap();
/// assert_eq!(r.error_percent, 0.0); // golden config vs itself
/// ```
#[derive(Debug, Clone)]
pub struct GaussianDenoise {
    clean: Vec<Image>,
    noisy: Vec<Image>,
    golden: Vec<Image>,
    engines: BTreeMap<usize, ConvEngine>,
    golden_window: usize,
    noise_psnr: f64,
}

impl GaussianDenoise {
    /// Builds the application over explicit clean images.
    ///
    /// `noise_sigma` is the injected Gaussian noise level; `exact` is the
    /// operator used for the golden reference outputs.
    ///
    /// # Panics
    ///
    /// Panics if `images` is empty.
    pub fn new(
        images: Vec<Image>,
        noise_sigma: f64,
        kernel: QuantKernel,
        exact: Arc<dyn Mul8s>,
        seed: u64,
    ) -> GaussianDenoise {
        GaussianDenoise::with_kernels(images, noise_sigma, vec![kernel], exact, seed)
    }

    /// Builds the application with one kernel per supported window size
    /// (the paper's SOFTWARE "Window Size" DoF). The first kernel's
    /// window defines the golden configuration.
    ///
    /// # Panics
    ///
    /// Panics if `images` or `kernels` is empty, or two kernels share a
    /// window size.
    pub fn with_kernels(
        images: Vec<Image>,
        noise_sigma: f64,
        kernels: Vec<QuantKernel>,
        exact: Arc<dyn Mul8s>,
        seed: u64,
    ) -> GaussianDenoise {
        assert!(!images.is_empty(), "need at least one image");
        assert!(!kernels.is_empty(), "need at least one kernel");
        let golden_window = kernels[0].window();
        let mut engines = BTreeMap::new();
        for k in kernels {
            let w = k.window();
            assert!(
                engines.insert(w, ConvEngine::new(k)).is_none(),
                "duplicate kernel for window {w}"
            );
        }
        let noisy: Vec<Image> = images
            .iter()
            .enumerate()
            .map(|(i, img)| img.with_gaussian_noise(noise_sigma, seed.wrapping_add(i as u64)))
            .collect();
        let golden_cfg = ConvConfig {
            window: golden_window,
            ..ConvConfig::default()
        };
        let taps: Vec<Arc<dyn Mul8s>> = (0..golden_cfg.taps()).map(|_| exact.clone()).collect();
        let golden: Vec<Image> = noisy
            .iter()
            .map(|img| {
                engines[&golden_window]
                    .convolve(img, &golden_cfg, &taps)
                    .expect("golden configuration is always valid")
            })
            .collect();
        let noise_psnr = images
            .iter()
            .zip(&noisy)
            .map(|(c, n)| crate::psnr(c, n))
            .sum::<f64>()
            / images.len() as f64;
        GaussianDenoise {
            clean: images,
            noisy,
            golden,
            engines,
            golden_window,
            noise_psnr,
        }
    }

    /// Builds the standard 3-image synthetic workload (smooth field,
    /// blobs, gradient) at `size × size` pixels with a 3×3, σ = 0.85
    /// kernel.
    pub fn standard(size: usize, noise_sigma: f64, exact: Arc<dyn Mul8s>, seed: u64) -> GaussianDenoise {
        let images = vec![
            Image::synthetic(SynthKind::SmoothField, size, size, seed),
            Image::synthetic(SynthKind::Blobs, size, size, seed.wrapping_add(1)),
            Image::synthetic(SynthKind::Gradient, size, size, seed.wrapping_add(2)),
        ];
        GaussianDenoise::with_kernels(
            images,
            noise_sigma,
            vec![
                QuantKernel::gaussian(3, 0.85),
                QuantKernel::gaussian(5, 1.1),
                QuantKernel::gaussian(7, 1.4),
            ],
            exact,
            seed,
        )
    }

    /// The convolution engine of the golden window size.
    pub fn engine(&self) -> &ConvEngine {
        &self.engines[&self.golden_window]
    }

    /// The convolution engine for a given window size, when configured.
    pub fn engine_for(&self, window: usize) -> Option<&ConvEngine> {
        self.engines.get(&window)
    }

    /// Window sizes this application instance supports.
    pub fn windows(&self) -> Vec<usize> {
        self.engines.keys().copied().collect()
    }

    /// Number of images in the workload.
    pub fn image_count(&self) -> usize {
        self.clean.len()
    }

    /// Pixel count of one clean image.
    pub fn image_pixels(&self) -> usize {
        self.clean[0].width() * self.clean[0].height()
    }

    /// Mean PSNR of the *noisy inputs* against the clean images — the
    /// "PSNR (Noisy)" baseline of paper Fig. 1c.
    pub fn noise_psnr(&self) -> f64 {
        self.noise_psnr
    }

    /// Evaluates a configuration with the given tap multipliers.
    ///
    /// Outputs are upscaled back to the input size (zero-order hold)
    /// before comparison, so reduced-size configurations pay their
    /// fidelity cost honestly.
    ///
    /// # Errors
    ///
    /// Propagates configuration/assignment errors from the engine.
    pub fn evaluate(&self, config: &ConvConfig, muls: &[Arc<dyn Mul8s>]) -> Result<AppResult> {
        let engine = self.engines.get(&config.window).ok_or_else(|| ConvError::BadConfig {
            reason: format!("no kernel configured for window {}", config.window),
        })?;
        let factor = config.reduction_factor();
        let mut psnr_sum = 0.0;
        let mut err_sum = 0.0;
        for ((clean, noisy), golden) in self.clean.iter().zip(&self.noisy).zip(&self.golden) {
            let out = engine.convolve(noisy, config, muls)?;
            let full = if factor > 1 {
                out.upscale_to(factor, clean.width(), clean.height())
            } else {
                out
            };
            psnr_sum += crate::psnr_capped(clean, &full);
            err_sum += crate::app_error_percent(&full, golden);
        }
        let n = self.clean.len() as f64;
        Ok(AppResult {
            psnr_db: psnr_sum / n,
            error_percent: err_sum / n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapped_axops::Catalog;

    fn taps(m: &Arc<clapped_axops::AxMul>, n: usize) -> Vec<Arc<dyn Mul8s>> {
        (0..n).map(|_| m.clone() as Arc<dyn Mul8s>).collect()
    }

    #[test]
    fn golden_config_has_zero_error_and_denoises() {
        let cat = Catalog::standard();
        let exact = cat.get("mul8s_exact").unwrap();
        let app = GaussianDenoise::standard(32, 14.0, exact.clone(), 9);
        let r = app.evaluate(&ConvConfig::default(), &taps(&exact, 9)).unwrap();
        assert_eq!(r.error_percent, 0.0);
        // Smoothing must beat the raw noisy input on smooth content.
        assert!(
            r.psnr_db > app.noise_psnr() - 1.0,
            "psnr {} vs noisy {}",
            r.psnr_db,
            app.noise_psnr()
        );
    }

    #[test]
    fn rougher_multipliers_increase_error() {
        let cat = Catalog::standard();
        let exact = cat.get("mul8s_exact").unwrap();
        let app = GaussianDenoise::standard(32, 14.0, exact.clone(), 9);
        let mild = cat.get("mul8s_tr2").unwrap();
        let rough = cat.get("mul8s_bam_v8_h3").unwrap();
        let r_mild = app.evaluate(&ConvConfig::default(), &taps(&mild, 9)).unwrap();
        let r_rough = app.evaluate(&ConvConfig::default(), &taps(&rough, 9)).unwrap();
        assert!(r_mild.error_percent < r_rough.error_percent);
        assert!(r_mild.psnr_db > r_rough.psnr_db);
    }

    #[test]
    fn stride_two_degrades_quality() {
        let cat = Catalog::standard();
        let exact = cat.get("mul8s_exact").unwrap();
        let app = GaussianDenoise::standard(32, 14.0, exact.clone(), 9);
        let strided = ConvConfig {
            stride: 2,
            downsample: true,
            ..ConvConfig::default()
        };
        let r1 = app.evaluate(&ConvConfig::default(), &taps(&exact, 9)).unwrap();
        let r2 = app.evaluate(&strided, &taps(&exact, 9)).unwrap();
        assert!(r2.error_percent > r1.error_percent);
        assert!(r2.psnr_db < r1.psnr_db);
    }

    #[test]
    fn larger_windows_evaluate_and_smooth_harder() {
        let cat = Catalog::standard();
        let exact = cat.get("mul8s_exact").unwrap();
        let app = GaussianDenoise::standard(32, 14.0, exact.clone(), 9);
        assert_eq!(app.windows(), vec![3, 5, 7]);
        let r3 = app.evaluate(&ConvConfig::default(), &taps(&exact, 9)).unwrap();
        let cfg5 = ConvConfig { window: 5, ..ConvConfig::default() };
        let r5 = app.evaluate(&cfg5, &taps(&exact, 25)).unwrap();
        // A wider Gaussian blurs more: it deviates further from the 3x3
        // golden output.
        assert!(r5.error_percent > r3.error_percent);
        // Unconfigured window sizes are rejected cleanly.
        let cfg9 = ConvConfig { window: 9, ..ConvConfig::default() };
        assert!(app.evaluate(&cfg9, &taps(&exact, 81)).is_err());
    }

    #[test]
    fn separable_mode_works_end_to_end() {
        let cat = Catalog::standard();
        let exact = cat.get("mul8s_exact").unwrap();
        let app = GaussianDenoise::standard(32, 14.0, exact.clone(), 9);
        let sep = ConvConfig {
            mode: crate::ConvMode::Separable,
            ..ConvConfig::default()
        };
        let r = app.evaluate(&sep, &taps(&exact, 6)).unwrap();
        assert!(r.error_percent < 5.0, "separable exact error {}", r.error_percent);
    }
}
