//! Flat row-major buffer for raw (unclamped) convolution accumulators.

/// A row-major `i32` accumulator grid, as returned by
/// [`crate::ConvEngine::convolve_raw`]: one contiguous allocation with
/// row accessors, replacing the old `Vec<Vec<i32>>` shape (which paid
/// one heap allocation per row and scattered rows across the heap).
///
/// # Examples
///
/// ```
/// use clapped_imgproc::RawBuf;
///
/// let buf = RawBuf::from_vec(3, 2, vec![1, 2, 3, 4, 5, 6]);
/// assert_eq!(buf.get(2, 1), 6);
/// assert_eq!(buf.row(0), &[1, 2, 3]);
/// assert_eq!(buf.rows().count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawBuf {
    width: usize,
    height: usize,
    data: Vec<i32>,
}

impl RawBuf {
    /// Wraps raw row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height` or a dimension is zero.
    pub fn from_vec(width: usize, height: usize, data: Vec<i32>) -> RawBuf {
        assert!(width > 0 && height > 0, "buffer dimensions must be positive");
        assert_eq!(data.len(), width * height, "data length mismatch");
        RawBuf { width, height, data }
    }

    /// Width in grid points.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in grid points.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The whole buffer, row-major.
    pub fn as_slice(&self) -> &[i32] {
        &self.data
    }

    /// One row as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `y` is out of bounds.
    pub fn row(&self, y: usize) -> &[i32] {
        assert!(y < self.height, "row out of bounds");
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Iterates over rows top to bottom.
    pub fn rows(&self) -> impl Iterator<Item = &[i32]> {
        self.data.chunks_exact(self.width)
    }

    /// Value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, x: usize, y: usize) -> i32 {
        assert!(x < self.width && y < self.height, "value out of bounds");
        self.data[y * self.width + x]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_agree() {
        let buf = RawBuf::from_vec(2, 3, vec![10, 20, 30, 40, 50, 60]);
        assert_eq!(buf.width(), 2);
        assert_eq!(buf.height(), 3);
        assert_eq!(buf.get(1, 2), 60);
        assert_eq!(buf.row(1), &[30, 40]);
        let rows: Vec<&[i32]> = buf.rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[50, 60]);
        assert_eq!(buf.as_slice().len(), 6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_rejected() {
        let _ = RawBuf::from_vec(2, 2, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        let buf = RawBuf::from_vec(1, 1, vec![5]);
        let _ = buf.get(1, 0);
    }
}
