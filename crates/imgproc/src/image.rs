//! Grayscale image type and quality metrics.

use std::fmt;

/// An 8-bit grayscale image.
///
/// # Examples
///
/// ```
/// use clapped_imgproc::Image;
///
/// let mut img = Image::filled(4, 4, 128);
/// img.set(1, 2, 200);
/// assert_eq!(img.get(1, 2), 200);
/// assert_eq!(img.get_clamped(-5, 100), img.get(0, 3));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Image {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Image {
    /// Creates an image filled with a constant value.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn filled(width: usize, height: usize, value: u8) -> Image {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Image {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Creates an image from a closure evaluated at every pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> u8) -> Image {
        let mut img = Image::filled(width, height, 0);
        for y in 0..height {
            for x in 0..width {
                img.set(x, y, f(x, y));
            }
        }
        img
    }

    /// Creates an image from raw row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height` or a dimension is zero.
    pub fn from_vec(width: usize, height: usize, data: Vec<u8>) -> Image {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        assert_eq!(data.len(), width * height, "data length mismatch");
        Image {
            width,
            height,
            data,
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw row-major pixel data.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x]
    }

    /// Pixel with clamp-to-edge semantics for out-of-range coordinates.
    pub fn get_clamped(&self, x: isize, y: isize) -> u8 {
        let xc = x.clamp(0, self.width as isize - 1) as usize;
        let yc = y.clamp(0, self.height as isize - 1) as usize;
        self.data[yc * self.width + xc]
    }

    /// Sets pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, x: usize, y: usize, value: u8) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x] = value;
    }

    /// Mean pixel value.
    pub fn mean(&self) -> f64 {
        self.data.iter().map(|&v| f64::from(v)).sum::<f64>() / self.data.len() as f64
    }

    /// Downscales by integer factor `s` using `s × s` average pooling
    /// (the DATA-scaling DoF). A factor of 1 returns a clone.
    ///
    /// # Panics
    ///
    /// Panics if `s == 0` or the image is smaller than `s`.
    pub fn downscale(&self, s: usize) -> Image {
        assert!(s > 0, "scale factor must be positive");
        if s == 1 {
            return self.clone();
        }
        assert!(
            self.width >= s && self.height >= s,
            "image smaller than the scale factor"
        );
        let w = self.width / s;
        let h = self.height / s;
        Image::from_fn(w, h, |x, y| {
            let mut acc = 0u32;
            for dy in 0..s {
                for dx in 0..s {
                    acc += u32::from(self.get(x * s + dx, y * s + dy));
                }
            }
            (acc / (s * s) as u32) as u8
        })
    }

    /// Upscales by integer factor `s` with pixel replication, then crops
    /// or edge-pads to exactly `(width, height)`.
    pub fn upscale_to(&self, s: usize, width: usize, height: usize) -> Image {
        Image::from_fn(width, height, |x, y| {
            let sx = (x / s).min(self.width - 1);
            let sy = (y / s).min(self.height - 1);
            self.get(sx, sy)
        })
    }
}

impl fmt::Debug for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Image {}x{} (mean {:.1})",
            self.width,
            self.height,
            self.mean()
        )
    }
}

/// Peak signal-to-noise ratio between two same-sized images, in dB.
/// Returns `f64::INFINITY` for identical images.
///
/// # Panics
///
/// Panics if the dimensions differ.
pub fn psnr(a: &Image, b: &Image) -> f64 {
    assert_eq!(a.width(), b.width(), "width mismatch");
    assert_eq!(a.height(), b.height(), "height mismatch");
    let mse: f64 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum::<f64>()
        / a.as_slice().len() as f64;
    if mse == 0.0 {
        return f64::INFINITY;
    }
    20.0 * (255.0 / mse.sqrt()).log10()
}

/// PSNR capped at 99 dB, for averaging across images where some outputs
/// may be identical to the reference (infinite raw PSNR).
///
/// # Panics
///
/// Panics if the dimensions differ.
pub fn psnr_capped(a: &Image, b: &Image) -> f64 {
    psnr(a, b).min(99.0)
}

/// Application-level error in percent: mean absolute pixel difference
/// normalized by the full 8-bit range (the x-axis of paper Fig. 12b).
///
/// # Panics
///
/// Panics if the dimensions differ.
pub fn app_error_percent(out: &Image, golden: &Image) -> f64 {
    assert_eq!(out.width(), golden.width(), "width mismatch");
    assert_eq!(out.height(), golden.height(), "height mismatch");
    let mad: f64 = out
        .as_slice()
        .iter()
        .zip(golden.as_slice())
        .map(|(&x, &y)| (f64::from(x) - f64::from(y)).abs())
        .sum::<f64>()
        / out.as_slice().len() as f64;
    100.0 * mad / 255.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let img = Image::from_fn(3, 2, |x, y| (x + 10 * y) as u8);
        assert_eq!(img.get(2, 1), 12);
        assert_eq!(img.width(), 3);
        assert_eq!(img.height(), 2);
        assert_eq!(img.as_slice(), &[0, 1, 2, 10, 11, 12]);
    }

    #[test]
    fn clamped_access() {
        let img = Image::from_fn(2, 2, |x, y| (x + 2 * y) as u8);
        assert_eq!(img.get_clamped(-1, -1), img.get(0, 0));
        assert_eq!(img.get_clamped(5, 5), img.get(1, 1));
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let img = Image::filled(4, 4, 100);
        assert!(psnr(&img, &img).is_infinite());
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let a = Image::filled(8, 8, 100);
        let slightly = Image::filled(8, 8, 102);
        let very = Image::filled(8, 8, 150);
        assert!(psnr(&a, &slightly) > psnr(&a, &very));
    }

    #[test]
    fn psnr_capped_bounds_identical_images() {
        let img = Image::filled(4, 4, 7);
        assert_eq!(psnr_capped(&img, &img), 99.0);
        let other = Image::filled(4, 4, 200);
        assert_eq!(psnr(&img, &other), psnr_capped(&img, &other));
    }

    #[test]
    fn app_error_percent_scales() {
        let a = Image::filled(4, 4, 0);
        let b = Image::filled(4, 4, 255);
        assert!((app_error_percent(&a, &b) - 100.0).abs() < 1e-12);
        assert_eq!(app_error_percent(&a, &a), 0.0);
    }

    #[test]
    fn downscale_averages() {
        let img = Image::from_vec(2, 2, vec![0, 100, 100, 200]);
        let down = img.downscale(2);
        assert_eq!(down.width(), 1);
        assert_eq!(down.get(0, 0), 100);
    }

    #[test]
    fn upscale_replicates_and_pads() {
        let img = Image::from_vec(2, 1, vec![10, 20]);
        let up = img.upscale_to(2, 5, 2);
        assert_eq!(up.get(0, 0), 10);
        assert_eq!(up.get(1, 0), 10);
        assert_eq!(up.get(2, 0), 20);
        assert_eq!(up.get(4, 1), 20); // clamped beyond source
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_size_rejected() {
        let _ = Image::filled(0, 4, 0);
    }
}
