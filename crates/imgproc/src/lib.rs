//! Image processing substrate: grayscale images, synthetic generators,
//! Gaussian noise, PSNR, quantized Gaussian kernels and the cross-layer
//! DoF-aware approximate convolution engine.
//!
//! This crate implements the paper's test application — Gaussian image
//! smoothing for noise removal — with every cross-layer degree of freedom
//! the CLAppED framework explores:
//!
//! - **DATA**: input scaling ([`ConvConfig::scale`]),
//! - **SOFTWARE**: window size, convolution mode (2D vs separable
//!   1DH→1DV), stride length, downsampling,
//! - **HARDWARE**: a per-tap assignment of approximate multipliers.
//!
//! # Quantization convention
//!
//! Pixels are 8-bit (`0..=255`). Before convolution they are quantized to
//! `0..=127` (a right shift) so they are valid *signed* 8-bit operands for
//! the `clapped-axops` multipliers; kernel weights are quantized to `i8`
//! with a power-of-two scale that is folded back into the output
//! normalization. Outputs are rescaled to `0..=255`.
//!
//! # Examples
//!
//! ```
//! use clapped_axops::Catalog;
//! use clapped_imgproc::{ConvConfig, ConvEngine, Image, QuantKernel};
//!
//! let catalog = Catalog::standard();
//! let image = Image::synthetic(clapped_imgproc::SynthKind::Gradient, 32, 32, 0);
//! let kernel = QuantKernel::gaussian(3, 0.85);
//! let engine = ConvEngine::new(kernel);
//! let exact = catalog.get("mul8s_exact").unwrap();
//! let muls: Vec<_> = (0..9).map(|_| exact.clone() as std::sync::Arc<dyn clapped_axops::Mul8s>).collect();
//! let out = engine.convolve(&image, &ConvConfig::default(), &muls).unwrap();
//! assert_eq!(out.width(), 32);
//! ```

mod apps;
mod conv;
mod image;
mod kernel;
mod pgm;
mod plan;
mod raw;
mod sobel;
mod synth;

pub use apps::{AppResult, GaussianDenoise};
pub use conv::{ConvConfig, ConvEngine, ConvMode};
pub use image::{app_error_percent, psnr, psnr_capped, Image};
pub use kernel::QuantKernel;
pub use plan::plan_cache_stats;
pub use raw::RawBuf;
pub use sobel::SobelEdge;
pub use synth::SynthKind;

use std::error::Error;
use std::fmt;

/// Error type for convolution configuration problems.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConvError {
    /// The multiplier assignment length does not match the configuration.
    BadAssignment {
        /// Taps required by the configuration.
        expected: usize,
        /// Multipliers supplied.
        found: usize,
    },
    /// A configuration field is out of its valid domain.
    BadConfig {
        /// Description of the invalid field.
        reason: String,
    },
}

impl fmt::Display for ConvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvError::BadAssignment { expected, found } => {
                write!(f, "expected {expected} tap multipliers, found {found}")
            }
            ConvError::BadConfig { reason } => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl Error for ConvError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, ConvError>;
