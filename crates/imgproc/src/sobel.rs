//! Sobel edge detection — a second application demonstrating the
//! framework's application-agnostic behavioural interface (paper
//! Section II-B: "the proposed framework is application-agnostic in
//! principle").
//!
//! The application runs two 3×3 signed convolutions (Gx, Gy) through the
//! same DoF-aware engine and approximate multipliers as the Gaussian
//! application, combines them into a gradient magnitude, and scores
//! configurations against a golden (exact, stride-1, unscaled) edge map.

use crate::{AppResult, ConvConfig, ConvEngine, ConvError, Image, QuantKernel, Result, SynthKind};
use clapped_axops::Mul8s;
use std::sync::Arc;

/// The Sobel edge-detection application.
///
/// # Examples
///
/// ```
/// use clapped_axops::Catalog;
/// use clapped_imgproc::{ConvConfig, SobelEdge};
///
/// let catalog = Catalog::standard();
/// let exact = catalog.get("mul8s_exact").unwrap();
/// let app = SobelEdge::standard(32, exact.clone(), 7);
/// let taps: Vec<_> = (0..9).map(|_| exact.clone() as std::sync::Arc<dyn clapped_axops::Mul8s>).collect();
/// let r = app.evaluate(&ConvConfig::default(), &taps, &taps).unwrap();
/// assert_eq!(r.error_percent, 0.0); // golden configuration
/// ```
#[derive(Debug, Clone)]
pub struct SobelEdge {
    images: Vec<Image>,
    golden: Vec<Image>,
    gx: ConvEngine,
    gy: ConvEngine,
}

/// Sobel Gx kernel, scaled ×8 so approximate low-bit structure is
/// exercised (shift 3 renormalizes).
const GX: [i8; 9] = [-8, 0, 8, -16, 0, 16, -8, 0, 8];
/// Sobel Gy kernel (transpose of Gx).
const GY: [i8; 9] = [-8, -16, -8, 0, 0, 0, 8, 16, 8];
/// Normalization shift for the scaled kernels.
const SHIFT: u32 = 3;

impl SobelEdge {
    /// Builds the application over explicit images with a golden edge
    /// map computed by the exact operator at stride 1.
    ///
    /// # Panics
    ///
    /// Panics if `images` is empty.
    pub fn new(images: Vec<Image>, exact: Arc<dyn Mul8s>) -> SobelEdge {
        assert!(!images.is_empty(), "need at least one image");
        let gx = ConvEngine::new(QuantKernel::from_coeffs(3, &GX, SHIFT));
        let gy = ConvEngine::new(QuantKernel::from_coeffs(3, &GY, SHIFT));
        let taps: Vec<Arc<dyn Mul8s>> = (0..9).map(|_| exact.clone()).collect();
        let golden = images
            .iter()
            .map(|img| {
                edge_map(&gx, &gy, img, &ConvConfig::default(), &taps, &taps)
                    .expect("golden configuration is always valid")
            })
            .collect();
        SobelEdge {
            images,
            golden,
            gx,
            gy,
        }
    }

    /// Standard 3-image synthetic workload (blobs, bars, checkerboard —
    /// edge-rich content).
    pub fn standard(size: usize, exact: Arc<dyn Mul8s>, seed: u64) -> SobelEdge {
        let images = vec![
            Image::synthetic(SynthKind::Blobs, size, size, seed),
            Image::synthetic(SynthKind::Bars, size, size, seed.wrapping_add(1)),
            Image::synthetic(SynthKind::Checkerboard, size, size, seed.wrapping_add(2)),
        ];
        SobelEdge::new(images, exact)
    }

    /// Number of images in the workload.
    pub fn image_count(&self) -> usize {
        self.images.len()
    }

    /// Computes the edge map of one image under a configuration.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (2D mode only — gradients are not
    /// separable in this formulation).
    pub fn edge_map(
        &self,
        image: &Image,
        config: &ConvConfig,
        gx_muls: &[Arc<dyn Mul8s>],
        gy_muls: &[Arc<dyn Mul8s>],
    ) -> Result<Image> {
        edge_map(&self.gx, &self.gy, image, config, gx_muls, gy_muls)
    }

    /// Evaluates a configuration: mean PSNR and application-level error
    /// of its edge maps against the golden edge maps.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn evaluate(
        &self,
        config: &ConvConfig,
        gx_muls: &[Arc<dyn Mul8s>],
        gy_muls: &[Arc<dyn Mul8s>],
    ) -> Result<AppResult> {
        let factor = config.reduction_factor();
        let mut psnr_sum = 0.0;
        let mut err_sum = 0.0;
        for (img, golden) in self.images.iter().zip(&self.golden) {
            let out = self.edge_map(img, config, gx_muls, gy_muls)?;
            let full = if factor > 1 {
                out.upscale_to(factor, img.width(), img.height())
            } else {
                out
            };
            psnr_sum += crate::psnr_capped(golden, &full);
            err_sum += crate::app_error_percent(&full, golden);
        }
        let n = self.images.len() as f64;
        Ok(AppResult {
            psnr_db: psnr_sum / n,
            error_percent: err_sum / n,
        })
    }
}

fn edge_map(
    gx: &ConvEngine,
    gy: &ConvEngine,
    image: &Image,
    config: &ConvConfig,
    gx_muls: &[Arc<dyn Mul8s>],
    gy_muls: &[Arc<dyn Mul8s>],
) -> Result<Image> {
    if config.mode != crate::ConvMode::TwoD {
        return Err(ConvError::BadConfig {
            reason: "Sobel gradients support 2D mode only".to_string(),
        });
    }
    let rx = gx.convolve_raw(image, config, gx_muls)?;
    let ry = gy.convolve_raw(image, config, gy_muls)?;
    let data = rx
        .as_slice()
        .iter()
        .zip(ry.as_slice())
        // |Gx| + |Gy| magnitude, clamped to 8 bits.
        .map(|(&gx, &gy)| (gx.abs() + gy.abs()).clamp(0, 255) as u8)
        .collect();
    Ok(Image::from_vec(rx.width(), rx.height(), data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapped_axops::Catalog;

    fn taps(m: &Arc<clapped_axops::AxMul>, n: usize) -> Vec<Arc<dyn Mul8s>> {
        (0..n).map(|_| m.clone() as Arc<dyn Mul8s>).collect()
    }

    #[test]
    fn golden_configuration_is_zero_error() {
        let cat = Catalog::standard();
        let exact = cat.get("mul8s_exact").unwrap();
        let app = SobelEdge::standard(24, exact.clone(), 3);
        let r = app
            .evaluate(&ConvConfig::default(), &taps(&exact, 9), &taps(&exact, 9))
            .unwrap();
        assert_eq!(r.error_percent, 0.0);
    }

    #[test]
    fn edges_respond_to_contrast() {
        let cat = Catalog::standard();
        let exact = cat.get("mul8s_exact").unwrap();
        let app = SobelEdge::standard(24, exact.clone(), 3);
        // A flat image has no edges.
        let flat = Image::filled(24, 24, 100);
        let edges = app
            .edge_map(&flat, &ConvConfig::default(), &taps(&exact, 9), &taps(&exact, 9))
            .unwrap();
        assert!(edges.mean() < 2.0, "flat image mean edge {}", edges.mean());
        // Bars have strong horizontal edges.
        let bars = Image::synthetic(SynthKind::Bars, 24, 24, 0);
        let edges = app
            .edge_map(&bars, &ConvConfig::default(), &taps(&exact, 9), &taps(&exact, 9))
            .unwrap();
        assert!(edges.mean() > 10.0, "bars mean edge {}", edges.mean());
    }

    #[test]
    fn approximate_multipliers_degrade_edges() {
        let cat = Catalog::standard();
        let exact = cat.get("mul8s_exact").unwrap();
        let rough = cat.get("mul8s_bam_v8_h3").unwrap();
        let app = SobelEdge::standard(24, exact.clone(), 3);
        let r = app
            .evaluate(&ConvConfig::default(), &taps(&rough, 9), &taps(&rough, 9))
            .unwrap();
        assert!(r.error_percent > 0.5, "error {}", r.error_percent);
    }

    #[test]
    fn stride_and_scale_dofs_apply() {
        let cat = Catalog::standard();
        let exact = cat.get("mul8s_exact").unwrap();
        let app = SobelEdge::standard(24, exact.clone(), 3);
        let cfg = ConvConfig {
            stride: 2,
            downsample: true,
            scale: 1,
            ..ConvConfig::default()
        };
        let r = app
            .evaluate(&cfg, &taps(&exact, 9), &taps(&exact, 9))
            .unwrap();
        assert!(r.error_percent > 0.0);
    }

    #[test]
    fn separable_mode_is_rejected() {
        let cat = Catalog::standard();
        let exact = cat.get("mul8s_exact").unwrap();
        let app = SobelEdge::standard(16, exact.clone(), 3);
        let cfg = ConvConfig {
            mode: crate::ConvMode::Separable,
            ..ConvConfig::default()
        };
        assert!(app
            .evaluate(&cfg, &taps(&exact, 6), &taps(&exact, 6))
            .is_err());
    }
}
