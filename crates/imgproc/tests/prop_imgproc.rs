//! Property tests for the imaging layer.

use clapped_axops::{Catalog, Mul8s};
use clapped_imgproc::{app_error_percent, psnr, ConvConfig, ConvEngine, Image, QuantKernel, SynthKind};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

fn exact_taps(n: usize) -> Vec<Arc<dyn Mul8s>> {
    static CATALOG: OnceLock<Catalog> = OnceLock::new();
    let cat = CATALOG.get_or_init(Catalog::standard);
    let exact = cat.get("mul8s_exact").expect("present");
    (0..n).map(|_| exact.clone() as Arc<dyn Mul8s>).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// PGM roundtrips arbitrary images exactly (P5).
    #[test]
    fn pgm_roundtrip(
        w in 1usize..24, h in 1usize..24,
        seed: u64,
    ) {
        let img = Image::synthetic(SynthKind::SmoothField, w.max(2), h.max(2), seed);
        let back = Image::from_pgm(&img.to_pgm()).expect("well-formed");
        prop_assert_eq!(img, back);
    }

    /// Convolution output stays inside the image value range and the
    /// engine never panics over the DoF grid.
    #[test]
    fn convolution_total_over_dof_grid(
        seed: u64,
        stride in 1usize..=3,
        downsample: bool,
        scale in 1usize..=2,
    ) {
        let img = Image::synthetic(SynthKind::Blobs, 16, 16, seed);
        let engine = ConvEngine::new(QuantKernel::gaussian(3, 0.85));
        let cfg = ConvConfig { stride, downsample, scale, ..ConvConfig::default() };
        let out = engine.convolve(&img, &cfg, &exact_taps(9)).expect("valid config");
        let expected_w = (16 / scale).div_ceil(if downsample { stride } else { 1 });
        prop_assert_eq!(out.width(), expected_w);
        // Output pixels are even (quantization rescale) and bounded.
        prop_assert!(out.as_slice().iter().all(|&v| v <= 254 && v % 2 == 0));
    }

    /// Smoothing is a contraction on the value range: output extremes
    /// never exceed input extremes by more than quantization slack.
    #[test]
    fn smoothing_is_range_contractive(seed: u64) {
        let img = Image::synthetic(SynthKind::Checkerboard, 16, 16, seed);
        let engine = ConvEngine::new(QuantKernel::gaussian(3, 1.0));
        let out = engine
            .convolve(&img, &ConvConfig::default(), &exact_taps(9))
            .expect("valid config");
        let in_max = *img.as_slice().iter().max().expect("non-empty");
        let in_min = *img.as_slice().iter().min().expect("non-empty");
        let out_max = *out.as_slice().iter().max().expect("non-empty");
        let out_min = *out.as_slice().iter().min().expect("non-empty");
        prop_assert!(out_max <= in_max + 4, "{} vs {}", out_max, in_max);
        prop_assert!(out_min + 4 >= in_min, "{} vs {}", out_min, in_min);
    }

    /// PSNR/identity and error-percent/identity axioms hold for
    /// arbitrary generated images.
    #[test]
    fn metric_identities(seed: u64, kind_pick in 0usize..5) {
        let kind = SynthKind::ALL[kind_pick];
        let img = Image::synthetic(kind, 12, 12, seed);
        prop_assert!(psnr(&img, &img).is_infinite());
        prop_assert_eq!(app_error_percent(&img, &img), 0.0);
    }

    /// Downscale then upscale is bounded-error (averaging loses at most
    /// the pooled dynamic range locally, and sizes restore exactly).
    #[test]
    fn scale_roundtrip_shapes(seed: u64) {
        let img = Image::synthetic(SynthKind::SmoothField, 16, 16, seed);
        let down = img.downscale(2);
        prop_assert_eq!(down.width(), 8);
        let up = down.upscale_to(2, 16, 16);
        prop_assert_eq!(up.width(), 16);
        prop_assert_eq!(up.height(), 16);
        // Smooth content survives the roundtrip within a loose bound.
        prop_assert!(app_error_percent(&img, &up) < 20.0);
    }
}
