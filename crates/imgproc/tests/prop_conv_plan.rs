//! Bit-identity of the compiled convolution path against the naive
//! reference, across the full cross-layer DoF grid.
//!
//! The compiled plan (`crates/imgproc/src/plan.rs`) is an optimization,
//! not an approximation: its column LUTs hold exactly the products the
//! naive path computes through virtual dispatch, and the border ring
//! applies the same clamp-to-edge semantics. These tests pin that down
//! exhaustively (every window × stride × scale × downsample × mode
//! combination) and generatively (random operator mixes, non-square
//! images, every synthetic content kind).

use clapped_axops::{Catalog, Mul8s};
use clapped_imgproc::{ConvConfig, ConvEngine, ConvMode, Image, QuantKernel, SynthKind};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// A deliberately heterogeneous operator pool: exact, truncation,
/// broken-array, compressor, lower-part-OR, Booth and logarithmic
/// families all take different code paths through table lookup and
/// column extraction.
const OP_POOL: [&str; 8] = [
    "mul8s_exact",
    "mul8s_tr3",
    "mul8s_bam_v8_h3",
    "mul8s_cmp8",
    "mul8s_loa6",
    "mul8s_booth_tr3",
    "mul8s_log",
    "mul8s_drum4",
];

fn catalog() -> &'static Catalog {
    static CATALOG: OnceLock<Catalog> = OnceLock::new();
    CATALOG.get_or_init(Catalog::standard)
}

/// `n` taps cycling through the operator pool starting at `phase`, so
/// different taps of one kernel get different operators.
fn mixed_taps(n: usize, phase: usize) -> Vec<Arc<dyn Mul8s>> {
    (0..n)
        .map(|i| {
            let name = OP_POOL[(phase + i) % OP_POOL.len()];
            catalog().get(name).expect("pool operator present") as Arc<dyn Mul8s>
        })
        .collect()
}

fn engine(window: usize) -> ConvEngine {
    ConvEngine::new(QuantKernel::gaussian(window, 0.3 + 0.35 * window as f64))
}

/// Exhaustive DoF cross: window {3,5} × stride {1..4} × scale {1..4} ×
/// downsample {no,yes} × mode {2D,separable} on a non-square image with
/// a mixed-operator assignment — 256 configurations, each asserted
/// bit-identical between the compiled and naive paths.
#[test]
fn compiled_path_is_bit_identical_over_exhaustive_dof_cross() {
    let img = Image::synthetic(SynthKind::Blobs, 23, 17, 91);
    for window in [3usize, 5] {
        let engine = engine(window);
        for stride in 1usize..=4 {
            for scale in 1usize..=4 {
                for downsample in [false, true] {
                    for mode in [ConvMode::TwoD, ConvMode::Separable] {
                        let cfg = ConvConfig { window, stride, downsample, mode, scale };
                        let taps = mixed_taps(cfg.taps(), stride + scale);
                        let fast = engine.convolve(&img, &cfg, &taps).expect("valid config");
                        let slow = engine.convolve_naive(&img, &cfg, &taps).expect("valid config");
                        assert_eq!(fast, slow, "compiled != naive under {cfg:?}");
                    }
                }
            }
        }
    }
}

/// The raw (unclamped accumulator) path runs the same compiled plan;
/// its requantized grid must equal the naive clamped output sampled on
/// the stride grid.
#[test]
fn raw_path_matches_naive_on_the_stride_grid() {
    let img = Image::synthetic(SynthKind::Bars, 19, 13, 5);
    let engine = engine(3);
    for stride in 1usize..=4 {
        let cfg = ConvConfig { stride, downsample: true, ..ConvConfig::default() };
        let taps = mixed_taps(cfg.taps(), stride);
        let raw = engine.convolve_raw(&img, &cfg, &taps).expect("valid config");
        let clamped = engine.convolve_naive(&img, &cfg, &taps).expect("valid config");
        assert_eq!(raw.width(), clamped.width());
        assert_eq!(raw.height(), clamped.height());
        for y in 0..raw.height() {
            for x in 0..raw.width() {
                let want = (raw.get(x, y).clamp(0, 127) << 1) as u8;
                assert_eq!(clamped.get(x, y), want, "stride {stride} at ({x},{y})");
            }
        }
    }
}

/// Images smaller than the window exercise the everything-is-border
/// fallback (the interior span is empty).
#[test]
fn tiny_images_take_the_border_path_identically() {
    for (w, h) in [(1usize, 1usize), (2, 5), (5, 2), (4, 4), (1, 9)] {
        let img = Image::synthetic(SynthKind::Gradient, w, h, 3);
        for window in [3usize, 5] {
            let engine = engine(window);
            for stride in [1usize, 3] {
                let cfg = ConvConfig { window, stride, ..ConvConfig::default() };
                let taps = mixed_taps(cfg.taps(), window);
                let fast = engine.convolve(&img, &cfg, &taps).expect("valid config");
                let slow = engine.convolve_naive(&img, &cfg, &taps).expect("valid config");
                assert_eq!(fast, slow, "{w}x{h} window {window} stride {stride}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generative sweep: random non-square sizes, content kinds, DoFs
    /// and per-tap operator draws from the pool must stay bit-identical.
    #[test]
    fn compiled_matches_naive_on_random_instances(
        // Lower bound 4: `Image::downscale` requires both dimensions to
        // be at least the scale factor.
        w in 4usize..40,
        h in 4usize..40,
        seed: u64,
        kind_pick in 0usize..5,
        window_pick in 0usize..2,
        stride in 1usize..=4,
        scale in 1usize..=4,
        downsample: bool,
        separable: bool,
        op_picks in proptest::collection::vec(0usize..8, 50),
    ) {
        let window = [3, 5][window_pick];
        let mode = if separable { ConvMode::Separable } else { ConvMode::TwoD };
        let cfg = ConvConfig { window, stride, downsample, mode, scale };
        let img = Image::synthetic(SynthKind::ALL[kind_pick], w, h, seed);
        let taps: Vec<Arc<dyn Mul8s>> = op_picks[..cfg.taps()]
            .iter()
            .map(|&i| catalog().get(OP_POOL[i]).expect("pool operator") as Arc<dyn Mul8s>)
            .collect();
        let fast = engine(window).convolve(&img, &cfg, &taps).expect("valid config");
        let slow = engine(window).convolve_naive(&img, &cfg, &taps).expect("valid config");
        prop_assert_eq!(fast, slow, "compiled != naive under {:?}", cfg);
    }
}
