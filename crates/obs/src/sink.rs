//! The JSONL event sink.
//!
//! When installed (via [`crate::enable_jsonl`]), every closed span and
//! every explicit [`emit_point`] appends one JSON object per line to
//! the trace file (by convention `results/trace.jsonl`). Records carry
//! **monotonic** timestamps in nanoseconds since the sink was
//! installed — wall-clock time never enters the trace, and nothing in
//! the trace ever feeds back into content digests or checkpoints.
//!
//! Record shapes:
//!
//! ```json
//! {"type":"start","version":1}
//! {"type":"span","name":"exec.batch","t_ns":123,"dur_ns":456,"depth":0,"thread":0}
//! {"type":"point","name":"dse.mbo.hv","t_ns":789,"evals":20.0,"hv":3.25}
//! {"type":"event","name":"serve.job","t_ns":790,"job":"7","tenant":"acme","evals":20.0}
//! {"type":"metrics","t_ns":999,"metrics":{...}}
//! ```
//!
//! `event` records ([`emit_event`]) carry string labels alongside the
//! numeric fields — the shape per-job streams use: every lifecycle
//! transition and progress tick of a `clapped-serve` job is one event
//! labelled with the job id and tenant, so a single trace file
//! multiplexes hundreds of concurrent job streams and `grep`/`jq`
//! demultiplexes them.

use serde_json::{json, Number, Value};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

struct Sink {
    writer: BufWriter<File>,
    epoch: Instant,
}

static SINK: Mutex<Option<Sink>> = Mutex::new(None);

/// Small dense thread ids for trace records (the OS `ThreadId` has no
/// stable public integer form).
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

fn thread_id() -> u64 {
    THREAD_ID.with(|&id| id)
}

pub(crate) fn install(path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    writeln!(writer, "{}", json!({ "type": "start", "version": 1 }))?;
    *SINK.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Sink { writer, epoch: Instant::now() });
    Ok(())
}

fn with_sink(f: impl FnOnce(&mut Sink)) {
    if let Some(sink) = SINK.lock().unwrap_or_else(std::sync::PoisonError::into_inner).as_mut() {
        f(sink);
    }
}

fn elapsed_ns(sink: &Sink) -> u64 {
    sink.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

pub(crate) fn emit_span(name: &str, depth: u32, dur_ns: u64) {
    with_sink(|sink| {
        let record = json!({
            "type": "span",
            "name": name,
            "t_ns": elapsed_ns(sink),
            "dur_ns": dur_ns,
            "depth": depth,
            "thread": thread_id(),
        });
        let _ = writeln!(sink.writer, "{record}");
    });
}

/// Emits one point record with numeric fields (non-finite values are
/// written as `null`); no-op while observability is disabled or when no
/// JSONL sink is installed.
pub fn emit_point(name: &str, fields: &[(&str, f64)]) {
    if !crate::enabled() {
        return;
    }
    with_sink(|sink| {
        let mut map = serde_json::Map::new();
        map.insert("type".to_string(), Value::String("point".to_string()));
        map.insert("name".to_string(), Value::String(name.to_string()));
        map.insert("t_ns".to_string(), Value::from(elapsed_ns(sink)));
        for &(key, v) in fields {
            let value = Number::from_f64(v).map(Value::Number).unwrap_or(Value::Null);
            map.insert(key.to_string(), value);
        }
        let _ = writeln!(sink.writer, "{}", Value::Object(map));
    });
}

/// Emits one labelled event record: string labels (job ids, tenants,
/// state names) plus numeric fields. Labels and fields land as flat
/// top-level keys next to `type`/`name`/`t_ns`; a label or field named
/// like one of those reserved keys is skipped rather than clobbering
/// the record shape. Non-finite numeric values are written as `null`.
/// No-op while observability is disabled or when no JSONL sink is
/// installed.
pub fn emit_event(name: &str, labels: &[(&str, &str)], fields: &[(&str, f64)]) {
    if !crate::enabled() {
        return;
    }
    with_sink(|sink| {
        let mut map = serde_json::Map::new();
        map.insert("type".to_string(), Value::String("event".to_string()));
        map.insert("name".to_string(), Value::String(name.to_string()));
        map.insert("t_ns".to_string(), Value::from(elapsed_ns(sink)));
        let reserved = |key: &str| matches!(key, "type" | "name" | "t_ns");
        for &(key, v) in labels {
            if !reserved(key) {
                map.insert(key.to_string(), Value::String(v.to_string()));
            }
        }
        for &(key, v) in fields {
            if !reserved(key) {
                let value = Number::from_f64(v).map(Value::Number).unwrap_or(Value::Null);
                map.insert(key.to_string(), value);
            }
        }
        let _ = writeln!(sink.writer, "{}", Value::Object(map));
    });
}

/// Flushes buffered trace records to disk (no-op without a sink).
pub fn flush() {
    with_sink(|sink| {
        let _ = sink.writer.flush();
    });
}

/// Writes the trailing metrics record, flushes and closes the sink.
pub(crate) fn close() {
    let mut guard = SINK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(mut sink) = guard.take() {
        let record = json!({
            "type": "metrics",
            "t_ns": elapsed_ns(&sink),
            "metrics": crate::metrics::snapshot_json(),
        });
        let _ = writeln!(sink.writer, "{record}");
        let _ = sink.writer.flush();
    }
}

pub(crate) fn is_installed() -> bool {
    SINK.lock().unwrap_or_else(std::sync::PoisonError::into_inner).is_some()
}
