//! The process-wide metrics registry: atomic counters, gauges and
//! fixed-bucket histograms, keyed by static names.
//!
//! Handles are registered on first use and leaked (the metric set of a
//! process is small and bounded by the number of instrumentation
//! sites), so recording through a held handle is a single atomic RMW.
//! The free functions ([`count`], [`gauge_set`], [`observe`]) look the
//! handle up per call behind the global enabled check — convenient for
//! call sites that fire at most a few thousand times per second.
//!
//! Values are plain `u64`/`f64`; span durations are recorded in
//! nanoseconds (see [`crate::span`]), other histograms define their own
//! unit (documented at the instrumentation site).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of power-of-two histogram buckets: bucket `b` counts values
/// `v` with `64 - v.leading_zeros() == b`, i.e. `v in [2^(b-1), 2^b)`
/// (bucket 0 counts zero). 40 buckets cover up to ~9 minutes in ns.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    const fn new() -> Counter {
        Counter { value: AtomicU64::new(0) }
    }

    /// Adds `n`; no-op while observability is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins gauge holding an `f64`.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    const fn new() -> Gauge {
        Gauge { bits: AtomicU64::new(0) }
    }

    /// Stores `v`; no-op while observability is disabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 before the first `set`).
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.bits.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket (power-of-two) histogram with count/sum/min/max.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    const fn new() -> Histogram {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [ZERO; HISTOGRAM_BUCKETS],
        }
    }

    /// Records one sample; no-op while observability is disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        let bucket = (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the aggregates.
    pub fn snapshot(&self) -> HistSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { self.min.load(Ordering::Relaxed) },
            max: self.max.load(Ordering::Relaxed),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Aggregates of a [`Histogram`] at one point in time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Per-bucket counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// Mean sample value; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One metric's value in a [`snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's running total.
    Counter(u64),
    /// A gauge's last value.
    Gauge(f64),
    /// A histogram's aggregates.
    Histogram(HistSnapshot),
}

#[derive(Clone, Copy)]
enum Entry {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

static REGISTRY: Mutex<BTreeMap<&'static str, Entry>> = Mutex::new(BTreeMap::new());

fn registry() -> std::sync::MutexGuard<'static, BTreeMap<&'static str, Entry>> {
    REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The counter registered under `name` (registered on first use).
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric type.
pub fn counter(name: &'static str) -> &'static Counter {
    match registry().entry(name).or_insert_with(|| Entry::Counter(Box::leak(Box::new(Counter::new())))) {
        Entry::Counter(c) => c,
        _ => panic!("metric {name:?} is not a counter"),
    }
}

/// The gauge registered under `name` (registered on first use).
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric type.
pub fn gauge(name: &'static str) -> &'static Gauge {
    match registry().entry(name).or_insert_with(|| Entry::Gauge(Box::leak(Box::new(Gauge::new())))) {
        Entry::Gauge(g) => g,
        _ => panic!("metric {name:?} is not a gauge"),
    }
}

/// The histogram registered under `name` (registered on first use).
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric type.
pub fn histogram(name: &'static str) -> &'static Histogram {
    match registry()
        .entry(name)
        .or_insert_with(|| Entry::Histogram(Box::leak(Box::new(Histogram::new()))))
    {
        Entry::Histogram(h) => h,
        _ => panic!("metric {name:?} is not a histogram"),
    }
}

/// Adds `n` to the counter `name`; single relaxed-load no-op while
/// observability is disabled.
#[inline]
pub fn count(name: &'static str, n: u64) {
    if crate::enabled() {
        counter(name).add(n);
    }
}

/// Sets the gauge `name` to `v`; no-op while observability is disabled.
#[inline]
pub fn gauge_set(name: &'static str, v: f64) {
    if crate::enabled() {
        gauge(name).set(v);
    }
}

/// Records `v` into the histogram `name`; no-op while observability is
/// disabled.
#[inline]
pub fn observe(name: &'static str, v: u64) {
    if crate::enabled() {
        histogram(name).record(v);
    }
}

/// The current value of the counter `name` (0 if never registered).
pub fn counter_value(name: &str) -> u64 {
    match registry().get(name) {
        Some(Entry::Counter(c)) => c.value(),
        _ => 0,
    }
}

/// A point-in-time copy of every registered metric, name-sorted.
pub fn snapshot() -> Vec<(&'static str, MetricValue)> {
    registry()
        .iter()
        .map(|(&name, entry)| {
            let value = match entry {
                Entry::Counter(c) => MetricValue::Counter(c.value()),
                Entry::Gauge(g) => MetricValue::Gauge(g.value()),
                Entry::Histogram(h) => MetricValue::Histogram(h.snapshot()),
            };
            (name, value)
        })
        .collect()
}

/// The snapshot as a JSON object (used for the trailing trace record
/// and `bench_obs`).
pub fn snapshot_json() -> serde_json::Value {
    let mut map = serde_json::Map::new();
    for (name, value) in snapshot() {
        let v = match value {
            MetricValue::Counter(c) => serde_json::json!({ "type": "counter", "value": c }),
            MetricValue::Gauge(g) => serde_json::json!({
                "type": "gauge",
                "value": serde_json::Number::from_f64(g)
                    .map(serde_json::Value::Number)
                    .unwrap_or(serde_json::Value::Null),
            }),
            MetricValue::Histogram(h) => serde_json::json!({
                "type": "histogram",
                "count": h.count,
                "sum": h.sum,
                "min": h.min,
                "max": h.max,
                "mean": serde_json::Number::from_f64(h.mean())
                    .map(serde_json::Value::Number)
                    .unwrap_or(serde_json::Value::Null),
            }),
        };
        map.insert(name.to_string(), v);
    }
    serde_json::Value::Object(map)
}

/// Zeroes every registered metric (handles stay registered). Used by
/// benches and tests that measure from a clean slate.
pub fn reset_values() {
    for entry in registry().values() {
        match entry {
            Entry::Counter(c) => c.reset(),
            Entry::Gauge(g) => g.reset(),
            Entry::Histogram(h) => h.reset(),
        }
    }
}
