//! Wall-clock facade: the only sanctioned doorway to `Instant`.
//!
//! CLAppED's determinism story forbids wall-clock reads outside this
//! crate (the `wall-clock` source lint enforces it): a `Instant::now()`
//! call sitting next to search or evaluation logic is one refactor away
//! from steering a result. Code that legitimately needs elapsed time —
//! span timing here, job-duration histograms in `clapped-exec`,
//! wall-clock budgets in `clapped-dse` — goes through [`Stopwatch`] and
//! [`Deadline`], which expose *durations* but never absolute
//! timestamps, and keep every `Instant` token inside `clapped-obs`.

use std::time::{Duration, Instant};

/// A started monotonic timer. Measures elapsed time; cannot be read as
/// an absolute timestamp.
///
/// # Examples
///
/// ```
/// let sw = clapped_obs::Stopwatch::start();
/// let _ = (0..100).sum::<u64>();
/// assert!(sw.elapsed() >= std::time::Duration::ZERO);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts a new stopwatch.
    #[inline]
    pub fn start() -> Stopwatch {
        Stopwatch { start: Instant::now() }
    }

    /// Time elapsed since [`Stopwatch::start`].
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed nanoseconds, saturated to `u64` — the unit the metrics
    /// histograms store.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }
}

/// A wall-clock budget: a stopwatch with a limit, asked "are we there
/// yet". An unlimited deadline (no budget configured) never expires.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
///
/// let none = clapped_obs::Deadline::unlimited();
/// assert!(!none.expired());
/// let tight = clapped_obs::Deadline::after(Duration::ZERO);
/// assert!(tight.expired());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    started: Stopwatch,
    budget: Option<Duration>,
}

impl Deadline {
    /// A deadline `budget` from now.
    #[inline]
    pub fn after(budget: Duration) -> Deadline {
        Deadline { started: Stopwatch::start(), budget: Some(budget) }
    }

    /// A deadline that never expires.
    #[inline]
    pub fn unlimited() -> Deadline {
        Deadline { started: Stopwatch::start(), budget: None }
    }

    /// [`Deadline::after`] when a budget is given, otherwise
    /// [`Deadline::unlimited`] — matches config fields of type
    /// `Option<Duration>`.
    #[inline]
    pub fn from_budget(budget: Option<Duration>) -> Deadline {
        Deadline { started: Stopwatch::start(), budget }
    }

    /// True once the budget has been used up (never for unlimited).
    #[inline]
    pub fn expired(&self) -> bool {
        match self.budget {
            Some(b) => self.started.elapsed() >= b,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
        assert!(sw.elapsed_ns() >= a.as_nanos() as u64);
    }

    #[test]
    fn zero_budget_expires_immediately() {
        assert!(Deadline::after(Duration::ZERO).expired());
        assert!(Deadline::from_budget(Some(Duration::ZERO)).expired());
    }

    #[test]
    fn generous_budget_does_not_expire() {
        assert!(!Deadline::after(Duration::from_secs(3600)).expired());
    }

    #[test]
    fn unlimited_never_expires() {
        assert!(!Deadline::unlimited().expired());
        assert!(!Deadline::from_budget(None).expired());
    }
}
