//! Structured tracing and metrics for the CLAppED stack.
//!
//! `clapped-obs` is a std-only observability layer: hierarchical
//! [`span`]s with monotonic timing, a process-wide [`metrics`] registry
//! (atomic counters, gauges, fixed-bucket histograms) and an optional
//! JSONL event [`sink`] writing one record per line (by convention to
//! `results/trace.jsonl`).
//!
//! # The disabled fast path
//!
//! Observability is **off by default** and every instrumentation entry
//! point guards on a single relaxed atomic load ([`enabled`]). A span
//! enter/exit or counter add while disabled costs a load plus a
//! predictable branch — around a nanosecond — so instrumentation can
//! stay in hot code unconditionally (`bench_obs` measures the exact
//! figure and records it in `results/bench_obs.json`).
//!
//! # Determinism
//!
//! Instrumentation only *observes*: it reads monotonic clocks and
//! updates atomics, never touches an RNG stream, a content digest or a
//! checkpoint. Traced and untraced runs of the same seeded search are
//! bit-identical (a test in `clapped-dse` asserts this).
//!
//! # Examples
//!
//! ```
//! clapped_obs::enable();
//! {
//!     let _span = clapped_obs::span("demo.work");
//!     clapped_obs::metrics::count("demo.items", 3);
//! }
//! assert_eq!(clapped_obs::metrics::counter_value("demo.items"), 3);
//! assert!(clapped_obs::report().contains("demo.work"));
//! clapped_obs::disable();
//! ```

pub mod clock;
pub mod metrics;
pub mod sink;

pub use clock::{Deadline, Stopwatch};
pub use metrics::{count, gauge_set, observe, Counter, Gauge, Histogram, MetricValue};
pub use sink::{emit_event, emit_point, flush};

use std::cell::Cell;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether observability is currently enabled — a single relaxed atomic
/// load, the guard every instrumentation site checks first.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns on metric collection and span timing (no JSONL sink).
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns on metric collection, span timing and the JSONL event sink
/// writing to `path` (parent directories are created; an existing file
/// is truncated).
///
/// # Errors
///
/// Returns the I/O error if the trace file cannot be created.
pub fn enable_jsonl(path: impl AsRef<Path>) -> std::io::Result<()> {
    sink::install(path.as_ref())?;
    enable();
    Ok(())
}

/// Turns observability off: instrumentation reverts to the no-op fast
/// path, and an installed JSONL sink writes its trailing metrics record
/// and closes. Collected metric values are kept (see
/// [`metrics::snapshot`] / [`report`]).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
    sink::close();
}

/// [`disable`] plus [`metrics::reset_values`]: back to a pristine
/// state. Intended for tests and benches.
pub fn reset() {
    disable();
    metrics::reset_values();
}

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// An open hierarchical span; timing stops and the record is emitted
/// when it drops. Obtain via [`span`].
#[must_use = "a span measures the scope it lives in; bind it with `let _span = ...`"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    depth: u32,
}

/// Opens a span named `name`. While observability is disabled this is a
/// no-op costing one relaxed atomic load (enter) plus one branch
/// (exit). While enabled, the span records its duration into the
/// histogram `name` (nanoseconds) on drop and appends a span record to
/// the JSONL sink when one is installed. Spans nest per thread; `depth`
/// in the trace reflects the nesting.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { name, start: None, depth: 0 };
    }
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    Span { name, start: Some(Instant::now()), depth }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        let Some(start) = self.start.take() else {
            return;
        };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let dur_ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        metrics::observe(self.name, dur_ns);
        sink::emit_span(self.name, self.depth, dur_ns);
    }
}

/// Parses `--trace` / `--trace=PATH` from the process arguments; when
/// present, enables JSONL tracing (default path `results/trace.jsonl`,
/// relative to the working directory) and returns `true`. Example
/// binaries call this once at startup.
pub fn init_trace_from_args() -> bool {
    for a in std::env::args().skip(1) {
        if a == "--trace" {
            return enable_jsonl("results/trace.jsonl").is_ok();
        }
        if let Some(path) = a.strip_prefix("--trace=") {
            return enable_jsonl(path).is_ok();
        }
    }
    false
}

/// If observability is enabled: renders the end-of-run [`report`],
/// disables (closing the sink), and returns the report text. Returns
/// `None` when observability was never enabled — so examples can call
/// this unconditionally.
pub fn finish() -> Option<String> {
    if !enabled() && !sink::is_installed() {
        return None;
    }
    let text = report();
    disable();
    Some(text)
}

fn human_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.1}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

/// Formats every registered metric as an aligned text block — the
/// end-of-run stats report the examples print under `--trace`.
/// Histogram rows assume nanosecond samples for the human-readable
/// columns (span durations are; unit-less histograms such as
/// `exec.batch.jobs` additionally print their raw sum).
pub fn report() -> String {
    let snapshot = metrics::snapshot();
    let mut out = String::from("== observability report ==\n");
    if snapshot.is_empty() {
        out.push_str("(no metrics recorded)\n");
        return out;
    }
    let width = snapshot.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    for (name, value) in snapshot {
        let line = match value {
            MetricValue::Counter(c) => format!("{name:<width$}  counter  {c}"),
            MetricValue::Gauge(g) => format!("{name:<width$}  gauge    {g:.4}"),
            MetricValue::Histogram(h) => format!(
                "{name:<width$}  hist     count {:<8} mean {:<10} min {:<10} max {:<10} sum {}",
                h.count,
                human_ns(h.mean()),
                human_ns(h.min as f64),
                human_ns(h.max as f64),
                h.sum,
            ),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The enabled flag, registry and sink are process-wide; tests that
    /// toggle them serialize here.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_instrumentation_is_a_no_op() {
        let _guard = locked();
        reset();
        {
            let _span = span("test.noop");
            metrics::count("test.noop.counter", 5);
            metrics::gauge_set("test.noop.gauge", 1.0);
            metrics::observe("test.noop.hist", 10);
        }
        assert_eq!(metrics::counter_value("test.noop.counter"), 0);
        // The span never registered a histogram entry either.
        assert!(!metrics::snapshot().iter().any(|(n, _)| *n == "test.noop"));
    }

    #[test]
    fn counters_gauges_histograms_record_when_enabled() {
        let _guard = locked();
        reset();
        enable();
        metrics::count("test.c", 2);
        metrics::count("test.c", 3);
        metrics::gauge_set("test.g", 2.5);
        metrics::observe("test.h", 100);
        metrics::observe("test.h", 300);
        assert_eq!(metrics::counter_value("test.c"), 5);
        let snap = metrics::snapshot();
        let g = snap.iter().find(|(n, _)| *n == "test.g").unwrap();
        assert_eq!(g.1, MetricValue::Gauge(2.5));
        let MetricValue::Histogram(h) = &snap.iter().find(|(n, _)| *n == "test.h").unwrap().1
        else {
            panic!("test.h must be a histogram")
        };
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 400, 100, 300));
        assert!((h.mean() - 200.0).abs() < 1e-9);
        reset();
        assert_eq!(metrics::counter_value("test.c"), 0);
    }

    #[test]
    fn spans_aggregate_into_histograms_and_nest() {
        let _guard = locked();
        reset();
        enable();
        {
            let outer = span("test.outer");
            assert_eq!(outer.depth, 0);
            {
                let inner = span("test.inner");
                assert_eq!(inner.depth, 1);
            }
        }
        let snap = metrics::snapshot();
        for name in ["test.outer", "test.inner"] {
            let MetricValue::Histogram(h) =
                &snap.iter().find(|(n, _)| *n == name).unwrap().1
            else {
                panic!("{name} must be a histogram")
            };
            assert_eq!(h.count, 1);
        }
        assert!(report().contains("test.outer"));
        reset();
    }

    #[test]
    fn jsonl_sink_writes_well_formed_lines() {
        let _guard = locked();
        reset();
        let path = std::env::temp_dir().join(format!("clapped-obs-test-{}.jsonl", std::process::id()));
        enable_jsonl(&path).unwrap();
        {
            let _span = span("test.sink.span");
        }
        emit_point("test.sink.point", &[("value", 1.5), ("bad", f64::NAN)]);
        disable();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // start + span + point + trailing metrics
        assert_eq!(lines.len(), 4);
        for line in &lines {
            serde_json::from_str(line).expect("every trace line parses as JSON");
        }
        let span_rec = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(span_rec.get("type").and_then(|v| v.as_str()), Some("span"));
        assert_eq!(span_rec.get("name").and_then(|v| v.as_str()), Some("test.sink.span"));
        assert!(span_rec.get("dur_ns").and_then(|v| v.as_u64()).is_some());
        let point_rec = serde_json::from_str(lines[2]).unwrap();
        assert_eq!(point_rec.get("value").and_then(|v| v.as_f64()), Some(1.5));
        assert!(point_rec.get("bad").map(|v| v.is_null()).unwrap_or(false));
        let metrics_rec = serde_json::from_str(lines[3]).unwrap();
        assert_eq!(metrics_rec.get("type").and_then(|v| v.as_str()), Some("metrics"));
        let _ = std::fs::remove_file(&path);
        reset();
    }

    #[test]
    fn labelled_events_multiplex_job_streams() {
        let _guard = locked();
        reset();
        let path = std::env::temp_dir()
            .join(format!("clapped-obs-test-event-{}.jsonl", std::process::id()));
        enable_jsonl(&path).unwrap();
        emit_event(
            "serve.job",
            &[("job", "7"), ("tenant", "acme"), ("state", "running")],
            &[("evals", 20.0), ("hv", 3.25)],
        );
        // Reserved keys must not clobber the record shape.
        emit_event("serve.job", &[("type", "evil"), ("job", "8")], &[("t_ns", 0.0)]);
        disable();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // start + two events + trailing metrics
        assert_eq!(lines.len(), 4);
        let rec: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(rec.get("type").and_then(|v| v.as_str()), Some("event"));
        assert_eq!(rec.get("name").and_then(|v| v.as_str()), Some("serve.job"));
        assert_eq!(rec.get("job").and_then(|v| v.as_str()), Some("7"));
        assert_eq!(rec.get("tenant").and_then(|v| v.as_str()), Some("acme"));
        assert_eq!(rec.get("evals").and_then(|v| v.as_f64()), Some(20.0));
        let evil: serde_json::Value = serde_json::from_str(lines[2]).unwrap();
        assert_eq!(evil.get("type").and_then(|v| v.as_str()), Some("event"));
        assert_eq!(evil.get("job").and_then(|v| v.as_str()), Some("8"));
        assert!(evil.get("t_ns").and_then(|v| v.as_u64()).is_some(), "t_ns stays numeric");
        let _ = std::fs::remove_file(&path);
        reset();
    }

    #[test]
    fn finish_returns_none_when_never_enabled() {
        let _guard = locked();
        reset();
        assert!(finish().is_none());
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_confusion_panics() {
        metrics::histogram("test.type-confused");
        metrics::counter("test.type-confused");
    }
}
