//! End-to-end supervisor invariants: transparency when idle,
//! self-healing under injected faults, bit-exact checkpoint/resume.

use clapped_axops::{AxMul, MulArch};
use clapped_exec::Fnv64;
use clapped_imgproc::{ConvEngine, QuantKernel};
use clapped_netlist::{FaultKind, FaultSet};
use clapped_runtime::{
    DegradationLadder, FaultPlan, SlaSpec, StreamEvent, StreamOptions, StreamSupervisor,
    SwapReason, TrafficPhase,
};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

const IMAGE: usize = 16;

fn ops() -> Vec<Arc<AxMul>> {
    vec![
        Arc::new(AxMul::new("exact", MulArch::Exact)),
        Arc::new(AxMul::new("tr2", MulArch::Truncated { k: 2 })),
        Arc::new(AxMul::new("tr4", MulArch::Truncated { k: 4 })),
        Arc::new(AxMul::new("tr6", MulArch::Truncated { k: 6 })),
    ]
}

fn generous_sla() -> SlaSpec {
    SlaSpec { max_error_percent: 60.0, max_frame_time_us: 1e9 }
}

fn ladder_for(sla: &SlaSpec) -> DegradationLadder {
    let config = clapped_runtime::LadderConfig {
        image_size: IMAGE,
        calibration_frames: 2,
        ..clapped_runtime::LadderConfig::default()
    };
    DegradationLadder::build(&ops(), sla, &config).expect("ladder builds")
}

/// One shared generously-budgeted ladder (construction involves
/// accelerator characterization; build it once per process).
fn shared_ladder() -> &'static DegradationLadder {
    static LADDER: OnceLock<DegradationLadder> = OnceLock::new();
    LADDER.get_or_init(|| ladder_for(&generous_sla()))
}

/// The chained output digest of a *static* (never-reconfiguring) run of
/// one rung over the supervisor's exact traffic sequence.
fn static_digest(ladder: &DegradationLadder, rung: usize, options: &StreamOptions, frames: usize) -> u64 {
    let engine = ConvEngine::new(QuantKernel::gaussian(
        ladder.conv_config().window,
        ladder.kernel_sigma(),
    ));
    let taps = ladder.taps(rung);
    let mut phase = TrafficPhase::Calm;
    let mut digest = 0u64;
    for frame in 0..frames {
        phase = options.traffic.next_phase(options.seed, frame, phase);
        let img = options.traffic.frame(options.seed, frame, phase, ladder.image_size());
        let out = engine.convolve(&img, ladder.conv_config(), &taps).expect("valid stream");
        let mut h = Fnv64::new();
        h.write_u64(digest);
        h.write(out.as_slice());
        digest = h.finish();
    }
    digest
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A supervisor that never sees SLA pressure (generous ceiling) and
    /// never steps down (hold window longer than the stream) is
    /// *transparent*: its output is bit-identical to the static
    /// configuration it started on, and it logs no events.
    #[test]
    fn quiet_supervisor_is_bit_identical_to_static_config(
        seed in 0u64..1_000_000,
        frames in 4usize..10,
        start_rung in 0usize..2,
    ) {
        let ladder = shared_ladder();
        prop_assume!(start_rung < ladder.len());
        let options = StreamOptions {
            seed,
            initial_rung: start_rung,
            hold_frames: frames + 1, // a step-down can never qualify
            ..StreamOptions::default()
        };
        let mut sup = StreamSupervisor::new(ladder.clone(), generous_sla(), options.clone())
            .expect("supervisor builds");
        let report = sup.run(frames).expect("stream runs");
        prop_assert_eq!(report.swaps, 0);
        prop_assert!(report.events.is_empty());
        prop_assert_eq!(report.violations, 0);
        prop_assert_eq!(sup.rung(), start_rung);
        let expected = static_digest(ladder, start_rung, &options, frames);
        prop_assert_eq!(report.output_digest, expected,
            "supervised output must be bit-identical to the static configuration");
    }
}

fn msb_fault(ladder: &DegradationLadder, rung: usize) -> FaultSet {
    let msb = ladder.rungs()[rung].op.netlist().outputs().last().expect("product MSB").1;
    FaultSet::empty().stuck_at(msb, FaultKind::StuckAt1)
}

fn faulted_options(ladder: &DegradationLadder) -> StreamOptions {
    let rung = 1.min(ladder.len() - 1);
    StreamOptions {
        seed: 11,
        initial_rung: rung,
        hold_frames: 1_000, // isolate the fault path from headroom swaps
        audit: true,
        fault: Some(FaultPlan { frame: 3, tap: 4, faults: msb_fault(ladder, rung) }),
        ..StreamOptions::default()
    }
}

#[test]
fn injected_fault_is_detected_quarantined_and_recovered() {
    let ladder = shared_ladder();
    let options = faulted_options(ladder);
    let faulty_rung = options.initial_rung;
    let mut sup = StreamSupervisor::new(ladder.clone(), generous_sla(), options)
        .expect("supervisor builds");
    let report = sup.run(20).expect("stream survives the fault");

    let latency = report.detection_latency_frames.expect("the watchdog must catch an MSB fault");
    assert!(latency <= 3, "detection latency {latency} frames exceeds the probe budget's reach");
    assert!(
        report.events.iter().any(|e| matches!(e,
            StreamEvent::FaultDetected { rung, .. } if *rung == faulty_rung)),
        "a FaultDetected event must be logged"
    );
    assert!(
        report.events.iter().any(|e| matches!(e,
            StreamEvent::Quarantine { rung, .. } if *rung == faulty_rung)),
        "the corrupted rung must be quarantined"
    );
    assert!(
        report.events.iter().any(|e| matches!(e,
            StreamEvent::Swap { reason: SwapReason::FaultRecovery, .. })),
        "recovery must be a logged swap"
    );
    assert_ne!(sup.rung(), faulty_rung, "the stream must leave the corrupted rung");

    // Post-recovery frames are healthy: the audited true error of every
    // frame after detection stays within the (generous) SLA.
    let detect_frame = report
        .events
        .iter()
        .find_map(|e| match e {
            StreamEvent::FaultDetected { frame, .. } => Some(*frame),
            _ => None,
        })
        .expect("detection event present");
    for rec in report.records.iter().filter(|r| r.frame >= detect_frame) {
        let true_err = rec.true_error_percent.expect("audit enabled");
        assert!(
            true_err <= generous_sla().max_error_percent,
            "post-recovery frame {} violates the SLA ({true_err:.2}%)",
            rec.frame
        );
    }
}

#[test]
fn checkpoint_resume_replays_the_uninterrupted_stream_bit_exactly() {
    let ladder = shared_ladder();
    let options = faulted_options(ladder);
    let total = 16;
    let cut = 5; // after injection (frame 3), around detection

    // Uninterrupted reference run.
    let mut whole = StreamSupervisor::new(ladder.clone(), generous_sla(), options.clone())
        .expect("supervisor builds");
    let whole_report = whole.run(total).expect("runs");

    // Killed-and-resumed run: checkpoint mid-stream, rebuild from JSON.
    let mut first = StreamSupervisor::new(ladder.clone(), generous_sla(), options.clone())
        .expect("supervisor builds");
    first.run(cut).expect("first half runs");
    let snapshot = first.checkpoint();
    drop(first);
    let mut resumed =
        StreamSupervisor::resume(ladder.clone(), generous_sla(), options.clone(), &snapshot)
            .expect("checkpoint restores");
    assert_eq!(resumed.frame(), cut);
    let resumed_report = resumed.run(total).expect("second half runs");

    assert_eq!(resumed_report.output_digest, whole_report.output_digest,
        "resumed stream must emit bit-identical pixels");
    assert_eq!(resumed_report.events, whole_report.events,
        "resumed stream must log the identical reconfiguration history");
    assert_eq!(resumed_report.swaps, whole_report.swaps);
    assert_eq!(resumed_report.violations, whole_report.violations);
    assert_eq!(resumed.rung(), whole.rung());
    assert_eq!(
        resumed_report.detection_latency_frames,
        whole_report.detection_latency_frames
    );

    // And the checkpoint text itself round-trips byte-identically.
    let again = StreamSupervisor::resume(
        ladder.clone(),
        generous_sla(),
        options,
        &snapshot,
    )
    .expect("restores twice");
    assert_eq!(again.checkpoint(), snapshot);
}

#[test]
fn malformed_checkpoints_are_rejected() {
    let ladder = shared_ladder();
    let options = StreamOptions::default();
    let sla = generous_sla();
    for text in [
        "",
        "not json",
        "{}",
        r#"{"version": 999}"#,
        r#"{"version": 1, "seed": 42}"#, // wrong seed (options.seed == 1)
    ] {
        assert!(
            StreamSupervisor::resume(ladder.clone(), sla, options.clone(), text).is_err(),
            "checkpoint {text:?} must be rejected"
        );
    }
}
