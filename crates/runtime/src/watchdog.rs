//! Mid-stream fault detection against the exhaustive behavioural table.
//!
//! A hardware fault (an SEU, a stuck net) silently corrupts one tap's
//! multiplier: the stream keeps flowing, quality quietly degrades. The
//! watchdog exploits what this workspace already has — every healthy
//! operator's behaviour is an exhaustive 65 536-entry table — and spot
//! checks the *deployed* taps against it on operand pairs the current
//! frame actually exercised (real pixels against real kernel weights,
//! not synthetic sweeps). A single mismatch is proof of corruption: the
//! healthy table is ground truth by construction.

use crate::frame_seed;
use clapped_axops::Mul8s;
use clapped_imgproc::Image;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Salt for watchdog probe draws.
const SALT_WATCHDOG: u64 = 0x5741_5443_4844_4F47;

/// Watchdog parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Probes per frame, spread across the taps.
    pub probes: usize,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig { probes: 24 }
    }
}

/// The outcome of one frame's probe pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogVerdict {
    /// Every probed tap agreed with the behavioural table.
    Healthy,
    /// A deployed tap contradicted the healthy table.
    Corrupted {
        /// The corrupted tap index.
        tap: usize,
        /// Probe operands.
        a: i8,
        /// Probe operands.
        b: i8,
        /// What the deployed tap produced.
        got: i16,
        /// What the healthy table says.
        want: i16,
    },
}

/// The per-frame behavioural-table spot checker.
#[derive(Debug, Clone, Copy)]
pub struct FaultWatchdog {
    config: WatchdogConfig,
}

impl FaultWatchdog {
    /// A watchdog with the given probe budget.
    pub fn new(config: WatchdogConfig) -> FaultWatchdog {
        FaultWatchdog { config }
    }

    /// Probes the deployed taps against the healthy operator on
    /// operand pairs drawn from the current frame's pixels and the
    /// kernel weights. Probe sites derive from `(stream seed, frame)`,
    /// so detection latency is reproducible run to run.
    pub fn probe(
        &self,
        deployed: &[Arc<dyn Mul8s>],
        healthy: &dyn Mul8s,
        input: &Image,
        coeffs: &[i8],
        stream_seed: u64,
        frame: usize,
    ) -> WatchdogVerdict {
        let _span = clapped_obs::span("runtime.watchdog");
        if deployed.is_empty() || coeffs.len() < deployed.len() {
            return WatchdogVerdict::Healthy;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(frame_seed(stream_seed, frame, SALT_WATCHDOG));
        for _ in 0..self.config.probes {
            let x = rng.gen_range(0..input.width());
            let y = rng.gen_range(0..input.height());
            let tap = rng.gen_range(0..deployed.len());
            // The quantized pixel this tap would actually multiply.
            let a = (input.get(x, y) >> 1) as i8;
            let b = coeffs[tap];
            let got = deployed[tap].mul(a, b);
            let want = healthy.mul(a, b);
            if got != want {
                return WatchdogVerdict::Corrupted { tap, a, b, got, want };
            }
        }
        WatchdogVerdict::Healthy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapped_axops::{AxMul, FaultedMul, MulArch};
    use clapped_imgproc::SynthKind;
    use clapped_netlist::{FaultKind, FaultSet};

    fn setup() -> (Arc<AxMul>, Vec<Arc<dyn Mul8s>>, Image, Vec<i8>) {
        let op = Arc::new(AxMul::new("tr3", MulArch::Truncated { k: 3 }));
        let deployed: Vec<Arc<dyn Mul8s>> =
            (0..9).map(|_| op.clone() as Arc<dyn Mul8s>).collect();
        let img = Image::synthetic(SynthKind::Blobs, 24, 24, 3).with_gaussian_noise(20.0, 5);
        let coeffs = vec![3i8, 11, 3, 11, 37, 11, 3, 11, 3];
        (op, deployed, img, coeffs)
    }

    #[test]
    fn healthy_taps_pass() {
        let (op, deployed, img, coeffs) = setup();
        let dog = FaultWatchdog::new(WatchdogConfig::default());
        for frame in 0..20 {
            assert_eq!(
                dog.probe(&deployed, op.as_ref(), &img, &coeffs, 7, frame),
                WatchdogVerdict::Healthy
            );
        }
    }

    #[test]
    fn msb_fault_is_detected_quickly_and_deterministically() {
        let (op, mut deployed, img, coeffs) = setup();
        let msb = op.netlist().outputs().last().expect("product MSB").1;
        let faults = FaultSet::empty().stuck_at(msb, FaultKind::StuckAt1);
        let faulted = Arc::new(FaultedMul::new(op.as_ref(), &faults).expect("valid site"));
        deployed[4] = faulted;
        let dog = FaultWatchdog::new(WatchdogConfig::default());
        let detect_at = (0..50).find(|&frame| {
            matches!(
                dog.probe(&deployed, op.as_ref(), &img, &coeffs, 7, frame),
                WatchdogVerdict::Corrupted { tap: 4, .. }
            )
        });
        let first = detect_at.expect("an MSB stuck-at-1 must be caught within 50 frames");
        assert!(first < 5, "detection latency {first} frames is implausibly long");
        // Determinism: the same frame yields the same verdict.
        let v1 = dog.probe(&deployed, op.as_ref(), &img, &coeffs, 7, first);
        let v2 = dog.probe(&deployed, op.as_ref(), &img, &coeffs, 7, first);
        assert_eq!(v1, v2);
    }
}
