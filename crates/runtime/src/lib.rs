//! Runtime-adaptive approximation under a quality SLA.
//!
//! Everything up to this crate picks an approximation configuration
//! **once, offline**. `clapped-runtime` closes the loop at *serving*
//! time: a [`StreamSupervisor`] pushes a stream of frames through the
//! compiled-plan convolution pipeline and keeps a per-stream SLA —
//! minimum output quality, maximum per-frame latency proxy — under
//! nonstationary traffic and mid-stream hardware faults, the scenario
//! of Vakili et al.'s runtime-switched approximate multipliers
//! (arXiv 2310.10053).
//!
//! The moving parts:
//!
//! - [`SlaSpec`] — the contract: a per-frame error ceiling (% mean
//!   absolute deviation from the exact pipeline) and a frame-time
//!   ceiling (µs, from the accelerator latency model).
//! - [`DegradationLadder`] — the SLA-ordered sequence of operator
//!   configurations the controller moves along. Each rung deploys one
//!   catalog multiplier uniformly across the taps; stepping a rung is a
//!   memoized LUT-plan swap (`clapped-imgproc`), not a recompile.
//! - [`QualityMonitor`] — estimates per-frame error from a subsampled
//!   reference evaluation (exact single-pixel reconvolution at a few
//!   deterministic positions), widened into a confidence interval using
//!   the deployed operator's `clapped-errmodel` statistics.
//! - [`FaultWatchdog`] — probes the deployed taps against the healthy
//!   operator's exhaustive behavioural table on inputs the current
//!   frame actually exercised; a mismatch quarantines the rung and the
//!   supervisor self-heals onto the nearest healthy rung.
//! - [`StreamSupervisor`] — the controller: asymmetric hysteresis
//!   (quality-first step-up, damped step-down) with exponential backoff
//!   on reconfiguration so it never flaps, checkpointable to versioned
//!   JSON so a killed stream resumes bit-exactly.
//!
//! # Determinism
//!
//! Every per-frame random choice — traffic phase transitions, monitor
//! sample positions, watchdog probe sites — derives from `(stream seed,
//! frame index)` alone, never from a free-running RNG stream. The same
//! seed therefore yields an identical trajectory (rung sequence,
//! reconfiguration log, chained output digest), and a checkpoint only
//! needs the controller state, not an RNG word position.

mod ladder;
mod monitor;
mod sla;
mod supervisor;
mod traffic;
mod watchdog;

pub use ladder::{DegradationLadder, LadderConfig, LadderRung};
pub use monitor::{MonitorConfig, QualityEstimate, QualityMonitor};
pub use sla::SlaSpec;
pub use supervisor::{
    FaultPlan, FrameRecord, StreamEvent, StreamOptions, StreamReport, StreamSupervisor,
    SwapReason, CHECKPOINT_VERSION,
};
pub use traffic::{TrafficConfig, TrafficPhase};
pub use watchdog::{FaultWatchdog, WatchdogConfig, WatchdogVerdict};

use std::error::Error;
use std::fmt;

/// Errors of the runtime supervisor. The supervisor is library code
/// driving a live stream: it degrades by returning these, never by
/// panicking.
#[derive(Debug)]
#[non_exhaustive]
pub enum RuntimeError {
    /// An invalid supervisor or ladder configuration.
    BadConfig {
        /// What was wrong.
        reason: String,
    },
    /// A malformed or incompatible checkpoint.
    Checkpoint {
        /// What was wrong.
        reason: String,
    },
    /// A convolution-engine error from the frame pipeline.
    Conv(clapped_imgproc::ConvError),
    /// An accelerator characterization/simulation error.
    Accel(clapped_accel::AccelError),
    /// A netlist-level error (fault construction).
    Netlist(clapped_netlist::NetlistError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::BadConfig { reason } => {
                write!(f, "invalid runtime configuration: {reason}")
            }
            RuntimeError::Checkpoint { reason } => write!(f, "invalid checkpoint: {reason}"),
            RuntimeError::Conv(e) => write!(f, "convolution error: {e}"),
            RuntimeError::Accel(e) => write!(f, "accelerator error: {e}"),
            RuntimeError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Conv(e) => Some(e),
            RuntimeError::Accel(e) => Some(e),
            RuntimeError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<clapped_imgproc::ConvError> for RuntimeError {
    fn from(e: clapped_imgproc::ConvError) -> RuntimeError {
        RuntimeError::Conv(e)
    }
}

impl From<clapped_accel::AccelError> for RuntimeError {
    fn from(e: clapped_accel::AccelError) -> RuntimeError {
        RuntimeError::Accel(e)
    }
}

impl From<clapped_netlist::NetlistError> for RuntimeError {
    fn from(e: clapped_netlist::NetlistError) -> RuntimeError {
        RuntimeError::Netlist(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// Derives an independent 64-bit seed for one purpose (`salt`) of one
/// frame of one stream. All per-frame randomness in this crate flows
/// through here, which is what makes checkpoints RNG-free.
pub(crate) fn frame_seed(stream_seed: u64, frame: usize, salt: u64) -> u64 {
    let mut h = clapped_exec::Fnv64::new();
    h.write_u64(stream_seed);
    h.write_u64(frame as u64);
    h.write_u64(salt);
    h.finish()
}
