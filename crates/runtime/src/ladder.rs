//! The degradation ladder: the SLA-ordered operator sequence the
//! controller moves along at runtime.
//!
//! Ladder construction is an *offline* calibration pass: every
//! candidate operator is deployed uniformly across the taps, its
//! application-level error is measured on calm- and burst-phase
//! calibration frames against the exact pipeline, and its hardware cost
//! comes from the accelerator characterization model. Candidates that
//! can never serve — too slow for the SLA's frame-time ceiling, or out
//! of the error budget even on calm traffic — are excluded up front.
//! The survivors are sorted most-accurate-first and pruned to the
//! Pareto front (a rung that errs more *without* being cheaper than its
//! predecessor is dead weight), so walking down the ladder always
//! trades quality for energy and walking up always buys quality back.
//!
//! Stepping between rungs at runtime swaps the deployed tap operators,
//! which the compiled-plan pipeline turns into a memoized LUT swap —
//! no table rebuild, no recompilation.

use crate::{Result, RuntimeError, SlaSpec, TrafficConfig, TrafficPhase};
use clapped_accel::{characterize, AcceleratorSpec, CharacterizeConfig};
use clapped_axops::{AxMul, Mul8s};
use clapped_errmodel::ErrorStats;
use clapped_imgproc::{app_error_percent, ConvConfig, ConvEngine, ConvMode, QuantKernel};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Seed salt separating calibration frames from the live stream.
const CALIB_SALT: u64 = 0x4C41_4444_4552_4341;

/// One rung: an operator deployed uniformly across the taps, with its
/// calibrated quality and characterized cost.
#[derive(Debug, Clone)]
pub struct LadderRung {
    /// Operator name.
    pub name: String,
    /// The healthy operator instance.
    pub op: Arc<AxMul>,
    /// Exhaustive statistical error metrics of the operator (memoized
    /// process-wide by `clapped-errmodel`).
    pub stats: ErrorStats,
    /// Mean application error (%) on calm-phase calibration frames.
    pub calm_error_percent: f64,
    /// Mean application error (%) on burst-phase calibration frames.
    pub burst_error_percent: f64,
    /// Modeled frame time (µs) of the rung's accelerator.
    pub frame_time_us: f64,
    /// Power-delay product (pJ) of the rung's accelerator.
    pub pdp_pj: f64,
    /// Modeled energy per frame (µJ).
    pub energy_per_image_uj: f64,
    /// LUT footprint of the rung's accelerator.
    pub luts: usize,
}

/// Ladder construction parameters.
#[derive(Debug, Clone)]
pub struct LadderConfig {
    /// Square frame side length.
    pub image_size: usize,
    /// Convolution window (odd).
    pub window: usize,
    /// Gaussian kernel sigma.
    pub kernel_sigma: f64,
    /// Calibration frames per traffic phase.
    pub calibration_frames: usize,
    /// Traffic model used for calibration noise levels.
    pub traffic: TrafficConfig,
    /// Stream seed (calibration frames are salted away from it).
    pub seed: u64,
    /// Accelerator characterization parameters.
    pub characterization: CharacterizeConfig,
}

impl Default for LadderConfig {
    fn default() -> LadderConfig {
        LadderConfig {
            image_size: 32,
            window: 3,
            kernel_sigma: 0.85,
            calibration_frames: 3,
            traffic: TrafficConfig::default(),
            seed: 1,
            characterization: CharacterizeConfig::default(),
        }
    }
}

/// The SLA-ordered rung sequence: index 0 is the most accurate rung
/// (always the exact operator), higher indices trade error for energy
/// along the calibrated Pareto front.
#[derive(Debug, Clone)]
pub struct DegradationLadder {
    rungs: Vec<LadderRung>,
    conv: ConvConfig,
    kernel_sigma: f64,
    image_size: usize,
}

impl DegradationLadder {
    /// Calibrates `ops` against `sla` and assembles the ladder.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadConfig`] if no candidate is the exact
    /// multiplier, if the SLA is invalid, or if no rung satisfies the
    /// frame-time ceiling; propagates characterization and convolution
    /// errors.
    pub fn build(ops: &[Arc<AxMul>], sla: &SlaSpec, config: &LadderConfig) -> Result<DegradationLadder> {
        let _span = clapped_obs::span("runtime.ladder.build");
        sla.validate()?;
        if config.image_size < config.window {
            return Err(RuntimeError::BadConfig {
                reason: format!(
                    "image size {} smaller than window {}",
                    config.image_size, config.window
                ),
            });
        }
        let conv = ConvConfig { window: config.window, ..ConvConfig::default() };
        let engine = ConvEngine::new(QuantKernel::gaussian(config.window, config.kernel_sigma));
        let exact = ops
            .iter()
            .find(|m| ErrorStats::of_multiplier(m.as_ref()).error_probability == 0.0)
            .ok_or_else(|| RuntimeError::BadConfig {
                reason: "ladder candidates must include the exact multiplier".to_string(),
            })?
            .clone();
        let taps = conv.taps();
        let exact_taps: Vec<Arc<dyn Mul8s>> =
            (0..taps).map(|_| exact.clone() as Arc<dyn Mul8s>).collect();

        // Calibration workload: the same frame set for every candidate,
        // salted away from the live stream's indices.
        let calib_seed = config.seed ^ CALIB_SALT;
        let mut calib: Vec<(TrafficPhase, clapped_imgproc::Image)> = Vec::new();
        for i in 0..config.calibration_frames.max(1) {
            for phase in [TrafficPhase::Calm, TrafficPhase::Burst] {
                calib.push((
                    phase,
                    config.traffic.frame(calib_seed, i, phase, config.image_size),
                ));
            }
        }
        let goldens: Vec<clapped_imgproc::Image> = calib
            .iter()
            .map(|(_, img)| engine.convolve(img, &conv, &exact_taps))
            .collect::<std::result::Result<_, _>>()?;

        let mut candidates: Vec<LadderRung> = Vec::new();
        for op in ops {
            let stats = ErrorStats::of_multiplier(op.as_ref());
            let op_taps: Vec<Arc<dyn Mul8s>> =
                (0..taps).map(|_| op.clone() as Arc<dyn Mul8s>).collect();
            let mut sums = [0.0f64; 2];
            let mut counts = [0usize; 2];
            for ((phase, img), golden) in calib.iter().zip(&goldens) {
                let out = engine.convolve(img, &conv, &op_taps)?;
                let slot = usize::from(*phase == TrafficPhase::Burst);
                sums[slot] += app_error_percent(&out, golden);
                counts[slot] += 1;
            }
            let calm_error = sums[0] / counts[0].max(1) as f64;
            let burst_error = sums[1] / counts[1].max(1) as f64;
            let spec = AcceleratorSpec {
                image_size: config.image_size,
                window: config.window,
                stride: conv.stride,
                downsample: conv.downsample,
                mode: ConvMode::TwoD,
                muls: vec![op.clone(); taps],
            };
            let report = characterize(&spec, &config.characterization)?;
            let rung = LadderRung {
                name: op.name().to_string(),
                op: op.clone(),
                stats,
                calm_error_percent: calm_error,
                burst_error_percent: burst_error,
                frame_time_us: report.image_time_us(),
                pdp_pj: report.pdp_pj,
                energy_per_image_uj: report.energy_per_image_uj,
                luts: report.luts,
            };
            // A rung must be *deployable*: fast enough for the latency
            // ceiling and within the error budget at least on calm
            // traffic (burst overruns are the controller's problem).
            if rung.frame_time_us <= sla.max_frame_time_us
                && rung.calm_error_percent <= sla.max_error_percent
            {
                candidates.push(rung);
            }
        }
        if !candidates
            .iter()
            .any(|r| r.stats.error_probability == 0.0)
        {
            return Err(RuntimeError::BadConfig {
                reason: "the exact rung does not satisfy the SLA frame-time ceiling".to_string(),
            });
        }
        // Most accurate first. Application-level ties (requantization
        // can absorb small operator errors entirely) break on the
        // operator's exhaustive error probability, so the exact
        // multiplier always anchors rung 0; energy and name keep the
        // order total and reproducible.
        candidates.sort_by(|a, b| {
            a.burst_error_percent
                .total_cmp(&b.burst_error_percent)
                .then(a.stats.error_probability.total_cmp(&b.stats.error_probability))
                .then(a.energy_per_image_uj.total_cmp(&b.energy_per_image_uj))
                .then(a.name.cmp(&b.name))
        });
        // Pareto prune: each kept rung must be strictly cheaper than
        // every rung above it, otherwise it errs more for nothing.
        let mut rungs: Vec<LadderRung> = Vec::new();
        for rung in candidates {
            match rungs.last() {
                Some(prev) if rung.energy_per_image_uj >= prev.energy_per_image_uj => {}
                _ => rungs.push(rung),
            }
        }
        Ok(DegradationLadder {
            rungs,
            conv,
            kernel_sigma: config.kernel_sigma,
            image_size: config.image_size,
        })
    }

    /// The rungs, most accurate first.
    pub fn rungs(&self) -> &[LadderRung] {
        &self.rungs
    }

    /// Number of rungs.
    pub fn len(&self) -> usize {
        self.rungs.len()
    }

    /// Whether the ladder is empty (never true for a built ladder).
    pub fn is_empty(&self) -> bool {
        self.rungs.is_empty()
    }

    /// The convolution configuration every rung shares.
    pub fn conv_config(&self) -> &ConvConfig {
        &self.conv
    }

    /// The kernel sigma the ladder was calibrated with.
    pub fn kernel_sigma(&self) -> f64 {
        self.kernel_sigma
    }

    /// The frame side length the ladder was calibrated for.
    pub fn image_size(&self) -> usize {
        self.image_size
    }

    /// The tap assignment of rung `rung`.
    pub fn taps(&self, rung: usize) -> Vec<Arc<dyn Mul8s>> {
        self.rungs
            .get(rung)
            .map(|r| {
                (0..self.conv.taps())
                    .map(|_| r.op.clone() as Arc<dyn Mul8s>)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The nearest more-accurate rung from `from`, skipping quarantined
    /// rungs. `None` at the top of the ladder.
    pub fn step_up(&self, from: usize, quarantined: &BTreeSet<usize>) -> Option<usize> {
        (0..from).rev().find(|i| !quarantined.contains(i))
    }

    /// The nearest cheaper rung from `from`, skipping quarantined
    /// rungs. `None` at the bottom.
    pub fn step_down(&self, from: usize, quarantined: &BTreeSet<usize>) -> Option<usize> {
        ((from + 1)..self.rungs.len()).find(|i| !quarantined.contains(i))
    }

    /// The nearest healthy rung to recover onto after quarantining
    /// `from`: prefers buying accuracy back (upward), falls back to the
    /// nearest cheaper rung.
    pub fn recovery_target(&self, from: usize, quarantined: &BTreeSet<usize>) -> Option<usize> {
        self.step_up(from, quarantined)
            .or_else(|| self.step_down(from, quarantined))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapped_axops::MulArch;

    fn ops() -> Vec<Arc<AxMul>> {
        vec![
            Arc::new(AxMul::new("exact", MulArch::Exact)),
            Arc::new(AxMul::new("tr2", MulArch::Truncated { k: 2 })),
            Arc::new(AxMul::new("tr4", MulArch::Truncated { k: 4 })),
            Arc::new(AxMul::new("tr6", MulArch::Truncated { k: 6 })),
        ]
    }

    fn sla() -> SlaSpec {
        SlaSpec { max_error_percent: 4.0, max_frame_time_us: 1e6 }
    }

    fn config() -> LadderConfig {
        LadderConfig { image_size: 16, calibration_frames: 2, ..LadderConfig::default() }
    }

    #[test]
    fn ladder_orders_accurate_to_cheap() {
        let ladder = DegradationLadder::build(&ops(), &sla(), &config()).expect("builds");
        assert!(ladder.len() >= 2, "at least exact + one approximate rung");
        assert_eq!(ladder.rungs()[0].stats.error_probability, 0.0);
        for pair in ladder.rungs().windows(2) {
            assert!(pair[0].burst_error_percent <= pair[1].burst_error_percent);
            assert!(
                pair[0].energy_per_image_uj > pair[1].energy_per_image_uj,
                "every step down must save energy"
            );
        }
    }

    #[test]
    fn missing_exact_operator_is_rejected() {
        let approx_only = vec![Arc::new(AxMul::new("tr4", MulArch::Truncated { k: 4 }))];
        assert!(DegradationLadder::build(&approx_only, &sla(), &config()).is_err());
    }

    #[test]
    fn stepping_skips_quarantined_rungs() {
        let ladder = DegradationLadder::build(&ops(), &sla(), &config()).expect("builds");
        let mut q = BTreeSet::new();
        if ladder.len() >= 3 {
            q.insert(1);
            assert_eq!(ladder.step_up(2, &q), Some(0));
            assert_eq!(ladder.step_down(0, &q), Some(2));
            assert_eq!(ladder.recovery_target(1, &q), Some(0));
        }
        assert_eq!(ladder.step_up(0, &BTreeSet::new()), None);
        assert_eq!(ladder.step_down(ladder.len() - 1, &BTreeSet::new()), None);
    }

    #[test]
    fn build_is_deterministic() {
        let a = DegradationLadder::build(&ops(), &sla(), &config()).expect("builds");
        let b = DegradationLadder::build(&ops(), &sla(), &config()).expect("builds");
        let names: Vec<&str> = a.rungs().iter().map(|r| r.name.as_str()).collect();
        let names_b: Vec<&str> = b.rungs().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, names_b);
        for (x, y) in a.rungs().iter().zip(b.rungs()) {
            assert_eq!(x.burst_error_percent.to_bits(), y.burst_error_percent.to_bits());
        }
    }
}
