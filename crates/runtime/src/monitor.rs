//! Online quality monitoring by subsampled reference evaluation.
//!
//! Running the exact pipeline alongside the approximate one would cost
//! a full second convolution per frame — exactly the work approximation
//! is supposed to save. The monitor instead reconvolves a *few dozen*
//! deterministic output positions with the exact operator's LUT columns
//! and compares them against the deployed output. The subsample mean is
//! an unbiased estimate of the frame's application error (the same
//! `app_error_percent` convention used everywhere in the workspace);
//! `clapped-errmodel`'s exhaustive operator statistics provide a
//! variance floor so a lucky all-zero subsample never reads as
//! certainty.

use crate::{frame_seed, Result, RuntimeError};
use clapped_axops::Mul8s;
use clapped_errmodel::ErrorStats;
use clapped_imgproc::{ConvConfig, ConvMode, Image, QuantKernel};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Salt for monitor sample positions.
const SALT_MONITOR: u64 = 0x4D4F_4E49_544F_5231;

/// Monitor parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorConfig {
    /// Output positions sampled per frame.
    pub samples: usize,
    /// Confidence multiplier `k` for the interval half-width
    /// (`k·stderr`); 2 ≈ 95%.
    pub confidence_k: f64,
}

impl Default for MonitorConfig {
    fn default() -> MonitorConfig {
        MonitorConfig { samples: 48, confidence_k: 2.0 }
    }
}

/// One frame's quality estimate: point estimate plus a confidence
/// interval in application-error percent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityEstimate {
    /// Subsample mean error (%).
    pub estimate_percent: f64,
    /// Lower confidence bound (%), clamped at 0.
    pub lower_percent: f64,
    /// Upper confidence bound (%).
    pub upper_percent: f64,
    /// Number of positions sampled.
    pub samples: usize,
}

/// The subsampling reference monitor. Holds the exact operator's LUT
/// columns for the stream's kernel, so a reference pixel costs `taps`
/// table lookups — no virtual dispatch, no full-frame work.
#[derive(Debug, Clone)]
pub struct QualityMonitor {
    window: usize,
    shift: u32,
    /// Tap `t`'s exact column occupies `luts[t*128..][..128]`.
    luts: Vec<i16>,
    config: MonitorConfig,
}

impl QualityMonitor {
    /// Compiles the exact operator against the kernel.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadConfig`] for a zero sample budget.
    pub fn new(exact: &dyn Mul8s, kernel: &QuantKernel, config: MonitorConfig) -> Result<QualityMonitor> {
        if config.samples == 0 {
            return Err(RuntimeError::BadConfig {
                reason: "monitor sample budget must be positive".to_string(),
            });
        }
        let coeffs = kernel.coeffs_2d();
        let mut luts = Vec::with_capacity(coeffs.len() * 128);
        for &c in coeffs {
            luts.extend_from_slice(&exact.column(c));
        }
        Ok(QualityMonitor { window: kernel.window(), shift: kernel.shift(), luts, config })
    }

    /// The exact output pixel at output position `(ox, oy)` — the same
    /// quantize → window-accumulate → normalize pipeline as the
    /// convolution engine, for one pixel.
    fn reference_pixel(&self, input: &Image, conv: &ConvConfig, ox: usize, oy: usize) -> u8 {
        let s = conv.stride;
        // The input-space window center this output position was
        // computed from: the stride-grid point itself when
        // downsampling, the covering grid point under replication.
        let (cx, cy) = if conv.downsample || s == 1 {
            (ox * s, oy * s)
        } else {
            ((ox / s) * s, (oy / s) * s)
        };
        let w = self.window;
        let half = (w / 2) as isize;
        let mut acc: i32 = 0;
        for dy in 0..w {
            for dx in 0..w {
                let px = input.get_clamped(
                    cx as isize + dx as isize - half,
                    cy as isize + dy as isize - half,
                ) >> 1;
                let t = dy * w + dx;
                acc += i32::from(self.luts[t * 128 + usize::from(px)]);
            }
        }
        ((acc >> self.shift).clamp(0, 127) << 1) as u8
    }

    /// Estimates the application error of `output` (the deployed
    /// pipeline's result for `input`) by exact reconvolution at
    /// `samples` deterministic positions. `stats` are the deployed
    /// operator's exhaustive error metrics — they set the confidence
    /// floor. Sample positions derive from `(stream seed, frame)`, so
    /// traced, untraced and resumed runs sample identically.
    ///
    /// Only 2D, unscaled configurations are supported (the supervisor
    /// validates this once at construction).
    pub fn estimate(
        &self,
        input: &Image,
        output: &Image,
        conv: &ConvConfig,
        stats: &ErrorStats,
        stream_seed: u64,
        frame: usize,
    ) -> QualityEstimate {
        let _span = clapped_obs::span("runtime.monitor");
        debug_assert!(conv.mode == ConvMode::TwoD && conv.scale == 1);
        let n = self.config.samples;
        let (ow, oh) = (output.width(), output.height());
        let mut rng = ChaCha8Rng::seed_from_u64(frame_seed(stream_seed, frame, SALT_MONITOR));
        let mut sum = 0.0f64;
        let mut sq_sum = 0.0f64;
        for _ in 0..n {
            let ox = rng.gen_range(0..ow);
            let oy = rng.gen_range(0..oh);
            let reference = self.reference_pixel(input, conv, ox, oy);
            let diff = (f64::from(output.get(ox, oy)) - f64::from(reference)).abs();
            let pct = 100.0 * diff / 255.0;
            sum += pct;
            sq_sum += pct * pct;
        }
        let mean = sum / n as f64;
        let var = (sq_sum / n as f64 - mean * mean).max(0.0);
        let sample_se = (var / n as f64).sqrt();
        // Operator-level variance floor: `taps` independent products
        // each deviating `√mse` accumulate into the window sum before
        // the normalization shift. A subsample that happened to land on
        // agreeing pixels still carries at least this uncertainty.
        let taps = (self.window * self.window) as f64;
        let prior_px = (stats.mse * taps).sqrt() / f64::from(1u32 << self.shift);
        let prior_se = (100.0 * prior_px / 255.0) / (n as f64).sqrt();
        let se = sample_se.max(prior_se);
        let half = self.config.confidence_k * se;
        QualityEstimate {
            estimate_percent: mean,
            lower_percent: (mean - half).max(0.0),
            upper_percent: mean + half,
            samples: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapped_axops::{AxMul, MulArch};
    use clapped_imgproc::{ConvEngine, SynthKind};
    use std::sync::Arc;

    fn setup() -> (ConvEngine, QuantKernel, Arc<AxMul>, Arc<AxMul>) {
        let kernel = QuantKernel::gaussian(3, 0.85);
        (
            ConvEngine::new(kernel.clone()),
            kernel,
            Arc::new(AxMul::new("exact", MulArch::Exact)),
            Arc::new(AxMul::new("tr5", MulArch::Truncated { k: 5 })),
        )
    }

    fn taps(m: &Arc<AxMul>, n: usize) -> Vec<Arc<dyn Mul8s>> {
        (0..n).map(|_| m.clone() as Arc<dyn Mul8s>).collect()
    }

    #[test]
    fn exact_output_reads_as_zero_error() {
        let (engine, kernel, exact, _) = setup();
        let monitor =
            QualityMonitor::new(exact.as_ref(), &kernel, MonitorConfig::default()).expect("builds");
        let conv = ConvConfig::default();
        let img = Image::synthetic(SynthKind::Blobs, 24, 24, 5).with_gaussian_noise(20.0, 7);
        let out = engine.convolve(&img, &conv, &taps(&exact, 9)).expect("valid");
        let stats = ErrorStats::of_multiplier(exact.as_ref());
        let est = monitor.estimate(&img, &out, &conv, &stats, 1, 0);
        assert_eq!(est.estimate_percent, 0.0, "exact pipeline matches its own reference");
        assert_eq!(est.lower_percent, 0.0);
    }

    #[test]
    fn reference_matches_engine_at_every_position() {
        // The single-pixel reference must agree with the engine's exact
        // output everywhere, for strided and replicated configs too.
        let (engine, kernel, exact, _) = setup();
        let monitor =
            QualityMonitor::new(exact.as_ref(), &kernel, MonitorConfig::default()).expect("builds");
        let img = Image::synthetic(SynthKind::Checkerboard, 17, 17, 2).with_gaussian_noise(8.0, 3);
        for (stride, downsample) in [(1, false), (2, true), (2, false), (3, true)] {
            let conv = ConvConfig { stride, downsample, ..ConvConfig::default() };
            let golden = engine.convolve(&img, &conv, &taps(&exact, 9)).expect("valid");
            for oy in 0..golden.height() {
                for ox in 0..golden.width() {
                    assert_eq!(
                        monitor.reference_pixel(&img, &conv, ox, oy),
                        golden.get(ox, oy),
                        "divergence at ({ox},{oy}) stride={stride} down={downsample}"
                    );
                }
            }
        }
    }

    #[test]
    fn approximate_rung_reads_positive_with_sane_interval() {
        let (engine, kernel, exact, rough) = setup();
        let monitor =
            QualityMonitor::new(exact.as_ref(), &kernel, MonitorConfig::default()).expect("builds");
        let conv = ConvConfig::default();
        let img = Image::synthetic(SynthKind::SmoothField, 24, 24, 9).with_gaussian_noise(25.0, 1);
        let out = engine.convolve(&img, &conv, &taps(&rough, 9)).expect("valid");
        let stats = ErrorStats::of_multiplier(rough.as_ref());
        let est = monitor.estimate(&img, &out, &conv, &stats, 1, 3);
        assert!(est.estimate_percent > 0.0, "coarse truncation must show error");
        assert!(est.lower_percent <= est.estimate_percent);
        assert!(est.upper_percent > est.estimate_percent, "errmodel floor widens the interval");
        // Deterministic: same (seed, frame) ⇒ bit-identical estimate.
        let again = monitor.estimate(&img, &out, &conv, &stats, 1, 3);
        assert_eq!(est, again);
        let other = monitor.estimate(&img, &out, &conv, &stats, 1, 4);
        assert!(other.samples == est.samples);
    }
}
