//! Bursty, nonstationary synthetic traffic.
//!
//! A two-state Markov chain (calm ↔ burst) modulates the *brightness*
//! and noise of synthetic frames: burst frames are full-scale,
//! high-noise scenes, calm frames are dim and quiet. Brightness is what
//! makes the phases matter to approximation — the error of
//! magnitude-proportional operators (broken-array, logarithmic) scales
//! with operand size, so bright burst frames push cheap ladder rungs
//! out of SLA while dim calm frames leave them comfortably inside it.
//! Content rotates across the synthetic generators so no two frames are
//! equal.
//!
//! The phase transition of frame `t` is a pure function of `(stream
//! seed, t, phase at t-1)` — the generator carries no RNG stream, so
//! the only state a checkpoint must record is the current phase.

use crate::frame_seed;
use clapped_imgproc::{Image, SynthKind};

/// Salt for phase-transition draws.
const SALT_PHASE: u64 = 0x5452_4146_4649_4331;
/// Salt for frame-content seeds.
const SALT_CONTENT: u64 = 0x5452_4146_4649_4332;

/// The two traffic regimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPhase {
    /// Dim, quiet frames: cheap rungs hold the SLA.
    Calm,
    /// Bright, noisy frames: only accurate rungs hold the SLA.
    Burst,
}

impl TrafficPhase {
    /// Stable name used in checkpoints and reports.
    pub fn name(self) -> &'static str {
        match self {
            TrafficPhase::Calm => "calm",
            TrafficPhase::Burst => "burst",
        }
    }

    /// Parses a checkpoint phase name.
    pub fn from_name(name: &str) -> Option<TrafficPhase> {
        match name {
            "calm" => Some(TrafficPhase::Calm),
            "burst" => Some(TrafficPhase::Burst),
            _ => None,
        }
    }
}

/// Parameters of the bursty traffic model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Noise sigma in the calm phase.
    pub calm_sigma: f64,
    /// Noise sigma in the burst phase.
    pub burst_sigma: f64,
    /// Brightness scale of calm frames (`0..=1`).
    pub calm_gain: f64,
    /// Brightness scale of burst frames (`0..=1`).
    pub burst_gain: f64,
    /// Per-frame probability of entering a burst from calm.
    pub burst_probability: f64,
    /// Per-frame probability of leaving a burst back to calm.
    pub recovery_probability: f64,
}

impl Default for TrafficConfig {
    fn default() -> TrafficConfig {
        TrafficConfig {
            calm_sigma: 4.0,
            burst_sigma: 18.0,
            calm_gain: 0.45,
            burst_gain: 1.0,
            burst_probability: 0.06,
            recovery_probability: 0.25,
        }
    }
}

impl TrafficConfig {
    /// The phase following `phase` at frame `frame` of stream `seed` —
    /// a pure function, so replaying a frame range replays the same
    /// phase trajectory.
    pub fn next_phase(&self, seed: u64, frame: usize, phase: TrafficPhase) -> TrafficPhase {
        // A 53-bit uniform draw from the frame hash.
        let h = frame_seed(seed, frame, SALT_PHASE);
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        match phase {
            TrafficPhase::Calm if u < self.burst_probability => TrafficPhase::Burst,
            TrafficPhase::Burst if u < self.recovery_probability => TrafficPhase::Calm,
            other => other,
        }
    }

    /// The noise sigma of a phase.
    pub fn sigma(&self, phase: TrafficPhase) -> f64 {
        match phase {
            TrafficPhase::Calm => self.calm_sigma,
            TrafficPhase::Burst => self.burst_sigma,
        }
    }

    /// The brightness gain of a phase.
    pub fn gain(&self, phase: TrafficPhase) -> f64 {
        match phase {
            TrafficPhase::Calm => self.calm_gain,
            TrafficPhase::Burst => self.burst_gain,
        }
    }

    /// Generates the input frame `frame` of stream `seed` in `phase`:
    /// rotating synthetic content, scaled by the phase's brightness
    /// gain, plus phase-dependent Gaussian noise.
    pub fn frame(&self, seed: u64, frame: usize, phase: TrafficPhase, size: usize) -> Image {
        let content = frame_seed(seed, frame, SALT_CONTENT);
        let kind = match content % 4 {
            0 => SynthKind::SmoothField,
            1 => SynthKind::Gradient,
            2 => SynthKind::Blobs,
            _ => SynthKind::Checkerboard,
        };
        let base = Image::synthetic(kind, size, size, content);
        let gain = self.gain(phase).clamp(0.0, 1.0);
        Image::from_fn(size, size, |x, y| (f64::from(base.get(x, y)) * gain).round() as u8)
            .with_gaussian_noise(self.sigma(phase), content ^ 0x9E37_79B9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_transitions_are_deterministic() {
        let cfg = TrafficConfig::default();
        let mut a = TrafficPhase::Calm;
        let mut b = TrafficPhase::Calm;
        for t in 0..200 {
            a = cfg.next_phase(9, t, a);
            b = cfg.next_phase(9, t, b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bursts_happen_and_recover() {
        let cfg = TrafficConfig::default();
        let mut phase = TrafficPhase::Calm;
        let mut bursts = 0;
        let mut calms = 0;
        for t in 0..500 {
            phase = cfg.next_phase(3, t, phase);
            match phase {
                TrafficPhase::Burst => bursts += 1,
                TrafficPhase::Calm => calms += 1,
            }
        }
        assert!(bursts > 10, "bursts occur ({bursts})");
        assert!(calms > bursts, "calm dominates ({calms} vs {bursts})");
    }

    #[test]
    fn frames_are_deterministic_and_phase_sensitive() {
        let cfg = TrafficConfig::default();
        let a = cfg.frame(7, 42, TrafficPhase::Calm, 16);
        let b = cfg.frame(7, 42, TrafficPhase::Calm, 16);
        assert_eq!(a, b);
        let c = cfg.frame(7, 42, TrafficPhase::Burst, 16);
        assert_ne!(a, c, "burst noise changes the frame");
        let d = cfg.frame(7, 43, TrafficPhase::Calm, 16);
        assert_ne!(a, d, "content rotates per frame");
    }
}
