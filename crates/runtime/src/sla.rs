//! The per-stream service-level agreement.

use crate::{Result, RuntimeError};

/// The quality/latency contract a stream must hold.
///
/// Quality is the application-level error convention used everywhere in
/// this workspace: mean absolute pixel deviation from the exact-operator
/// pipeline on the *same* input frame, as a percentage of full scale
/// (`clapped_imgproc::app_error_percent`). Latency is the accelerator
/// model's frame time — cycles to stream the frame divided by the
/// achieved clock — so a rung that cannot keep up is excluded from the
/// ladder at construction time rather than discovered in production.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlaSpec {
    /// Per-frame error ceiling (percent, `> 0`).
    pub max_error_percent: f64,
    /// Per-frame latency ceiling (microseconds, `> 0`).
    pub max_frame_time_us: f64,
}

impl SlaSpec {
    /// Validates the contract.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadConfig`] unless both ceilings are
    /// finite and positive.
    pub fn validate(&self) -> Result<()> {
        if !(self.max_error_percent.is_finite() && self.max_error_percent > 0.0) {
            return Err(RuntimeError::BadConfig {
                reason: format!(
                    "SLA error ceiling must be finite and positive, got {}",
                    self.max_error_percent
                ),
            });
        }
        if !(self.max_frame_time_us.is_finite() && self.max_frame_time_us > 0.0) {
            return Err(RuntimeError::BadConfig {
                reason: format!(
                    "SLA frame-time ceiling must be finite and positive, got {}",
                    self.max_frame_time_us
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_nonpositive_ceilings() {
        let ok = SlaSpec { max_error_percent: 2.0, max_frame_time_us: 50.0 };
        assert!(ok.validate().is_ok());
        for bad in [
            SlaSpec { max_error_percent: 0.0, ..ok },
            SlaSpec { max_error_percent: f64::NAN, ..ok },
            SlaSpec { max_frame_time_us: -1.0, ..ok },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }
}
