//! The stream supervisor: executes frames, watches quality and health,
//! and reconfigures the pipeline to keep the SLA.
//!
//! # Control policy
//!
//! The controller is deliberately asymmetric ("quality first"):
//!
//! - **Step up** (more accurate) the moment the monitor's *upper*
//!   confidence bound crosses the SLA ceiling — even during a
//!   reconfiguration cooldown. Quality regressions are never queued.
//! - **Step down** (cheaper) only after `hold_frames` consecutive
//!   frames of demonstrated headroom — the upper bound plus the
//!   calibrated error delta to the next rung must stay under
//!   `(1 − headroom) · ceiling` — and only outside the backoff window.
//!
//! Every swap arms an exponential backoff: a swap that follows closely
//! on the previous one doubles the cooldown (up to a cap), a swap after
//! a long quiet period resets it. Step-downs respect the cooldown, so
//! the controller can never oscillate between two rungs faster than the
//! doubling window: flapping decays geometrically.
//!
//! # Self-healing
//!
//! A [`FaultPlan`] silently corrupts one deployed tap at a chosen
//! frame (the same `clapped-axops` fault machinery as the offline
//! campaigns). The watchdog spot checks deployed taps against the
//! healthy behavioural table each frame; on a mismatch the supervisor
//! quarantines the rung, swaps to the nearest healthy rung, **re-runs
//! the frame on the healthy pipeline** (the recovery frame ships
//! clean), and records the detection latency in frames.
//!
//! # Determinism and checkpointing
//!
//! All per-frame randomness derives from `(seed, frame)`; the
//! controller state is a small flat struct serialized to versioned JSON
//! ([`StreamSupervisor::checkpoint`]). Resuming from a checkpoint and
//! running to frame `N` is bit-identical — same rung trajectory, same
//! event log, same chained output digest — to an uninterrupted run.

use crate::{
    DegradationLadder, FaultWatchdog, MonitorConfig, QualityEstimate, QualityMonitor, Result,
    RuntimeError, SlaSpec, TrafficConfig, TrafficPhase, WatchdogConfig, WatchdogVerdict,
};
use clapped_accel::{simulate_stream, AcceleratorSpec};
use clapped_axops::{FaultedMul, Mul8s};
use clapped_errmodel::ErrorStats;
use clapped_exec::Fnv64;
use clapped_imgproc::{app_error_percent, ConvEngine, ConvMode, QuantKernel};
use clapped_netlist::FaultSet;
use serde_json::{json, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Version tag of the checkpoint schema.
pub const CHECKPOINT_VERSION: u64 = 1;

/// A scheduled mid-stream hardware fault.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Frame index at which the fault strikes.
    pub frame: usize,
    /// Deployed tap the fault corrupts.
    pub tap: usize,
    /// The stuck-at set applied to the tap operator's netlist.
    pub faults: FaultSet,
}

/// Why the controller swapped rungs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapReason {
    /// The quality upper bound crossed the SLA ceiling.
    SlaPressure,
    /// Sustained headroom justified a cheaper rung.
    Headroom,
    /// A corrupted rung was quarantined.
    FaultRecovery,
}

impl SwapReason {
    /// Stable name used in checkpoints and reports.
    pub fn name(self) -> &'static str {
        match self {
            SwapReason::SlaPressure => "sla-pressure",
            SwapReason::Headroom => "headroom",
            SwapReason::FaultRecovery => "fault-recovery",
        }
    }

    fn from_name(name: &str) -> Option<SwapReason> {
        match name {
            "sla-pressure" => Some(SwapReason::SlaPressure),
            "headroom" => Some(SwapReason::Headroom),
            "fault-recovery" => Some(SwapReason::FaultRecovery),
            _ => None,
        }
    }
}

/// An entry of the reconfiguration log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamEvent {
    /// The controller moved between rungs.
    Swap {
        /// Frame of the swap.
        frame: usize,
        /// Rung before.
        from_rung: usize,
        /// Rung after.
        to_rung: usize,
        /// Why.
        reason: SwapReason,
    },
    /// The watchdog caught a corrupted tap.
    FaultDetected {
        /// Frame of detection.
        frame: usize,
        /// Corrupted tap.
        tap: usize,
        /// Rung that was corrupted.
        rung: usize,
        /// Frames from injection to detection (≥ 1).
        latency_frames: usize,
    },
    /// A rung was quarantined.
    Quarantine {
        /// Frame of quarantine.
        frame: usize,
        /// The quarantined rung.
        rung: usize,
    },
    /// The netlist-level stream simulation disagreed with the compiled
    /// pipeline (it never should; recorded, not panicked).
    HwDivergence {
        /// Frame of divergence.
        frame: usize,
        /// Deployed rung.
        rung: usize,
    },
}

impl StreamEvent {
    fn to_json(&self) -> Value {
        match self {
            StreamEvent::Swap { frame, from_rung, to_rung, reason } => json!({
                "type": "swap", "frame": frame, "from_rung": from_rung,
                "to_rung": to_rung, "reason": reason.name(),
            }),
            StreamEvent::FaultDetected { frame, tap, rung, latency_frames } => json!({
                "type": "fault-detected", "frame": frame, "tap": tap,
                "rung": rung, "latency_frames": latency_frames,
            }),
            StreamEvent::Quarantine { frame, rung } => {
                json!({"type": "quarantine", "frame": frame, "rung": rung})
            }
            StreamEvent::HwDivergence { frame, rung } => {
                json!({"type": "hw-divergence", "frame": frame, "rung": rung})
            }
        }
    }

    fn from_json(v: &Value) -> Result<StreamEvent> {
        let kind = get(v, "type")?.as_str().unwrap_or_default();
        match kind {
            "swap" => Ok(StreamEvent::Swap {
                frame: as_usize(get(v, "frame")?, "frame")?,
                from_rung: as_usize(get(v, "from_rung")?, "from_rung")?,
                to_rung: as_usize(get(v, "to_rung")?, "to_rung")?,
                reason: SwapReason::from_name(get(v, "reason")?.as_str().unwrap_or_default())
                    .ok_or_else(|| bad("unknown swap reason"))?,
            }),
            "fault-detected" => Ok(StreamEvent::FaultDetected {
                frame: as_usize(get(v, "frame")?, "frame")?,
                tap: as_usize(get(v, "tap")?, "tap")?,
                rung: as_usize(get(v, "rung")?, "rung")?,
                latency_frames: as_usize(get(v, "latency_frames")?, "latency_frames")?,
            }),
            "quarantine" => Ok(StreamEvent::Quarantine {
                frame: as_usize(get(v, "frame")?, "frame")?,
                rung: as_usize(get(v, "rung")?, "rung")?,
            }),
            "hw-divergence" => Ok(StreamEvent::HwDivergence {
                frame: as_usize(get(v, "frame")?, "frame")?,
                rung: as_usize(get(v, "rung")?, "rung")?,
            }),
            other => Err(bad(format!("unknown event type `{other}`"))),
        }
    }
}

/// Stream execution options.
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Stream seed: the single source of all per-frame randomness.
    pub seed: u64,
    /// Traffic model.
    pub traffic: TrafficConfig,
    /// Quality-monitor parameters.
    pub monitor: MonitorConfig,
    /// Watchdog parameters.
    pub watchdog: WatchdogConfig,
    /// Rung the stream starts on.
    pub initial_rung: usize,
    /// Consecutive headroom frames required before a step-down.
    pub hold_frames: usize,
    /// Fraction of the error ceiling kept in reserve for step-downs.
    pub headroom_fraction: f64,
    /// Initial/reset reconfiguration cooldown (frames).
    pub base_backoff_frames: usize,
    /// Cooldown cap (frames).
    pub max_backoff_frames: usize,
    /// Compute the true full-frame error each frame (for reports and
    /// benches; the controller never reads it).
    pub audit: bool,
    /// Cross-check every k-th healthy frame against the netlist-level
    /// accelerator simulation (`0` disables).
    pub hw_crosscheck_every: usize,
    /// Optional scheduled fault.
    pub fault: Option<FaultPlan>,
}

impl Default for StreamOptions {
    fn default() -> StreamOptions {
        StreamOptions {
            seed: 1,
            traffic: TrafficConfig::default(),
            monitor: MonitorConfig::default(),
            watchdog: WatchdogConfig::default(),
            initial_rung: 0,
            hold_frames: 4,
            headroom_fraction: 0.25,
            base_backoff_frames: 4,
            max_backoff_frames: 64,
            audit: false,
            hw_crosscheck_every: 0,
            fault: None,
        }
    }
}

/// One frame's outcome.
#[derive(Debug, Clone)]
pub struct FrameRecord {
    /// Frame index.
    pub frame: usize,
    /// Traffic phase the frame arrived in.
    pub phase: TrafficPhase,
    /// Rung that produced the *emitted* output (post-recovery on
    /// detection frames).
    pub rung: usize,
    /// The monitor's estimate for the emitted output.
    pub estimate: QualityEstimate,
    /// Whether the estimate crossed the SLA ceiling.
    pub violated: bool,
    /// Full-frame true error (%), when auditing.
    pub true_error_percent: Option<f64>,
    /// Why the controller swapped this frame, if it did.
    pub swapped: Option<SwapReason>,
    /// Modeled energy of the frame (µJ).
    pub energy_uj: f64,
}

/// Aggregate outcome of a [`StreamSupervisor::run`] call.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Frames processed in total (stream position after the run).
    pub frames: usize,
    /// Per-frame records of this call.
    pub records: Vec<FrameRecord>,
    /// Full reconfiguration/fault log since frame 0.
    pub events: Vec<StreamEvent>,
    /// Monitor-estimated SLA violations since frame 0.
    pub violations: u64,
    /// Audited true SLA violations since frame 0 (0 when not auditing).
    pub true_violations: u64,
    /// Controller swaps since frame 0.
    pub swaps: u64,
    /// Chained FNV digest of every emitted pixel since frame 0.
    pub output_digest: u64,
    /// Total modeled energy (µJ) since frame 0.
    pub energy_uj: f64,
    /// Total modeled power-delay product (pJ) since frame 0.
    pub pdp_pj: f64,
    /// Fault detection latency in frames, once detected.
    pub detection_latency_frames: Option<usize>,
}

/// Mutable controller state — exactly what a checkpoint captures.
#[derive(Debug, Clone)]
struct ControllerState {
    frame: usize,
    rung: usize,
    phase: TrafficPhase,
    calm_streak: usize,
    backoff_frames: usize,
    cooldown_until: usize,
    last_swap_frame: Option<usize>,
    quarantined: BTreeSet<usize>,
    violations: u64,
    true_violations: u64,
    swaps: u64,
    output_digest: u64,
    energy_uj: f64,
    pdp_pj: f64,
    fault_injected: bool,
    fault_rung: Option<usize>,
    fault_detected_frame: Option<usize>,
    events: Vec<StreamEvent>,
}

impl ControllerState {
    fn fresh(options: &StreamOptions) -> ControllerState {
        ControllerState {
            frame: 0,
            rung: options.initial_rung,
            phase: TrafficPhase::Calm,
            calm_streak: 0,
            backoff_frames: options.base_backoff_frames,
            cooldown_until: 0,
            last_swap_frame: None,
            quarantined: BTreeSet::new(),
            violations: 0,
            true_violations: 0,
            swaps: 0,
            output_digest: 0,
            energy_uj: 0.0,
            pdp_pj: 0.0,
            fault_injected: false,
            fault_rung: None,
            fault_detected_frame: None,
            events: Vec::new(),
        }
    }
}

fn bad(reason: impl Into<String>) -> RuntimeError {
    RuntimeError::Checkpoint { reason: reason.into() }
}

fn get<'a>(obj: &'a Value, key: &str) -> Result<&'a Value> {
    obj.get(key).ok_or_else(|| bad(format!("missing field `{key}`")))
}

fn as_u64(v: &Value, key: &str) -> Result<u64> {
    v.as_u64().ok_or_else(|| bad(format!("field `{key}` is not an unsigned integer")))
}

fn as_usize(v: &Value, key: &str) -> Result<usize> {
    Ok(as_u64(v, key)? as usize)
}

fn as_f64(v: &Value, key: &str) -> Result<f64> {
    v.as_f64().ok_or_else(|| bad(format!("field `{key}` is not a number")))
}

fn opt_usize(v: &Value, key: &str) -> Result<Option<usize>> {
    if v.is_null() {
        Ok(None)
    } else {
        Ok(Some(as_usize(v, key)?))
    }
}

/// The runtime supervisor. Construct with [`StreamSupervisor::new`] (or
/// [`StreamSupervisor::resume`]), then drive with
/// [`StreamSupervisor::step`] / [`StreamSupervisor::run`].
#[derive(Debug)]
pub struct StreamSupervisor {
    sla: SlaSpec,
    options: StreamOptions,
    ladder: DegradationLadder,
    engine: ConvEngine,
    kernel: QuantKernel,
    exact_taps: Vec<Arc<dyn Mul8s>>,
    exact_stats: ErrorStats,
    monitor: QualityMonitor,
    watchdog: FaultWatchdog,
    deployed: Vec<Arc<dyn Mul8s>>,
    state: ControllerState,
}

impl StreamSupervisor {
    /// Builds a supervisor over a calibrated ladder.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadConfig`] for an empty ladder, an
    /// out-of-range initial rung or fault tap, or degenerate controller
    /// parameters.
    pub fn new(
        ladder: DegradationLadder,
        sla: SlaSpec,
        options: StreamOptions,
    ) -> Result<StreamSupervisor> {
        sla.validate()?;
        Self::validate_options(&ladder, &options)?;
        let kernel = QuantKernel::gaussian(ladder.conv_config().window, ladder.kernel_sigma());
        let engine = ConvEngine::new(kernel.clone());
        let exact = ladder.rungs()[0].op.clone();
        let exact_stats = ladder.rungs()[0].stats;
        if exact_stats.error_probability != 0.0 {
            return Err(RuntimeError::BadConfig {
                reason: "ladder rung 0 must be the exact operator".to_string(),
            });
        }
        let taps = ladder.conv_config().taps();
        let exact_taps: Vec<Arc<dyn Mul8s>> =
            (0..taps).map(|_| exact.clone() as Arc<dyn Mul8s>).collect();
        let monitor = QualityMonitor::new(exact.as_ref(), &kernel, options.monitor)?;
        let watchdog = FaultWatchdog::new(options.watchdog);
        let state = ControllerState::fresh(&options);
        let mut sup = StreamSupervisor {
            sla,
            options,
            ladder,
            engine,
            kernel,
            exact_taps,
            exact_stats,
            monitor,
            watchdog,
            deployed: Vec::new(),
            state,
        };
        sup.redeploy()?;
        Ok(sup)
    }

    fn validate_options(ladder: &DegradationLadder, options: &StreamOptions) -> Result<()> {
        if ladder.is_empty() {
            return Err(RuntimeError::BadConfig { reason: "empty ladder".to_string() });
        }
        let conv = ladder.conv_config();
        if conv.mode != ConvMode::TwoD || conv.scale != 1 {
            return Err(RuntimeError::BadConfig {
                reason: "the supervisor serves 2D, unscaled streams".to_string(),
            });
        }
        if options.initial_rung >= ladder.len() {
            return Err(RuntimeError::BadConfig {
                reason: format!(
                    "initial rung {} outside ladder of {} rungs",
                    options.initial_rung,
                    ladder.len()
                ),
            });
        }
        if let Some(plan) = &options.fault {
            if plan.tap >= conv.taps() {
                return Err(RuntimeError::BadConfig {
                    reason: format!("fault tap {} outside {} taps", plan.tap, conv.taps()),
                });
            }
        }
        if options.hold_frames == 0
            || options.base_backoff_frames == 0
            || options.max_backoff_frames < options.base_backoff_frames
            || !(0.0..1.0).contains(&options.headroom_fraction)
        {
            return Err(RuntimeError::BadConfig {
                reason: "hold/backoff/headroom parameters out of range".to_string(),
            });
        }
        Ok(())
    }

    /// Rebuilds the deployed tap list from the current rung, applying
    /// the scheduled fault when it is active on this rung.
    fn redeploy(&mut self) -> Result<()> {
        let _span = clapped_obs::span("runtime.reconfigure");
        let mut taps = self.ladder.taps(self.state.rung);
        if let (Some(plan), true, None) =
            (&self.options.fault, self.state.fault_injected, self.state.fault_detected_frame)
        {
            if self.state.fault_rung == Some(self.state.rung) {
                let base = &self.ladder.rungs()[self.state.rung].op;
                let faulted = FaultedMul::new(base.as_ref(), &plan.faults)?;
                taps[plan.tap] = Arc::new(faulted);
            }
        }
        self.deployed = taps;
        clapped_obs::gauge_set("runtime.rung", self.state.rung as f64);
        Ok(())
    }

    fn record_swap(&mut self, to: usize, reason: SwapReason) -> Result<()> {
        let frame = self.state.frame;
        self.state.events.push(StreamEvent::Swap {
            frame,
            from_rung: self.state.rung,
            to_rung: to,
            reason,
        });
        self.state.rung = to;
        self.state.swaps += 1;
        self.state.calm_streak = 0;
        clapped_obs::count("runtime.swaps", 1);
        if reason != SwapReason::FaultRecovery {
            // Exponential backoff: a swap inside the doubling window of
            // the previous one doubles the cooldown, a quiet period
            // resets it to base.
            let recent = self
                .state
                .last_swap_frame
                .is_some_and(|f| frame.saturating_sub(f) <= 2 * self.state.backoff_frames);
            self.state.backoff_frames = if recent {
                (self.state.backoff_frames * 2).min(self.options.max_backoff_frames)
            } else {
                self.options.base_backoff_frames
            };
            self.state.cooldown_until = frame + self.state.backoff_frames;
            self.state.last_swap_frame = Some(frame);
        }
        self.redeploy()
    }

    /// Executes one frame: traffic, convolution, watchdog, monitor,
    /// and the control decision. Returns the frame's record.
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors; returns [`RuntimeError::BadConfig`]
    /// if a fault leaves no healthy rung to recover onto.
    pub fn step(&mut self) -> Result<FrameRecord> {
        let _span = clapped_obs::span("runtime.frame");
        let frame = self.state.frame;
        let seed = self.options.seed;
        let conv = *self.ladder.conv_config();
        let size = self.ladder.image_size();

        // 1. Traffic: advance the phase chain, synthesize the frame.
        self.state.phase = self.options.traffic.next_phase(seed, frame, self.state.phase);
        let input = self.options.traffic.frame(seed, frame, self.state.phase, size);

        // 2. Scheduled fault strikes silently.
        if let Some(plan) = &self.options.fault {
            if frame == plan.frame && !self.state.fault_injected {
                self.state.fault_injected = true;
                self.state.fault_rung = Some(self.state.rung);
                self.redeploy()?;
            }
        }

        // 3. Execute on the deployed (possibly corrupted) pipeline.
        let mut output = {
            let _exec = clapped_obs::span("runtime.execute");
            self.engine.convolve(&input, &conv, &self.deployed)?
        };

        // 4. Watchdog: spot check the deployed taps against the healthy
        //    behavioural table on this frame's operands.
        let healthy = self.ladder.rungs()[self.state.rung].op.clone();
        let verdict = self.watchdog.probe(
            &self.deployed,
            healthy.as_ref(),
            &input,
            self.kernel.coeffs_2d(),
            seed,
            frame,
        );
        let mut swapped: Option<SwapReason> = None;
        if let WatchdogVerdict::Corrupted { tap, .. } = verdict {
            let corrupted_rung = self.state.rung;
            let injected_at = self.options.fault.as_ref().map_or(frame, |p| p.frame);
            self.state.fault_detected_frame = Some(frame);
            self.state.events.push(StreamEvent::FaultDetected {
                frame,
                tap,
                rung: corrupted_rung,
                latency_frames: frame - injected_at + 1,
            });
            self.state.quarantined.insert(corrupted_rung);
            self.state.events.push(StreamEvent::Quarantine { frame, rung: corrupted_rung });
            clapped_obs::count("runtime.faults_detected", 1);
            clapped_obs::count("runtime.quarantines", 1);
            let target = self
                .ladder
                .recovery_target(corrupted_rung, &self.state.quarantined)
                .ok_or_else(|| RuntimeError::BadConfig {
                    reason: "no healthy rung left to recover onto".to_string(),
                })?;
            self.record_swap(target, SwapReason::FaultRecovery)?;
            swapped = Some(SwapReason::FaultRecovery);
            // Re-run the frame on the healthy pipeline: the recovery
            // frame is emitted clean.
            output = {
                let _exec = clapped_obs::span("runtime.execute");
                self.engine.convolve(&input, &conv, &self.deployed)?
            };
        }

        // 5. Monitor the emitted output.
        let rung_stats = self.ladder.rungs()[self.state.rung].stats;
        let estimate = self.monitor.estimate(&input, &output, &conv, &rung_stats, seed, frame);
        let violated = estimate.estimate_percent > self.sla.max_error_percent;
        if violated {
            self.state.violations += 1;
            clapped_obs::count("runtime.violations", 1);
        }

        // 6. Control decision (the recovery swap already was one).
        if swapped.is_none() {
            if estimate.upper_percent > self.sla.max_error_percent {
                // Quality first: step up immediately, cooldown or not.
                if let Some(up) = self.ladder.step_up(self.state.rung, &self.state.quarantined) {
                    self.record_swap(up, SwapReason::SlaPressure)?;
                    swapped = Some(SwapReason::SlaPressure);
                }
            } else {
                // Headroom accounting toward a cheaper rung: project the
                // calibrated error delta of the next rung on top of the
                // current upper bound.
                let down = self.ladder.step_down(self.state.rung, &self.state.quarantined);
                let headroom_ok = down.is_some_and(|d| {
                    let delta = (self.ladder.rungs()[d].calm_error_percent
                        - self.ladder.rungs()[self.state.rung].calm_error_percent)
                        .max(0.0);
                    estimate.upper_percent + delta
                        <= (1.0 - self.options.headroom_fraction) * self.sla.max_error_percent
                });
                if headroom_ok {
                    self.state.calm_streak += 1;
                    if self.state.calm_streak >= self.options.hold_frames
                        && frame >= self.state.cooldown_until
                    {
                        if let Some(d) = down {
                            self.record_swap(d, SwapReason::Headroom)?;
                            swapped = Some(SwapReason::Headroom);
                        }
                    }
                } else {
                    self.state.calm_streak = 0;
                }
            }
        }

        // 7. Audit (reports only — the controller never reads this).
        let true_error = if self.options.audit {
            let golden = self.engine.convolve(&input, &conv, &self.exact_taps)?;
            let e = app_error_percent(&output, &golden);
            if e > self.sla.max_error_percent {
                self.state.true_violations += 1;
            }
            Some(e)
        } else {
            None
        };

        // 8. Optional netlist-level cross-check: the accelerator's
        //    bit-true stream simulation must reproduce the compiled
        //    pipeline whenever no fault is deployed.
        if self.options.hw_crosscheck_every > 0
            && frame.is_multiple_of(self.options.hw_crosscheck_every)
            && !self.fault_active()
        {
            let rung = &self.ladder.rungs()[self.state.rung];
            let spec = AcceleratorSpec {
                image_size: size,
                window: conv.window,
                stride: conv.stride,
                downsample: conv.downsample,
                mode: ConvMode::TwoD,
                muls: vec![rung.op.clone(); conv.taps()],
            };
            let hw = simulate_stream(&spec, &input, self.kernel.coeffs_2d(), self.kernel.shift())?;
            clapped_obs::count("runtime.hw_crosscheck", 1);
            if hw != output {
                self.state.events.push(StreamEvent::HwDivergence {
                    frame,
                    rung: self.state.rung,
                });
                clapped_obs::count("runtime.hw_divergence", 1);
            }
        }

        // 9. Account energy and chain the output digest.
        let rung = &self.ladder.rungs()[self.state.rung];
        self.state.energy_uj += rung.energy_per_image_uj;
        self.state.pdp_pj += rung.pdp_pj;
        let mut h = Fnv64::new();
        h.write_u64(self.state.output_digest);
        h.write(output.as_slice());
        self.state.output_digest = h.finish();
        clapped_obs::count("runtime.frames", 1);

        let record = FrameRecord {
            frame,
            phase: self.state.phase,
            rung: self.state.rung,
            estimate,
            violated,
            true_error_percent: true_error,
            swapped,
            energy_uj: rung.energy_per_image_uj,
        };
        self.state.frame += 1;
        Ok(record)
    }

    /// Steps until the stream position reaches `frames`, returning the
    /// aggregate report (per-frame records cover this call only;
    /// counters and the log cover the whole stream).
    ///
    /// # Errors
    ///
    /// Propagates the first failing [`StreamSupervisor::step`].
    pub fn run(&mut self, frames: usize) -> Result<StreamReport> {
        let mut records = Vec::new();
        while self.state.frame < frames {
            records.push(self.step()?);
        }
        Ok(self.report(records))
    }

    fn report(&self, records: Vec<FrameRecord>) -> StreamReport {
        StreamReport {
            frames: self.state.frame,
            records,
            events: self.state.events.clone(),
            violations: self.state.violations,
            true_violations: self.state.true_violations,
            swaps: self.state.swaps,
            output_digest: self.state.output_digest,
            energy_uj: self.state.energy_uj,
            pdp_pj: self.state.pdp_pj,
            detection_latency_frames: self.detection_latency_frames(),
        }
    }

    /// Whether a scheduled fault is currently deployed (injected, not
    /// yet detected, and sitting on the active rung).
    pub fn fault_active(&self) -> bool {
        self.state.fault_injected
            && self.state.fault_detected_frame.is_none()
            && self.state.fault_rung == Some(self.state.rung)
    }

    /// Frames from injection to detection, once detected.
    pub fn detection_latency_frames(&self) -> Option<usize> {
        match (&self.options.fault, self.state.fault_detected_frame) {
            (Some(plan), Some(at)) => Some(at - plan.frame + 1),
            _ => None,
        }
    }

    /// Current stream position (frames executed).
    pub fn frame(&self) -> usize {
        self.state.frame
    }

    /// Current rung.
    pub fn rung(&self) -> usize {
        self.state.rung
    }

    /// The reconfiguration/fault log since frame 0.
    pub fn events(&self) -> &[StreamEvent] {
        &self.state.events
    }

    /// Chained digest of every pixel emitted since frame 0.
    pub fn output_digest(&self) -> u64 {
        self.state.output_digest
    }

    /// The ladder the supervisor serves on.
    pub fn ladder(&self) -> &DegradationLadder {
        &self.ladder
    }

    /// Exhaustive error statistics of the exact reference operator.
    pub fn exact_stats(&self) -> &ErrorStats {
        &self.exact_stats
    }

    /// Serializes the controller state to versioned JSON. Together with
    /// the (deterministically rebuildable) ladder and the original
    /// options, this is everything a resumed stream needs.
    pub fn checkpoint(&self) -> String {
        let s = &self.state;
        let doc = json!({
            "version": CHECKPOINT_VERSION,
            "seed": self.options.seed,
            "ladder": self.ladder.rungs().iter().map(|r| r.name.clone()).collect::<Vec<_>>(),
            "frame": s.frame,
            "rung": s.rung,
            "phase": s.phase.name(),
            "calm_streak": s.calm_streak,
            "backoff_frames": s.backoff_frames,
            "cooldown_until": s.cooldown_until,
            "last_swap_frame": s.last_swap_frame,
            "quarantined": s.quarantined.iter().copied().collect::<Vec<_>>(),
            "violations": s.violations,
            "true_violations": s.true_violations,
            "swaps": s.swaps,
            "output_digest": s.output_digest,
            "energy_uj": s.energy_uj,
            "pdp_pj": s.pdp_pj,
            "fault_injected": s.fault_injected,
            "fault_rung": s.fault_rung,
            "fault_detected_frame": s.fault_detected_frame,
            "events": s.events.iter().map(StreamEvent::to_json).collect::<Vec<_>>(),
        });
        serde_json::to_string_pretty(&doc).unwrap_or_else(|_| String::from("{}"))
    }

    /// Restores a stream from a checkpoint. The caller supplies the
    /// same ladder, SLA and options the original stream ran with (the
    /// ladder is validated against the recorded rung names); stepping
    /// the restored stream replays exactly what the uninterrupted
    /// stream would have produced.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Checkpoint`] for malformed JSON, an
    /// unsupported version, a seed/ladder mismatch, or out-of-range
    /// indices.
    pub fn resume(
        ladder: DegradationLadder,
        sla: SlaSpec,
        options: StreamOptions,
        checkpoint: &str,
    ) -> Result<StreamSupervisor> {
        let root: Value =
            serde_json::from_str(checkpoint).map_err(|e| bad(format!("invalid JSON: {e}")))?;
        let version = as_u64(get(&root, "version")?, "version")?;
        if version != CHECKPOINT_VERSION {
            return Err(bad(format!(
                "unsupported checkpoint version {version} (expected {CHECKPOINT_VERSION})"
            )));
        }
        let seed = as_u64(get(&root, "seed")?, "seed")?;
        if seed != options.seed {
            return Err(bad(format!(
                "checkpoint seed {seed} does not match options seed {}",
                options.seed
            )));
        }
        let names: Vec<String> = get(&root, "ladder")?
            .as_array()
            .ok_or_else(|| bad("field `ladder` is not an array"))?
            .iter()
            .map(|v| v.as_str().unwrap_or_default().to_string())
            .collect();
        let actual: Vec<String> = ladder.rungs().iter().map(|r| r.name.clone()).collect();
        if names != actual {
            return Err(bad(format!(
                "checkpoint ladder {names:?} does not match the supplied ladder {actual:?}"
            )));
        }

        let mut sup = StreamSupervisor::new(ladder, sla, options)?;
        let s = &mut sup.state;
        s.frame = as_usize(get(&root, "frame")?, "frame")?;
        s.rung = as_usize(get(&root, "rung")?, "rung")?;
        s.phase = TrafficPhase::from_name(get(&root, "phase")?.as_str().unwrap_or_default())
            .ok_or_else(|| bad("unknown traffic phase"))?;
        s.calm_streak = as_usize(get(&root, "calm_streak")?, "calm_streak")?;
        s.backoff_frames = as_usize(get(&root, "backoff_frames")?, "backoff_frames")?;
        s.cooldown_until = as_usize(get(&root, "cooldown_until")?, "cooldown_until")?;
        s.last_swap_frame = opt_usize(get(&root, "last_swap_frame")?, "last_swap_frame")?;
        s.quarantined = get(&root, "quarantined")?
            .as_array()
            .ok_or_else(|| bad("field `quarantined` is not an array"))?
            .iter()
            .map(|v| as_usize(v, "quarantined"))
            .collect::<Result<_>>()?;
        s.violations = as_u64(get(&root, "violations")?, "violations")?;
        s.true_violations = as_u64(get(&root, "true_violations")?, "true_violations")?;
        s.swaps = as_u64(get(&root, "swaps")?, "swaps")?;
        s.output_digest = as_u64(get(&root, "output_digest")?, "output_digest")?;
        s.energy_uj = as_f64(get(&root, "energy_uj")?, "energy_uj")?;
        s.pdp_pj = as_f64(get(&root, "pdp_pj")?, "pdp_pj")?;
        s.fault_injected = get(&root, "fault_injected")?
            .as_bool()
            .ok_or_else(|| bad("field `fault_injected` is not a bool"))?;
        s.fault_rung = opt_usize(get(&root, "fault_rung")?, "fault_rung")?;
        s.fault_detected_frame =
            opt_usize(get(&root, "fault_detected_frame")?, "fault_detected_frame")?;
        s.events = get(&root, "events")?
            .as_array()
            .ok_or_else(|| bad("field `events` is not an array"))?
            .iter()
            .map(StreamEvent::from_json)
            .collect::<Result<_>>()?;
        if s.rung >= sup.ladder.len() {
            return Err(bad(format!("rung {} outside ladder", s.rung)));
        }
        sup.redeploy()?;
        Ok(sup)
    }
}
