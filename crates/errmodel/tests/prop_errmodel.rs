//! Property tests for the error-modeling crate.

use clapped_axops::{AxMul, MulArch};
use clapped_errmodel::dist::{ks_statistic, quantile_sorted, Dist, DistKind};
use clapped_errmodel::{canonical_terms, rank_terms, ErrorStats, PrModel};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Mutex;

type PrCacheEntry = (std::sync::Arc<AxMul>, PrModel);

fn cached_pr(k: usize) -> PrCacheEntry {
    static CACHE: Mutex<Option<HashMap<usize, PrCacheEntry>>> = Mutex::new(None);
    let mut guard = CACHE.lock().expect("lock");
    let map = guard.get_or_insert_with(HashMap::new);
    map.entry(k)
        .or_insert_with(|| {
            let m = std::sync::Arc::new(AxMul::new("p", MulArch::Truncated { k }));
            let pr = PrModel::fit(m.as_ref(), 3);
            (m.clone(), pr)
        })
        .clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Distribution CDFs are monotone and normalized for arbitrary
    /// parameters.
    #[test]
    fn cdf_axioms(mu in -100.0f64..100.0, scale in 0.01f64..100.0, kind_pick in 0usize..6) {
        let kind = DistKind::ALL[kind_pick];
        let d = Dist::with_params(kind, mu, scale);
        prop_assert!(d.cdf(mu - 1000.0 * scale) < 0.01);
        prop_assert!(d.cdf(mu + 1000.0 * scale) > 0.99);
        let mut prev = -1e-12;
        for i in -20..=20 {
            let c = d.cdf(mu + scale * f64::from(i) / 2.0);
            prop_assert!(c >= prev - 1e-12, "{:?} not monotone", kind);
            prop_assert!((0.0..=1.0).contains(&c));
            prev = c;
        }
    }

    /// The K-S statistic lies in [0, 1] and is
    /// small for samples drawn as the distribution's own quantiles.
    #[test]
    fn ks_bounds(mu in -10.0f64..10.0, scale in 0.1f64..10.0) {
        let d = Dist::with_params(DistKind::Logistic, mu, scale);
        // Inverse-CDF samples of the logistic itself.
        let samples: Vec<f64> = (1..200)
            .map(|i| {
                let u = f64::from(i) / 200.0;
                mu + scale * (u / (1.0 - u)).ln()
            })
            .collect();
        let ks = ks_statistic(&d, &samples);
        prop_assert!((0.0..=1.0).contains(&ks));
        prop_assert!(ks < 0.05, "self-sampled KS {}", ks);
    }

    /// PR prediction error at any point is bounded by a small multiple
    /// of the model's full-space MAE plus slack (no wild extrapolation
    /// inside the training grid).
    #[test]
    fn pr_prediction_is_tame(a: i8, b: i8, k in 1usize..6) {
        let (m, pr) = cached_pr(k);
        let err = (pr.predict(a, b) - f64::from(clapped_axops::Mul8s::mul(m.as_ref(), a, b))).abs();
        prop_assert!(err < 2_000.0, "error {} at {}x{}", err, a, b);
        prop_assert!(pr.r2() <= 1.0 + 1e-12);
    }

    /// Clipping with the full ranking to the full width is the identity.
    #[test]
    fn full_clip_is_identity(k in 1usize..6) {
        let (m, pr) = cached_pr(k);
        let ranking = rank_terms(&[&pr]);
        let clipped = pr.clipped(&ranking, ranking.len());
        for (x, y) in [(0i8, 0i8), (5, -7), (-128, 127), (99, 99)] {
            prop_assert_eq!(clipped.predict_i16(x, y), pr.predict_i16(x, y));
        }
        let _ = m;
    }

    /// Canonical term counts follow the triangular-number formula.
    #[test]
    fn canonical_term_count(d in 1usize..=6) {
        prop_assert_eq!(canonical_terms(d).len(), (d + 1) * (d + 2) / 2);
    }

    /// Interpolated quantiles are monotone in `q` and stay inside the
    /// sample range.
    #[test]
    fn quantiles_monotone_in_q(
        sample in collection::vec(-1e6f64..1e6, 1..40),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        let mut sample = sample;
        sample.sort_by(f64::total_cmp);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let (vlo, vhi) = (quantile_sorted(&sample, lo), quantile_sorted(&sample, hi));
        prop_assert!(vlo <= vhi, "q{lo} -> {vlo} > q{hi} -> {vhi}");
        prop_assert!(vlo >= sample[0] && vhi <= sample[sample.len() - 1]);
    }

    /// At the type-7 grid points q = k/(n-1) the interpolated quantile
    /// equals the k-th order statistic exactly.
    #[test]
    fn quantiles_hit_order_statistics_at_grid_points(
        sample in collection::vec(-1e6f64..1e6, 2..40),
    ) {
        let mut sample = sample;
        sample.sort_by(f64::total_cmp);
        let n = sample.len();
        for (k, &expect) in sample.iter().enumerate() {
            let q = k as f64 / (n - 1) as f64;
            let got = quantile_sorted(&sample, q);
            prop_assert!(
                (got - expect).abs() <= 1e-6 * (1.0 + expect.abs()),
                "grid point k={k} q={q}: got {got}, order statistic {expect}"
            );
        }
    }

    /// Error metrics are internally consistent for every truncation
    /// width: MAE <= max error, MSE >= MAE².
    #[test]
    fn stats_consistency(k in 0usize..=6) {
        let m = AxMul::new("s", MulArch::Truncated { k });
        let s = ErrorStats::of_multiplier(&m);
        prop_assert!(s.max_abs_error >= s.mae);
        prop_assert!(s.mse + 1e-9 >= s.mae * s.mae);
        prop_assert!((0.0..=1.0).contains(&s.error_probability));
        prop_assert!(f64::from(s.peak_positive.max(-s.peak_negative)) == s.max_abs_error);
    }
}
