//! Error analysis of approximate arithmetic operators.
//!
//! Implements Section II of the CLAppED paper:
//!
//! - classic statistical error metrics over the exhaustive input space
//!   ([`ErrorStats`]),
//! - distribution fitting of operator error with Kolmogorov–Smirnov
//!   ranking ([`dist`]),
//! - the *curve fitting* baseline: Levenberg–Marquardt fits of
//!   distribution-shaped surfaces to operator outputs ([`curvefit`]),
//! - the paper's novel **polynomial-regression characterization**
//!   ([`PrModel`]): per-operator monomial coefficients with significance
//!   ranking, clipping (`Clipped_k`) and subset retraining (`C_k`), plus a
//!   [`PrMul`] adapter so a PR model can stand in for the real operator in
//!   application code.
//!
//! # Examples
//!
//! ```
//! use clapped_axops::{AxMul, MulArch};
//! use clapped_errmodel::PrModel;
//!
//! let m = AxMul::new("m", MulArch::Truncated { k: 3 });
//! let pr = PrModel::fit(&m, 3);
//! assert!(pr.r2() > 0.999); // degree-3 PR models multiplier surfaces well
//! ```

pub mod curvefit;
pub mod dist;
mod metrics;
mod poly;

pub use metrics::{error_samples, metrics_cache_stats, ErrorStats};
pub use poly::{canonical_terms, rank_terms, PrModel, PrMul};

use std::error::Error;
use std::fmt;

/// Error type for model fitting.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FitError {
    /// The underlying linear solve failed (singular / indefinite system).
    Numeric(String),
    /// Not enough samples for the requested model complexity.
    TooFewSamples {
        /// Samples provided.
        got: usize,
        /// Samples required.
        need: usize,
    },
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::Numeric(msg) => write!(f, "numeric failure during fit: {msg}"),
            FitError::TooFewSamples { got, need } => {
                write!(f, "too few samples: got {got}, need at least {need}")
            }
        }
    }
}

impl Error for FitError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, FitError>;
