//! Curve-fitting baseline: Levenberg–Marquardt fits of
//! distribution-shaped surfaces to operator outputs.
//!
//! This is the traditional characterization the paper compares its
//! polynomial-regression models against: for each operator the error
//! sample is distribution-fitted (see [`crate::dist`]), the top-ranked
//! families define parametric fitting functions, and a non-linear
//! least-squares fit tunes their parameters. Because approximate operators
//! are *static non-linear* systems with bit-level discontinuities, these
//! smooth surfaces track them poorly — which is exactly the observation
//! that motivates CLAppED's PR-based representation.

use crate::dist::{rank_distributions, Dist, DistKind};
use crate::metrics::error_samples;
use crate::{FitError, Result};
use clapped_axops::{exhaustive_pairs, Mul8s};
use clapped_la::{Cholesky, Mat};

/// Configuration of the Levenberg–Marquardt optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LmConfig {
    /// Maximum number of accepted iterations.
    pub max_iters: usize,
    /// Initial damping factor.
    pub lambda0: f64,
    /// Convergence threshold on the relative SSE improvement.
    pub tol: f64,
}

impl Default for LmConfig {
    fn default() -> Self {
        LmConfig {
            max_iters: 60,
            lambda0: 1e-3,
            tol: 1e-9,
        }
    }
}

/// Minimizes `sum(residual(theta)^2)` with Levenberg–Marquardt using a
/// finite-difference Jacobian.
///
/// `residuals(theta, out)` must fill `out` with one residual per sample;
/// the residual count must stay constant across calls.
///
/// # Errors
///
/// Returns [`FitError::Numeric`] if the damped normal equations become
/// unsolvable at every damping level.
pub fn levenberg_marquardt(
    mut residuals: impl FnMut(&[f64], &mut Vec<f64>),
    theta0: &[f64],
    config: &LmConfig,
) -> Result<(Vec<f64>, f64)> {
    let p = theta0.len();
    let mut theta = theta0.to_vec();
    let mut r = Vec::new();
    residuals(&theta, &mut r);
    let m = r.len();
    if m < p {
        return Err(FitError::TooFewSamples { got: m, need: p });
    }
    let mut sse: f64 = r.iter().map(|x| x * x).sum();
    let mut lambda = config.lambda0;
    let mut jac = vec![vec![0.0f64; m]; p];
    let mut r_pert = Vec::new();

    for _ in 0..config.max_iters {
        // Finite-difference Jacobian.
        for j in 0..p {
            let h = 1e-6 * theta[j].abs().max(1e-3);
            let mut t2 = theta.clone();
            t2[j] += h;
            residuals(&t2, &mut r_pert);
            for i in 0..m {
                jac[j][i] = (r_pert[i] - r[i]) / h;
            }
        }
        // Normal equations: (J^T J + lambda diag) delta = -J^T r.
        let mut jtj = Mat::zeros(p, p);
        let mut jtr = vec![0.0f64; p];
        for a in 0..p {
            for b in a..p {
                let dot: f64 = jac[a].iter().zip(&jac[b]).map(|(x, y)| x * y).sum();
                jtj[(a, b)] = dot;
                jtj[(b, a)] = dot;
            }
            jtr[a] = -jac[a].iter().zip(&r).map(|(x, y)| x * y).sum::<f64>();
        }
        let mut improved = false;
        for _try in 0..8 {
            let mut damped = jtj.clone();
            for d in 0..p {
                damped[(d, d)] += lambda * (jtj[(d, d)].abs() + 1e-12);
            }
            let delta = match Cholesky::factor(&damped).and_then(|ch| ch.solve(&jtr)) {
                Ok(d) => d,
                Err(_) => {
                    lambda *= 10.0;
                    continue;
                }
            };
            let cand: Vec<f64> = theta.iter().zip(&delta).map(|(t, d)| t + d).collect();
            residuals(&cand, &mut r_pert);
            let cand_sse: f64 = r_pert.iter().map(|x| x * x).sum();
            if cand_sse < sse {
                let rel = (sse - cand_sse) / sse.max(1e-30);
                theta = cand;
                std::mem::swap(&mut r, &mut r_pert);
                sse = cand_sse;
                lambda = (lambda / 3.0).max(1e-12);
                improved = true;
                if rel < config.tol {
                    return Ok((theta, sse));
                }
                break;
            }
            lambda *= 5.0;
        }
        if !improved {
            break;
        }
    }
    Ok((theta, sse))
}

/// A distribution-shaped surface fitted to a multiplier's outputs:
///
/// `f(x, y) = t0·S·pdf((x̂ − t1)/e^t2)·pdf((ŷ − t3)/e^t4) + t5·S`
///
/// with `x̂ = x/128`, `S = 16384` and `pdf` the standard density of the
/// chosen family. Following the paper's description, the fitting
/// function is built purely from the fitted distribution's shape — there
/// is deliberately no bilinear term, which is why these models track
/// bit-level operator surfaces poorly and motivate the PR representation.
#[derive(Debug, Clone)]
pub struct SurfaceFit {
    kind: DistKind,
    theta: Vec<f64>,
    sse: f64,
    n_samples: usize,
}

impl SurfaceFit {
    /// Distribution family shaping the correction term.
    pub fn kind(&self) -> DistKind {
        self.kind
    }

    /// Final sum of squared residuals on the fitting sample.
    pub fn sse(&self) -> f64 {
        self.sse
    }

    /// Root-mean-square residual on the fitting sample.
    pub fn rmse(&self) -> f64 {
        (self.sse / self.n_samples.max(1) as f64).sqrt()
    }

    /// Predicts the operator output for an input pair.
    pub fn predict(&self, a: i8, b: i8) -> f64 {
        surface(&self.theta, self.kind, a, b)
    }

    /// Mean absolute estimation error against the operator over the
    /// exhaustive space.
    pub fn estimation_mae(&self, m: &dyn Mul8s) -> f64 {
        self.estimation_mae_fn(|a, b| f64::from(m.mul(a, b)))
    }

    /// Closure-operator variant of [`SurfaceFit::estimation_mae`].
    pub fn estimation_mae_fn(&self, f: impl Fn(i8, i8) -> f64) -> f64 {
        let mut acc = 0.0;
        for (a, b) in exhaustive_pairs() {
            acc += (self.predict(a, b) - f(a, b)).abs();
        }
        acc / 65_536.0
    }

    /// Signed estimation errors (`actual − estimated`) over the
    /// exhaustive space, for histogram plots (paper Fig. 4).
    pub fn estimation_errors(&self, m: &dyn Mul8s) -> Vec<f64> {
        exhaustive_pairs()
            .map(|(a, b)| f64::from(m.mul(a, b)) - self.predict(a, b))
            .collect()
    }
}

fn surface(theta: &[f64], kind: DistKind, a: i8, b: i8) -> f64 {
    let x = f64::from(a) / 128.0;
    let y = f64::from(b) / 128.0;
    let unit = unit_dist(kind);
    let sx = theta[2].exp().clamp(1e-6, 1e6);
    let sy = theta[4].exp().clamp(1e-6, 1e6);
    theta[0] * 16_384.0 * unit.pdf((x - theta[1]) / sx) * unit.pdf((y - theta[3]) / sy)
        + theta[5] * 16_384.0
}

/// A standard (location 0, scale 1) instance of a family, used as the
/// shape kernel of curve-fitting surfaces.
fn unit_dist(kind: DistKind) -> Dist {
    Dist::with_params(kind, 0.0, 1.0)
}

/// Fits the surface model for one distribution family.
///
/// Fitting uses a deterministic 1/16 subsample of the input space for
/// speed; reported quality metrics always use the full space.
///
/// # Errors
///
/// Propagates numeric failures from the optimizer.
pub fn fit_multiplier_surface(
    m: &dyn Mul8s,
    kind: DistKind,
    config: &LmConfig,
) -> Result<SurfaceFit> {
    fit_surface_fn(|a, b| f64::from(m.mul(a, b)), kind, config)
}

/// Closure-operator variant of [`fit_multiplier_surface`] (used for
/// adders and other operator families).
///
/// # Errors
///
/// Propagates numeric failures from the optimizer.
pub fn fit_surface_fn(
    f: impl Fn(i8, i8) -> f64,
    kind: DistKind,
    config: &LmConfig,
) -> Result<SurfaceFit> {
    let samples: Vec<(i8, i8, f64)> = exhaustive_pairs()
        .step_by(16)
        .map(|(a, b)| (a, b, f(a, b)))
        .collect();
    let theta0 = [0.5, 0.0, 0.0, 0.0, 0.0, 0.0];
    let residuals = |theta: &[f64], out: &mut Vec<f64>| {
        out.clear();
        out.extend(
            samples
                .iter()
                .map(|&(a, b, target)| surface(theta, kind, a, b) - target),
        );
    };
    let n = samples.len();
    let (theta, sse) = levenberg_marquardt(residuals, &theta0, config)?;
    Ok(SurfaceFit {
        kind,
        theta,
        sse,
        n_samples: n,
    })
}

/// Runs the full curve-fitting baseline: distribution-fits the operator's
/// error sample, takes the `top_k` families by K-S rank, fits a surface
/// for each and returns them ranked by SSE (best first).
///
/// # Errors
///
/// Propagates numeric failures from the optimizer.
pub fn best_curve_fits(m: &dyn Mul8s, top_k: usize, config: &LmConfig) -> Result<Vec<SurfaceFit>> {
    let errors = error_samples(m);
    let ranked = rank_distributions(&errors);
    let mut fits = Vec::new();
    for (dist, _ks) in ranked.into_iter().take(top_k) {
        fits.push(fit_multiplier_surface(m, dist.kind(), config)?);
    }
    fits.sort_by(|a, b| a.sse.total_cmp(&b.sse));
    Ok(fits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapped_axops::{AxMul, MulArch};

    #[test]
    fn lm_fits_a_quadratic() {
        // Fit y = 2 + 3t^2 through noise-free data with model a + b t^2.
        let ts: Vec<f64> = (0..50).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = ts.iter().map(|t| 2.0 + 3.0 * t * t).collect();
        let res = |theta: &[f64], out: &mut Vec<f64>| {
            out.clear();
            out.extend(
                ts.iter()
                    .zip(&ys)
                    .map(|(t, y)| theta[0] + theta[1] * t * t - y),
            );
        };
        let (theta, sse) = levenberg_marquardt(res, &[0.0, 0.0], &LmConfig::default()).unwrap();
        assert!((theta[0] - 2.0).abs() < 1e-4, "{theta:?}");
        assert!((theta[1] - 3.0).abs() < 1e-5, "{theta:?}");
        assert!(sse < 1e-6);
    }

    #[test]
    fn lm_fits_nonlinear_exponential() {
        let ts: Vec<f64> = (0..40).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = ts.iter().map(|t| 5.0 * (-0.7 * t).exp()).collect();
        let res = |theta: &[f64], out: &mut Vec<f64>| {
            out.clear();
            out.extend(
                ts.iter()
                    .zip(&ys)
                    .map(|(t, y)| theta[0] * (theta[1] * t).exp() - y),
            );
        };
        let (theta, _) = levenberg_marquardt(res, &[1.0, -0.1], &LmConfig::default()).unwrap();
        assert!((theta[0] - 5.0).abs() < 1e-3, "{theta:?}");
        assert!((theta[1] + 0.7).abs() < 1e-3, "{theta:?}");
    }

    #[test]
    fn surface_fit_improves_over_initial_guess() {
        let m = AxMul::new("e", MulArch::Exact);
        let fit =
            fit_multiplier_surface(&m, DistKind::Normal, &LmConfig::default()).unwrap();
        // The optimizer must at least beat the trivial zero prediction.
        let zero_mae: f64 = clapped_axops::exhaustive_pairs()
            .map(|(a, b)| f64::from(m.mul(a, b)).abs())
            .sum::<f64>()
            / 65_536.0;
        assert!(fit.estimation_mae(&m) < zero_mae, "mae {}", fit.estimation_mae(&m));
    }

    #[test]
    fn surface_fit_cannot_capture_bit_level_operators() {
        // The distribution-only baseline misses the multiplicative
        // structure entirely — the core observation of paper Section II.
        for arch in [MulArch::Exact, MulArch::Mitchell] {
            let m = AxMul::new("m", arch);
            let fit =
                fit_multiplier_surface(&m, DistKind::Normal, &LmConfig::default()).unwrap();
            assert!(fit.estimation_mae(&m) > 100.0, "{arch:?}");
        }
    }

    #[test]
    fn best_curve_fits_returns_sorted() {
        let m = AxMul::new("t", MulArch::Truncated { k: 4 });
        let fits = best_curve_fits(&m, 3, &LmConfig::default()).unwrap();
        assert_eq!(fits.len(), 3);
        for w in fits.windows(2) {
            assert!(w[0].sse() <= w[1].sse());
        }
    }
}
