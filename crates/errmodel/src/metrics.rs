//! Statistical error metrics over the exhaustive operator input space.
//!
//! Exhaustive characterization walks all 65 536 input pairs, and the
//! same operators are re-characterized all over the workspace (the DSE
//! features, the runtime ladder, the fault campaigns). Both entry
//! points therefore memoize process-wide through [`clapped_exec::Memo`]
//! keyed on the operator's behaviour digest — the same key the compiled
//! convolution plans use — with a direct-compute fallthrough for
//! operators that don't expose a digest.

use clapped_axops::{exhaustive_pairs, Mul8s};
use clapped_exec::Memo;
use std::sync::OnceLock;

/// Process-wide memo of exhaustive [`ErrorStats`] per behaviour digest.
fn stats_memo() -> &'static Memo<u64, ErrorStats> {
    static MEMO: OnceLock<Memo<u64, ErrorStats>> = OnceLock::new();
    MEMO.get_or_init(Memo::default)
}

/// Process-wide memo of exhaustive signed-error sample vectors.
fn samples_memo() -> &'static Memo<u64, Vec<f64>> {
    static MEMO: OnceLock<Memo<u64, Vec<f64>>> = OnceLock::new();
    MEMO.get_or_init(Memo::default)
}

/// Hit/miss statistics of the exhaustive characterization memos:
/// `(metrics, sample vectors)`.
pub fn metrics_cache_stats() -> (clapped_exec::MemoStats, clapped_exec::MemoStats) {
    (stats_memo().stats(), samples_memo().stats())
}

/// Classic statistical error metrics of an approximate binary operator,
/// computed over the full 8-bit signed input space.
///
/// These are the "traditional" characterizations the paper contrasts with
/// its PR-coefficient representation: mean absolute error, average
/// absolute relative error, error probability, mean squared error,
/// (weighted) mean error distance and peak errors.
///
/// # Examples
///
/// ```
/// use clapped_axops::{AxMul, MulArch};
/// use clapped_errmodel::ErrorStats;
///
/// let exact = AxMul::new("exact", MulArch::Exact);
/// let stats = ErrorStats::of_multiplier(&exact);
/// assert_eq!(stats.mae, 0.0);
/// assert_eq!(stats.error_probability, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorStats {
    /// Mean absolute error `mean(|approx - exact|)`.
    pub mae: f64,
    /// Average absolute relative error `mean(|err| / max(1, |exact|))`.
    pub mean_relative: f64,
    /// Fraction of inputs with a non-zero error.
    pub error_probability: f64,
    /// Mean squared error.
    pub mse: f64,
    /// Mean (signed) error — the operator's bias.
    pub mean_error: f64,
    /// Maximum absolute error.
    pub max_abs_error: f64,
    /// Most negative signed error.
    pub peak_negative: i32,
    /// Most positive signed error.
    pub peak_positive: i32,
    /// Weighted mean error distance: absolute error weighted by the
    /// probability-like weight `2^-|bit position of exact product|`
    /// normalized over the space (AutoAx-style single-figure metric).
    pub wmed: f64,
}

impl ErrorStats {
    /// Computes the metrics for arbitrary approximate/exact functions over
    /// the exhaustive 8-bit signed space.
    pub fn from_fns(
        approx: impl Fn(i8, i8) -> i32,
        exact: impl Fn(i8, i8) -> i32,
    ) -> ErrorStats {
        let mut n = 0.0f64;
        let mut abs_sum = 0.0f64;
        let mut rel_sum = 0.0f64;
        let mut sq_sum = 0.0f64;
        let mut signed_sum = 0.0f64;
        let mut nonzero = 0.0f64;
        let mut max_abs = 0.0f64;
        let mut peak_neg = 0i32;
        let mut peak_pos = 0i32;
        let mut wmed_num = 0.0f64;
        let mut wmed_den = 0.0f64;
        for (a, b) in exhaustive_pairs() {
            let e = exact(a, b);
            let err = approx(a, b) - e;
            let abs = f64::from(err.abs());
            n += 1.0;
            abs_sum += abs;
            rel_sum += abs / f64::from(e.abs().max(1));
            sq_sum += abs * abs;
            signed_sum += f64::from(err);
            if err != 0 {
                nonzero += 1.0;
            }
            if abs > max_abs {
                max_abs = abs;
            }
            peak_neg = peak_neg.min(err);
            peak_pos = peak_pos.max(err);
            // Weight low-magnitude regions higher (they dominate natural
            // data): w = 1 / (1 + |exact|).
            let w = 1.0 / (1.0 + f64::from(e.abs()));
            wmed_num += w * abs;
            wmed_den += w;
        }
        ErrorStats {
            mae: abs_sum / n,
            mean_relative: rel_sum / n,
            error_probability: nonzero / n,
            mse: sq_sum / n,
            mean_error: signed_sum / n,
            max_abs_error: max_abs,
            peak_negative: peak_neg,
            peak_positive: peak_pos,
            wmed: wmed_num / wmed_den,
        }
    }

    /// Computes the metrics of a multiplier against the exact product.
    ///
    /// Memoized process-wide on the operator's behaviour digest, so
    /// repeated characterizations of the same operator (DSE feature
    /// encoding, runtime ladder calibration, fault campaigns) pay for
    /// the exhaustive sweep once.
    pub fn of_multiplier(m: &dyn Mul8s) -> ErrorStats {
        let compute = || {
            ErrorStats::from_fns(
                |a, b| i32::from(m.mul(a, b)),
                |a, b| i32::from(a) * i32::from(b),
            )
        };
        match m.behaviour_digest() {
            Some(digest) => stats_memo().get_or_insert_with(digest, compute),
            None => compute(),
        }
    }

    /// The four-metric vector the paper calls `M4` (max absolute error,
    /// average relative error, error probability, MSE).
    pub fn m4(&self) -> [f64; 4] {
        [
            self.max_abs_error,
            self.mean_relative,
            self.error_probability,
            self.mse,
        ]
    }

    /// The single-metric representation the paper calls `M1` (MSE, after
    /// the WMED-style identification of AutoAx).
    pub fn m1(&self) -> [f64; 1] {
        [self.mse]
    }
}

/// Collects the signed error of every input pair (row-major over `a`,
/// then `b`) — the raw material for distribution fitting and histogram
/// plots (paper Figs. 3 and 4).
///
/// Memoized process-wide on the operator's behaviour digest (the
/// returned vector is a clone of the cached sweep).
pub fn error_samples(m: &dyn Mul8s) -> Vec<f64> {
    let compute = || {
        exhaustive_pairs()
            .map(|(a, b)| f64::from(i32::from(m.mul(a, b)) - i32::from(a) * i32::from(b)))
            .collect::<Vec<f64>>()
    };
    match m.behaviour_digest() {
        Some(digest) => samples_memo().get_or_insert_with(digest, compute),
        None => compute(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapped_axops::{AxMul, MulArch};

    #[test]
    fn exact_multiplier_has_zero_everything() {
        let m = AxMul::new("e", MulArch::Exact);
        let s = ErrorStats::of_multiplier(&m);
        assert_eq!(s.mae, 0.0);
        assert_eq!(s.mse, 0.0);
        assert_eq!(s.error_probability, 0.0);
        assert_eq!(s.max_abs_error, 0.0);
        assert_eq!(s.peak_negative, 0);
        assert_eq!(s.peak_positive, 0);
        assert_eq!(s.wmed, 0.0);
    }

    #[test]
    fn truncated_multiplier_has_consistent_metrics() {
        let m = AxMul::new("t", MulArch::Truncated { k: 4 });
        let s = ErrorStats::of_multiplier(&m);
        assert!(s.mae > 0.0);
        assert!(s.mse >= s.mae * s.mae, "Jensen: E[X^2] >= E[X]^2");
        assert!(s.max_abs_error >= s.mae);
        assert!(s.error_probability > 0.5, "truncation errs on most inputs");
        assert!(f64::from(s.peak_positive.max(-s.peak_negative)) == s.max_abs_error);
    }

    #[test]
    fn error_samples_count_and_mean_match() {
        let m = AxMul::new("t", MulArch::Truncated { k: 2 });
        let samples = error_samples(&m);
        assert_eq!(samples.len(), 65_536);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let s = ErrorStats::of_multiplier(&m);
        assert!((mean - s.mean_error).abs() < 1e-9);
    }

    #[test]
    fn repeated_characterization_hits_the_memo() {
        let m = AxMul::new("memo-probe", MulArch::Truncated { k: 3 });
        assert!(m.behaviour_digest().is_some(), "AxMul exposes a digest");
        let first = ErrorStats::of_multiplier(&m);
        let (before, _) = metrics_cache_stats();
        let second = ErrorStats::of_multiplier(&m);
        let (after, _) = metrics_cache_stats();
        assert_eq!(first, second);
        assert!(after.hits > before.hits, "second characterization must hit the memo");

        let s1 = error_samples(&m);
        let (_, sam_before) = metrics_cache_stats();
        let s2 = error_samples(&m);
        let (_, sam_after) = metrics_cache_stats();
        assert_eq!(s1, s2);
        assert!(sam_after.hits > sam_before.hits);
    }

    #[test]
    fn faulted_operator_is_cached_under_a_distinct_digest() {
        use clapped_axops::FaultedMul;
        use clapped_netlist::{FaultKind, FaultSet};

        let base = AxMul::new("tr3", MulArch::Truncated { k: 3 });
        let msb = base.netlist().outputs().last().expect("product MSB").1;
        let faults = FaultSet::empty().stuck_at(msb, FaultKind::StuckAt1);
        let faulted = FaultedMul::new(&base, &faults).expect("valid fault site");
        assert_ne!(
            base.behaviour_digest(),
            faulted.behaviour_digest(),
            "a faulted operator must never share the healthy digest"
        );
        let healthy = ErrorStats::of_multiplier(&base);
        let broken = ErrorStats::of_multiplier(&faulted);
        assert!(
            broken.max_abs_error > healthy.max_abs_error,
            "an MSB stuck-at-1 must blow up the error metrics"
        );
        // And the memo keeps them apart: re-reading both returns the
        // same distinct values.
        assert_eq!(ErrorStats::of_multiplier(&base), healthy);
        assert_eq!(ErrorStats::of_multiplier(&faulted), broken);
    }

    #[test]
    fn m4_and_m1_have_expected_shapes() {
        let m = AxMul::new("t", MulArch::Truncated { k: 1 });
        let s = ErrorStats::of_multiplier(&m);
        assert_eq!(s.m4().len(), 4);
        assert_eq!(s.m1().len(), 1);
        assert_eq!(s.m1()[0], s.mse);
    }
}
