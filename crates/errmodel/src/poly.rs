//! Polynomial-regression characterization of approximate operators —
//! the paper's core contribution (Section II-A).
//!
//! Every operator is represented by the coefficients of a bivariate
//! polynomial fitted to its full input/output behaviour. Coefficients can
//! be ranked by significance across a whole operator library, *clipped*
//! (zeroed without retraining, the paper's `Clipped_k`) or *retrained on a
//! subset of terms* (the paper's `C_k`), and the resulting short vectors
//! serve as ML features that let models generalize to unseen operators.

use crate::{FitError, Result};
use clapped_axops::{exhaustive_pairs, Mul8s};
use clapped_la::{Cholesky, Mat};
use std::fmt;

/// Input normalization: operands are divided by this before entering the
/// monomials, keeping high-degree features well conditioned.
const SCALE: f64 = 128.0;

/// Canonical monomial order for a given degree: `(i, j)` exponent pairs
/// grouped by total degree, mirroring Eq. (1) of the paper
/// (`c0 + c1·x + c2·y + c3·x² + c4·xy + c5·y² + …`).
pub fn canonical_terms(degree: usize) -> Vec<(u8, u8)> {
    let mut terms = Vec::new();
    for d in 0..=degree {
        for i in (0..=d).rev() {
            let j = d - i;
            terms.push((i as u8, j as u8));
        }
    }
    terms
}

/// A polynomial-regression model of one operator.
///
/// # Examples
///
/// ```
/// use clapped_axops::{AxMul, MulArch};
/// use clapped_errmodel::PrModel;
///
/// let m = AxMul::new("m", MulArch::Exact);
/// let pr = PrModel::fit(&m, 2);
/// // For an exact multiplier the xy coefficient carries everything.
/// assert!(pr.r2() > 0.999_999);
/// assert!((pr.predict(10, 10) - 100.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PrModel {
    degree: usize,
    terms: Vec<(u8, u8)>,
    coeffs: Vec<f64>,
    r2: f64,
}

impl PrModel {
    /// Fits a degree-`degree` PR model to a multiplier over the full
    /// 65 536-point input space.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is 0 or greater than 6, or if the normal
    /// equations are numerically singular (cannot happen for the canonical
    /// monomial basis over the full grid).
    pub fn fit(m: &dyn Mul8s, degree: usize) -> PrModel {
        Self::fit_fn(|a, b| f64::from(m.mul(a, b)), degree)
    }

    /// Fits a degree-`degree` PR model to an arbitrary binary operator
    /// given as a closure (used for adders and other operator families).
    ///
    /// # Panics
    ///
    /// See [`PrModel::fit`].
    pub fn fit_fn(f: impl Fn(i8, i8) -> f64, degree: usize) -> PrModel {
        let terms = canonical_terms(degree);
        Self::fit_terms_impl(&f, degree, terms).expect("canonical basis is well conditioned")
    }

    /// Fits a PR model restricted to an explicit subset of monomials (the
    /// paper's retrained `C_k` models).
    ///
    /// # Errors
    ///
    /// Returns [`FitError::Numeric`] if the restricted basis is singular
    /// and [`FitError::TooFewSamples`] if `terms` is empty.
    pub fn fit_terms(m: &dyn Mul8s, degree: usize, terms: Vec<(u8, u8)>) -> Result<PrModel> {
        Self::fit_terms_impl(&|a, b| f64::from(m.mul(a, b)), degree, terms)
    }

    fn fit_terms_impl(
        f: &dyn Fn(i8, i8) -> f64,
        degree: usize,
        terms: Vec<(u8, u8)>,
    ) -> Result<PrModel> {
        assert!((1..=6).contains(&degree), "degree must be in 1..=6");
        if terms.is_empty() {
            return Err(FitError::TooFewSamples { got: 0, need: 1 });
        }
        let t = terms.len();
        let mut gram = Mat::zeros(t, t);
        let mut rhs = vec![0.0f64; t];
        let mut features = vec![0.0f64; t];
        let mut y_sum = 0.0f64;
        let mut y_sq = 0.0f64;
        let mut n = 0.0f64;
        for (a, b) in exhaustive_pairs() {
            eval_features(&terms, a, b, &mut features);
            let y = f(a, b);
            for i in 0..t {
                let fi = features[i];
                if fi == 0.0 {
                    continue;
                }
                for j in i..t {
                    gram[(i, j)] += fi * features[j];
                }
                rhs[i] += fi * y;
            }
            y_sum += y;
            y_sq += y * y;
            n += 1.0;
        }
        for i in 0..t {
            for j in 0..i {
                gram[(i, j)] = gram[(j, i)];
            }
            // Tiny ridge for numerical robustness of near-collinear bases.
            gram[(i, i)] += 1e-9;
        }
        let coeffs = Cholesky::factor(&gram)
            .and_then(|ch| ch.solve(&rhs))
            .map_err(|e| FitError::Numeric(e.to_string()))?;
        // R^2 = 1 - SSE/SST; SSE = y'y - 2 c'X'y + c'X'X c.
        let mut cxx = 0.0;
        for i in 0..t {
            for j in 0..t {
                cxx += coeffs[i] * gram[(i, j)] * coeffs[j];
            }
        }
        let cxy: f64 = coeffs.iter().zip(&rhs).map(|(c, r)| c * r).sum();
        let sse = (y_sq - 2.0 * cxy + cxx).max(0.0);
        let sst = (y_sq - y_sum * y_sum / n).max(1e-12);
        let r2 = 1.0 - sse / sst;
        Ok(PrModel {
            degree,
            terms,
            coeffs,
            r2,
        })
    }

    /// Model degree.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Monomial exponents in model order.
    pub fn terms(&self) -> &[(u8, u8)] {
        &self.terms
    }

    /// Fitted coefficients, aligned with [`PrModel::terms`].
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Coefficient of determination of the fit.
    pub fn r2(&self) -> f64 {
        self.r2
    }

    /// Predicts the operator output for an input pair.
    pub fn predict(&self, a: i8, b: i8) -> f64 {
        let x = f64::from(a) / SCALE;
        let y = f64::from(b) / SCALE;
        self.terms
            .iter()
            .zip(&self.coeffs)
            .map(|(&(i, j), &c)| c * x.powi(i32::from(i)) * y.powi(i32::from(j)))
            .sum()
    }

    /// Predicts and rounds to a 16-bit product (saturating).
    pub fn predict_i16(&self, a: i8, b: i8) -> i16 {
        self.predict(a, b)
            .round()
            .clamp(f64::from(i16::MIN), f64::from(i16::MAX)) as i16
    }

    /// Returns a copy with all but the `keep` most significant terms
    /// zeroed (no retraining) — the paper's `Clipped_k` models.
    ///
    /// `ranking` lists term indices by descending significance, as
    /// produced by [`rank_terms`].
    ///
    /// # Panics
    ///
    /// Panics if `ranking` is not a permutation-prefix of the model's
    /// term indices.
    pub fn clipped(&self, ranking: &[usize], keep: usize) -> PrModel {
        let mut out = self.clone();
        let kept: Vec<usize> = ranking.iter().copied().take(keep).collect();
        for (idx, c) in out.coeffs.iter_mut().enumerate() {
            if !kept.contains(&idx) {
                *c = 0.0;
            }
        }
        out
    }

    /// Retrains the model keeping only the `keep` most significant terms
    /// (the paper's `C_k` models).
    ///
    /// # Errors
    ///
    /// Propagates fitting errors.
    pub fn refit_top(
        &self,
        m: &dyn Mul8s,
        ranking: &[usize],
        keep: usize,
    ) -> Result<PrModel> {
        let terms: Vec<(u8, u8)> = ranking
            .iter()
            .take(keep)
            .map(|&i| self.terms[i])
            .collect();
        PrModel::fit_terms(m, self.degree, terms)
    }

    /// Closure-operator variant of [`PrModel::refit_top`].
    ///
    /// # Errors
    ///
    /// Propagates fitting errors.
    pub fn refit_top_fn(
        &self,
        f: impl Fn(i8, i8) -> f64,
        ranking: &[usize],
        keep: usize,
    ) -> Result<PrModel> {
        let terms: Vec<(u8, u8)> = ranking
            .iter()
            .take(keep)
            .map(|&i| self.terms[i])
            .collect();
        Self::fit_terms_impl(&f, self.degree, terms)
    }

    /// The coefficient feature vector for ML models: the coefficients of
    /// the `k` globally most significant terms, in ranking order (terms
    /// absent from this model contribute 0).
    pub fn feature_vector(&self, ranking: &[usize], k: usize) -> Vec<f64> {
        let full = canonical_terms(self.degree);
        ranking
            .iter()
            .take(k)
            .map(|&global_idx| {
                let term = full[global_idx];
                self.terms
                    .iter()
                    .position(|&t| t == term)
                    .map(|p| self.coeffs[p])
                    .unwrap_or(0.0)
            })
            .collect()
    }

    /// Mean absolute estimation error against the operator over the
    /// exhaustive space.
    pub fn estimation_mae(&self, m: &dyn Mul8s) -> f64 {
        self.estimation_mae_fn(|a, b| f64::from(m.mul(a, b)))
    }

    /// Closure-operator variant of [`PrModel::estimation_mae`].
    pub fn estimation_mae_fn(&self, f: impl Fn(i8, i8) -> f64) -> f64 {
        let mut acc = 0.0;
        for (a, b) in exhaustive_pairs() {
            acc += (self.predict(a, b) - f(a, b)).abs();
        }
        acc / 65_536.0
    }

    /// Signed estimation errors (`actual − estimated`) for histogram
    /// plots (paper Fig. 4).
    pub fn estimation_errors(&self, m: &dyn Mul8s) -> Vec<f64> {
        exhaustive_pairs()
            .map(|(a, b)| f64::from(m.mul(a, b)) - self.predict(a, b))
            .collect()
    }
}

/// Ranks monomial terms by significance across an operator library:
/// the mean over models of `|coefficient| × std(monomial feature)`.
/// Returns term indices (into [`canonical_terms`] of the shared degree)
/// sorted by descending significance.
///
/// # Panics
///
/// Panics if `models` is empty or the models disagree on degree/basis.
pub fn rank_terms(models: &[&PrModel]) -> Vec<usize> {
    assert!(!models.is_empty(), "need at least one model to rank");
    let degree = models[0].degree;
    let terms = canonical_terms(degree);
    for m in models {
        assert_eq!(m.degree, degree, "models must share a degree");
        assert_eq!(m.terms, terms, "models must use the canonical basis");
    }
    // Feature standard deviation over the input grid (computed once).
    let stds: Vec<f64> = terms
        .iter()
        .map(|&(i, j)| feature_std(i, j))
        .collect();
    let mut importance = vec![0.0f64; terms.len()];
    for m in models {
        for (idx, &c) in m.coeffs.iter().enumerate() {
            importance[idx] += c.abs() * stds[idx];
        }
    }
    let mut order: Vec<usize> = (0..terms.len()).collect();
    order.sort_by(|&a, &b| importance[b].total_cmp(&importance[a]));
    order
}

fn eval_features(terms: &[(u8, u8)], a: i8, b: i8, out: &mut [f64]) {
    let x = f64::from(a) / SCALE;
    let y = f64::from(b) / SCALE;
    // Power tables up to degree 6.
    let mut xp = [1.0f64; 7];
    let mut yp = [1.0f64; 7];
    for k in 1..7 {
        xp[k] = xp[k - 1] * x;
        yp[k] = yp[k - 1] * y;
    }
    for (slot, &(i, j)) in out.iter_mut().zip(terms) {
        *slot = xp[i as usize] * yp[j as usize];
    }
}

/// Standard deviation of the monomial `x^i y^j` over the normalized
/// 8-bit grid (computed numerically over one axis since x and y are
/// independent).
fn feature_std(i: u8, j: u8) -> f64 {
    if i == 0 && j == 0 {
        // The constant term has zero variance but shifts every
        // prediction; give it a small non-zero scale so operator bias (a
        // key approximation driver) is rankable without dominating the
        // structural terms.
        return 0.1;
    }
    let moment = |p: u32| -> f64 {
        let mut acc = 0.0;
        for v in i8::MIN..=i8::MAX {
            acc += (f64::from(v) / SCALE).powi(p as i32);
        }
        acc / 256.0
    };
    let exi = moment(u32::from(i));
    let exi2 = moment(2 * u32::from(i));
    let eyj = moment(u32::from(j));
    let eyj2 = moment(2 * u32::from(j));
    let mean = exi * eyj;
    let var = (exi2 * eyj2 - mean * mean).max(0.0);
    var.sqrt()
}

/// Adapter exposing a [`PrModel`] as a [`Mul8s`] operator, so PR-based
/// estimates can replace real operator tables inside application models
/// (Section II-B's "PR coefficients-based estimates" execution mode).
#[derive(Debug, Clone)]
pub struct PrMul {
    name: String,
    model: PrModel,
}

impl PrMul {
    /// Wraps a model under an operator name.
    pub fn new(name: impl Into<String>, model: PrModel) -> PrMul {
        PrMul {
            name: name.into(),
            model,
        }
    }

    /// The underlying PR model.
    pub fn model(&self) -> &PrModel {
        &self.model
    }
}

impl Mul8s for PrMul {
    fn name(&self) -> &str {
        &self.name
    }

    fn mul(&self, a: i8, b: i8) -> i16 {
        self.model.predict_i16(a, b)
    }
}

impl fmt::Display for PrModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PR(degree {}, {} terms, R2 {:.4})", self.degree, self.terms.len(), self.r2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapped_axops::{AxMul, MulArch};

    #[test]
    fn canonical_terms_counts() {
        assert_eq!(canonical_terms(1).len(), 3);
        assert_eq!(canonical_terms(2).len(), 6);
        assert_eq!(canonical_terms(3).len(), 10);
        assert_eq!(canonical_terms(2), vec![(0, 0), (1, 0), (0, 1), (2, 0), (1, 1), (0, 2)]);
    }

    #[test]
    fn exact_multiplier_recovers_xy_coefficient() {
        let m = AxMul::new("e", MulArch::Exact);
        let pr = PrModel::fit(&m, 2);
        // Coefficient of xy should be SCALE^2 (since features are x/128).
        let xy_idx = pr.terms().iter().position(|&t| t == (1, 1)).unwrap();
        assert!((pr.coeffs()[xy_idx] - SCALE * SCALE).abs() < 1e-3);
        for (idx, &c) in pr.coeffs().iter().enumerate() {
            if idx != xy_idx {
                assert!(c.abs() < 1e-3, "term {idx} unexpectedly {c}");
            }
        }
        assert!(pr.r2() > 0.999_999_9);
        assert_eq!(pr.predict_i16(-128, 127), -16_256);
    }

    #[test]
    fn degree3_fits_truncated_multiplier_well() {
        let m = AxMul::new("t", MulArch::Truncated { k: 4 });
        let pr = PrModel::fit(&m, 3);
        assert!(pr.r2() > 0.999, "R2 {}", pr.r2());
        assert!(pr.estimation_mae(&m) < 20.0);
    }

    #[test]
    fn higher_degree_never_fits_worse() {
        let m = AxMul::new("log", MulArch::Mitchell);
        let r2_2 = PrModel::fit(&m, 2).r2();
        let r2_3 = PrModel::fit(&m, 3).r2();
        let r2_4 = PrModel::fit(&m, 4).r2();
        assert!(r2_3 >= r2_2 - 1e-12);
        assert!(r2_4 >= r2_3 - 1e-12);
    }

    #[test]
    fn ranking_puts_xy_first_for_multipliers() {
        let muls: Vec<AxMul> = [
            MulArch::Exact,
            MulArch::Truncated { k: 3 },
            MulArch::Mitchell,
            MulArch::Drum { k: 4 },
        ]
        .iter()
        .enumerate()
        .map(|(i, &arch)| AxMul::new(format!("m{i}"), arch))
        .collect();
        let models: Vec<PrModel> = muls.iter().map(|m| PrModel::fit(m, 3)).collect();
        let refs: Vec<&PrModel> = models.iter().collect();
        let ranking = rank_terms(&refs);
        let terms = canonical_terms(3);
        assert_eq!(terms[ranking[0]], (1, 1), "xy must dominate");
    }

    #[test]
    fn clipped_model_degrades_gracefully() {
        let m = AxMul::new("t", MulArch::Truncated { k: 4 });
        let pr = PrModel::fit(&m, 3);
        let ranking = rank_terms(&[&pr]);
        let full_mae = pr.estimation_mae(&m);
        let mae5 = pr.clipped(&ranking, 5).estimation_mae(&m);
        let mae2 = pr.clipped(&ranking, 2).estimation_mae(&m);
        // Clipping (no retraining) can only match or worsen the fitted
        // model; between clipped models no strict ordering is guaranteed.
        assert!(mae5 >= full_mae - 1e-9);
        assert!(mae2 >= full_mae - 1e-9);
    }

    #[test]
    fn refit_top_beats_clipping() {
        let m = AxMul::new("b", MulArch::BrokenArray { vbl: 6, hbl: 2 });
        let pr = PrModel::fit(&m, 3);
        let ranking = rank_terms(&[&pr]);
        let keep = 4;
        let clipped = pr.clipped(&ranking, keep).estimation_mae(&m);
        let refit = pr.refit_top(&m, &ranking, keep).unwrap().estimation_mae(&m);
        assert!(refit <= clipped + 1e-9, "refit {refit} vs clipped {clipped}");
    }

    #[test]
    fn feature_vector_has_requested_length_and_order() {
        let m = AxMul::new("t", MulArch::Truncated { k: 2 });
        let pr = PrModel::fit(&m, 3);
        let ranking = rank_terms(&[&pr]);
        let fv = pr.feature_vector(&ranking, 4);
        assert_eq!(fv.len(), 4);
        assert_eq!(fv[0], pr.coeffs()[ranking[0]]);
    }

    #[test]
    fn pr_mul_adapter_matches_rounded_predictions() {
        let m = AxMul::new("t", MulArch::Truncated { k: 3 });
        let pr = PrModel::fit(&m, 3);
        let adapter = PrMul::new("pr_t", pr.clone());
        for (a, b) in [(0i8, 0i8), (5, -5), (-128, 127), (99, 3)] {
            assert_eq!(Mul8s::mul(&adapter, a, b), pr.predict_i16(a, b));
        }
        assert_eq!(adapter.name(), "pr_t");
    }

    #[test]
    fn empty_term_set_is_rejected() {
        let m = AxMul::new("e", MulArch::Exact);
        assert!(matches!(
            PrModel::fit_terms(&m, 2, vec![]),
            Err(FitError::TooFewSamples { .. })
        ));
    }
}
