//! Probability distributions, moment fitting and Kolmogorov–Smirnov
//! ranking.
//!
//! Used by the curve-fitting baseline: the paper fits several candidate
//! distributions to each operator's error sample, ranks them with the K-S
//! statistic and derives fitting functions from the best ones.

use std::f64::consts::PI;

/// Families of distributions considered for operator-error fitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DistKind {
    /// Gaussian.
    Normal,
    /// Logistic (heavier tails than normal).
    Logistic,
    /// Laplace (double exponential).
    Laplace,
    /// Cauchy (fit by quantiles; undefined moments).
    Cauchy,
    /// Uniform over an interval.
    Uniform,
    /// Gumbel (extreme value, right-skewed).
    Gumbel,
}

impl DistKind {
    /// All supported families.
    pub const ALL: [DistKind; 6] = [
        DistKind::Normal,
        DistKind::Logistic,
        DistKind::Laplace,
        DistKind::Cauchy,
        DistKind::Uniform,
        DistKind::Gumbel,
    ];

    /// Family name.
    pub fn name(self) -> &'static str {
        match self {
            DistKind::Normal => "norm",
            DistKind::Logistic => "logistic",
            DistKind::Laplace => "laplace",
            DistKind::Cauchy => "cauchy",
            DistKind::Uniform => "uniform",
            DistKind::Gumbel => "gumbel",
        }
    }
}

/// A fitted two-parameter distribution (location `mu`, scale `s`).
///
/// # Examples
///
/// ```
/// use clapped_errmodel::dist::{Dist, DistKind};
///
/// let d = Dist::fit(DistKind::Normal, &[0.0, 1.0, -1.0, 2.0, -2.0]);
/// assert!((d.cdf(d.mu()) - 0.5).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dist {
    kind: DistKind,
    mu: f64,
    s: f64,
}

impl Dist {
    /// Fits the distribution to samples by moments (or quantiles for
    /// Cauchy/Uniform).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn fit(kind: DistKind, samples: &[f64]) -> Dist {
        assert!(!samples.is_empty(), "cannot fit a distribution to no data");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let sd = var.sqrt().max(1e-12);
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let quantile = |q: f64| -> f64 { quantile_sorted(&sorted, q) };
        let (mu, s) = match kind {
            DistKind::Normal => (mean, sd),
            // logistic variance = s^2 pi^2 / 3
            DistKind::Logistic => (mean, sd * 3.0f64.sqrt() / PI),
            // laplace variance = 2 b^2
            DistKind::Laplace => (quantile(0.5), (var / 2.0).sqrt().max(1e-12)),
            // cauchy: median + half interquartile range
            DistKind::Cauchy => {
                let iqr = quantile(0.75) - quantile(0.25);
                (quantile(0.5), (iqr / 2.0).max(1e-12))
            }
            // uniform on [min, max]: mu = midpoint, s = half-width
            DistKind::Uniform => {
                let (lo, hi) = (sorted[0], sorted[sorted.len() - 1]);
                ((lo + hi) / 2.0, ((hi - lo) / 2.0).max(1e-12))
            }
            // gumbel: sd = s pi / sqrt(6), mean = mu + gamma s
            DistKind::Gumbel => {
                let s = sd * 6.0f64.sqrt() / PI;
                const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
                (mean - EULER_GAMMA * s, s.max(1e-12))
            }
        };
        Dist { kind, mu, s }
    }

    /// Creates a distribution directly from parameters.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive.
    pub fn with_params(kind: DistKind, mu: f64, scale: f64) -> Dist {
        assert!(scale > 0.0, "scale must be positive");
        Dist { kind, mu, s: scale }
    }

    /// Distribution family.
    pub fn kind(&self) -> DistKind {
        self.kind
    }

    /// Location parameter.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter.
    pub fn scale(&self) -> f64 {
        self.s
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.s;
        match self.kind {
            DistKind::Normal => 0.5 * (1.0 + erf(z / 2.0f64.sqrt())),
            DistKind::Logistic => 1.0 / (1.0 + (-z).exp()),
            DistKind::Laplace => {
                if z < 0.0 {
                    0.5 * z.exp()
                } else {
                    1.0 - 0.5 * (-z).exp()
                }
            }
            DistKind::Cauchy => 0.5 + z.atan() / PI,
            DistKind::Uniform => ((z + 1.0) / 2.0).clamp(0.0, 1.0),
            DistKind::Gumbel => (-(-z).exp()).exp(),
        }
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.s;
        let core = match self.kind {
            DistKind::Normal => (-0.5 * z * z).exp() / (2.0 * PI).sqrt(),
            DistKind::Logistic => {
                let e = (-z).exp();
                e / ((1.0 + e) * (1.0 + e))
            }
            DistKind::Laplace => 0.5 * (-z.abs()).exp(),
            DistKind::Cauchy => 1.0 / (PI * (1.0 + z * z)),
            DistKind::Uniform => {
                if (-1.0..=1.0).contains(&z) {
                    0.5
                } else {
                    0.0
                }
            }
            DistKind::Gumbel => (-(z + (-z).exp())).exp(),
        };
        core / self.s
    }
}

/// Type-7 (linearly interpolated) empirical quantile of an ascending
/// pre-sorted sample: `h = (n-1)·q`, interpolating between the order
/// statistics bracketing `h`. This is R's and NumPy's default estimator;
/// unlike nearest-rank rounding it is continuous in `q` and does not
/// collapse small-sample spreads (the n=3 IQR is 1.0·gap, not 0).
/// `q` is clamped to `[0, 1]`.
///
/// # Panics
///
/// Panics if `sorted` is empty.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of an empty sample");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = (n - 1) as f64 * q.clamp(0.0, 1.0);
    let lo = (h.floor() as usize).min(n - 2);
    let frac = h - lo as f64;
    sorted[lo] + frac * (sorted[lo + 1] - sorted[lo])
}

/// Kolmogorov–Smirnov statistic of a fitted distribution against the
/// empirical CDF of `samples`.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn ks_statistic(dist: &Dist, samples: &[f64]) -> f64 {
    assert!(!samples.is_empty());
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = dist.cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// Fits every supported family to `samples` and returns the fits ranked
/// by ascending K-S statistic (best first).
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn rank_distributions(samples: &[f64]) -> Vec<(Dist, f64)> {
    let mut fits: Vec<(Dist, f64)> = DistKind::ALL
        .iter()
        .map(|&k| {
            let d = Dist::fit(k, samples);
            let ks = ks_statistic(&d, samples);
            (d, ks)
        })
        .collect();
    fits.sort_by(|a, b| a.1.total_cmp(&b.1));
    fits
}

/// Error function approximation (Abramowitz & Stegun 7.1.26, |err| < 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736)
            * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normal_samples(n: usize) -> Vec<f64> {
        // Deterministic Box–Muller over a low-discrepancy grid.
        (0..n)
            .map(|i| {
                let u1 = (i as f64 + 0.5) / n as f64;
                let u2 = ((i * 7919) % n) as f64 / n as f64 + 1e-6;
                (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
            })
            .collect()
    }

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-5);
    }

    #[test]
    fn cdfs_are_monotone_and_bounded() {
        let samples = normal_samples(512);
        for kind in DistKind::ALL {
            let d = Dist::fit(kind, &samples);
            let mut prev = 0.0;
            for i in -50..=50 {
                let x = i as f64 / 5.0;
                let c = d.cdf(x);
                assert!((0.0..=1.0).contains(&c), "{kind:?} cdf out of range");
                assert!(c >= prev - 1e-12, "{kind:?} cdf not monotone");
                prev = c;
            }
        }
    }

    #[test]
    fn pdf_is_nonnegative() {
        let samples = normal_samples(512);
        for kind in DistKind::ALL {
            let d = Dist::fit(kind, &samples);
            for i in -50..=50 {
                assert!(d.pdf(i as f64 / 5.0) >= 0.0);
            }
        }
    }

    #[test]
    fn normal_wins_ks_on_normal_data() {
        let samples = normal_samples(2048);
        let ranked = rank_distributions(&samples);
        let best = ranked[0].0.kind();
        // Normal or its close cousin logistic must rank first on Gaussian
        // data; uniform and Cauchy must not.
        assert!(
            best == DistKind::Normal || best == DistKind::Logistic,
            "best fit was {best:?}"
        );
        assert!(ranked[0].1 < ranked.last().expect("nonempty").1);
    }

    #[test]
    fn uniform_wins_ks_on_uniform_data() {
        let samples: Vec<f64> = (0..1000).map(|i| i as f64 / 999.0).collect();
        let ranked = rank_distributions(&samples);
        assert_eq!(ranked[0].0.kind(), DistKind::Uniform);
    }

    #[test]
    fn quantiles_interpolate_between_order_statistics() {
        let sorted = [0.0, 1.0, 2.0];
        // Grid points hit the order statistics exactly.
        assert_eq!(quantile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(quantile_sorted(&sorted, 0.5), 1.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 2.0);
        // Off-grid points interpolate: nearest-rank would snap these.
        assert_eq!(quantile_sorted(&sorted, 0.25), 0.5);
        assert_eq!(quantile_sorted(&sorted, 0.75), 1.5);
        // Out-of-range q clamps; singletons are constant.
        assert_eq!(quantile_sorted(&sorted, -1.0), 0.0);
        assert_eq!(quantile_sorted(&sorted, 2.0), 2.0);
        assert_eq!(quantile_sorted(&[7.5], 0.3), 7.5);
    }

    #[test]
    fn small_sample_iqr_no_longer_collapses() {
        // Nearest-rank rounding put q25 and q75 on the middle order
        // statistic for n=3, collapsing the Cauchy IQR scale to the
        // 1e-12 floor. Type-7 keeps the true spread.
        let d = Dist::fit(DistKind::Cauchy, &[0.0, 1.0, 2.0]);
        assert_eq!(d.mu(), 1.0);
        assert!((d.scale() - 0.5).abs() < 1e-12, "scale {}", d.scale());
    }

    #[test]
    fn even_sample_median_is_the_midpoint() {
        let d = Dist::fit(DistKind::Laplace, &[0.0, 1.0, 3.0, 10.0]);
        assert_eq!(d.mu(), 2.0);
    }

    #[test]
    fn ks_is_zero_for_perfect_fit_limit() {
        // The K-S statistic against the fitted uniform on its own support
        // approaches 1/(2n) resolution.
        let samples: Vec<f64> = (0..10_000).map(|i| i as f64 / 9_999.0).collect();
        let d = Dist::fit(DistKind::Uniform, &samples);
        assert!(ks_statistic(&d, &samples) < 0.01);
    }
}
