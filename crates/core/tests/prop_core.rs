//! Property tests for the framework layer: encodings are total,
//! deterministic and dimension-stable over the whole design space.

use clapped_core::{Clapped, MulRepr};
use clapped_dse::DesignSpace;
use proptest::prelude::*;
use rand::SeedableRng;
use std::sync::OnceLock;

fn framework() -> &'static Clapped {
    static FW: OnceLock<Clapped> = OnceLock::new();
    FW.get_or_init(|| {
        Clapped::builder()
            .image_size(16)
            .seed(3)
            .build()
            .expect("framework builds")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every sampled configuration encodes to the same dimension per
    /// representation, with finite values.
    #[test]
    fn encodings_are_total_and_stable(seed: u64, repr_pick in 0usize..12) {
        let fw = framework();
        let repr = MulRepr::paper_sweep()[repr_pick];
        let space: &DesignSpace = fw.space();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let c1 = space.sample(&mut rng);
        let c2 = space.sample(&mut rng);
        let e1 = fw.encode(&c1, repr);
        let e2 = fw.encode(&c2, repr);
        prop_assert_eq!(e1.len(), e2.len());
        prop_assert_eq!(e1.len(), 4 + 9 * repr.width());
        prop_assert!(e1.iter().all(|v| v.is_finite()));
        // Encoding is deterministic.
        prop_assert_eq!(fw.encode(&c1, repr), e1);
    }

    /// Behavioural evaluation is total over the design space and the
    /// error metric is bounded.
    #[test]
    fn evaluation_is_total(seed: u64) {
        let fw = framework();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let c = fw.space().sample(&mut rng);
        let r = fw.evaluate_error(&c).expect("evaluates");
        prop_assert!((0.0..=100.0).contains(&r.error_percent));
        prop_assert!(r.psnr_db.is_finite() || r.psnr_db.is_infinite());
    }

    /// Accelerator specs derived from sampled configurations always
    /// validate.
    #[test]
    fn accel_specs_validate(seed: u64) {
        let fw = framework();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let c = fw.space().sample(&mut rng);
        let spec = fw.accel_spec(&c);
        prop_assert!(spec.validate().is_ok());
        prop_assert!(spec.image_size >= spec.window);
    }
}
