//! Application-level fault-injection campaigns.
//!
//! This is the cross-layer counterpart of `clapped-netlist`'s gate-level
//! campaigns: instead of asking *how often* a stuck-at fault corrupts an
//! operator's outputs, it asks *how much the application cares*. The
//! two-stage flow keeps that tractable:
//!
//! 1. **Netlist pre-screening** — every stuck-at site of the target
//!    multiplier is ranked by positional output corruption under random
//!    stimulus (cheap: two bitwise ops per site per 64-lane pass).
//! 2. **Application evaluation** — only the `top_k` most suspicious
//!    sites get the expensive treatment: the operator's behavioural
//!    table is rebuilt under the fault ([`FaultedMul`]), substituted
//!    into the configuration's taps, and the full application model is
//!    re-run to measure true quality degradation.
//!
//! The result ranks nets by application-level impact — the list a
//! hardening pass (TMR, voting, guard gates) would consume.

use crate::framework::Clapped;
use crate::{ClappedError, Result};
use clapped_axops::{FaultedMul, Mul8s};
use clapped_dse::Configuration;
use clapped_netlist::{Fault, FaultSet};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Parameters of an application-level fault campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultCampaignConfig {
    /// Catalog index of the multiplier whose netlist is injured.
    pub mul_index: usize,
    /// Number of pre-screened sites promoted to full application
    /// evaluation (each costs one exhaustive table rebuild plus one
    /// application run).
    pub top_k: usize,
    /// Random 64-lane input batches used for netlist pre-screening.
    pub prescreen_batches: usize,
    /// Seed for the pre-screening stimulus.
    pub seed: u64,
}

impl FaultCampaignConfig {
    /// Campaign over the catalog operator at `mul_index` with default
    /// depth: 8 promoted sites, 4 pre-screening batches.
    pub fn new(mul_index: usize) -> FaultCampaignConfig {
        FaultCampaignConfig {
            mul_index,
            top_k: 8,
            prescreen_batches: 4,
            seed: 0xC1A9,
        }
    }
}

/// One fault site's measured impact across both layers.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultImpact {
    /// The injected stuck-at fault.
    pub fault: Fault,
    /// Pre-screening: fraction of random samples with corrupted
    /// operator outputs.
    pub netlist_mismatch_rate: f64,
    /// Pre-screening: positionally weighted operator output error.
    pub netlist_weighted_error: f64,
    /// Application error (%) with the fault injected.
    pub app_error_percent: f64,
    /// `app_error_percent` minus the fault-free baseline — the
    /// application-level quality cost of this net failing.
    pub degradation: f64,
}

/// Outcome of [`Clapped::fault_campaign`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCampaignReport {
    /// Name of the injured operator.
    pub operator: String,
    /// Fault-free application error (%) of the campaign configuration.
    pub baseline_error_percent: f64,
    /// Stuck-at sites ranked in the pre-screening stage (both
    /// polarities of every net).
    pub sites_screened: usize,
    /// Promoted sites with measured application impact, sorted by
    /// decreasing [`FaultImpact::degradation`].
    pub impacts: Vec<FaultImpact>,
}

impl FaultCampaignReport {
    /// Sites whose application degradation exceeds `threshold` percent —
    /// the nets worth hardening.
    pub fn critical(&self, threshold: f64) -> Vec<&FaultImpact> {
        self.impacts.iter().filter(|i| i.degradation > threshold).collect()
    }
}

impl Clapped {
    /// Runs a two-stage fault campaign: ranks every stuck-at site of the
    /// catalog multiplier `campaign.mul_index` by netlist-level impact,
    /// then measures true application-quality degradation for the
    /// `top_k` worst sites by substituting a [`FaultedMul`] into
    /// `config`'s taps.
    ///
    /// Taps of `config` that reference other catalog operators are left
    /// healthy; if `config` never uses the injured operator, all
    /// degradations are zero.
    ///
    /// # Errors
    ///
    /// Returns [`ClappedError::BadConfiguration`] when `campaign`
    /// references an operator outside the catalog, and propagates
    /// simulation and application-evaluation failures.
    pub fn fault_campaign(
        &self,
        config: &Configuration,
        campaign: &FaultCampaignConfig,
    ) -> Result<FaultCampaignReport> {
        let _campaign_span = clapped_obs::span("fault.campaign");
        let base = self.catalog().at(campaign.mul_index).ok_or_else(|| {
            ClappedError::BadConfiguration {
                reason: format!(
                    "campaign operator index {} outside catalog of {} operators",
                    campaign.mul_index,
                    self.catalog().len()
                ),
            }
        })?;
        let baseline = self.evaluate_error(config)?;

        // Stage 1: netlist-level pre-screening under random stimulus.
        let netlist = base.netlist();
        let mut rng = ChaCha8Rng::seed_from_u64(campaign.seed);
        let batches: Vec<Vec<u64>> = (0..campaign.prescreen_batches.max(1))
            .map(|_| (0..netlist.inputs().len()).map(|_| rng.next_u64()).collect())
            .collect();
        let sites = netlist.fault_sites();
        let screened = {
            let _span = clapped_obs::span("fault.prescreen");
            netlist.stuck_at_campaign_with(&sites, &batches, 64, self.engine())?
        };
        clapped_obs::count("fault.sites_screened", sites.len() as u64);

        // Stage 2: application evaluation of the worst sites, fanned
        // over the engine (each job rebuilds the faulted behavioural
        // table — memoized per fault — and re-runs the application).
        let healthy_taps = self.try_taps_for(config)?;
        let tap_indices = config.active_mul_indices();
        let promoted: Vec<usize> =
            screened.ranked_sites().into_iter().take(campaign.top_k).collect();
        clapped_obs::count("fault.sites_promoted", promoted.len() as u64);
        let eval_span = clapped_obs::span("fault.evaluate");
        let impacts = self.engine().try_evaluate_many(&promoted, |_, &site_idx| {
            let site = &screened.sites[site_idx];
            let faults = FaultSet::from(site.fault);
            let faulted: Arc<dyn Mul8s> = Arc::new(FaultedMul::new(&base, &faults)?);
            let taps: Vec<Arc<dyn Mul8s>> = healthy_taps
                .iter()
                .zip(tap_indices.iter())
                .map(|(m, &i)| {
                    if i == campaign.mul_index {
                        faulted.clone()
                    } else {
                        m.clone()
                    }
                })
                .collect();
            let r = self.evaluate_error_with(config, &taps)?;
            Ok::<FaultImpact, ClappedError>(FaultImpact {
                fault: site.fault,
                netlist_mismatch_rate: site.mismatch_rate,
                netlist_weighted_error: site.weighted_error,
                app_error_percent: r.error_percent,
                degradation: r.error_percent - baseline.error_percent,
            })
        });
        drop(eval_span);
        // A failed site evaluation aborts the campaign (try_evaluate_many
        // reports the lowest-indexed error); count it before propagating.
        let mut impacts = impacts.inspect_err(|_| {
            clapped_obs::count("fault.sites_quarantined", 1);
        })?;
        impacts.sort_by(|a, b| b.degradation.total_cmp(&a.degradation));

        Ok(FaultCampaignReport {
            operator: base.name().to_string(),
            baseline_error_percent: baseline.error_percent,
            sites_screened: sites.len(),
            impacts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapped_netlist::FaultKind;

    #[test]
    fn campaign_over_golden_config_measures_degradation() {
        let fw = Clapped::builder().image_size(32).build().unwrap();
        let golden = Configuration::golden(3);
        let campaign = FaultCampaignConfig {
            mul_index: 0,
            top_k: 3,
            prescreen_batches: 2,
            seed: 11,
        };
        let report = fw.fault_campaign(&golden, &campaign).unwrap();
        assert_eq!(report.baseline_error_percent, 0.0);
        assert_eq!(report.impacts.len(), 3);
        assert!(report.sites_screened > 0);
        // Promoted sites were ranked worst at the netlist level; the
        // golden configuration uses the injured operator on every tap,
        // so they must hurt the application too.
        assert!(report.impacts[0].degradation > 0.0);
        for w in report.impacts.windows(2) {
            assert!(w[0].degradation >= w[1].degradation);
        }
        for i in &report.impacts {
            assert!(matches!(i.fault.kind, FaultKind::StuckAt0 | FaultKind::StuckAt1));
            assert!(i.netlist_mismatch_rate > 0.0);
            assert_eq!(i.app_error_percent, i.degradation);
        }
        assert!(!report.critical(0.0).is_empty());
    }

    #[test]
    fn unused_operator_degrades_nothing() {
        let fw = Clapped::builder().image_size(32).build().unwrap();
        // Golden uses operator 0 everywhere; injure operator 1 instead.
        let golden = Configuration::golden(3);
        let campaign = FaultCampaignConfig {
            mul_index: 1,
            top_k: 2,
            prescreen_batches: 1,
            seed: 5,
        };
        let report = fw.fault_campaign(&golden, &campaign).unwrap();
        assert!(report.impacts.iter().all(|i| i.degradation == 0.0));
    }

    #[test]
    fn out_of_catalog_operator_is_rejected() {
        let fw = Clapped::builder().image_size(32).build().unwrap();
        let campaign = FaultCampaignConfig::new(10_000);
        let r = fw.fault_campaign(&Configuration::golden(3), &campaign);
        assert!(matches!(r, Err(ClappedError::BadConfiguration { .. })));
    }
}
