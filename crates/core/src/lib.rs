//! The CLAppED framework: cross-layer approximation-aware design-space
//! exploration for FPGA-based embedded systems.
//!
//! This crate wires the three stages of the paper's Fig. 2 together:
//!
//! 1. **Behavioral error analysis** — operator characterization
//!    (`clapped-errmodel`), the executable application model
//!    (`clapped-imgproc`) and MLP-based quality prediction
//!    (`clapped-mlp`) with selectable multiplier representations
//!    ([`MulRepr`]: Index / M1 / M4 / PR-coefficient `C_k`).
//! 2. **Accelerator performance estimation** — true synthesis-based
//!    characterization and ML-based prediction (`clapped-accel`).
//! 3. **DSE** — multi-objective Bayesian optimization over
//!    application-level error and hardware cost (`clapped-dse`).
//!
//! # Examples
//!
//! ```
//! use clapped_core::Clapped;
//!
//! let framework = Clapped::builder().image_size(32).build().unwrap();
//! let golden = clapped_dse::Configuration::golden(3);
//! let result = framework.evaluate_error(&golden).unwrap();
//! assert_eq!(result.error_percent, 0.0);
//! ```

mod explore;
mod framework;
mod prefilter;
mod repr;
mod resilience;
mod session;

pub use explore::{explore, DofSummary, EstimationMode, ExploreOptions, ExploreResult, ParetoPoint};
pub use framework::{AppKind, Clapped, ClappedBuilder, ClappedConfig, ErrorDataset};
pub use prefilter::{prefilter, PrefilterConfig, PrefilterReport};
pub use repr::MulRepr;
pub use session::{Session, SessionProgress, SessionSpec};
pub use resilience::{FaultCampaignConfig, FaultCampaignReport, FaultImpact};
// Execution-engine knobs, re-exported so framework users can configure
// parallelism and inspect caches without naming `clapped-exec` directly.
pub use clapped_exec::{CacheStats, Engine, ExecConfig};

use std::error::Error;
use std::fmt;

/// Error type for framework operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClappedError {
    /// A configuration failed application-level evaluation.
    App(clapped_imgproc::ConvError),
    /// Accelerator characterization failed.
    Accel(clapped_accel::AccelError),
    /// Operator model fitting failed.
    Fit(clapped_errmodel::FitError),
    /// ML training failed.
    Mlp(clapped_mlp::MlpError),
    /// DSE failed.
    Dse(clapped_dse::DseError),
    /// A gate-level netlist operation (simulation, fault injection)
    /// failed.
    Netlist(clapped_netlist::NetlistError),
    /// The runtime supervisor failed (ladder construction, stream
    /// execution, or checkpoint restore).
    Runtime(clapped_runtime::RuntimeError),
    /// A configuration referenced an operator outside the catalog.
    BadConfiguration {
        /// What is inconsistent.
        reason: String,
    },
    /// The framework was built without the pieces this call needs.
    Unavailable {
        /// What is missing and how to enable it.
        reason: String,
    },
}

impl fmt::Display for ClappedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClappedError::App(e) => write!(f, "application evaluation: {e}"),
            ClappedError::Accel(e) => write!(f, "accelerator estimation: {e}"),
            ClappedError::Fit(e) => write!(f, "operator model fit: {e}"),
            ClappedError::Mlp(e) => write!(f, "ML training: {e}"),
            ClappedError::Dse(e) => write!(f, "design-space exploration: {e}"),
            ClappedError::Netlist(e) => write!(f, "netlist operation: {e}"),
            ClappedError::Runtime(e) => write!(f, "runtime supervision: {e}"),
            ClappedError::BadConfiguration { reason } => {
                write!(f, "bad configuration: {reason}")
            }
            ClappedError::Unavailable { reason } => write!(f, "unavailable: {reason}"),
        }
    }
}

impl Error for ClappedError {}

impl From<clapped_imgproc::ConvError> for ClappedError {
    fn from(e: clapped_imgproc::ConvError) -> Self {
        ClappedError::App(e)
    }
}

impl From<clapped_accel::AccelError> for ClappedError {
    fn from(e: clapped_accel::AccelError) -> Self {
        ClappedError::Accel(e)
    }
}

impl From<clapped_errmodel::FitError> for ClappedError {
    fn from(e: clapped_errmodel::FitError) -> Self {
        ClappedError::Fit(e)
    }
}

impl From<clapped_mlp::MlpError> for ClappedError {
    fn from(e: clapped_mlp::MlpError) -> Self {
        ClappedError::Mlp(e)
    }
}

impl From<clapped_dse::DseError> for ClappedError {
    fn from(e: clapped_dse::DseError) -> Self {
        ClappedError::Dse(e)
    }
}

impl From<clapped_netlist::NetlistError> for ClappedError {
    fn from(e: clapped_netlist::NetlistError) -> Self {
        ClappedError::Netlist(e)
    }
}

impl From<clapped_runtime::RuntimeError> for ClappedError {
    fn from(e: clapped_runtime::RuntimeError) -> Self {
        ClappedError::Runtime(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, ClappedError>;
