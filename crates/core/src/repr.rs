//! Multiplier representations for ML feature encoding (paper Figs. 8–10).

/// How a multiplier is represented inside an ML feature vector.
///
/// The paper compares four families:
///
/// - [`MulRepr::Index`] — an arbitrary unique value per operator (the
///   strawman that prevents generalization),
/// - [`MulRepr::M1`] — a single statistical error metric (MSE, after
///   the WMED-style identification of AutoAx),
/// - [`MulRepr::M4`] — four statistical error metrics (max absolute
///   error, average relative error, error probability, MSE),
/// - [`MulRepr::Coeffs(k)`](MulRepr::Coeffs) — the `k` most significant
///   polynomial-regression coefficients (the paper's `C_k`, its core
///   contribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulRepr {
    /// Unique random identifier per operator.
    Index,
    /// One statistical metric (MSE).
    M1,
    /// Four statistical metrics.
    M4,
    /// `k` PR coefficients in global significance order.
    Coeffs(usize),
}

impl MulRepr {
    /// Feature width contributed by one multiplier.
    pub fn width(&self) -> usize {
        match *self {
            MulRepr::Index => 1,
            MulRepr::M1 => 1,
            MulRepr::M4 => 4,
            MulRepr::Coeffs(k) => k,
        }
    }

    /// Display label matching the paper's figures (`Index`, `M1`, `M4`,
    /// `C4`, …).
    pub fn label(&self) -> String {
        match *self {
            MulRepr::Index => "Index".to_string(),
            MulRepr::M1 => "M1".to_string(),
            MulRepr::M4 => "M4".to_string(),
            MulRepr::Coeffs(k) => format!("C{k}"),
        }
    }

    /// The representation sweep of paper Figs. 8 and 9:
    /// Index, M1, M4, C2..C10.
    pub fn paper_sweep() -> Vec<MulRepr> {
        let mut v = vec![MulRepr::Index, MulRepr::M1, MulRepr::M4];
        v.extend((2..=10).map(MulRepr::Coeffs));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_labels() {
        assert_eq!(MulRepr::Index.width(), 1);
        assert_eq!(MulRepr::M1.width(), 1);
        assert_eq!(MulRepr::M4.width(), 4);
        assert_eq!(MulRepr::Coeffs(6).width(), 6);
        assert_eq!(MulRepr::Coeffs(6).label(), "C6");
        assert_eq!(MulRepr::M4.label(), "M4");
    }

    #[test]
    fn paper_sweep_matches_figures() {
        let sweep = MulRepr::paper_sweep();
        assert_eq!(sweep.len(), 12);
        assert_eq!(sweep[0], MulRepr::Index);
        assert_eq!(sweep[11], MulRepr::Coeffs(10));
    }
}
