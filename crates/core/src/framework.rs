//! The [`Clapped`] framework object and its builder.

use crate::{ClappedError, MulRepr, Result};
use clapped_accel::{characterize, AccelReport, AcceleratorSpec, CharacterizeConfig, OpLibrary};
use clapped_axops::{Catalog, Mul8s};
use clapped_dse::{BatchOutcome, Configuration, DesignSpace};
use clapped_errmodel::{rank_terms, ErrorStats, PrModel};
use clapped_exec::{CacheStats, Engine, ExecConfig, ResultCache, StructDigest, CODE_VERSION_SALT};
use clapped_imgproc::{AppResult, ConvMode, GaussianDenoise, SobelEdge};
use clapped_mlp::{Regressor, TrainConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

/// Cache-key role for cached scalar application-error evaluations.
const ROLE_ERROR: u64 = 0x4552_524f_5221;
/// Cache-key role for cached `[error %, LUTs]` objective vectors.
const ROLE_OBJECTIVES: u64 = 0x4f42_4a45_4354;

/// A labelled behavioural dataset: configurations, their encoded feature
/// rows, and the true application-level error labels.
pub type ErrorDataset = (Vec<Configuration>, Vec<Vec<f64>>, Vec<f64>);

/// Which behavioural application the framework instance drives — the
/// paper's Section II-B interface point for application-agnostic DSE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AppKind {
    /// Gaussian image smoothing for noise removal (the paper's test case).
    #[default]
    GaussianDenoise,
    /// Sobel edge detection (2D mode only).
    SobelEdge,
}

/// The instantiated application model.
#[derive(Debug)]
enum AppModel {
    Gaussian(GaussianDenoise),
    Sobel(SobelEdge),
}

impl AppModel {
    fn evaluate(
        &self,
        config: &clapped_imgproc::ConvConfig,
        muls: &[Arc<dyn Mul8s>],
    ) -> clapped_imgproc::Result<AppResult> {
        match self {
            AppModel::Gaussian(app) => app.evaluate(config, muls),
            // The Sobel gradients share one tap assignment across Gx/Gy.
            AppModel::Sobel(app) => app.evaluate(config, muls, muls),
        }
    }
}

/// Builder for [`Clapped`].
///
/// # Examples
///
/// ```
/// use clapped_core::Clapped;
///
/// let fw = Clapped::builder()
///     .image_size(32)
///     .noise_sigma(12.0)
///     .pr_degree(3)
///     .seed(7)
///     .build()
///     .unwrap();
/// assert_eq!(fw.catalog().len(), fw.space().catalog_size);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ClappedBuilder {
    config: ClappedConfig,
}

impl ClappedBuilder {
    /// Side length of the synthetic workload images.
    pub fn image_size(mut self, n: usize) -> Self {
        self.config.image_size = n;
        self
    }

    /// Standard deviation of the injected Gaussian noise.
    pub fn noise_sigma(mut self, sigma: f64) -> Self {
        self.config.noise_sigma = sigma;
        self
    }

    /// Degree of the operator PR models (the paper uses 3).
    pub fn pr_degree(mut self, degree: usize) -> Self {
        self.config.pr_degree = degree;
        self
    }

    /// Master RNG seed (workload generation, dataset sampling).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Replaces the standard operator catalog. Operator 0 must be the
    /// exact multiplier.
    pub fn catalog(mut self, catalog: Catalog) -> Self {
        self.config.catalog = Some(catalog);
        self
    }

    /// Accelerator characterization parameters.
    pub fn characterization(mut self, config: CharacterizeConfig) -> Self {
        self.config.char_config = config;
        self
    }

    /// Selects the behavioural application (default: Gaussian smoothing).
    pub fn application(mut self, kind: AppKind) -> Self {
        self.config.app_kind = kind;
        self
    }

    /// Configures the parallel evaluation engine (default: one worker
    /// per available core). Thread count never changes results — only
    /// wall-clock time.
    pub fn exec(mut self, config: ExecConfig) -> Self {
        self.config.exec = config;
        self
    }

    /// Capacity of the in-memory result cache (default 4096 entries).
    /// Zero disables caching.
    pub fn cache_capacity(mut self, entries: usize) -> Self {
        self.config.cache_capacity = entries;
        self
    }

    /// Enables the on-disk result-cache tier under `dir` (typically
    /// `results/cache/`), so warm reruns of the same framework instance
    /// skip recomputation across processes.
    pub fn disk_cache(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.cache_dir = Some(dir.into());
        self
    }

    /// The accumulated recipe, without instantiating it — useful for
    /// digesting or persisting a framework description.
    pub fn into_config(self) -> ClappedConfig {
        self.config
    }

    /// Builds the framework: instantiates the catalog, the workload, and
    /// the per-operator PR models and error statistics. (The hardware
    /// operator library is characterized lazily on first use.)
    ///
    /// # Errors
    ///
    /// Returns [`ClappedError::Unavailable`] if the catalog is empty or
    /// its first operator is not exact.
    pub fn build(self) -> Result<Clapped> {
        self.config.instantiate()
    }
}

/// The immutable recipe for a framework instance — every knob
/// [`ClappedBuilder`] accepts, as plain data.
///
/// Splitting the recipe from the instantiated [`Clapped`] lets a server
/// process key a pool of shared framework instances by
/// [`ClappedConfig::digest`]: jobs carrying the same recipe share one
/// `Arc<Clapped>` (and therefore one in-memory cache, one engine and one
/// lazily characterized operator library), while [`crate::Session`]
/// holds the cheap per-job exploration state.
#[derive(Debug, Clone)]
pub struct ClappedConfig {
    /// Side length of the synthetic workload images.
    pub image_size: usize,
    /// Standard deviation of the injected Gaussian noise.
    pub noise_sigma: f64,
    /// Degree of the operator PR models.
    pub pr_degree: usize,
    /// Master RNG seed (workload generation, dataset sampling).
    pub seed: u64,
    /// Replacement operator catalog (`None` = the standard catalog).
    pub catalog: Option<Catalog>,
    /// Accelerator characterization parameters.
    pub char_config: CharacterizeConfig,
    /// The behavioural application.
    pub app_kind: AppKind,
    /// Parallel evaluation engine knobs (never affects results).
    pub exec: ExecConfig,
    /// In-memory result-cache capacity (zero disables caching).
    pub cache_capacity: usize,
    /// On-disk result-cache tier directory (`None` disables the tier).
    pub cache_dir: Option<PathBuf>,
}

impl Default for ClappedConfig {
    fn default() -> Self {
        ClappedConfig {
            image_size: 32,
            noise_sigma: 12.0,
            pr_degree: 3,
            seed: 1,
            catalog: None,
            char_config: CharacterizeConfig::default(),
            app_kind: AppKind::GaussianDenoise,
            exec: ExecConfig::default(),
            cache_capacity: 4096,
            cache_dir: None,
        }
    }
}

impl ClappedConfig {
    /// Stable content digest of the recipe — two configs with equal
    /// digests produce frameworks whose cached evaluation results are
    /// interchangeable. Execution knobs (`exec`, cache capacity and
    /// directory) are deliberately excluded: they change wall-clock
    /// behaviour, never results.
    pub fn digest(&self) -> u64 {
        let catalog_names: Vec<String> = match &self.catalog {
            Some(catalog) => catalog
                .iter()
                .map(|m| Mul8s::name(m.as_ref()).to_string())
                .collect(),
            None => Catalog::standard()
                .iter()
                .map(|m| Mul8s::name(m.as_ref()).to_string())
                .collect(),
        };
        self.instance_salt(&catalog_names)
    }

    /// The cache-partition salt: everything that changes what a
    /// configuration *means* for this instance, so results cached by
    /// one recipe can never answer for a differently-built one.
    fn instance_salt(&self, catalog_names: &[String]) -> u64 {
        StructDigest::new("ClappedInstance")
            .field("image_size", &(self.image_size as u64))
            .field("noise_sigma", &self.noise_sigma)
            .field("pr_degree", &(self.pr_degree as u64))
            .field("seed", &self.seed)
            .field("app_kind", &(self.app_kind as u64))
            .field("catalog", &catalog_names.to_vec())
            .field("characterization", &format!("{:?}", self.char_config))
            .finish()
    }

    /// Instantiates the framework: the catalog, the workload, and the
    /// per-operator PR models and error statistics. (The hardware
    /// operator library is characterized lazily on first use.)
    ///
    /// # Errors
    ///
    /// Returns [`ClappedError::Unavailable`] if the catalog is empty or
    /// its first operator is not exact.
    pub fn instantiate(&self) -> Result<Clapped> {
        let catalog = self.catalog.clone().unwrap_or_else(Catalog::standard);
        if catalog.is_empty() {
            return Err(ClappedError::Unavailable {
                reason: "operator catalog is empty".to_string(),
            });
        }
        let first = catalog.at(0).expect("non-empty catalog");
        if (0..32).any(|i| {
            let a = (i * 7 - 13) as i8;
            let b = (i * 3 + 5) as i8;
            first.mul(a, b) != i16::from(a) * i16::from(b)
        }) {
            return Err(ClappedError::Unavailable {
                reason: "catalog operator 0 must be the exact multiplier".to_string(),
            });
        }
        let exact: Arc<dyn Mul8s> = first.clone();
        let app = match self.app_kind {
            AppKind::GaussianDenoise => AppModel::Gaussian(GaussianDenoise::standard(
                self.image_size,
                self.noise_sigma,
                exact,
                self.seed,
            )),
            AppKind::SobelEdge => {
                AppModel::Sobel(SobelEdge::standard(self.image_size, exact, self.seed))
            }
        };
        let pr_models: Vec<PrModel> = catalog
            .iter()
            .map(|m| PrModel::fit(m.as_ref(), self.pr_degree))
            .collect();
        let refs: Vec<&PrModel> = pr_models.iter().collect();
        let ranking = rank_terms(&refs);
        let stats: Vec<ErrorStats> = catalog
            .iter()
            .map(|m| ErrorStats::of_multiplier(m.as_ref()))
            .collect();
        // Paper-style index representation: a unique pseudo-random value
        // per operator.
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0xA5A5_5A5A);
        let index_values: Vec<f64> = (0..catalog.len()).map(|_| rng.gen_range(0.0..100.0)).collect();
        let mut space = DesignSpace::paper_default(catalog.len());
        if self.app_kind == AppKind::SobelEdge {
            // Gradient magnitudes are not separable: restrict the mode DoF.
            space.modes = vec![ConvMode::TwoD];
        }
        // The code-version salt invalidates persisted entries whenever
        // evaluation semantics change; the instance salt partitions
        // per-recipe (see `ClappedConfig::instance_salt`).
        let catalog_names: Vec<String> = catalog
            .iter()
            .map(|m| Mul8s::name(m.as_ref()).to_string())
            .collect();
        let instance_salt = self.instance_salt(&catalog_names);
        let eval_cache = match &self.cache_dir {
            Some(dir) => ResultCache::with_disk(self.cache_capacity, dir),
            None => ResultCache::in_memory(self.cache_capacity),
        }
        .salted(CODE_VERSION_SALT)
        .salted(instance_salt);
        Ok(Clapped {
            engine: Engine::new(self.exec),
            eval_cache,
            catalog,
            app,
            space,
            pr_models,
            ranking,
            stats,
            index_values,
            op_library: OnceLock::new(),
            config: self.clone(),
        })
    }
}

/// The CLAppED framework instance: catalog, application workload,
/// operator models and estimation services.
#[derive(Debug)]
pub struct Clapped {
    engine: Engine,
    eval_cache: ResultCache<Vec<f64>>,
    catalog: Catalog,
    app: AppModel,
    space: DesignSpace,
    pr_models: Vec<PrModel>,
    ranking: Vec<usize>,
    stats: Vec<ErrorStats>,
    index_values: Vec<f64>,
    op_library: OnceLock<std::result::Result<OpLibrary, String>>,
    config: ClappedConfig,
}

impl Clapped {
    /// Starts building a framework instance.
    pub fn builder() -> ClappedBuilder {
        ClappedBuilder::default()
    }

    /// The recipe this instance was built from.
    pub fn config(&self) -> &ClappedConfig {
        &self.config
    }

    /// The operator catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The cross-layer design space.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// The selected application kind.
    pub fn app_kind(&self) -> AppKind {
        self.config.app_kind
    }

    /// The Gaussian-smoothing workload.
    ///
    /// # Panics
    ///
    /// Panics if the framework was built with a different application;
    /// check [`Clapped::app_kind`] first.
    pub fn app(&self) -> &GaussianDenoise {
        match &self.app {
            AppModel::Gaussian(app) => app,
            AppModel::Sobel(_) => panic!(
                "framework was built with AppKind::SobelEdge; use sobel_app()"
            ),
        }
    }

    /// The Sobel workload.
    ///
    /// # Panics
    ///
    /// Panics if the framework was built with a different application.
    pub fn sobel_app(&self) -> &SobelEdge {
        match &self.app {
            AppModel::Sobel(app) => app,
            AppModel::Gaussian(_) => panic!(
                "framework was built with AppKind::GaussianDenoise; use app()"
            ),
        }
    }

    /// Builds a runtime SLA supervisor over this framework's operator
    /// catalog: the degradation ladder is calibrated from the catalog
    /// against `sla` (reusing the framework's image size, seed and
    /// characterization parameters), and the returned
    /// [`clapped_runtime::StreamSupervisor`] keeps the SLA on a live
    /// frame stream — adapting rungs, detecting faults, checkpointing.
    ///
    /// # Errors
    ///
    /// Returns [`ClappedError::Unavailable`] for non-Gaussian
    /// applications (the supervisor serves the paper's denoise
    /// pipeline), and propagates ladder/supervisor construction
    /// failures as [`ClappedError::Runtime`].
    pub fn sla_supervisor(
        &self,
        sla: clapped_runtime::SlaSpec,
        options: clapped_runtime::StreamOptions,
    ) -> Result<clapped_runtime::StreamSupervisor> {
        if self.config.app_kind != AppKind::GaussianDenoise {
            return Err(ClappedError::Unavailable {
                reason: "the SLA supervisor serves AppKind::GaussianDenoise streams".to_string(),
            });
        }
        let config = clapped_runtime::LadderConfig {
            image_size: self.config.image_size,
            seed: options.seed,
            characterization: self.config.char_config.clone(),
            traffic: options.traffic,
            ..clapped_runtime::LadderConfig::default()
        };
        let ladder = clapped_runtime::DegradationLadder::build(self.catalog.muls(), &sla, &config)?;
        Ok(clapped_runtime::StreamSupervisor::new(ladder, sla, options)?)
    }

    /// Per-operator degree-`d` PR models (catalog order).
    pub fn pr_models(&self) -> &[PrModel] {
        &self.pr_models
    }

    /// Global PR-term significance ranking.
    pub fn term_ranking(&self) -> &[usize] {
        &self.ranking
    }

    /// Per-operator statistical error metrics (catalog order).
    pub fn operator_stats(&self) -> &[ErrorStats] {
        &self.stats
    }

    /// Accelerator characterization parameters.
    pub fn characterization(&self) -> &CharacterizeConfig {
        &self.config.char_config
    }

    /// Workload image side length.
    pub fn image_size(&self) -> usize {
        self.config.image_size
    }

    /// Master seed.
    pub fn seed(&self) -> u64 {
        self.config.seed
    }

    /// The parallel evaluation engine. Batched entry points
    /// ([`Clapped::evaluate_error_many`], [`crate::explore`], the fault
    /// campaign) fan their independent jobs over it; results are always
    /// returned in input order, so the thread count never changes any
    /// outcome.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Hit/miss counters of the content-addressed result cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.eval_cache.stats()
    }

    /// Hit/miss counters of the process-wide compiled-convolution LUT
    /// cache (`clapped-imgproc`'s plan compiler). A DSE run revisits the
    /// same few hundred `(operator, coefficient)` pairs across thousands
    /// of candidate evaluations, so after warm-up `misses` freezes while
    /// `hits` keeps climbing.
    pub fn plan_cache_stats(&self) -> clapped_exec::MemoStats {
        clapped_imgproc::plan_cache_stats()
    }

    /// Stable content digest of a configuration — the key under which
    /// this instance caches evaluation results and which
    /// [`clapped_dse::MboState`] checkpoints record per evaluation.
    /// Depends only on the configuration's fields, never on memory
    /// layout or field-visit order.
    pub fn config_digest(&self, config: &Configuration) -> u64 {
        StructDigest::new("Configuration")
            .field("window", &(config.window as u64))
            .field("stride", &(config.stride as u64))
            .field("downsample", &config.downsample)
            .field("mode", &(config.mode as u64))
            .field("scale", &(config.scale as u64))
            .field(
                "mul_indices",
                &config.mul_indices.iter().map(|&i| i as u64).collect::<Vec<u64>>(),
            )
            .finish()
    }

    /// The hardware operator library (per-operator synthesis reports),
    /// characterized on first use.
    ///
    /// # Errors
    ///
    /// Returns [`ClappedError::Accel`] if an operator fails synthesis.
    pub fn op_library(&self) -> Result<&OpLibrary> {
        let entry = self.op_library.get_or_init(|| {
            OpLibrary::characterize(&self.catalog, &self.config.char_config.synth)
                .map_err(|e| e.to_string())
        });
        entry.as_ref().map_err(|msg| {
            ClappedError::Accel(clapped_accel::AccelError::Synth(msg.clone()))
        })
    }

    /// Resolves a configuration's tap multipliers from the catalog.
    ///
    /// # Panics
    ///
    /// Panics if the configuration indexes outside the catalog (it came
    /// from a different design space). Use [`Clapped::try_taps_for`] on
    /// hot paths that must survive foreign configurations.
    pub fn taps_for(&self, config: &Configuration) -> Vec<Arc<dyn Mul8s>> {
        match self.try_taps_for(config) {
            Ok(taps) => taps,
            Err(e) => panic!("{e}"),
        }
    }

    /// Resolves a configuration's tap multipliers, reporting
    /// out-of-catalog indices as [`ClappedError::BadConfiguration`]
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`ClappedError::BadConfiguration`] if any tap index is
    /// outside the catalog.
    pub fn try_taps_for(&self, config: &Configuration) -> Result<Vec<Arc<dyn Mul8s>>> {
        config
            .active_mul_indices()
            .iter()
            .map(|&i| match self.catalog.at(i) {
                Some(m) => Ok(m as Arc<dyn Mul8s>),
                None => Err(ClappedError::BadConfiguration {
                    reason: format!(
                        "tap index {i} outside catalog of {} operators",
                        self.catalog.len()
                    ),
                }),
            })
            .collect()
    }

    /// **True behavioral estimation**: executes the application model
    /// under this configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ClappedError::BadConfiguration`] for out-of-catalog tap
    /// indices and propagates configuration errors from the convolution
    /// engine.
    pub fn evaluate_error(&self, config: &Configuration) -> Result<AppResult> {
        let taps = self.try_taps_for(config)?;
        self.evaluate_error_with(config, &taps)
    }

    /// [`Clapped::evaluate_error`] with explicitly supplied tap
    /// operators — the hook for substituting non-catalog instances such
    /// as [`clapped_axops::FaultedMul`] into the application model
    /// (fault-injection campaigns, what-if analyses).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the convolution engine.
    pub fn evaluate_error_with(
        &self,
        config: &Configuration,
        taps: &[Arc<dyn Mul8s>],
    ) -> Result<AppResult> {
        Ok(self.app.evaluate(&config.conv_config(), taps)?)
    }

    /// **Batched** true behavioral estimation: evaluates every
    /// configuration on the engine's thread pool and returns the results
    /// in input order (or the lowest-indexed failure, so errors are as
    /// deterministic as successes).
    ///
    /// # Errors
    ///
    /// The first (by input index) configuration's evaluation error.
    pub fn evaluate_error_many(&self, configs: &[Configuration]) -> Result<Vec<AppResult>> {
        self.engine.try_evaluate_many(configs, |_, c| self.evaluate_error(c))
    }

    /// [`Clapped::evaluate_error`] through the result cache: the
    /// application model runs at most once per distinct configuration
    /// (per instance, or ever with a disk tier); repeats replay the
    /// stored error percentage. Failures are never cached.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors on a cache miss.
    pub fn evaluate_error_cached(&self, config: &Configuration) -> Result<f64> {
        let key = self.config_digest(config) ^ ROLE_ERROR;
        if let Some(v) = self.eval_cache.get(key) {
            return Ok(v[0]);
        }
        let r = self.evaluate_error(config)?;
        self.eval_cache.insert(key, vec![r.error_percent]);
        Ok(r.error_percent)
    }

    /// The cached true DSE objective vector `[application error %,
    /// LUT count]` of a configuration. Evaluation failures yield the
    /// large finite sentinel the search treats as "avoid this region"
    /// (matching the ML-mode objective closures) and are never cached.
    pub fn true_objectives_cached(&self, config: &Configuration) -> Vec<f64> {
        let key = self.config_digest(config) ^ ROLE_OBJECTIVES;
        if let Some(v) = self.eval_cache.get(key) {
            return v;
        }
        let err = self
            .evaluate_error(config)
            .map(|r| r.error_percent)
            .unwrap_or(f64::MAX / 4.0);
        let luts = self
            .characterize_hw(config)
            .map(|r| r.luts as f64)
            .unwrap_or(f64::MAX / 4.0);
        let objectives = vec![err.max(0.0), luts.max(0.0)];
        if err < f64::MAX / 8.0 && luts < f64::MAX / 8.0 {
            self.eval_cache.insert(key, objectives.clone());
        }
        objectives
    }

    /// Batched, cached true objective outcomes in the shape
    /// [`clapped_dse::MboState::step_batched`] consumes: the
    /// configurations fan out over the evaluation engine and each
    /// returns its [`Clapped::true_objectives_cached`] vector paired
    /// with its [`Clapped::config_digest`]. Outcomes come back in input
    /// order, so results are bit-identical at any thread count.
    pub fn true_outcomes_cached(&self, configs: &[Configuration]) -> Vec<BatchOutcome> {
        self.engine.evaluate_many(configs, |_, c| BatchOutcome::Value {
            objectives: self.true_objectives_cached(c),
            digest: self.config_digest(c),
        })
    }

    /// The accelerator design point implied by a configuration: the
    /// effective streamed image shrinks with DATA scaling.
    pub fn accel_spec(&self, config: &Configuration) -> AcceleratorSpec {
        AcceleratorSpec {
            image_size: (self.config.image_size / config.scale).max(config.window),
            window: config.window,
            stride: config.stride,
            downsample: config.downsample,
            mode: config.mode,
            muls: config
                .active_mul_indices()
                .iter()
                .map(|&i| self.catalog.at(i).expect("valid index"))
                .collect(),
        }
    }

    /// **True hardware estimation**: synthesizes the configuration's
    /// accelerator datapath.
    ///
    /// # Errors
    ///
    /// Propagates synthesis failures.
    pub fn characterize_hw(&self, config: &Configuration) -> Result<AccelReport> {
        Ok(characterize(&self.accel_spec(config), &self.config.char_config)?)
    }

    /// Encodes a configuration into a behavioral-model feature vector:
    /// the scalar DoFs followed by one representation block per tap
    /// (always `window²` taps, so feature dimensions are mode-stable).
    pub fn encode(&self, config: &Configuration, repr: MulRepr) -> Vec<f64> {
        let mut v = config.dof_features();
        for &idx in &config.mul_indices {
            match repr {
                MulRepr::Index => v.push(self.index_values[idx]),
                MulRepr::M1 => v.extend(self.stats[idx].m1()),
                MulRepr::M4 => v.extend(self.stats[idx].m4()),
                MulRepr::Coeffs(k) => {
                    v.extend(self.pr_models[idx].feature_vector(&self.ranking, k))
                }
            }
        }
        v
    }

    /// Encodes a configuration into a hardware-model feature vector:
    /// the scalar DoFs followed by each tap operator's LUT count and
    /// total power (the Table-I style expanded representation).
    ///
    /// # Errors
    ///
    /// Propagates operator-library characterization failures.
    pub fn encode_hw(&self, config: &Configuration) -> Result<Vec<f64>> {
        let lib = self.op_library()?;
        let mut v = config.dof_features();
        for &idx in &config.mul_indices {
            let op = self.catalog.at(idx).expect("valid index");
            let name = Mul8s::name(op.as_ref());
            let p = lib.props(name).ok_or_else(|| {
                ClappedError::Accel(clapped_accel::AccelError::Synth(format!(
                    "operator {name} missing from the library"
                )))
            })?;
            v.push(p.luts);
            v.push(p.total_power_mw);
        }
        Ok(v)
    }

    /// Generates a labelled behavioral dataset: `count` random
    /// configurations with their true application-level error (%).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn make_error_dataset(
        &self,
        count: usize,
        repr: MulRepr,
        seed: u64,
    ) -> Result<ErrorDataset> {
        // Sample every configuration first (one serial RNG stream, so
        // the dataset is independent of the thread count), then fan the
        // expensive application runs over the engine.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let configs: Vec<Configuration> = (0..count).map(|_| self.space.sample(&mut rng)).collect();
        let results = self.evaluate_error_many(&configs)?;
        let xs: Vec<Vec<f64>> = configs.iter().map(|c| self.encode(c, repr)).collect();
        let ys: Vec<f64> = results.iter().map(|r| r.error_percent).collect();
        Ok((configs, xs, ys))
    }

    /// Trains the behavioral quality-prediction MLP on a dataset
    /// produced by [`Clapped::make_error_dataset`].
    ///
    /// # Errors
    ///
    /// Propagates training failures.
    pub fn train_error_model(
        &self,
        xs: &[Vec<f64>],
        ys: &[f64],
        config: &TrainConfig,
    ) -> Result<Regressor> {
        Ok(Regressor::fit(xs, ys, &[32, 16], config)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapped_dse::Configuration;

    fn small() -> Clapped {
        Clapped::builder().image_size(16).build().unwrap()
    }

    #[test]
    fn builder_validates_catalog() {
        // A catalog whose operator 0 is approximate must be rejected.
        let bad = Catalog::from_specs(vec![(
            "approx_first".to_string(),
            clapped_axops::MulArch::Truncated { k: 5 },
        )])
        .expect("unique names");
        let err = Clapped::builder().catalog(bad).build();
        assert!(matches!(err, Err(ClappedError::Unavailable { .. })));
    }

    #[test]
    fn golden_config_evaluates_to_zero_error() {
        let fw = small();
        let r = fw.evaluate_error(&Configuration::golden(3)).unwrap();
        assert_eq!(r.error_percent, 0.0);
    }

    #[test]
    fn encode_widths_are_consistent() {
        let fw = small();
        let c = Configuration::golden(3);
        assert_eq!(fw.encode(&c, MulRepr::Index).len(), 4 + 9);
        assert_eq!(fw.encode(&c, MulRepr::M1).len(), 4 + 9);
        assert_eq!(fw.encode(&c, MulRepr::M4).len(), 4 + 36);
        assert_eq!(fw.encode(&c, MulRepr::Coeffs(4)).len(), 4 + 36);
    }

    #[test]
    fn accel_spec_respects_scaling() {
        let fw = small();
        let mut c = Configuration::golden(3);
        c.scale = 2;
        let spec = fw.accel_spec(&c);
        assert_eq!(spec.image_size, 8);
        assert_eq!(spec.muls.len(), 9);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn sobel_application_plugs_in() {
        let fw = Clapped::builder()
            .image_size(16)
            .application(crate::AppKind::SobelEdge)
            .build()
            .unwrap();
        assert_eq!(fw.app_kind(), crate::AppKind::SobelEdge);
        // The mode DoF is restricted to 2D for gradient applications.
        assert_eq!(fw.space().modes, vec![clapped_imgproc::ConvMode::TwoD]);
        let golden = Configuration::golden(3);
        assert_eq!(fw.evaluate_error(&golden).unwrap().error_percent, 0.0);
        // Random configurations evaluate without error over the space.
        let (_, xs, ys) = fw.make_error_dataset(6, MulRepr::Coeffs(3), 2).unwrap();
        assert_eq!(xs.len(), 6);
        assert!(ys.iter().any(|&e| e > 0.0));
        assert_eq!(fw.sobel_app().image_count(), 3);
    }

    #[test]
    #[should_panic(expected = "use sobel_app()")]
    fn wrong_app_accessor_panics() {
        let fw = Clapped::builder()
            .image_size(16)
            .application(crate::AppKind::SobelEdge)
            .build()
            .unwrap();
        let _ = fw.app();
    }

    #[test]
    fn recipe_digests_key_framework_pools() {
        let a = Clapped::builder().image_size(16).into_config();
        let b = Clapped::builder().image_size(16).into_config();
        assert_eq!(a.digest(), b.digest(), "equal recipes share a pool slot");
        let c = Clapped::builder().image_size(16).seed(9).into_config();
        assert_ne!(a.digest(), c.digest(), "seed partitions results");
        // Execution knobs never partition: they cannot change results.
        let mut d = a.clone();
        d.exec = ExecConfig::with_jobs(8);
        d.cache_capacity = 17;
        assert_eq!(a.digest(), d.digest());
        // The instantiated framework carries its recipe, digest intact.
        let fw = a.instantiate().unwrap();
        assert_eq!(fw.config().digest(), b.digest());
        assert_eq!(fw.image_size(), 16);
    }

    #[test]
    fn config_digests_are_stable_and_content_addressed() {
        let fw = small();
        let a = Configuration::golden(3);
        let mut b = Configuration::golden(3);
        assert_eq!(fw.config_digest(&a), fw.config_digest(&b));
        b.stride = 2;
        assert_ne!(fw.config_digest(&a), fw.config_digest(&b));
        let mut c = Configuration::golden(3);
        c.mul_indices[4] += 1;
        assert_ne!(fw.config_digest(&a), fw.config_digest(&c));
    }

    #[test]
    fn cached_evaluation_skips_recompute() {
        let fw = small();
        let c = Configuration::golden(3);
        let before = fw.cache_stats();
        let e1 = fw.evaluate_error_cached(&c).unwrap();
        let e2 = fw.evaluate_error_cached(&c).unwrap();
        assert_eq!(e1.to_bits(), e2.to_bits());
        let after = fw.cache_stats();
        assert_eq!(after.misses - before.misses, 1, "one cold miss");
        assert_eq!(after.hits - before.hits, 1, "one warm hit");
        // The objective helper caches under its own role key.
        let o1 = fw.true_objectives_cached(&c);
        let o2 = fw.true_objectives_cached(&c);
        assert_eq!(o1, o2);
        assert_eq!(o1[0].to_bits(), e1.to_bits());
        assert_eq!(fw.cache_stats().hits - after.hits, 1);
    }

    #[test]
    fn plan_cache_warms_across_evaluations() {
        let fw = small();
        let c = Configuration::golden(3);
        fw.evaluate_error(&c).unwrap();
        let warm = fw.plan_cache_stats();
        fw.evaluate_error(&c).unwrap();
        let after = fw.plan_cache_stats();
        // Re-evaluating an already-seen configuration lowers no new tap
        // LUTs; it only hits the process-wide plan cache. (Concurrent
        // tests may add their own misses, so only hit growth is
        // asserted.)
        assert!(after.hits > warm.hits, "plan LUTs are shared");
    }

    #[test]
    fn parallel_dataset_matches_serial_bit_for_bit() {
        let serial = Clapped::builder()
            .image_size(16)
            .exec(clapped_exec::ExecConfig::serial())
            .build()
            .unwrap();
        let wide = Clapped::builder()
            .image_size(16)
            .exec(clapped_exec::ExecConfig::with_jobs(8))
            .build()
            .unwrap();
        let (c1, x1, y1) = serial.make_error_dataset(10, MulRepr::Coeffs(3), 5).unwrap();
        let (c2, x2, y2) = wide.make_error_dataset(10, MulRepr::Coeffs(3), 5).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(x1, x2);
        for (a, b) in y1.iter().zip(&y2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(wide.engine().jobs() > 1);
        assert_eq!(wide.engine().jobs_executed(), 10);
    }

    #[test]
    fn dataset_generation_is_deterministic() {
        let fw = small();
        let (c1, x1, y1) = fw.make_error_dataset(8, MulRepr::Coeffs(3), 5).unwrap();
        let (c2, x2, y2) = fw.make_error_dataset(8, MulRepr::Coeffs(3), 5).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(x1, x2);
        assert_eq!(y1, y2);
        assert_eq!(x1.len(), 8);
        assert!(y1.iter().any(|&e| e > 0.0), "random configs should err");
    }
}
