//! autoAx-style learned pre-filtering of the generative operator
//! catalog (Mrazek et al., arXiv 1902.10807).
//!
//! The generative catalog holds a thousand-plus distinct operators —
//! far too many to characterize exhaustively inside a DSE campaign,
//! since instantiating an operator into the framework costs error-model
//! fitting and per-configuration synthesis. autoAx's observation is
//! that cheap per-operator features predict application-level quality
//! and hardware cost well enough to prune the library down to a
//! Pareto-plausible subset *before* exploration:
//!
//! 1. label a small training subset of operators with their true
//!    application error (uniform-operator execution of the application
//!    model) and true accelerator cost (LUTs after synthesis),
//! 2. fit one quality and one cost surrogate
//!    ([`clapped_mlp::Regressor`]) from the catalog's cheap features
//!    to those labels,
//! 3. predict both objectives for every catalog entry and keep only
//!    operators within an ε band of the predicted Pareto front,
//! 4. materialize the survivors into a [`Catalog`] ready for
//!    [`Clapped::builder`](crate::Clapped::builder) and MBO.
//!
//! The pre-filter is deterministic: training-subset selection, model
//! seeds, and pruning are all pure functions of the catalog and the
//! [`PrefilterConfig`].
//!
//! Since the catalog grew statically *proved* error bounds
//! (`clapped-netlist`'s `errbound` interval analyzer), the feature
//! vector also carries `proved_wce` and `proved_error_rate` — sound
//! upper bounds computed without simulation. They reach both surrogates
//! for free through [`GenFeatures::to_vec`](clapped_axops::GenFeatures)
//! and give the quality model a second, independent error signal that
//! separates the proved-exact cluster (bound `0`) from near-exact
//! operators whose table MAE alone rounds to the same decade.

use crate::{Clapped, ClappedError, Result};
use clapped_axops::{Catalog, GenerativeCatalog};
use clapped_dse::Configuration;
use clapped_mlp::{Regressor, TrainConfig};

/// Tuning knobs of the autoAx pre-filter.
#[derive(Debug, Clone)]
pub struct PrefilterConfig {
    /// Operators labelled with true quality/cost to train the
    /// surrogates (selected evenly across the catalog's error range;
    /// the exact operator is always included).
    pub train_count: usize,
    /// Upper bound on survivors (the exact operator always survives).
    pub keep_max: usize,
    /// Pareto band width: an entry is pruned only when another entry's
    /// *predictions* dominate it by at least this fraction of each
    /// objective's predicted range. When the band holds fewer than
    /// [`keep_max`](Self::keep_max) entries, the pool is topped up with
    /// the next-closest predicted Pareto fronts (NSGA-style peeling) —
    /// never with the dominated interior.
    pub epsilon: f64,
    /// Hidden-layer sizes of both surrogate models.
    pub hidden: Vec<usize>,
    /// Surrogate training configuration.
    pub train: TrainConfig,
    /// Image size of the labelling application model (kept small — the
    /// labels only feed the surrogates).
    pub image_size: usize,
    /// Convolution window of the uniform labelling configuration.
    pub window: usize,
    /// Seed for the labelling framework (forwarded to
    /// [`Clapped::builder`](crate::Clapped::builder)).
    pub seed: u64,
}

impl Default for PrefilterConfig {
    fn default() -> Self {
        PrefilterConfig {
            train_count: 64,
            keep_max: 40,
            epsilon: 0.05,
            hidden: vec![16],
            train: TrainConfig::default(),
            image_size: 32,
            window: 3,
            seed: 11,
        }
    }
}

/// The pre-filter's output: the survivor catalog plus everything needed
/// to audit the pruning decision.
#[derive(Debug)]
pub struct PrefilterReport {
    /// Materialized survivor operators, exact first — ready for
    /// [`Clapped::builder`](crate::Clapped::builder).
    pub catalog: Catalog,
    /// Indices of the survivors into the generative catalog's entries,
    /// in ascending order (always starts with 0, the exact operator).
    pub survivors: Vec<usize>,
    /// Indices of the entries labelled to train the surrogates.
    pub train_indices: Vec<usize>,
    /// Predicted application error (%) per generative-catalog entry —
    /// the pruning-plot x axis.
    pub predicted_quality: Vec<f64>,
    /// Predicted accelerator cost (LUTs) per generative-catalog entry —
    /// the pruning-plot y axis.
    pub predicted_cost: Vec<f64>,
    /// Entries pruned by the ε-Pareto band (before the `keep_max` cap).
    pub pruned: usize,
}

/// Runs the autoAx pre-filter over a built generative catalog.
///
/// # Errors
///
/// Returns [`ClappedError::BadConfiguration`] when the catalog is empty
/// or its first entry is not exact, and propagates labelling
/// (application evaluation, synthesis) and surrogate-training failures.
pub fn prefilter(gen: &GenerativeCatalog, cfg: &PrefilterConfig) -> Result<PrefilterReport> {
    let entries = gen.entries();
    if entries.is_empty() {
        return Err(ClappedError::BadConfiguration {
            reason: "cannot pre-filter an empty generative catalog".to_string(),
        });
    }
    if entries[0].features.mae != 0.0 {
        return Err(ClappedError::BadConfiguration {
            reason: "generative catalog entry 0 must be the exact operator".to_string(),
        });
    }
    let _span = clapped_obs::span("core.prefilter");

    // 1. Training subset: entries sorted by table MAE, sampled evenly
    // so the labels cover the whole error range; the exact operator
    // anchors the low end.
    let train_indices = select_train_indices(gen, cfg.train_count.max(2));

    // 2. True labels through a small labelling framework whose catalog
    // is exactly the training subset.
    let specs: Vec<(String, clapped_axops::MulArch)> = train_indices
        .iter()
        .map(|&i| (entries[i].name.clone(), entries[i].arch))
        .collect();
    let label_catalog = Catalog::from_specs(specs).map_err(|e| ClappedError::BadConfiguration {
        reason: format!("labelling catalog: {e}"),
    })?;
    let fw = Clapped::builder()
        .catalog(label_catalog)
        .image_size(cfg.image_size)
        .seed(cfg.seed)
        .build()?;
    let taps = cfg.window * cfg.window;
    let label_configs: Vec<Configuration> = (0..train_indices.len())
        .map(|j| {
            let mut c = Configuration::golden(cfg.window);
            c.mul_indices = vec![j; taps];
            c
        })
        .collect();
    let labels: Vec<(f64, f64)> = fw.engine().try_evaluate_many(&label_configs, |_, c| {
        let quality = fw.evaluate_error(c)?.error_percent;
        let cost = fw.characterize_hw(c)?.luts as f64;
        Ok::<(f64, f64), ClappedError>((quality, cost))
    })?;

    // 3. Surrogates: catalog features → true quality / true cost.
    // Error-magnitude features and the quality target span four-plus
    // decades (table MAE 0.1 … 5 000, application error 0.01 % …
    // 60 %); both are log-compressed so MSE training resolves the
    // low-error region — the hypervolume-critical one — instead of
    // spending all its capacity on the junk tail. Predictions invert
    // the transform and clamp non-negative, so an extrapolating
    // surrogate cannot mint "better than exact" values that ε-dominate
    // the genuine front away.
    let xs: Vec<Vec<f64>> = train_indices
        .iter()
        .map(|&i| log_features(&entries[i].features.to_vec()))
        .collect();
    let ys_q: Vec<f64> = labels.iter().map(|&(q, _)| (1.0 + q.max(0.0)).ln()).collect();
    let ys_c: Vec<f64> = labels.iter().map(|&(_, c)| c).collect();
    let model_q = Regressor::fit(&xs, &ys_q, &cfg.hidden, &cfg.train)?;
    let model_c = Regressor::fit(&xs, &ys_c, &cfg.hidden, &cfg.train)?;

    let feats: Vec<Vec<f64>> = entries
        .iter()
        .map(|e| log_features(&e.features.to_vec()))
        .collect();
    let predicted_quality: Vec<f64> = feats
        .iter()
        .map(|x| model_q.predict(x).exp_m1().max(0.0))
        .collect();
    let predicted_cost: Vec<f64> = feats.iter().map(|x| model_c.predict(x).max(0.0)).collect();

    // 4. ε-band Pareto pruning over the predictions. A sparse band is
    // topped up by peeling successive predicted Pareto fronts — the
    // DSE pool must stay Pareto-plausible, so the dominated interior
    // never enters it. The cap then stratifies candidates by table-MAE
    // decade (a free *true* feature) and keeps the predicted-cheapest
    // operators of every stratum: the surrogate cannot resolve the
    // near-exact cluster (dozens of entries predict ≈0 error), yet the
    // DSE needs cheap *accurate* operators just as much as cheap noisy
    // ones, so quality strata get equal representation.
    let target = cfg.keep_max.max(1).min(entries.len());
    let mut survivors = epsilon_band_survivors(&predicted_quality, &predicted_cost, cfg.epsilon);
    let pruned = entries.len() - survivors.len();
    top_up_with_next_fronts(&mut survivors, &predicted_quality, &predicted_cost, target);
    let mae_of: Vec<f64> = entries.iter().map(|e| e.features.mae).collect();
    survivors = stratified_cap(survivors, &mae_of, &predicted_cost, target);
    if survivors.first() != Some(&0) {
        survivors.insert(0, 0);
        survivors.truncate(target);
    }
    clapped_obs::observe("core.prefilter.survivors", survivors.len() as u64);

    let specs: Vec<(String, clapped_axops::MulArch)> = survivors
        .iter()
        .map(|&i| (entries[i].name.clone(), entries[i].arch))
        .collect();
    let catalog = Catalog::from_specs(specs).map_err(|e| ClappedError::BadConfiguration {
        reason: format!("survivor catalog: {e}"),
    })?;
    Ok(PrefilterReport {
        catalog,
        survivors,
        train_indices,
        predicted_quality,
        predicted_cost,
        pruned,
    })
}

/// Entry indices sampled evenly across the catalog's table-MAE range,
/// exact operator (index 0) first.
fn select_train_indices(gen: &GenerativeCatalog, count: usize) -> Vec<usize> {
    let entries = gen.entries();
    let mut by_mae: Vec<usize> = (1..entries.len()).collect();
    by_mae.sort_by(|&a, &b| {
        entries[a]
            .features
            .mae
            .total_cmp(&entries[b].features.mae)
            .then(a.cmp(&b))
    });
    let picks = count.min(entries.len()).saturating_sub(1);
    let mut train = vec![0usize];
    if picks > 0 && !by_mae.is_empty() {
        for k in 0..picks {
            // Even positions over the sorted-by-MAE list, endpoints
            // included.
            let pos = if picks == 1 {
                by_mae.len() - 1
            } else {
                k * (by_mae.len() - 1) / (picks - 1)
            };
            let idx = by_mae[pos];
            if !train.contains(&idx) {
                train.push(idx);
            }
        }
    }
    train
}

/// Indices (ascending) surviving ε-band Pareto pruning: index `p` is
/// pruned when some `q` beats it by at least `epsilon` of each
/// objective's range, in both objectives (minimization).
fn epsilon_band_survivors(quality: &[f64], cost: &[f64], epsilon: f64) -> Vec<usize> {
    let n = quality.len();
    let range = |v: &[f64]| {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in v {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        if hi > lo {
            hi - lo
        } else {
            1.0
        }
    };
    let (dq, dc) = (range(quality) * epsilon, range(cost) * epsilon);
    (0..n)
        .filter(|&p| {
            !(0..n).any(|q| {
                q != p && quality[q] <= quality[p] - dq && cost[q] <= cost[p] - dc
            })
        })
        .collect()
}

/// Sign-preserving log compression of a feature vector: heavy-tailed
/// error magnitudes become comparable decades apart, and the z-score
/// standardization inside [`Regressor::fit`] stays meaningful.
fn log_features(x: &[f64]) -> Vec<f64> {
    x.iter().map(|&v| v.signum() * (1.0 + v.abs()).ln()).collect()
}

/// Extends `survivors` to `target` indices by repeatedly peeling the
/// strict Pareto front of the not-yet-kept entries (NSGA-style
/// non-dominated sorting over the predictions). Entries enter in
/// front order, so the pool fills with the *nearest* runners-up to
/// the predicted front and the dominated interior stays out.
fn top_up_with_next_fronts(
    survivors: &mut Vec<usize>,
    quality: &[f64],
    cost: &[f64],
    target: usize,
) {
    let n = quality.len();
    let mut kept = vec![false; n];
    for &s in survivors.iter() {
        kept[s] = true;
    }
    while survivors.len() < target {
        let remaining: Vec<usize> = (0..n).filter(|&i| !kept[i]).collect();
        if remaining.is_empty() {
            return;
        }
        // Strict Pareto front of the remaining entries: nothing left
        // dominates them (≤ in both objectives, < in at least one).
        let front: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&p| {
                !remaining.iter().any(|&q| {
                    q != p
                        && quality[q] <= quality[p]
                        && cost[q] <= cost[p]
                        && (quality[q] < quality[p] || cost[q] < cost[p])
                })
            })
            .collect();
        // `front` is never empty: minimal elements always exist, and
        // mutually-equal (or NaN-predicted) points are minimal too.
        for i in front {
            kept[i] = true;
            survivors.push(i);
        }
    }
}

/// Caps the candidate list to `keep_max` indices, stratified by
/// log-MAE decade: candidates split into equal bins over
/// `ln(1 + mae)`, each bin contributes its predicted-cheapest
/// operators round-robin until `keep_max` fill. Result is in
/// ascending index order.
fn stratified_cap(
    mut candidates: Vec<usize>,
    mae: &[f64],
    cost: &[f64],
    keep_max: usize,
) -> Vec<usize> {
    if candidates.len() <= keep_max {
        candidates.sort_unstable();
        return candidates;
    }
    let key = |i: usize| (1.0 + mae[i].max(0.0)).ln();
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &i in &candidates {
        lo = lo.min(key(i));
        hi = hi.max(key(i));
    }
    let bins = keep_max.clamp(1, 8);
    let width = ((hi - lo) / bins as f64).max(f64::MIN_POSITIVE);
    let mut strata: Vec<Vec<usize>> = vec![Vec::new(); bins];
    for &i in &candidates {
        let b = (((key(i) - lo) / width) as usize).min(bins - 1);
        strata[b].push(i);
    }
    for stratum in &mut strata {
        stratum.sort_by(|&a, &b| cost[a].total_cmp(&cost[b]).then(a.cmp(&b)));
    }
    // Round-robin across strata, cheapest-first within each, so every
    // populated quality decade is represented before any decade gets a
    // second pick.
    let mut kept: Vec<usize> = Vec::with_capacity(keep_max);
    let mut depth = 0;
    while kept.len() < keep_max {
        let mut took_any = false;
        for stratum in &strata {
            if let Some(&i) = stratum.get(depth) {
                took_any = true;
                kept.push(i);
                if kept.len() == keep_max {
                    break;
                }
            }
        }
        if !took_any {
            break;
        }
        depth += 1;
    }
    kept.sort_unstable();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapped_axops::{gen_cache_in_memory, GenSpace, GenerativeCatalog, Mul8s};
    use clapped_exec::Engine;

    fn small_gen() -> GenerativeCatalog {
        let space = GenSpace::quick();
        let engine = Engine::serial();
        let cache = gen_cache_in_memory(space.len() + 1);
        GenerativeCatalog::build(&space, &engine, &cache)
    }

    #[test]
    fn prefilter_prunes_and_keeps_exact_first() {
        let gen = small_gen();
        let cfg = PrefilterConfig {
            train_count: 8,
            keep_max: 10,
            train: TrainConfig {
                epochs: 40,
                ..TrainConfig::default()
            },
            ..PrefilterConfig::default()
        };
        let report = prefilter(&gen, &cfg).expect("prefilter runs");
        assert!(report.catalog.len() <= 10);
        assert!(report.catalog.len() >= 2, "must keep exact plus approximations");
        assert_eq!(report.survivors[0], 0, "exact operator survives first");
        assert_eq!(
            report.catalog.at(0).expect("non-empty").name(),
            gen.entries()[0].name
        );
        assert_eq!(report.predicted_quality.len(), gen.len());
        assert_eq!(report.predicted_cost.len(), gen.len());
        assert!(report.pruned > 0, "a quick catalog still has dominated entries");
        assert!(report.train_indices.len() >= 2);
        assert_eq!(report.train_indices[0], 0);
        // Deterministic: same inputs, same survivors.
        let again = prefilter(&gen, &cfg).expect("prefilter reruns");
        assert_eq!(again.survivors, report.survivors);
    }

    #[test]
    fn prefilter_rejects_empty_and_inexact_catalogs() {
        let space = GenSpace::with_grids(&[], &[], &[], &[], &[], false);
        // The space still enumerates the exact spec first, so build a
        // catalog and strip nothing — instead check the empty-entry
        // guard through an impossible config.
        let engine = Engine::serial();
        let cache = gen_cache_in_memory(16);
        let gen = GenerativeCatalog::build(&space, &engine, &cache);
        assert_eq!(gen.len(), 1, "only the exact spec");
        let cfg = PrefilterConfig {
            train_count: 2,
            train: TrainConfig {
                epochs: 5,
                ..TrainConfig::default()
            },
            ..PrefilterConfig::default()
        };
        // A single-entry catalog cannot train a surrogate on one label
        // spread — it still runs (fit tolerates constant targets) or
        // errors cleanly; either way it must not panic.
        let _ = prefilter(&gen, &cfg);
    }

    #[test]
    fn epsilon_band_keeps_front_and_prunes_dominated() {
        let quality = vec![0.0, 1.0, 2.0, 10.0];
        let cost = vec![10.0, 5.0, 2.0, 9.0];
        let survivors = epsilon_band_survivors(&quality, &cost, 0.05);
        assert!(survivors.contains(&0));
        assert!(survivors.contains(&1));
        assert!(survivors.contains(&2));
        assert!(!survivors.contains(&3), "strictly dominated by index 2");
        // A huge epsilon keeps everything.
        assert_eq!(epsilon_band_survivors(&quality, &cost, 10.0).len(), 4);
    }

    #[test]
    fn top_up_peels_fronts_in_dominance_order() {
        // Front 0: {0, 1}. Front 1: {2, 3}. Interior: {4}.
        let quality = vec![0.0, 2.0, 1.0, 3.0, 4.0];
        let cost = vec![5.0, 1.0, 6.0, 2.0, 7.0];
        let mut pool = vec![0, 1];
        top_up_with_next_fronts(&mut pool, &quality, &cost, 4);
        assert_eq!(pool, vec![0, 1, 2, 3], "second front enters before the interior");
        top_up_with_next_fronts(&mut pool, &quality, &cost, 10);
        assert_eq!(pool.len(), 5, "target beyond the catalog keeps everything");
    }

    #[test]
    fn stratified_cap_keeps_every_mae_decade_cheapest_first() {
        // Keys ln(1+mae) = i/4 span [0, 9.75]; cost decreases with
        // index, so within each stratum the highest index is cheapest.
        let mae: Vec<f64> = (0..40).map(|i| (f64::from(i) * 0.25).exp_m1()).collect();
        let cost: Vec<f64> = (0..40).map(|i| 1000.0 - 10.0 * f64::from(i)).collect();
        let kept = stratified_cap((0..40).collect(), &mae, &cost, 8);
        assert_eq!(kept.len(), 8);
        assert!(kept.windows(2).all(|w| w[0] < w[1]), "ascending index order");
        assert!(kept.iter().any(|&i| mae[i] < 2.0), "near-exact stratum represented");
        assert!(kept.iter().any(|&i| mae[i] > 1000.0), "cheap noisy stratum represented");
        // A no-op cap passes candidates through sorted.
        let few = stratified_cap(vec![7, 3], &mae, &cost, 8);
        assert_eq!(few, vec![3, 7]);
    }
}
