//! End-to-end cross-layer DSE: MBO over application error and LUT
//! utilization (paper Section V-D).

use crate::{Clapped, ClappedError, MulRepr, Result};
use clapped_dse::{BatchOutcome, Configuration, MboConfig, MboState, SearchResult};
use clapped_mlp::{Regressor, TrainConfig};
use rand::SeedableRng;

/// Which estimation path feeds an objective during DSE — the paper's
/// true-vs-ML dichotomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EstimationMode {
    /// Execute the behavioural model / synthesize the datapath.
    True,
    /// Predict with a trained MLP.
    Ml,
}

/// Options of one exploration run.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Estimation mode for the application-error objective.
    pub error_mode: EstimationMode,
    /// Estimation mode for the LUT objective.
    pub hw_mode: EstimationMode,
    /// Multiplier representation for ML features.
    pub repr: MulRepr,
    /// Training samples for ML-mode objectives.
    pub training_samples: usize,
    /// MBO loop parameters.
    pub mbo: MboConfig,
    /// Re-evaluate the Pareto points with the true estimators afterwards
    /// (the paper's `ACTUAL_EVAL` of Fig. 12b).
    pub actual_eval: bool,
    /// Section IV's refinement step: mutate each Pareto point this many
    /// times, evaluate the neighbours with the **true** estimators and
    /// merge improvements into the front (0 disables).
    pub refine_neighbors: usize,
    /// MLP training parameters.
    pub train: TrainConfig,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            error_mode: EstimationMode::Ml,
            hw_mode: EstimationMode::Ml,
            repr: MulRepr::Coeffs(4),
            training_samples: 150,
            mbo: MboConfig {
                initial_samples: 20,
                iterations: 8,
                batch: 10,
                candidates: 50,
                reference: vec![30.0, 4000.0],
                kappa: 1.0,
                explore_fraction: 0.1,
                seed: 0,
            },
            actual_eval: true,
            refine_neighbors: 0,
            train: TrainConfig {
                epochs: 150,
                ..TrainConfig::default()
            },
        }
    }
}

/// One Pareto design point of an exploration run.
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    /// The configuration.
    pub config: Configuration,
    /// Objectives as seen by the search (`[error %, LUTs]`).
    pub searched: [f64; 2],
    /// True objectives, when `actual_eval` was requested.
    pub actual: Option<[f64; 2]>,
}

/// The outcome of [`explore`].
#[derive(Debug, Clone)]
pub struct ExploreResult {
    /// Full search trace.
    pub search: SearchResult<Configuration>,
    /// Pareto points (with actual re-evaluation when requested).
    pub pareto: Vec<ParetoPoint>,
}

impl ExploreResult {
    /// DoF diversity summary over the Pareto set: how many points use a
    /// single multiplier type, stride 2, downsampling, and each scale —
    /// the paper's Fig. 12b analysis.
    pub fn dof_summary(&self) -> DofSummary {
        let mut s = DofSummary::default();
        for p in &self.pareto {
            let c = &p.config;
            let first = c.active_mul_indices()[0];
            if c.active_mul_indices().iter().all(|&i| i == first) {
                s.uniform_multiplier += 1;
            }
            if c.stride > 1 {
                s.strided += 1;
            }
            if c.downsample {
                s.downsampled += 1;
            }
            match c.scale {
                1 => s.scale1 += 1,
                2 => s.scale2 += 1,
                _ => s.scale3plus += 1,
            }
        }
        s.total = self.pareto.len();
        s
    }
}

/// Pareto-set DoF diversity counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DofSummary {
    /// Number of Pareto points.
    pub total: usize,
    /// Points whose taps all use one multiplier type.
    pub uniform_multiplier: usize,
    /// Points with stride > 1.
    pub strided: usize,
    /// Points with downsampling enabled.
    pub downsampled: usize,
    /// Points with scale 1.
    pub scale1: usize,
    /// Points with scale 2.
    pub scale2: usize,
    /// Points with scale 3 or more.
    pub scale3plus: usize,
}

/// Runs the full CLAppED exploration: builds the requested objective
/// functions (true or ML-predicted), runs MBO and extracts the Pareto
/// front.
///
/// # Errors
///
/// Propagates evaluation, training and search errors.
pub fn explore(fw: &Clapped, opts: &ExploreOptions) -> Result<ExploreResult> {
    // Train ML models if any objective runs in ML mode.
    let need_ml = opts.error_mode == EstimationMode::Ml || opts.hw_mode == EstimationMode::Ml;
    let mut err_model: Option<Regressor> = None;
    let mut lut_model: Option<Regressor> = None;
    if need_ml {
        let (configs, xs, ys) =
            fw.make_error_dataset(opts.training_samples, opts.repr, fw.seed() ^ 0x7777)?;
        if opts.error_mode == EstimationMode::Ml {
            err_model = Some(fw.train_error_model(&xs, &ys, &opts.train)?);
        }
        if opts.hw_mode == EstimationMode::Ml {
            // LUT labels from true synthesis of the training configs,
            // with hardware (Table-I style) features.
            let mut lut_ys = Vec::with_capacity(configs.len());
            let mut hw_xs = Vec::with_capacity(configs.len());
            for c in &configs {
                lut_ys.push(fw.characterize_hw(c)?.luts as f64);
                hw_xs.push(fw.encode_hw(c)?);
            }
            lut_model = Some(Regressor::fit(&hw_xs, &lut_ys, &[32, 16], &opts.train)?);
        }
    }

    // Pure true-mode evaluations are content-addressed: identical
    // configurations replay from the framework's result cache instead of
    // re-running the application model and synthesis. ML-mode objectives
    // depend on the freshly trained models, so they are never cached.
    let pure_true =
        opts.error_mode == EstimationMode::True && opts.hw_mode == EstimationMode::True;
    let objective = |c: &Configuration| -> Vec<f64> {
        let err = match (&opts.error_mode, &err_model) {
            (EstimationMode::Ml, Some(m)) => m.predict(&fw.encode(c, opts.repr)),
            _ => fw
                .evaluate_error(c)
                .map(|r| r.error_percent)
                .unwrap_or(f64::MAX / 4.0),
        };
        let luts = match (&opts.hw_mode, &lut_model) {
            (EstimationMode::Ml, Some(m)) => match fw.encode_hw(c) {
                Ok(x) => m.predict(&x),
                Err(_) => f64::MAX / 4.0,
            },
            _ => fw
                .characterize_hw(c)
                .map(|r| r.luts as f64)
                .unwrap_or(f64::MAX / 4.0),
        };
        vec![err.max(0.0), luts.max(0.0)]
    };

    let space = fw.space().clone();
    // Surrogate features: behavioural representation plus, when the
    // operator library is characterized, the hardware (Table-I) features
    // — the LUT objective is nearly linear in the latter.
    let hw_ready = fw.op_library().is_ok();
    let surrogate_features = |c: &Configuration| -> Vec<f64> {
        let mut v = fw.encode(c, opts.repr);
        if hw_ready {
            if let Ok(h) = fw.encode_hw(c) {
                v.extend(h);
            }
        }
        v
    };
    // Drive MBO through the batched stepping interface: every candidate
    // batch fans out over the framework's evaluation engine, and each
    // evaluation records its configuration digest (checkpointable, and
    // replayable from a warm cache). Results are bit-identical at any
    // thread count: candidates are sampled serially, outcomes return in
    // candidate order, and the objectives are pure.
    let mut state = MboState::new(&opts.mbo).map_err(ClappedError::Dse)?;
    let mut sample = move |rng: &mut rand_chacha::ChaCha8Rng| space.sample(rng);
    let mut evaluate_batch = |cs: &[Configuration]| -> Vec<BatchOutcome> {
        if pure_true {
            // Shared with `crate::Session`: content-addressed true
            // objectives, replayable from a warm cache.
            return fw.true_outcomes_cached(cs);
        }
        fw.engine()
            .evaluate_many(cs, |_, c| BatchOutcome::Value {
                objectives: objective(c),
                digest: fw.config_digest(c),
            })
            .into_iter()
            .collect()
    };
    while !state.is_complete() {
        state
            .step_batched(&mut sample, &surrogate_features, &mut evaluate_batch)
            .map_err(ClappedError::Dse)?;
    }
    let search = state.into_result();

    let mut pareto = Vec::new();
    for idx in search.pareto_indices() {
        let (config, obj) = &search.evaluated[idx];
        let actual = if opts.actual_eval {
            let err = fw.evaluate_error(config)?.error_percent;
            let luts = fw.characterize_hw(config)?.luts as f64;
            Some([err, luts])
        } else {
            None
        };
        pareto.push(ParetoPoint {
            config: config.clone(),
            searched: [obj[0], obj[1]],
            actual,
        });
    }

    // Section IV refinement: local neighbourhood search around the front
    // with true evaluations.
    if opts.refine_neighbors > 0 {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(opts.mbo.seed ^ 0x5EED);
        let space = fw.space().clone();
        let mut candidates: Vec<ParetoPoint> = pareto.clone();
        // Mutate every neighbour first (one serial RNG stream), then
        // evaluate them all on the engine.
        let mut neighbours = Vec::with_capacity(pareto.len() * opts.refine_neighbors);
        for p in &pareto {
            for _ in 0..opts.refine_neighbors {
                let mut neighbour = p.config.clone();
                space.mutate(&mut neighbour, &mut rng);
                neighbours.push(neighbour);
            }
        }
        let true_objs = fw.engine().try_evaluate_many(&neighbours, |_, c| {
            let err = fw.evaluate_error(c)?.error_percent;
            let luts = fw.characterize_hw(c)?.luts as f64;
            Ok::<[f64; 2], ClappedError>([err, luts])
        })?;
        for (neighbour, [err, luts]) in neighbours.into_iter().zip(true_objs) {
            candidates.push(ParetoPoint {
                config: neighbour,
                searched: [err, luts],
                actual: Some([err, luts]),
            });
        }
        // Non-dominated filter over true objectives where available.
        let objs: Vec<Vec<f64>> = candidates
            .iter()
            .map(|p| p.actual.unwrap_or(p.searched).to_vec())
            .collect();
        let front = clapped_dse::pareto_front(&objs);
        pareto = front.into_iter().map(|i| candidates[i].clone()).collect();
    }
    Ok(ExploreResult { search, pareto })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Clapped;

    #[test]
    fn neighborhood_refinement_never_worsens_the_true_front() {
        let fw = Clapped::builder().image_size(16).build().unwrap();
        let base_opts = ExploreOptions {
            error_mode: EstimationMode::True,
            hw_mode: EstimationMode::True,
            training_samples: 0,
            mbo: clapped_dse::MboConfig {
                initial_samples: 6,
                iterations: 1,
                batch: 3,
                candidates: 8,
                reference: vec![40.0, 5000.0],
                kappa: 1.0,
                explore_fraction: 0.1,
                seed: 4,
            },
            actual_eval: true,
            refine_neighbors: 0,
            ..ExploreOptions::default()
        };
        let plain = explore(&fw, &base_opts).unwrap();
        let refined = explore(
            &fw,
            &ExploreOptions {
                refine_neighbors: 2,
                ..base_opts
            },
        )
        .unwrap();
        let hv = |points: &[ParetoPoint]| {
            let objs: Vec<Vec<f64>> = points
                .iter()
                .map(|p| p.actual.expect("actual eval on").to_vec())
                .collect();
            clapped_dse::hypervolume(&objs, &[40.0, 5000.0])
        };
        assert!(hv(&refined.pareto) >= hv(&plain.pareto) - 1e-9);
        // Refined front members are mutually non-dominated.
        for a in &refined.pareto {
            for b in &refined.pareto {
                let (oa, ob) = (a.actual.unwrap(), b.actual.unwrap());
                assert!(!clapped_dse::dominates(&oa, &ob) || oa == ob);
            }
        }
    }

    #[test]
    fn exploration_is_thread_count_independent() {
        let opts = ExploreOptions {
            error_mode: EstimationMode::True,
            hw_mode: EstimationMode::True,
            training_samples: 0,
            mbo: clapped_dse::MboConfig {
                initial_samples: 6,
                iterations: 2,
                batch: 3,
                candidates: 10,
                reference: vec![40.0, 5000.0],
                kappa: 1.0,
                explore_fraction: 0.1,
                seed: 2,
            },
            actual_eval: false,
            ..ExploreOptions::default()
        };
        let serial_fw = Clapped::builder()
            .image_size(16)
            .exec(clapped_exec::ExecConfig::serial())
            .build()
            .unwrap();
        let wide_fw = Clapped::builder()
            .image_size(16)
            .exec(clapped_exec::ExecConfig::with_jobs(8))
            .build()
            .unwrap();
        let a = explore(&serial_fw, &opts).unwrap();
        let b = explore(&wide_fw, &opts).unwrap();
        assert_eq!(a.search.evaluated.len(), b.search.evaluated.len());
        for ((ca, oa), (cb, ob)) in a.search.evaluated.iter().zip(&b.search.evaluated) {
            assert_eq!(ca, cb, "candidate streams diverged");
            for (x, y) in oa.iter().zip(ob) {
                assert_eq!(x.to_bits(), y.to_bits(), "objectives not bit-identical");
            }
        }
        for (&(na, ha), &(nb, hb)) in a.search.hv_trace.iter().zip(&b.search.hv_trace) {
            assert_eq!(na, nb);
            assert_eq!(ha.to_bits(), hb.to_bits(), "hypervolume trace diverged");
        }
        assert_eq!(a.search.pareto_indices(), b.search.pareto_indices());
        // True-mode evaluations populated the result cache.
        assert!(wide_fw.cache_stats().insertions > 0);
    }

    #[test]
    fn true_mode_exploration_finds_pareto_points() {
        let fw = Clapped::builder().image_size(16).build().unwrap();
        let opts = ExploreOptions {
            error_mode: EstimationMode::True,
            hw_mode: EstimationMode::True,
            training_samples: 0,
            mbo: clapped_dse::MboConfig {
                initial_samples: 6,
                iterations: 2,
                batch: 3,
                candidates: 10,
                reference: vec![40.0, 5000.0],
                kappa: 1.0,
                explore_fraction: 0.1,
                seed: 2,
            },
            actual_eval: false,
            ..ExploreOptions::default()
        };
        let result = explore(&fw, &opts).unwrap();
        assert_eq!(result.search.evaluated.len(), 6 + 2 * 3);
        assert!(!result.pareto.is_empty());
        // Pareto points must be mutually non-dominated.
        for a in &result.pareto {
            for b in &result.pareto {
                assert!(!clapped_dse::dominates(&a.searched, &b.searched));
            }
        }
        let s = result.dof_summary();
        assert_eq!(s.total, result.pareto.len());
    }
}
