//! Per-job exploration sessions over a shared framework instance.
//!
//! [`crate::Clapped`] is expensive to build (catalog instantiation, PR
//! model fits, workload generation) but immutable once built, so one
//! process can share a single `Arc<Clapped>` across many concurrent
//! explorations. A [`Session`] is the cheap per-job half: an
//! [`MboState`] plus the tenant-facing quality constraint and budget.
//! Sessions step one MBO phase at a time, checkpoint to the
//! [`clapped_dse`] JSON format at any phase boundary, and resume
//! bit-exactly — the contract `clapped-serve` builds crash recovery on.

use crate::{Clapped, ClappedError, MulRepr, ParetoPoint, Result};
use clapped_dse::{Configuration, MboConfig, MboState};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// What one exploration job asks for: MBO parameters plus the
/// tenant-facing quality constraint and evaluation budget.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// MBO loop parameters (seed, batch shape, reference point).
    pub mbo: MboConfig,
    /// Multiplier representation for the surrogate features. Part of
    /// the search trajectory: resuming a checkpoint under a different
    /// representation diverges from the uninterrupted run.
    pub repr: MulRepr,
    /// Quality constraint: [`Session::pareto_feasible`] keeps Pareto
    /// points whose application error is at most this many percent
    /// (`None` = unconstrained).
    pub max_error_percent: Option<f64>,
    /// Tenant budget: clamps the planned true-evaluation count (initial
    /// samples, then whole batches). `None` runs the full plan.
    pub max_evaluations: Option<usize>,
}

impl Default for SessionSpec {
    fn default() -> Self {
        SessionSpec {
            mbo: crate::ExploreOptions::default().mbo,
            repr: MulRepr::Coeffs(4),
            max_error_percent: None,
            max_evaluations: None,
        }
    }
}

impl SessionSpec {
    /// The MBO configuration after applying `max_evaluations`: the
    /// initial design is truncated first, then whole surrogate batches
    /// are dropped from the back. Returns the clamped configuration and
    /// whether anything was actually cut.
    fn clamped_mbo(&self) -> (MboConfig, bool) {
        let mut mbo = self.mbo.clone();
        let Some(budget) = self.max_evaluations else {
            return (mbo, false);
        };
        let planned = mbo.initial_samples + mbo.iterations * mbo.batch;
        if budget >= planned {
            return (mbo, false);
        }
        mbo.initial_samples = mbo.initial_samples.min(budget);
        let remaining = budget - mbo.initial_samples;
        mbo.iterations = remaining.checked_div(mbo.batch).unwrap_or(0);
        (mbo, true)
    }
}

/// A read-only progress snapshot of a session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionProgress {
    /// True evaluations performed so far.
    pub evaluations_done: usize,
    /// Total evaluations the (possibly budget-clamped) plan will make.
    pub evaluations_planned: usize,
    /// Surrogate iterations completed.
    pub iterations_done: usize,
    /// Surrogate iterations planned.
    pub iterations_planned: usize,
    /// Hypervolume after the most recent phase (0 before the first).
    pub hypervolume: f64,
    /// Whether the plan has run to completion.
    pub complete: bool,
}

/// One in-flight exploration job over a shared [`Clapped`] instance.
#[derive(Debug)]
pub struct Session {
    fw: Arc<Clapped>,
    state: MboState<Configuration>,
    repr: MulRepr,
    max_error_percent: Option<f64>,
    truncated: bool,
}

impl Session {
    /// Opens a fresh session. The spec's budget is applied up front
    /// (see [`SessionSpec`]), so [`Session::progress`] reports the real
    /// plan from the first step.
    ///
    /// # Errors
    ///
    /// Propagates [`MboState::new`] validation failures.
    pub fn new(fw: Arc<Clapped>, spec: &SessionSpec) -> Result<Session> {
        let (mbo, truncated) = spec.clamped_mbo();
        let state = MboState::new(&mbo).map_err(ClappedError::Dse)?;
        Ok(Session {
            fw,
            state,
            repr: spec.repr,
            max_error_percent: spec.max_error_percent,
            truncated,
        })
    }

    /// Reopens a session from a checkpoint produced by
    /// [`Session::checkpoint`]. The MBO plan (including any budget
    /// clamping) is embedded in the checkpoint; only the spec's
    /// `repr` and `max_error_percent` are taken from `spec`, and they
    /// must match the original for the trajectory to stay bit-exact.
    ///
    /// # Errors
    ///
    /// Propagates checkpoint-decoding failures.
    pub fn resume(fw: Arc<Clapped>, checkpoint: &str, spec: &SessionSpec) -> Result<Session> {
        let state = MboState::from_checkpoint(checkpoint).map_err(ClappedError::Dse)?;
        let (clamped, _) = spec.clamped_mbo();
        let truncated = clamped.initial_samples != spec.mbo.initial_samples
            || clamped.iterations != spec.mbo.iterations;
        Ok(Session {
            fw,
            state,
            repr: spec.repr,
            max_error_percent: spec.max_error_percent,
            truncated,
        })
    }

    /// Serializes the session's exploration state (versioned JSON, RNG
    /// word position included) for bit-exact resumption.
    pub fn checkpoint(&self) -> String {
        self.state.to_checkpoint()
    }

    /// Runs one MBO phase — the initial design, or one surrogate
    /// iteration — fanning its true evaluations over the shared
    /// framework's engine and cache. Returns whether the plan is now
    /// complete. Calling [`Session::step`] on a complete session is a
    /// no-op returning `true`.
    ///
    /// # Errors
    ///
    /// Propagates search errors from [`MboState::step_batched`].
    pub fn step(&mut self) -> Result<bool> {
        if self.state.is_complete() {
            return Ok(true);
        }
        let fw = Arc::clone(&self.fw);
        let space = fw.space().clone();
        let repr = self.repr;
        // Surrogate features: behavioural representation plus, when the
        // operator library is characterized, the hardware (Table-I)
        // features — identical to the `crate::explore` true-mode wiring.
        let hw_ready = fw.op_library().is_ok();
        let surrogate = |c: &Configuration| -> Vec<f64> {
            let mut v = fw.encode(c, repr);
            if hw_ready {
                if let Ok(h) = fw.encode_hw(c) {
                    v.extend(h);
                }
            }
            v
        };
        let mut sample = |rng: &mut ChaCha8Rng| space.sample(rng);
        let mut evaluate = |cs: &[Configuration]| fw.true_outcomes_cached(cs);
        self.state
            .step_batched(&mut sample, &surrogate, &mut evaluate)
            .map_err(ClappedError::Dse)?;
        Ok(self.state.is_complete())
    }

    /// Whether the plan has run to completion.
    pub fn is_complete(&self) -> bool {
        self.state.is_complete()
    }

    /// Whether the tenant budget cut the original MBO plan short.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// A progress snapshot (cheap; safe to call every step).
    pub fn progress(&self) -> SessionProgress {
        SessionProgress {
            evaluations_done: self.state.evaluations_done(),
            evaluations_planned: self.state.planned_evaluations(),
            iterations_done: self.state.iterations_done(),
            iterations_planned: self.state.config().iterations,
            hypervolume: self.state.current_hypervolume(),
            complete: self.state.is_complete(),
        }
    }

    /// The current Pareto front. Sessions evaluate with the true
    /// estimators, so `searched` and `actual` carry the same values.
    pub fn pareto(&self) -> Vec<ParetoPoint> {
        let evaluated = self.state.evaluated();
        self.state
            .pareto_indices()
            .into_iter()
            .map(|i| {
                let (config, obj) = &evaluated[i];
                let searched = [obj[0], obj[1]];
                ParetoPoint {
                    config: config.clone(),
                    searched,
                    actual: Some(searched),
                }
            })
            .collect()
    }

    /// The Pareto points satisfying the session's quality constraint
    /// (all of them when unconstrained). May be empty if no explored
    /// point meets the constraint.
    pub fn pareto_feasible(&self) -> Vec<ParetoPoint> {
        let front = self.pareto();
        match self.max_error_percent {
            None => front,
            Some(limit) => front.into_iter().filter(|p| p.searched[0] <= limit).collect(),
        }
    }

    /// The shared framework this session evaluates on.
    pub fn framework(&self) -> &Arc<Clapped> {
        &self.fw
    }

    /// The exploration state (read access for reporting and tests).
    pub fn state(&self) -> &MboState<Configuration> {
        &self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore, Clapped, EstimationMode, ExploreOptions};

    fn small_mbo(seed: u64) -> MboConfig {
        MboConfig {
            initial_samples: 6,
            iterations: 2,
            batch: 3,
            candidates: 10,
            reference: vec![40.0, 5000.0],
            kappa: 1.0,
            explore_fraction: 0.1,
            seed,
        }
    }

    fn small_fw() -> Arc<Clapped> {
        Arc::new(Clapped::builder().image_size(16).build().unwrap())
    }

    #[test]
    fn sessions_are_send_and_frameworks_shareable() {
        fn assert_send<T: Send>() {}
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Clapped>();
        assert_send::<Session>();
    }

    #[test]
    fn session_matches_explore_bit_for_bit() {
        let fw = small_fw();
        let spec = SessionSpec {
            mbo: small_mbo(2),
            ..SessionSpec::default()
        };
        let mut session = Session::new(Arc::clone(&fw), &spec).unwrap();
        while !session.step().unwrap() {}
        let opts = ExploreOptions {
            error_mode: EstimationMode::True,
            hw_mode: EstimationMode::True,
            training_samples: 0,
            mbo: small_mbo(2),
            actual_eval: false,
            ..ExploreOptions::default()
        };
        // A second instance of the same recipe: caches are warm but the
        // trajectory must not depend on that.
        let result = explore(&fw, &opts).unwrap();
        assert_eq!(session.state().evaluated().len(), result.search.evaluated.len());
        for ((ca, oa), (cb, ob)) in session.state().evaluated().iter().zip(&result.search.evaluated)
        {
            assert_eq!(ca, cb, "candidate streams diverged");
            for (x, y) in oa.iter().zip(ob) {
                assert_eq!(x.to_bits(), y.to_bits(), "objectives not bit-identical");
            }
        }
        let front: Vec<_> = session.pareto().into_iter().map(|p| p.config).collect();
        let expected: Vec<_> = result.pareto.into_iter().map(|p| p.config).collect();
        assert_eq!(front, expected);
    }

    #[test]
    fn checkpoint_resume_is_bit_exact() {
        let fw = small_fw();
        let spec = SessionSpec {
            mbo: small_mbo(7),
            ..SessionSpec::default()
        };
        let mut straight = Session::new(Arc::clone(&fw), &spec).unwrap();
        while !straight.step().unwrap() {}

        let mut first = Session::new(Arc::clone(&fw), &spec).unwrap();
        first.step().unwrap();
        first.step().unwrap();
        let saved = first.checkpoint();
        drop(first);
        let mut resumed = Session::resume(Arc::clone(&fw), &saved, &spec).unwrap();
        while !resumed.step().unwrap() {}

        assert_eq!(straight.state().evaluated().len(), resumed.state().evaluated().len());
        for ((ca, oa), (cb, ob)) in
            straight.state().evaluated().iter().zip(resumed.state().evaluated())
        {
            assert_eq!(ca, cb);
            for (x, y) in oa.iter().zip(ob) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(straight.checkpoint(), resumed.checkpoint());
        assert_eq!(
            straight.progress().hypervolume.to_bits(),
            resumed.progress().hypervolume.to_bits()
        );
    }

    #[test]
    fn budget_clamps_planned_evaluations() {
        let fw = small_fw();
        let spec = SessionSpec {
            mbo: small_mbo(3),
            max_evaluations: Some(9),
            ..SessionSpec::default()
        };
        let session = Session::new(Arc::clone(&fw), &spec).unwrap();
        assert!(session.truncated());
        // 6 initial + one whole batch of 3 fits; the second batch does not.
        assert_eq!(session.progress().evaluations_planned, 9);
        let generous = SessionSpec {
            mbo: small_mbo(3),
            max_evaluations: Some(100),
            ..SessionSpec::default()
        };
        let s2 = Session::new(fw, &generous).unwrap();
        assert!(!s2.truncated());
        assert_eq!(s2.progress().evaluations_planned, 12);
    }

    #[test]
    fn feasible_front_respects_quality_constraint() {
        let fw = small_fw();
        let spec = SessionSpec {
            mbo: small_mbo(5),
            max_error_percent: Some(10.0),
            ..SessionSpec::default()
        };
        let mut session = Session::new(fw, &spec).unwrap();
        while !session.step().unwrap() {}
        let full = session.pareto();
        let feasible = session.pareto_feasible();
        assert!(feasible.len() <= full.len());
        for p in &feasible {
            assert!(p.searched[0] <= 10.0);
            assert!(full.iter().any(|q| q.config == p.config));
        }
        let progress = session.progress();
        assert!(progress.complete);
        assert_eq!(progress.evaluations_done, 12);
        assert!(progress.hypervolume > 0.0);
    }
}
