//! Criterion benchmarks for the operator layer: behavioural multiplier
//! throughput, exhaustive characterization, and PR model fitting.

use clapped_axops::{AxMul, Catalog, Mul8s, MulArch};
use clapped_errmodel::{ErrorStats, PrModel};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_behavioural_mul(c: &mut Criterion) {
    let catalog = Catalog::standard();
    let exact = catalog.get("mul8s_exact").expect("present");
    let log = catalog.get("mul8s_log").expect("present");
    let mut group = c.benchmark_group("mul8s_throughput");
    for (name, m) in [("exact", &exact), ("mitchell", &log)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0i32;
                for a in -64i8..64 {
                    for x in -64i8..64 {
                        acc = acc.wrapping_add(i32::from(m.mul(black_box(a), black_box(x))));
                    }
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_operator_instantiation(c: &mut Criterion) {
    c.bench_function("axmul_new_truncated", |b| {
        b.iter(|| AxMul::new("bench", black_box(MulArch::Truncated { k: 3 })))
    });
    c.bench_function("axmul_new_mitchell", |b| {
        b.iter(|| AxMul::new("bench", black_box(MulArch::Mitchell)))
    });
}

fn bench_characterization(c: &mut Criterion) {
    let m = AxMul::new("bench", MulArch::Drum { k: 4 });
    c.bench_function("error_stats_exhaustive", |b| {
        b.iter(|| ErrorStats::of_multiplier(black_box(&m)))
    });
    c.bench_function("pr_fit_degree3", |b| b.iter(|| PrModel::fit(black_box(&m), 3)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_behavioural_mul, bench_operator_instantiation, bench_characterization
}
criterion_main!(benches);
