//! Criterion benchmarks for the convolution hot path (compiled plans
//! vs the naive reference, per cross-layer DoF) and for GP acquisition
//! (per-point vs batched prediction).

use clapped_axops::{Catalog, Mul8s};
use clapped_dse::Gp;
use clapped_imgproc::{ConvConfig, ConvEngine, ConvMode, Image, QuantKernel, SynthKind};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn taps(op: &Arc<clapped_axops::AxMul>, n: usize) -> Vec<Arc<dyn Mul8s>> {
    (0..n).map(|_| op.clone() as Arc<dyn Mul8s>).collect()
}

fn bench_convolution(c: &mut Criterion) {
    let catalog = Catalog::standard();
    let op = catalog.get("mul8s_bam_v8_h3").expect("catalog operator");
    let img = Image::synthetic(SynthKind::Blobs, 256, 256, 7);
    let configs = [
        ("2d_w3_s1", ConvConfig::default()),
        (
            "2d_w3_s2_down",
            ConvConfig { stride: 2, downsample: true, ..ConvConfig::default() },
        ),
        (
            "2d_w5_s1",
            ConvConfig { window: 5, ..ConvConfig::default() },
        ),
        (
            "sep_w3_s1",
            ConvConfig { mode: ConvMode::Separable, ..ConvConfig::default() },
        ),
    ];
    for (name, cfg) in configs {
        let engine = ConvEngine::new(QuantKernel::gaussian(cfg.window, 0.85));
        let muls = taps(&op, cfg.taps());
        c.bench_function(&format!("conv_{name}_naive"), |b| {
            b.iter(|| engine.convolve_naive(black_box(&img), &cfg, &muls).expect("valid"))
        });
        c.bench_function(&format!("conv_{name}_compiled"), |b| {
            b.iter(|| engine.convolve(black_box(&img), &cfg, &muls).expect("valid"))
        });
    }
}

fn bench_acquisition(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let xs: Vec<Vec<f64>> = (0..150)
        .map(|_| (0..10).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| x.iter().sum::<f64>()).collect();
    let gp = Gp::fit(&xs, &ys).expect("fits");
    let queries: Vec<Vec<f64>> = (0..50)
        .map(|_| (0..10).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    c.bench_function("gp_predict_50pts_per_point", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| gp.predict(black_box(q)))
                .collect::<Vec<_>>()
        })
    });
    c.bench_function("gp_predict_50pts_batched", |b| {
        b.iter(|| gp.predict_batch(black_box(&queries)).expect("valid"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_convolution, bench_acquisition
}
criterion_main!(benches);
