//! Criterion benchmarks for the parallel evaluation engine: the serial
//! baseline versus the fanned-out fault-campaign sweep (the acceptance
//! target is ≥3× on a multi-core host), plus warm-versus-cold result
//! cache lookups.

use clapped_axops::Catalog;
use clapped_exec::{digest_of, Engine, ExecConfig, ResultCache};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn bench_fault_sweep(c: &mut Criterion) {
    let catalog = Catalog::standard();
    let m = catalog.get("mul8s_1KVL").expect("present");
    let netlist = m.netlist();
    let sites = netlist.fault_sites();
    let mut rng = ChaCha8Rng::seed_from_u64(0xFA17);
    let batches: Vec<Vec<u64>> = (0..4)
        .map(|_| (0..netlist.inputs().len()).map(|_| rng.next_u64()).collect())
        .collect();

    let mut group = c.benchmark_group("fault_sweep");
    group.sample_size(10);
    let serial = Engine::serial();
    group.bench_function("serial", |b| {
        b.iter(|| {
            netlist
                .stuck_at_campaign_with(black_box(&sites), &batches, 64, &serial)
                .expect("sweeps")
        })
    });
    let parallel = Engine::new(ExecConfig::default());
    let parallel_label = format!("parallel_{}_jobs", parallel.jobs());
    group.bench_function(&parallel_label, |b| {
        b.iter(|| {
            netlist
                .stuck_at_campaign_with(black_box(&sites), &batches, 64, &parallel)
                .expect("sweeps")
        })
    });
    group.finish();
}

fn bench_result_cache(c: &mut Criterion) {
    let keys: Vec<u64> = (0..256u64).map(|i| digest_of(&i)).collect();
    let mut group = c.benchmark_group("result_cache");

    // Cold path: every lookup misses and pays the compute closure.
    group.bench_function("cold_compute", |b| {
        b.iter(|| {
            let cache: ResultCache<Vec<f64>> = ResultCache::in_memory(512);
            for &k in &keys {
                black_box(cache.get_or_compute(k, || vec![k as f64; 8]));
            }
        })
    });

    // Warm path: every lookup replays from the in-memory tier.
    let warm: ResultCache<Vec<f64>> = ResultCache::in_memory(512);
    for &k in &keys {
        warm.insert(k, vec![k as f64; 8]);
    }
    group.bench_function("warm_hit", |b| {
        b.iter(|| {
            for &k in &keys {
                black_box(warm.get_or_compute(k, || unreachable!("warm cache")));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fault_sweep, bench_result_cache);
criterion_main!(benches);
