//! Criterion benchmarks for the observability layer: the disabled
//! no-op fast path (the acceptance target — span enter/exit under
//! 5 ns/op, since instrumentation stays in hot code unconditionally)
//! against the enabled recording path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_disabled(c: &mut Criterion) {
    clapped_obs::reset();
    let mut group = c.benchmark_group("obs_disabled");
    group.bench_function("span_enter_exit", |b| {
        b.iter(|| black_box(clapped_obs::span(black_box("bench.obs.span"))))
    });
    group.bench_function("counter_add", |b| {
        b.iter(|| clapped_obs::count(black_box("bench.obs.counter"), black_box(1)))
    });
    group.bench_function("histogram_observe", |b| {
        b.iter(|| clapped_obs::observe(black_box("bench.obs.hist"), black_box(42)))
    });
    group.finish();
}

fn bench_enabled(c: &mut Criterion) {
    clapped_obs::reset();
    clapped_obs::enable();
    let mut group = c.benchmark_group("obs_enabled");
    group.bench_function("span_enter_exit", |b| {
        b.iter(|| black_box(clapped_obs::span(black_box("bench.obs.span"))))
    });
    group.bench_function("counter_add", |b| {
        b.iter(|| clapped_obs::count(black_box("bench.obs.counter"), black_box(1)))
    });
    group.bench_function("histogram_observe", |b| {
        b.iter(|| clapped_obs::observe(black_box("bench.obs.hist"), black_box(42)))
    });
    group.finish();
    clapped_obs::reset();
}

criterion_group!(benches, bench_disabled, bench_enabled);
criterion_main!(benches);
