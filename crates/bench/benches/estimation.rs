//! Criterion benchmarks contrasting CLAppED's estimation paths: true
//! behavioural execution vs PR-model substitution vs MLP inference —
//! the cost hierarchy that motivates ML-based objective functions.

use clapped_core::{Clapped, MulRepr};
use clapped_dse::Configuration;
use clapped_mlp::TrainConfig;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_estimation_paths(c: &mut Criterion) {
    let fw = Clapped::builder()
        .image_size(32)
        .seed(3)
        .build()
        .expect("framework");
    let config = Configuration {
        mul_indices: vec![5; 9],
        ..Configuration::golden(3)
    };

    c.bench_function("true_behavioural_eval_32px", |b| {
        b.iter(|| fw.evaluate_error(black_box(&config)).expect("evaluates"))
    });

    // MLP path: train once, benchmark inference.
    let (_, xs, ys) = fw
        .make_error_dataset(128, MulRepr::Coeffs(4), 9)
        .expect("dataset");
    let model = fw
        .train_error_model(
            &xs,
            &ys,
            &TrainConfig {
                epochs: 40,
                ..TrainConfig::default()
            },
        )
        .expect("training");
    let x = fw.encode(&config, MulRepr::Coeffs(4));
    c.bench_function("mlp_error_prediction", |b| {
        b.iter(|| model.predict(black_box(&x)))
    });

    c.bench_function("encode_c4_features", |b| {
        b.iter(|| fw.encode(black_box(&config), MulRepr::Coeffs(4)))
    });

    c.bench_function("true_hw_characterization", |b| {
        b.iter(|| fw.characterize_hw(black_box(&config)).expect("synthesis"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_estimation_paths
}
criterion_main!(benches);
