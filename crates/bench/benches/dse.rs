//! Criterion benchmarks for the DSE machinery: hypervolume computation,
//! GP surrogate fitting/prediction, and one MBO iteration on a synthetic
//! objective.

use clapped_dse::{exclusive_contributions, hypervolume, mbo, Gp, MboConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect()
}

fn bench_hypervolume(c: &mut Criterion) {
    let pts2 = random_points(100, 2, 1);
    let pts3 = random_points(60, 3, 2);
    c.bench_function("hypervolume_2d_100pts", |b| {
        b.iter(|| hypervolume(black_box(&pts2), &[1.5, 1.5]))
    });
    c.bench_function("hypervolume_3d_60pts", |b| {
        b.iter(|| hypervolume(black_box(&pts3), &[1.5, 1.5, 1.5]))
    });
    c.bench_function("exclusive_contributions_2d_100pts", |b| {
        b.iter(|| exclusive_contributions(black_box(&pts2), &[1.5, 1.5]))
    });
}

fn bench_gp(c: &mut Criterion) {
    let xs = random_points(150, 10, 3);
    let ys: Vec<f64> = xs.iter().map(|x| x.iter().sum::<f64>()).collect();
    c.bench_function("gp_fit_150x10", |b| {
        b.iter(|| Gp::fit(black_box(&xs), black_box(&ys)).expect("fits"))
    });
    let gp = Gp::fit(&xs, &ys).expect("fits");
    let q = vec![0.5; 10];
    c.bench_function("gp_predict", |b| b.iter(|| gp.predict(black_box(&q))));
}

fn bench_mbo_iteration(c: &mut Criterion) {
    let config = MboConfig {
        initial_samples: 30,
        iterations: 3,
        batch: 10,
        candidates: 50,
        reference: vec![1.5, 1.5],
        kappa: 1.0,
        explore_fraction: 0.1,
        seed: 4,
    };
    c.bench_function("mbo_toy_3iters", |b| {
        b.iter(|| {
            mbo(
                &config,
                |rng| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)],
                |x| x.clone(),
                |x| vec![x[0], (1.0 - x[0]) * (1.0 - x[0]) + 0.1 * x[1]],
            )
            .expect("runs")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_hypervolume, bench_gp, bench_mbo_iteration
}
criterion_main!(benches);
