//! Criterion benchmarks for the synthesis substrate — the project's
//! analogue of the paper's "15 minutes per Vivado run" observation: a
//! full true characterization of a 3×3 accelerator datapath versus the
//! fast compositional and ML paths it motivates.

use clapped_accel::{build_datapath, characterize, simulate_stream, AcceleratorSpec, CharacterizeConfig};
use clapped_axops::Catalog;
use clapped_imgproc::{Image, QuantKernel, SynthKind};
use clapped_netlist::bdd::check_equivalence;
use clapped_netlist::{map_luts, optimize, synthesize, MapStrategy, SynthConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_netlist_flow(c: &mut Criterion) {
    let catalog = Catalog::standard();
    let m = catalog.get("mul8s_exact").expect("present");
    let netlist = m.netlist().clone();
    c.bench_function("optimize_mul8", |b| b.iter(|| optimize(black_box(&netlist))));
    let opt = optimize(&netlist);
    c.bench_function("map_luts_mul8_depth", |b| {
        b.iter(|| map_luts(black_box(&opt), 6, MapStrategy::Depth).expect("mappable"))
    });
    c.bench_function("map_luts_mul8_area", |b| {
        b.iter(|| map_luts(black_box(&opt), 6, MapStrategy::Area).expect("mappable"))
    });
    c.bench_function("synthesize_mul8_full", |b| {
        b.iter(|| synthesize(black_box(&netlist), &SynthConfig::default()).expect("flow"))
    });
}

fn bench_accelerator_characterization(c: &mut Criterion) {
    let catalog = Catalog::standard();
    let m = catalog.get("mul8s_tr4").expect("present");
    let spec = AcceleratorSpec::uniform_2d(64, 3, &m);
    let cfg = CharacterizeConfig::default();
    c.bench_function("build_datapath_3x3", |b| {
        b.iter(|| build_datapath(black_box(&spec), 8).expect("valid spec"))
    });
    c.bench_function("characterize_3x3_true", |b| {
        b.iter(|| characterize(black_box(&spec), &cfg).expect("flow"))
    });
}

fn bench_verification(c: &mut Criterion) {
    // Formal equivalence on an 8-bit adder (BDD-tractable).
    let mut n = clapped_netlist::Netlist::new("add8");
    let a = n.input_bus("a", 8);
    let b = n.input_bus("b", 8);
    let (s, cout) = clapped_netlist::bus::ripple_carry_add(&mut n, &a, &b, None);
    n.output_bus("s", &s);
    n.output("c", cout);
    let opt = optimize(&n);
    c.bench_function("bdd_equivalence_add8", |bch| {
        bch.iter(|| check_equivalence(black_box(&n), black_box(&opt), 500_000).expect("fits"))
    });

    // Bit-true accelerator stream simulation of a 32x32 image.
    let catalog = Catalog::standard();
    let m = catalog.get("mul8s_tr4").expect("present");
    let spec = AcceleratorSpec::uniform_2d(32, 3, &m);
    let kernel = QuantKernel::gaussian(3, 0.85);
    let img = Image::synthetic(SynthKind::SmoothField, 32, 32, 1);
    c.bench_function("stream_sim_32px", |bch| {
        bch.iter(|| {
            simulate_stream(
                black_box(&spec),
                black_box(&img),
                kernel.coeffs_2d(),
                kernel.shift(),
            )
            .expect("simulates")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_netlist_flow, bench_accelerator_characterization, bench_verification
}
criterion_main!(benches);
