//! Generative-catalog snapshot: the autoAx-scale operator library and
//! its learned pre-filter, measured end to end.
//!
//! 1. **Cold catalog build** — enumerate the generative space, derive +
//!    lint every netlist, simulate every behavioural table, synthesize
//!    features, dedup by behaviour digest, publish to a disk cache.
//! 2. **Warm catalog build** — a fresh cache instance over the same
//!    directory (a second process, in effect) must replay every record
//!    without simulating a single table.
//! 3. **autoAx pre-filter** — label a training subset, fit quality/cost
//!    surrogates, prune to an ε-Pareto band of survivors.
//! 4. **DSE at equal budget** — MBO with identical settings over the
//!    hand-picked 24-multiplier baseline catalog and over the
//!    pre-filtered survivors; compare true-objective hypervolume.
//!
//! Emits machine-readable numbers (including the pruning-plot data:
//! predicted quality/cost per entry + survivor flags) to
//! `results/bench_catalog.json`. Full runs enforce the acceptance
//! floors (≥1000 distinct operators, ≥10× warm rebuild, pre-filtered
//! hypervolume ≥ baseline); `--quick` shrinks the space for CI smoke
//! runs and skips the floors. `--trace[=PATH]` captures an obs JSONL
//! trace.

use clapped_axops::{gen_cache_with_disk, Catalog, GenSpace, GenerativeCatalog};
use clapped_bench::{print_table, save_json};
use clapped_core::{
    explore, prefilter, Clapped, EstimationMode, ExploreOptions, ExploreResult, PrefilterConfig,
};
use clapped_dse::{hypervolume, MboConfig};
use clapped_mlp::TrainConfig;
use serde_json::json;
use std::time::Instant;

/// Common hypervolume reference covering both fronts (error %, LUTs).
const HV_REFERENCE: [f64; 2] = [50.0, 8000.0];

fn front_json(result: &ExploreResult) -> Vec<serde_json::Value> {
    result
        .pareto
        .iter()
        .map(|p| {
            let [e, l] = p.actual.unwrap_or(p.searched);
            json!({ "error_percent": e, "luts": l })
        })
        .collect()
}

fn front_hypervolume(result: &ExploreResult) -> f64 {
    let points: Vec<[f64; 2]> = result
        .pareto
        .iter()
        .map(|p| p.actual.unwrap_or(p.searched))
        .collect();
    hypervolume(&points, &HV_REFERENCE)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "quick");
    clapped_obs::init_trace_from_args();

    // --- 1 + 2. Cold vs warm catalog build ----------------------------
    let space = if quick { GenSpace::quick() } else { GenSpace::standard() };
    let cache_dir = std::path::Path::new("results").join("bench_catalog_cache");
    if cache_dir.exists() {
        std::fs::remove_dir_all(&cache_dir).expect("reset catalog cache dir");
    }
    let engine = clapped_core::Engine::new(clapped_core::ExecConfig::default());

    let cold_cache = gen_cache_with_disk(space.len() + 1, &cache_dir);
    let t0 = Instant::now();
    let gen = GenerativeCatalog::build(&space, &engine, &cold_cache);
    let t_cold = t0.elapsed().as_secs_f64();
    let cold_stats = *gen.stats();
    assert!(cold_stats.tables_built > 0, "cold build must simulate tables");
    assert_eq!(cold_stats.lint_rejects, 0, "generated netlists must lint clean");
    assert_eq!(cold_stats.synth_rejects, 0, "generated netlists must synthesize");

    // A fresh cache instance over the same directory: the disk tier is
    // the only carrier, as if a second process rebuilt the catalog.
    let warm_cache = gen_cache_with_disk(space.len() + 1, &cache_dir);
    let t1 = Instant::now();
    let warm = GenerativeCatalog::build(&space, &engine, &warm_cache);
    let t_warm = t1.elapsed().as_secs_f64();
    assert_eq!(warm.stats().tables_built, 0, "warm build must replay the disk cache");
    assert_eq!(warm.len(), gen.len(), "warm build must reproduce the catalog");
    for (a, b) in gen.iter().zip(warm.iter()) {
        assert_eq!(a.behaviour_digest, b.behaviour_digest, "warm entry diverged: {}", a.name);
    }
    let warm_speedup = t_cold / t_warm;
    print_table(
        &format!(
            "Generative catalog build ({} raw specs -> {} distinct, {} duplicates)",
            cold_stats.raw_specs, cold_stats.distinct, cold_stats.duplicates
        ),
        &["path", "time s", "tables simulated", "speedup"],
        &[
            vec![
                "cold (empty cache)".to_string(),
                format!("{t_cold:.2}"),
                cold_stats.tables_built.to_string(),
                "1.0x".to_string(),
            ],
            vec![
                "warm (disk replay)".to_string(),
                format!("{t_warm:.3}"),
                "0".to_string(),
                format!("{warm_speedup:.0}x"),
            ],
        ],
    );

    // --- 3. autoAx pre-filter -----------------------------------------
    let pf_cfg = if quick {
        PrefilterConfig {
            train_count: 8,
            keep_max: 12,
            train: TrainConfig {
                epochs: 40,
                ..TrainConfig::default()
            },
            ..PrefilterConfig::default()
        }
    } else {
        PrefilterConfig::default()
    };
    let t2 = Instant::now();
    let pf = prefilter(&gen, &pf_cfg).expect("pre-filter runs");
    let t_prefilter = t2.elapsed().as_secs_f64();
    print_table(
        &format!("autoAx pre-filter ({:.2} s)", t_prefilter),
        &["stage", "operators"],
        &[
            vec!["generative catalog".to_string(), gen.len().to_string()],
            vec!["labelled for training".to_string(), pf.train_indices.len().to_string()],
            vec!["pruned (ε-Pareto)".to_string(), pf.pruned.to_string()],
            vec!["survivors".to_string(), pf.catalog.len().to_string()],
        ],
    );

    // --- 4. DSE at equal evaluation budget ----------------------------
    let mbo = if quick {
        MboConfig {
            initial_samples: 6,
            iterations: 2,
            batch: 3,
            candidates: 10,
            reference: HV_REFERENCE.to_vec(),
            ..MboConfig::default()
        }
    } else {
        MboConfig {
            reference: HV_REFERENCE.to_vec(),
            ..MboConfig::default()
        }
    };
    let opts = ExploreOptions {
        error_mode: EstimationMode::True,
        hw_mode: EstimationMode::True,
        mbo,
        actual_eval: true,
        ..ExploreOptions::default()
    };
    let image_size = if quick { 32 } else { 48 };
    let budget = opts.mbo.initial_samples + opts.mbo.iterations * opts.mbo.batch;

    let fw_base = Clapped::builder()
        .catalog(Catalog::standard())
        .image_size(image_size)
        .seed(7)
        .build()
        .expect("baseline framework");
    let t3 = Instant::now();
    let res_base = explore(&fw_base, &opts).expect("baseline DSE");
    let t_dse_base = t3.elapsed().as_secs_f64();
    let hv_base = front_hypervolume(&res_base);

    let fw_pref = Clapped::builder()
        .catalog(pf.catalog.clone())
        .image_size(image_size)
        .seed(7)
        .build()
        .expect("pre-filtered framework");
    let t4 = Instant::now();
    let res_pref = explore(&fw_pref, &opts).expect("pre-filtered DSE");
    let t_dse_pref = t4.elapsed().as_secs_f64();
    let hv_pref = front_hypervolume(&res_pref);

    print_table(
        &format!("DSE at equal budget ({budget} true evaluations, image {image_size})"),
        &["catalog", "operators", "pareto points", "hypervolume", "time s"],
        &[
            vec![
                "hand-picked baseline".to_string(),
                fw_base.catalog().len().to_string(),
                res_base.pareto.len().to_string(),
                format!("{hv_base:.0}"),
                format!("{t_dse_base:.1}"),
            ],
            vec![
                "generative + pre-filter".to_string(),
                fw_pref.catalog().len().to_string(),
                res_pref.pareto.len().to_string(),
                format!("{hv_pref:.0}"),
                format!("{t_dse_pref:.1}"),
            ],
        ],
    );

    // Pruning-plot data: every entry's predicted objectives plus
    // survivor membership (the autoAx scatter plot, machine-readable).
    let survivor_set: std::collections::BTreeSet<usize> = pf.survivors.iter().copied().collect();
    let pruning_plot: Vec<serde_json::Value> = (0..gen.len())
        .map(|i| {
            json!({
                "name": gen.entries()[i].name,
                "predicted_error_percent": pf.predicted_quality[i],
                "predicted_luts": pf.predicted_cost[i],
                "mae": gen.entries()[i].features.mae,
                "pdp_pj": gen.entries()[i].features.pdp_pj,
                "survivor": survivor_set.contains(&i),
            })
        })
        .collect();

    save_json(
        "bench_catalog",
        &json!({
            "quick": quick,
            "build": {
                "raw_specs": cold_stats.raw_specs,
                "distinct": cold_stats.distinct,
                "duplicates": cold_stats.duplicates,
                "lint_rejects": cold_stats.lint_rejects,
                "synth_rejects": cold_stats.synth_rejects,
                "cold_s": t_cold,
                "warm_s": t_warm,
                "warm_tables_built": 0,
                "warm_speedup": warm_speedup,
            },
            "prefilter": {
                "train_count": pf.train_indices.len(),
                "pruned": pf.pruned,
                "survivors": pf.catalog.len(),
                "time_s": t_prefilter,
            },
            "dse": {
                "budget_true_evals": budget,
                "image_size": image_size,
                "reference": HV_REFERENCE,
                "baseline": {
                    "operators": fw_base.catalog().len(),
                    "pareto_points": res_base.pareto.len(),
                    "hypervolume": hv_base,
                    "time_s": t_dse_base,
                    "front": front_json(&res_base),
                },
                "prefiltered": {
                    "operators": fw_pref.catalog().len(),
                    "pareto_points": res_pref.pareto.len(),
                    "hypervolume": hv_pref,
                    "time_s": t_dse_pref,
                    "front": front_json(&res_pref),
                },
            },
            "pruning_plot": pruning_plot,
        }),
    );

    if !quick {
        assert!(
            cold_stats.distinct >= 1000,
            "distinct-operator floor missed: {} < 1000",
            cold_stats.distinct
        );
        assert!(
            warm_speedup >= 10.0,
            "warm rebuild floor missed: {warm_speedup:.1}x < 10x"
        );
        assert!(
            hv_pref >= hv_base,
            "pre-filtered DSE hypervolume regressed: {hv_pref:.1} < {hv_base:.1}"
        );
    }
    if let Some(report) = clapped_obs::finish() {
        println!("{report}");
    }
}
