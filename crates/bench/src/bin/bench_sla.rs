//! Runtime SLA benchmark: the adaptive degradation-ladder supervisor
//! against every static operator configuration, under bursty traffic
//! with a mid-stream hardware fault.
//!
//! Demonstrates the three claims of the runtime layer:
//!
//! 1. the watchdog detects an injected fault within a bounded number of
//!    frames and the stream recovers with zero post-recovery SLA
//!    violations;
//! 2. the adaptive ladder saves measurable energy/PDP against the
//!    cheapest *static* configuration that meets the SLA;
//! 3. the whole run is deterministic: the same seed produces the
//!    identical trajectory, reconfiguration log and output digest.
//!
//! Emits machine-readable numbers to `results/bench_sla.json`.
//!
//! Usage: `bench_sla [--quick]` — `--quick` shrinks frames and images
//! for CI smoke runs.

use clapped_axops::{AxMul, Catalog};
use clapped_bench::{print_table, save_json};
use clapped_imgproc::{app_error_percent, ConvEngine, Image, QuantKernel};
use clapped_netlist::{FaultKind, FaultSet};
use clapped_runtime::{
    DegradationLadder, FaultPlan, LadderConfig, SlaSpec, StreamEvent, StreamOptions,
    StreamSupervisor, TrafficPhase,
};
use serde_json::json;
use std::sync::Arc;

const SEED: u64 = 0x51A_57A7E;

/// Violation count and modeled energy/PDP of a never-reconfiguring
/// stream pinned to one ladder rung.
struct StaticRun {
    name: String,
    violations: usize,
    energy_uj: f64,
    pdp_pj: f64,
}

/// Replays the supervisor's exact traffic sequence on a fixed rung and
/// audits every frame against the exact pipeline.
fn run_static(
    ladder: &DegradationLadder,
    rung: usize,
    sla: &SlaSpec,
    frames: usize,
    goldens: &[Image],
    inputs: &[Image],
) -> StaticRun {
    let engine = ConvEngine::new(QuantKernel::gaussian(
        ladder.conv_config().window,
        ladder.kernel_sigma(),
    ));
    let taps = ladder.taps(rung);
    let r = &ladder.rungs()[rung];
    let mut violations = 0;
    for frame in 0..frames {
        let out = engine
            .convolve(&inputs[frame], ladder.conv_config(), &taps)
            .expect("valid static stream");
        if app_error_percent(&out, &goldens[frame]) > sla.max_error_percent {
            violations += 1;
        }
    }
    StaticRun {
        name: r.name.clone(),
        violations,
        energy_uj: r.energy_per_image_uj * frames as f64,
        pdp_pj: r.pdp_pj * frames as f64,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "quick");
    let (frames, image_size) = if quick { (60, 16) } else { (160, 32) };

    let catalog = Catalog::standard();
    let ops: Vec<Arc<AxMul>> = catalog.iter().cloned().collect();
    let ladder_config = LadderConfig {
        image_size,
        calibration_frames: 3,
        seed: SEED,
        ..LadderConfig::default()
    };

    // Probe pass with an open error budget to learn the calibrated
    // error range, then pin the operating SLA inside the cheapest
    // rung's calm↔burst spread: calm frames clear it with margin while
    // bursts push that rung over, so a static deployment of it is
    // non-compliant and only runtime adaptation can harvest its energy.
    let probe = DegradationLadder::build(
        &ops,
        &SlaSpec { max_error_percent: 75.0, max_frame_time_us: 1e9 },
        &ladder_config,
    )
    .expect("probe ladder builds");
    let cheapest = probe.rungs().last().expect("nonempty ladder");
    let sla = SlaSpec {
        max_error_percent: (cheapest.calm_error_percent
            + 0.7 * (cheapest.burst_error_percent - cheapest.calm_error_percent))
            .max(0.5),
        max_frame_time_us: 1e9,
    };
    let ladder = DegradationLadder::build(&ops, &sla, &ladder_config).expect("ladder builds");
    println!(
        "ladder: {} rungs, SLA ceiling {:.2}% error, {} frames of bursty traffic\n",
        ladder.len(),
        sla.max_error_percent,
        frames
    );

    // Start on the cheapest rung; a dry (fault-free) run tells us which
    // rung the controller occupies at the injection frame, so the fault
    // set can target that operator's actual product MSB.
    // Bursty traffic legitimately cycles the ladder every few frames,
    // so keep the anti-thrash backoff short: a long cooldown would pin
    // the stream on an expensive rung across whole calm stretches.
    let base_options = StreamOptions {
        seed: SEED,
        initial_rung: ladder.len() - 1,
        headroom_fraction: 0.1,
        hold_frames: 3,
        base_backoff_frames: 2,
        max_backoff_frames: 12,
        audit: true,
        hw_crosscheck_every: if quick { 0 } else { 40 },
        ..StreamOptions::default()
    };
    // Inject late: once detected, the occupied rung is quarantined for
    // the rest of the stream, so an early fault would deny the ladder
    // its cheapest rung for most of the run.
    let fault_frame = 2 * frames / 3;
    let mut dry = StreamSupervisor::new(ladder.clone(), sla, base_options.clone())
        .expect("supervisor builds");
    dry.run(fault_frame).expect("dry run");
    let fault_rung = dry.rung();
    let msb = ladder.rungs()[fault_rung]
        .op
        .netlist()
        .outputs()
        .last()
        .expect("product MSB")
        .1;
    let tap = ladder.conv_config().taps() / 2;
    let options = StreamOptions {
        fault: Some(FaultPlan {
            frame: fault_frame,
            tap,
            faults: FaultSet::empty().stuck_at(msb, FaultKind::StuckAt1),
        }),
        ..base_options
    };

    // The adaptive run — and a second identical run proving determinism.
    let mut sup = StreamSupervisor::new(ladder.clone(), sla, options.clone())
        .expect("supervisor builds");
    let report = sup.run(frames).expect("adaptive stream");
    let mut again = StreamSupervisor::new(ladder.clone(), sla, options.clone())
        .expect("supervisor builds");
    let replay = again.run(frames).expect("adaptive stream replay");
    assert_eq!(report.output_digest, replay.output_digest, "same seed, same pixels");
    assert_eq!(report.events, replay.events, "same seed, same reconfiguration log");

    let detection_latency = report
        .detection_latency_frames
        .expect("the watchdog must catch the injected fault");
    let detect_frame = report
        .events
        .iter()
        .find_map(|e| match e {
            StreamEvent::FaultDetected { frame, .. } => Some(*frame),
            _ => None,
        })
        .expect("detection event");
    assert!(detection_latency <= 5, "detection latency {detection_latency} frames is unbounded");
    let post_recovery_violations = report
        .records
        .iter()
        .filter(|r| r.frame >= detect_frame && r.frame < detect_frame + 3)
        .filter(|r| r.true_error_percent.is_some_and(|e| e > sla.max_error_percent))
        .count();
    assert_eq!(
        post_recovery_violations, 0,
        "the recovery window must be violation-free (recovery frames re-run on a healthy rung)"
    );

    // Static baselines over the identical traffic sequence.
    let mut phase = TrafficPhase::Calm;
    let mut inputs = Vec::with_capacity(frames);
    for frame in 0..frames {
        phase = options.traffic.next_phase(SEED, frame, phase);
        inputs.push(options.traffic.frame(SEED, frame, phase, ladder.image_size()));
    }
    let engine = ConvEngine::new(QuantKernel::gaussian(
        ladder.conv_config().window,
        ladder.kernel_sigma(),
    ));
    let exact_taps = ladder.taps(0);
    let goldens: Vec<Image> = inputs
        .iter()
        .map(|img| engine.convolve(img, ladder.conv_config(), &exact_taps).expect("golden"))
        .collect();
    let statics: Vec<StaticRun> = (0..ladder.len())
        .map(|rung| run_static(&ladder, rung, &sla, frames, &goldens, &inputs))
        .collect();

    // The comparison target: the cheapest static configuration with
    // zero audited violations (the exact rung always qualifies).
    let compliant = statics
        .iter()
        .filter(|s| s.violations == 0)
        .min_by(|a, b| a.energy_uj.total_cmp(&b.energy_uj))
        .expect("the exact rung is always compliant");
    let energy_saved = 100.0 * (compliant.energy_uj - report.energy_uj) / compliant.energy_uj;
    let pdp_saved = 100.0 * (compliant.pdp_pj - report.pdp_pj) / compliant.pdp_pj;
    let true_violation_rate = 100.0 * report.true_violations as f64 / frames as f64;

    let mut rows: Vec<Vec<String>> = statics
        .iter()
        .map(|s| {
            vec![
                format!("static {}", s.name),
                format!("{:.1}", 100.0 * s.violations as f64 / frames as f64),
                "0".to_string(),
                "-".to_string(),
                format!("{:.2}", s.energy_uj),
                format!("{:.1}", s.pdp_pj),
            ]
        })
        .collect();
    rows.push(vec![
        "adaptive ladder".to_string(),
        format!("{true_violation_rate:.1}"),
        report.swaps.to_string(),
        format!("{detection_latency}"),
        format!("{:.2}", report.energy_uj),
        format!("{:.1}", report.pdp_pj),
    ]);
    print_table(
        &format!(
            "SLA keeping under bursty traffic + mid-stream fault ({frames} frames, ceiling {:.2}%)",
            sla.max_error_percent
        ),
        &["config", "violation %", "swaps", "detect (frames)", "energy uJ", "PDP pJ"],
        &rows,
    );
    println!(
        "\nadaptive vs cheapest compliant static ({}): {:+.1}% energy, {:+.1}% PDP",
        compliant.name, -energy_saved, -pdp_saved
    );
    assert!(
        energy_saved > 0.0,
        "the adaptive ladder must save energy over the cheapest compliant static config"
    );

    save_json(
        "bench_sla",
        &json!({
            "quick": quick,
            "frames": frames,
            "image_size": image_size,
            "sla_max_error_percent": sla.max_error_percent,
            "ladder_rungs": ladder.rungs().iter().map(|r| r.name.clone()).collect::<Vec<_>>(),
            "adaptive": {
                "true_violation_rate_percent": true_violation_rate,
                "estimated_violations": report.violations,
                "reconfigurations": report.swaps,
                "detection_latency_frames": detection_latency,
                "post_recovery_violations": post_recovery_violations,
                "energy_uj": report.energy_uj,
                "pdp_pj": report.pdp_pj,
                "output_digest": format!("{:016x}", report.output_digest),
            },
            "static": statics.iter().map(|s| json!({
                "name": s.name,
                "violations": s.violations,
                "energy_uj": s.energy_uj,
                "pdp_pj": s.pdp_pj,
            })).collect::<Vec<_>>(),
            "baseline": compliant.name,
            "energy_saved_percent": energy_saved,
            "pdp_saved_percent": pdp_saved,
        }),
    );
}
