//! Fig. 10(a): impact of the PR-coefficient count on the behavioural
//! MLP's test MAE and its inference time (1000 iterations over the test
//! set, as in the paper).

use clapped_bench::{print_table, save_json};
use clapped_core::{Clapped, MulRepr};
use clapped_mlp::{mae, TrainConfig};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::json;
use std::time::Instant;

fn main() {
    let n_configs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1200);
    let fw = Clapped::builder()
        .image_size(32)
        .noise_sigma(12.0)
        .seed(8)
        .build()
        .expect("framework construction");
    println!("evaluating {n_configs} random configurations ...");
    let (configs, _, ys) = fw
        .make_error_dataset(n_configs, MulRepr::M1, 300)
        .expect("behavioural evaluation");
    let mut order: Vec<usize> = (0..configs.len()).collect();
    order.shuffle(&mut ChaCha8Rng::seed_from_u64(4));
    let n_train = (configs.len() * 8) / 10;
    let (train_idx, test_idx) = order.split_at(n_train);
    let train_cfg = TrainConfig {
        epochs: 120,
        patience: 20,
        seed: 3,
        ..TrainConfig::default()
    };

    let mut reprs = vec![MulRepr::M1];
    reprs.extend((2..=10).map(MulRepr::Coeffs));
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for repr in reprs {
        let xs: Vec<Vec<f64>> = configs.iter().map(|c| fw.encode(c, repr)).collect();
        let xtr: Vec<Vec<f64>> = train_idx.iter().map(|&i| xs[i].clone()).collect();
        let ytr: Vec<f64> = train_idx.iter().map(|&i| ys[i]).collect();
        let xte: Vec<Vec<f64>> = test_idx.iter().map(|&i| xs[i].clone()).collect();
        let yte: Vec<f64> = test_idx.iter().map(|&i| ys[i]).collect();
        let model = fw
            .train_error_model(&xtr, &ytr, &train_cfg)
            .expect("training succeeds");
        let test_mae = mae(&yte, &model.predict_batch(&xte));
        // 1000 inference iterations over the full test set.
        let start = Instant::now();
        let mut checksum = 0.0f64;
        for _ in 0..1000 {
            for x in &xte {
                checksum += model.predict(x);
            }
        }
        let secs = start.elapsed().as_secs_f64();
        std::hint::black_box(checksum);
        rows.push(vec![
            repr.label(),
            format!("{test_mae:.3}"),
            format!("{secs:.3}"),
        ]);
        json_rows.push(json!({
            "repr": repr.label(),
            "test_mae": test_mae,
            "inference_time_s_1000_iters": secs,
        }));
        println!("{:>4}: test MAE {test_mae:.3}, 1000-iter inference {secs:.3}s", repr.label());
    }
    print_table(
        "Fig 10(a): MAE vs inference time by coefficient count",
        &["repr", "test MAE", "time (s, 1000 iters)"],
        &rows,
    );
    println!("\nExpected shape (paper): MAE falls as coefficients are added while");
    println!("inference time rises; a small coefficient count (around C4) gives");
    println!("the best accuracy/latency balance.");
    save_json("fig10a", &json!({ "rows": json_rows }));
}
