//! Section IV extension: the paper notes that any randomized optimizer
//! (genetic algorithms, simulated annealing) could drive the DSE but
//! argues for MBO. This harness runs all four methods with comparable
//! true-evaluation budgets on the error × LUT problem and compares the
//! hypervolume each reaches.

use clapped_bench::{print_table, save_json};
use clapped_core::{Clapped, MulRepr};
use clapped_dse::{
    mbo, nsga2, random_search, simulated_annealing, MboConfig, NsgaConfig, SaConfig,
};
use clapped_mlp::TrainConfig;
use serde_json::json;

fn main() {
    let fw = Clapped::builder()
        .image_size(32)
        .noise_sigma(12.0)
        .seed(5)
        .build()
        .expect("framework construction");
    let repr = MulRepr::Coeffs(4);
    // Shared ML estimators (as in fig12a) so all methods pay the same
    // per-evaluation cost.
    let (configs, xs, ys) = fw
        .make_error_dataset(150, repr, 404)
        .expect("behavioural evaluation");
    let train_cfg = TrainConfig {
        epochs: 150,
        patience: 25,
        ..TrainConfig::default()
    };
    let err_model = fw.train_error_model(&xs, &ys, &train_cfg).expect("trains");
    let lut_ys: Vec<f64> = configs
        .iter()
        .map(|c| fw.characterize_hw(c).expect("synthesis").luts as f64)
        .collect();
    let hw_xs: Vec<Vec<f64>> = configs
        .iter()
        .map(|c| fw.encode_hw(c).expect("library characterized"))
        .collect();
    let lut_model =
        clapped_mlp::Regressor::fit(&hw_xs, &lut_ys, &[32, 16], &train_cfg).expect("trains");

    let objective = |c: &clapped_dse::Configuration| -> Vec<f64> {
        vec![
            err_model.predict(&fw.encode(c, repr)).max(0.0),
            lut_model
                .predict(&fw.encode_hw(c).expect("library characterized"))
                .max(0.0),
        ]
    };
    let reference = vec![30.0, 4000.0];
    let budget = 300usize;

    // MBO: 100 + 20×10 = 300 evaluations.
    let mbo_cfg = MboConfig {
        initial_samples: 100,
        iterations: 20,
        batch: 10,
        candidates: 50,
        reference: reference.clone(),
        kappa: 1.0,
        explore_fraction: 0.1,
        seed: 31,
    };
    let space = fw.space().clone();
    let surrogate_features = |c: &clapped_dse::Configuration| -> Vec<f64> {
        let mut v = fw.encode(c, repr);
        v.extend(fw.encode_hw(c).expect("library characterized"));
        v
    };
    println!("running MBO ...");
    let r_mbo = mbo(&mbo_cfg, |rng| space.sample(rng), surrogate_features, objective)
        .expect("mbo");

    println!("running random search ...");
    let space2 = fw.space().clone();
    let r_rnd = random_search(&mbo_cfg, |rng| space2.sample(rng), objective).expect("random");

    // NSGA-II: 20 population × (1 + 14 generations) = 300 evaluations.
    println!("running NSGA-II ...");
    let nsga_cfg = NsgaConfig {
        population: 20,
        generations: 14,
        mutation_rate: 0.6,
        reference: reference.clone(),
        seed: 31,
    };
    let s3 = fw.space().clone();
    let s3b = fw.space().clone();
    let s3c = fw.space().clone();
    let r_nsga = nsga2(
        &nsga_cfg,
        move |rng| s3.sample(rng),
        move |a, b, rng| s3b.crossover(a, b, rng),
        move |c, rng| s3c.mutate(c, rng),
        objective,
    )
    .expect("nsga2");

    // SA: 299 steps + initial = 300 evaluations.
    println!("running simulated annealing ...");
    let sa_cfg = SaConfig {
        steps: budget - 1,
        t0: 2.0,
        cooling: 0.985,
        weights: vec![1.0 / 30.0, 1.0 / 4000.0],
        reference: reference.clone(),
        seed: 31,
    };
    let s4 = fw.space().clone();
    let s4b = fw.space().clone();
    let r_sa = simulated_annealing(
        &sa_cfg,
        move |rng| s4.sample(rng),
        move |c, rng| s4b.mutate(c, rng),
        objective,
    )
    .expect("sa");

    let rows: Vec<Vec<String>> = [
        ("MBO", &r_mbo),
        ("Random", &r_rnd),
        ("NSGA-II", &r_nsga),
        ("SA", &r_sa),
    ]
    .iter()
    .map(|(name, r)| {
        vec![
            name.to_string(),
            format!("{}", r.evaluated.len()),
            format!("{:.0}", r.final_hypervolume()),
            format!("{}", r.pareto_indices().len()),
        ]
    })
    .collect();
    print_table(
        "DSE method comparison at ~300 ML-evaluated design points",
        &["method", "#evals", "final HV", "#Pareto"],
        &rows,
    );
    println!("\nExpected shape: MBO and NSGA-II lead; SA (scalarized) covers the");
    println!("front poorly; random search trails the directed methods.");
    save_json(
        "dse_baselines",
        &json!({
            "methods": [
                {"name": "MBO", "hv": r_mbo.final_hypervolume(), "evals": r_mbo.evaluated.len()},
                {"name": "Random", "hv": r_rnd.final_hypervolume(), "evals": r_rnd.evaluated.len()},
                {"name": "NSGA-II", "hv": r_nsga.final_hypervolume(), "evals": r_nsga.evaluated.len()},
                {"name": "SA", "hv": r_sa.final_hypervolume(), "evals": r_sa.evaluated.len()},
            ]
        }),
    );
}
