//! Fig. 7: error analysis of the mul8s_1KR3 analogue with retrained
//! reduced-coefficient PR models (C2 … C9) — average absolute relative
//! error and maximum error of the model-as-operator.

use clapped_axops::{Catalog, Mul8s};
use clapped_bench::{print_table, save_json};
use clapped_errmodel::{rank_terms, ErrorStats, PrModel};
use serde_json::json;

fn stats_of_model(pr: &PrModel) -> (f64, f64) {
    let s = ErrorStats::from_fns(
        |a, b| i32::from(pr.predict_i16(a, b)),
        |a, b| i32::from(a) * i32::from(b),
    );
    (s.mean_relative, s.max_abs_error)
}

fn main() {
    let catalog = Catalog::standard();
    let m = catalog.get("mul8s_1KR3").expect("alias resolves");
    println!("operator: {} ({})", m.name(), m.arch().describe());
    let full = PrModel::fit(m.as_ref(), 3);
    let ranking = rank_terms(&[&full]);

    let actual = ErrorStats::of_multiplier(m.as_ref());
    let mut rows = vec![vec![
        "Actual".to_string(),
        format!("{:.4}", actual.mean_relative),
        format!("{:.0}", actual.max_abs_error),
        "-".to_string(),
    ]];
    let (rel, max) = stats_of_model(&full);
    rows.push(vec![
        "Predicted (all 10 coeffs)".to_string(),
        format!("{rel:.4}"),
        format!("{max:.0}"),
        format!("{:.5}", full.r2()),
    ]);
    let mut json_rows = vec![
        json!({"label": "Actual", "avg_rel": actual.mean_relative, "max_err": actual.max_abs_error}),
        json!({"label": "Predicted", "avg_rel": rel, "max_err": max, "r2": full.r2()}),
    ];
    for k in 2..=9usize {
        let refit = full
            .refit_top(m.as_ref(), &ranking, k)
            .expect("subset basis is well conditioned");
        let (rel, max) = stats_of_model(&refit);
        rows.push(vec![
            format!("C{k}"),
            format!("{rel:.4}"),
            format!("{max:.0}"),
            format!("{:.5}", refit.r2()),
        ]);
        json_rows.push(json!({"label": format!("C{k}"), "avg_rel": rel, "max_err": max, "r2": refit.r2()}));
    }
    print_table(
        "Fig 7: retrained reduced-coefficient PR models of the 1KR3 analogue",
        &["model", "avg abs rel err", "max error", "R2"],
        &rows,
    );
    println!("\nExpected shape (paper): C2/C3 behave like an accurate multiplier");
    println!("(large deviation from the actual error metrics); from C4 onwards");
    println!("the models approach the actual values, with no further gain past C6.");
    save_json("fig7", &json!({ "operator": m.name(), "rows": json_rows }));
}
