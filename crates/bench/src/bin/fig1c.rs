//! Fig. 1(c): PSNR / energy trade-off of Gaussian image smoothing for
//! accurate (Ac) and approximate (Ax) multipliers at stride 1 and 2.

use clapped_accel::{characterize, AcceleratorSpec, CharacterizeConfig};
use clapped_bench::{print_table, save_json};
use clapped_core::Clapped;
use clapped_dse::Configuration;
use serde_json::json;

fn main() {
    let fw = Clapped::builder()
        .image_size(64)
        .noise_sigma(12.0)
        .seed(21)
        .build()
        .expect("framework construction");
    let ac = fw.catalog().index_of("mul8s_exact").expect("exact present");
    let ax = fw.catalog().index_of("mul8s_1KVL").expect("alias resolves");
    let char_cfg = CharacterizeConfig::default();

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for (label, mul_idx, stride) in [
        ("Ac:1", ac, 1usize),
        ("Ac:2", ac, 2),
        ("Ax:1", ax, 1),
        ("Ax:2", ax, 2),
    ] {
        let config = Configuration {
            stride,
            downsample: stride > 1,
            mul_indices: vec![mul_idx; 9],
            ..Configuration::golden(3)
        };
        let quality = fw.evaluate_error(&config).expect("behavioural evaluation");
        let spec = AcceleratorSpec {
            stride,
            downsample: stride > 1,
            ..AcceleratorSpec::uniform_2d(
                64,
                3,
                &fw.catalog().at(mul_idx).expect("valid index"),
            )
        };
        let hw = characterize(&spec, &char_cfg).expect("synthesis flow");
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", quality.psnr_db),
            format!("{:.3}", hw.energy_per_image_uj),
        ]);
        series.push(json!({
            "point": label,
            "psnr_db": quality.psnr_db,
            "energy_uj_per_image": hw.energy_per_image_uj,
        }));
    }
    println!(
        "PSNR (noisy input baseline): {:.2} dB",
        fw.app().noise_psnr()
    );
    print_table(
        "Fig 1(c): Gaussian smoothing accuracy/energy trade-off",
        &["point", "PSNR (dB)", "energy (uJ/image)"],
        &rows,
    );
    save_json(
        "fig1c",
        &json!({
            "noisy_psnr_db": fw.app().noise_psnr(),
            "points": series,
        }),
    );
}
