//! Table I: the feature dimensions of the EXP accelerator-performance
//! models, verified against the implementation's actual feature widths.

use clapped_accel::{features, table1_rows, AcceleratorSpec, CharacterizeConfig, FeatureMode, OpLibrary, PerfMetric};
use clapped_axops::{Catalog, MulArch};
use clapped_bench::{print_table, save_json};
use serde_json::json;

fn main() {
    let rows_spec = table1_rows();
    let rows: Vec<Vec<String>> = rows_spec
        .iter()
        .map(|(metric, accel_dims, mul_dims)| {
            vec![metric.to_string(), accel_dims.to_string(), mul_dims.to_string()]
        })
        .collect();
    print_table(
        "Table I: MLP dimensions for accelerator performance modeling",
        &["metric", "accelerator dimensions", "multiplier dimensions"],
        &rows,
    );

    // Verify the implementation's feature widths match the table.
    let mini = Catalog::from_specs(vec![
        ("mul8s_exact".to_string(), MulArch::Exact),
        ("mul8s_tr4".to_string(), MulArch::Truncated { k: 4 }),
    ])
    .expect("unique names");
    let lib = OpLibrary::characterize(&mini, &CharacterizeConfig::default().synth)
        .expect("library synthesis");
    let spec = AcceleratorSpec::uniform_2d(32, 3, &mini.get("mul8s_tr4").expect("present"));
    let widths: Vec<(PerfMetric, usize)> = PerfMetric::ALL
        .iter()
        .map(|&m| {
            (
                m,
                features(&spec, m, FeatureMode::Exp, &lib)
                    .expect("features extract")
                    .len(),
            )
        })
        .collect();
    println!("\nactual EXP feature widths for a 3x3 2D design (9 taps):");
    for (m, w) in &widths {
        println!("  {:>8}: {w} features", m.name());
    }
    assert_eq!(widths[2].1, 1, "latency uses image size only");
    save_json(
        "table1",
        &json!({
            "rows": rows_spec
                .iter()
                .map(|(m, a, x)| json!({"metric": m, "accel_dims": a, "mul_dims": x}))
                .collect::<Vec<_>>(),
            "feature_widths": widths
                .iter()
                .map(|(m, w)| json!({"metric": m.name(), "width": w}))
                .collect::<Vec<_>>(),
        }),
    );
}
