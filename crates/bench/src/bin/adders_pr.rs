//! Section II-A adder claim: on 8-bit approximate adders the PR models
//! estimate operator outputs with far smaller relative MAE than the
//! distribution-based curve-fitting technique (the paper reports ~18 %
//! vs ~84 % estimation error).

use clapped_axops::adders::{standard_adders, Add8s};
use clapped_bench::{print_table, save_json};
use clapped_errmodel::curvefit::{fit_surface_fn, LmConfig};
use clapped_errmodel::dist::DistKind;
use clapped_errmodel::PrModel;
use serde_json::json;

fn main() {
    let adders = standard_adders();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut pr_rels = Vec::new();
    let mut cf_rels = Vec::new();
    for adder in &adders {
        if adder.name() == "add8s_exact" {
            continue;
        }
        let f = |a: i8, b: i8| f64::from(adder.add(a, b));
        // Mean output magnitude to express estimation MAE relatively.
        let mean_mag: f64 = clapped_axops::exhaustive_pairs()
            .map(|(a, b)| f(a, b).abs())
            .sum::<f64>()
            / 65_536.0;
        let pr = PrModel::fit_fn(f, 3);
        let pr_mae = pr.estimation_mae_fn(f);
        let cf = [DistKind::Normal, DistKind::Logistic]
            .iter()
            .map(|&k| {
                fit_surface_fn(f, k, &LmConfig::default())
                    .expect("LM converges")
                    .estimation_mae_fn(f)
            })
            .fold(f64::INFINITY, f64::min);
        let pr_rel = 100.0 * pr_mae / mean_mag;
        let cf_rel = 100.0 * cf / mean_mag;
        pr_rels.push(pr_rel);
        cf_rels.push(cf_rel);
        rows.push(vec![
            adder.name().to_string(),
            format!("{pr_mae:.2}"),
            format!("{pr_rel:.1}"),
            format!("{cf:.2}"),
            format!("{cf_rel:.1}"),
        ]);
        json_rows.push(json!({
            "adder": adder.name(),
            "pr_mae": pr_mae, "pr_rel_pct": pr_rel,
            "cf_mae": cf, "cf_rel_pct": cf_rel,
        }));
    }
    print_table(
        "Section II-A: PR vs curve fitting on approximate adders",
        &["adder", "PR MAE", "PR rel%", "CF MAE", "CF rel%"],
        &rows,
    );
    let pr_mean = pr_rels.iter().sum::<f64>() / pr_rels.len() as f64;
    let cf_mean = cf_rels.iter().sum::<f64>() / cf_rels.len() as f64;
    println!("\nmean relative estimation error: PR {pr_mean:.1}% vs curve fit {cf_mean:.1}%");
    println!("Expected shape (paper): PR around the tens-of-percent level at");
    println!("worst (paper: as low as 18%), curve fitting several times larger");
    println!("(paper: 84%).");
    save_json(
        "adders_pr",
        &json!({ "rows": json_rows, "pr_mean_rel_pct": pr_mean, "cf_mean_rel_pct": cf_mean }),
    );
}
