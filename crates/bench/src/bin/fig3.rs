//! Fig. 3: behavioural error analysis of the mul8s_1KR3 analogue —
//! top-5 distribution fits (K-S ranked) and the mean-absolute-error of
//! curve-fitting vs polynomial-regression estimation.

use clapped_axops::Catalog;
use clapped_bench::{print_table, save_json};
use clapped_errmodel::curvefit::{fit_multiplier_surface, LmConfig};
use clapped_errmodel::dist::rank_distributions;
use clapped_errmodel::{error_samples, PrModel};
use serde_json::json;

fn main() {
    let catalog = Catalog::standard();
    let m = catalog.get("mul8s_1KR3").expect("alias resolves");
    println!("operator: {} ({})", clapped_axops::Mul8s::name(m.as_ref()), m.arch().describe());

    // Distribution fitting of the error sample, K-S ranked.
    let errors = error_samples(m.as_ref());
    let ranked = rank_distributions(&errors);
    let mut dist_rows = Vec::new();
    for (d, ks) in ranked.iter().take(5) {
        dist_rows.push(vec![
            d.kind().name().to_string(),
            format!("{:.4}", ks),
            format!("{:.1}", d.mu()),
            format!("{:.1}", d.scale()),
        ]);
    }
    print_table(
        "Fig 3 (left): top-5 distribution fits of the error sample",
        &["distribution", "K-S", "mu", "scale"],
        &dist_rows,
    );

    // Curve fitting with the top-ranked families vs the PR model.
    let lm = LmConfig::default();
    let mut mae_rows = Vec::new();
    let mut json_fits = Vec::new();
    for (d, _) in ranked.iter().take(5) {
        let fit = fit_multiplier_surface(m.as_ref(), d.kind(), &lm).expect("LM converges");
        let mae = fit.estimation_mae(m.as_ref());
        mae_rows.push(vec![
            format!("curve fit ({})", d.kind().name()),
            format!("{:.1}", mae),
        ]);
        json_fits.push(json!({"method": format!("cf_{}", d.kind().name()), "mae": mae}));
    }
    for degree in [2usize, 3, 4] {
        let pr = PrModel::fit(m.as_ref(), degree);
        let mae = pr.estimation_mae(m.as_ref());
        mae_rows.push(vec![
            format!("polynomial regression (degree {degree})"),
            format!("{:.1}", mae),
        ]);
        json_fits.push(json!({"method": format!("pr_d{degree}"), "mae": mae, "r2": pr.r2()}));
    }
    print_table(
        "Fig 3 (right): estimation MAE, curve fitting vs PR",
        &["method", "MAE"],
        &mae_rows,
    );
    println!("\nExpected shape (paper): every distribution-based curve fit has a");
    println!("far larger estimation MAE than the PR models.");
    save_json(
        "fig3",
        &json!({
            "operator": clapped_axops::Mul8s::name(m.as_ref()),
            "distributions": ranked
                .iter()
                .take(5)
                .map(|(d, ks)| json!({"kind": d.kind().name(), "ks": ks}))
                .collect::<Vec<_>>(),
            "fits": json_fits,
        }),
    );
}
