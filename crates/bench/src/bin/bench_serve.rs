//! Load generator for the `clapped-serve` daemon.
//!
//! Replays many concurrent job streams — each stream is one client
//! connection submitting a DSE job and polling to completion — and
//! reports job-latency percentiles, throughput, and the cache-hit
//! amplification between a cold pass and a warm rerun of the same
//! specs. Results land in `results/bench_serve.json`.
//!
//! Usage:
//!
//! ```text
//! bench_serve [--quick] [--connect ADDR_OR_UDS_PATH] [--shutdown]
//!             [--streams N] [--concurrency N]
//! ```
//!
//! Without `--connect` an in-process server is started on a loopback
//! port with fresh state and cache directories (a genuinely cold
//! start). With `--connect`, streams drive an already-running daemon —
//! the mode CI uses against a Unix-socket daemon — and `--shutdown`
//! sends the drain op once the measurement ends. The full run replays
//! 100 streams; `--quick` trims the workload for smoke tests. In the
//! full run the warm pass must beat the cold pass by at least 2× on
//! median latency or the process exits non-zero: warm evaluations are
//! answered from the result cache, and losing that amplification is a
//! serving regression.

use clapped_bench::{print_table, save_json};
use clapped_dse::MboConfig;
use clapped_obs::{Deadline, Stopwatch};
use clapped_serve::{Client, JobSpec, JobState, Listen, Server, ServerConfig};
use serde_json::json;
use std::path::PathBuf;
use std::process::exit;
use std::thread;
use std::time::Duration;

struct Args {
    quick: bool,
    connect: Option<Listen>,
    shutdown: bool,
    streams: usize,
    concurrency: usize,
}

fn parse_args() -> Args {
    let mut quick = false;
    let mut connect = None;
    let mut shutdown = false;
    let mut streams = None;
    let mut concurrency = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--shutdown" => shutdown = true,
            "--connect" => {
                let target = args.next().unwrap_or_else(|| {
                    eprintln!("bench_serve: --connect needs an address or socket path");
                    exit(2);
                });
                connect = Some(if target.contains('/') {
                    Listen::Uds(PathBuf::from(target))
                } else {
                    Listen::Tcp(target)
                });
            }
            "--streams" => {
                streams = Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("bench_serve: --streams needs an integer");
                    exit(2);
                }));
            }
            "--concurrency" => {
                concurrency =
                    Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("bench_serve: --concurrency needs an integer");
                        exit(2);
                    }));
            }
            other => {
                eprintln!("bench_serve: unknown flag `{other}`");
                exit(2);
            }
        }
    }
    let streams = streams.unwrap_or(if quick { 8 } else { 100 });
    Args {
        quick,
        connect,
        shutdown,
        streams,
        concurrency: concurrency.unwrap_or(streams),
    }
}

fn job_spec(stream: usize, quick: bool) -> JobSpec {
    JobSpec {
        image_size: 16,
        noise_sigma: 12.0,
        seed: 1,
        mbo: MboConfig {
            initial_samples: 4,
            iterations: if quick { 1 } else { 2 },
            batch: 2,
            candidates: 8,
            reference: vec![40.0, 5000.0],
            kappa: 1.0,
            explore_fraction: 0.1,
            // Distinct seeds per stream: different trajectories, shared
            // recipe — the realistic multi-tenant mix.
            seed: stream as u64,
        },
        max_error_percent: Some(20.0),
        ..JobSpec::default()
    }
}

/// Runs one pass of `streams` job streams with at most `concurrency`
/// in flight; returns per-job latencies in milliseconds.
fn run_pass(listen: &Listen, args: &Args, pass: &str) -> Vec<f64> {
    let quick = args.quick;
    let mut latencies = vec![0.0f64; args.streams];
    let chunk = args.concurrency.max(1);
    for (base, slot) in (0..args.streams).step_by(chunk).enumerate() {
        let upper = (slot + chunk).min(args.streams);
        let handles: Vec<thread::JoinHandle<(usize, f64)>> = (slot..upper)
            .map(|stream| {
                let listen = listen.clone();
                let tenant = format!("tenant{}", stream % 8);
                thread::spawn(move || {
                    let mut client = Client::connect(&listen).expect("connect stream");
                    let watch = Stopwatch::start();
                    let job = client
                        .submit(&tenant, job_spec(stream, quick))
                        .expect("submit stream job");
                    let status = client
                        .wait(&job, Duration::from_millis(5), Deadline::after(
                            Duration::from_secs(600),
                        ))
                        .expect("wait for stream job");
                    assert_eq!(
                        status.state,
                        JobState::Done,
                        "stream {stream} failed: {:?}",
                        status.error
                    );
                    (stream, watch.elapsed_ns() as f64 / 1.0e6)
                })
            })
            .collect();
        for handle in handles {
            let (stream, ms) = handle.join().expect("stream thread");
            latencies[stream] = ms;
        }
        let done = upper;
        println!("[{pass} pass] {done}/{} streams (batch {base})", args.streams);
    }
    latencies
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn summarize(mut latencies: Vec<f64>, wall_ms: f64) -> (f64, f64, f64, f64) {
    latencies.sort_by(f64::total_cmp);
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
    let throughput = latencies.len() as f64 / (wall_ms / 1000.0);
    (p50, p99, mean, throughput)
}

fn main() {
    let args = parse_args();
    let results = clapped_bench::results_dir();
    let _ = std::fs::create_dir_all(&results);

    // Target: an external daemon, or a fresh in-process server with
    // cold state and cache.
    let (listen, local) = match &args.connect {
        Some(listen) => (listen.clone(), None),
        None => {
            let root = results.join("bench_serve_state");
            let _ = std::fs::remove_dir_all(&root);
            let mut config =
                ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), root.join("state"));
            config.cache_dir = Some(root.join("cache"));
            config.workers = 4;
            let server = Server::start(config).expect("start in-process server");
            (server.listen_addr().clone(), Some((server, root)))
        }
    };

    let cold_watch = Stopwatch::start();
    let cold = run_pass(&listen, &args, "cold");
    let cold_wall_ms = cold_watch.elapsed_ns() as f64 / 1.0e6;
    let warm_watch = Stopwatch::start();
    let warm = run_pass(&listen, &args, "warm");
    let warm_wall_ms = warm_watch.elapsed_ns() as f64 / 1.0e6;

    let cache = {
        let mut client = Client::connect(&listen).expect("connect for stats");
        let stats = client.stats().expect("stats");
        if args.shutdown || args.connect.is_none() {
            let _ = client.shutdown();
        }
        stats
    };
    if let Some((server, root)) = local {
        server.join();
        let _ = std::fs::remove_dir_all(&root);
    }

    let (cold_p50, cold_p99, cold_mean, cold_tput) = summarize(cold, cold_wall_ms);
    let (warm_p50, warm_p99, warm_mean, warm_tput) = summarize(warm, warm_wall_ms);
    let speedup = cold_p50 / warm_p50.max(1e-9);

    print_table(
        "clapped-serve load generation",
        &["pass", "p50 ms", "p99 ms", "mean ms", "jobs/s"],
        &[
            vec![
                "cold".to_string(),
                format!("{cold_p50:.1}"),
                format!("{cold_p99:.1}"),
                format!("{cold_mean:.1}"),
                format!("{cold_tput:.1}"),
            ],
            vec![
                "warm".to_string(),
                format!("{warm_p50:.1}"),
                format!("{warm_p99:.1}"),
                format!("{warm_mean:.1}"),
                format!("{warm_tput:.1}"),
            ],
        ],
    );
    println!(
        "warm speedup (cold p50 / warm p50): {speedup:.2}x; cache hits {} \
         (disk {}), misses {}, lock contention {}",
        cache.cache.hits, cache.cache.disk_hits, cache.cache.misses,
        cache.cache.lock_contention,
    );

    save_json(
        "bench_serve",
        &json!({
            "mode": if args.quick { "quick" } else { "full" },
            "streams": args.streams,
            "concurrency": args.concurrency,
            "cold": {
                "p50_ms": cold_p50,
                "p99_ms": cold_p99,
                "mean_ms": cold_mean,
                "throughput_jobs_per_s": cold_tput,
                "wall_ms": cold_wall_ms,
            },
            "warm": {
                "p50_ms": warm_p50,
                "p99_ms": warm_p99,
                "mean_ms": warm_mean,
                "throughput_jobs_per_s": warm_tput,
                "wall_ms": warm_wall_ms,
            },
            "warm_speedup_p50": speedup,
            "server": {
                "jobs_done": cache.jobs_done,
                "jobs_failed": cache.jobs_failed,
                "steps": cache.steps,
                "requests": cache.requests,
                "protocol_errors": cache.protocol_errors,
                "cache_hits": cache.cache.hits,
                "cache_disk_hits": cache.cache.disk_hits,
                "cache_misses": cache.cache.misses,
                "cache_lock_contention": cache.cache.lock_contention,
            },
        }),
    );

    // Cache amplification is part of the serving contract: a warm rerun
    // answers every evaluation from the result cache. Only the full run
    // enforces the floor — quick smoke jobs are too short to measure
    // reliably.
    if !args.quick && speedup < 2.0 {
        eprintln!("bench_serve: warm speedup {speedup:.2}x is below the 2x floor");
        exit(1);
    }
}
