//! Window-size DoF sweep (the paper's Section III notes the HLS designs
//! support odd window sizes): quality vs hardware cost for 3×3, 5×5 and
//! 7×7 Gaussian smoothing accelerators, with exact and approximate
//! multipliers and both convolution modes.

use clapped_accel::{characterize, AcceleratorSpec, CharacterizeConfig};
use clapped_bench::{print_table, save_json};
use clapped_core::Clapped;
use clapped_dse::Configuration;
use clapped_imgproc::ConvMode;
use serde_json::json;

fn main() {
    let fw = Clapped::builder()
        .image_size(64)
        .noise_sigma(12.0)
        .seed(33)
        .build()
        .expect("framework construction");
    let exact = fw.catalog().index_of("mul8s_exact").expect("present");
    let approx = fw.catalog().index_of("mul8s_tr4").expect("present");
    let char_cfg = CharacterizeConfig::default();

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for window in [3usize, 5, 7] {
        for (label, mul_idx) in [("exact", exact), ("tr4", approx)] {
            for mode in [ConvMode::TwoD, ConvMode::Separable] {
                let config = Configuration {
                    window,
                    mode,
                    mul_indices: vec![mul_idx; window * window],
                    ..Configuration::golden(window)
                };
                let quality = fw.evaluate_error(&config).expect("evaluation");
                let spec = AcceleratorSpec {
                    mode,
                    muls: config
                        .active_mul_indices()
                        .iter()
                        .map(|&i| fw.catalog().at(i).expect("valid"))
                        .collect(),
                    ..AcceleratorSpec::uniform_2d(
                        64,
                        window,
                        &fw.catalog().at(mul_idx).expect("valid"),
                    )
                };
                let hw = characterize(&spec, &char_cfg).expect("synthesis");
                rows.push(vec![
                    format!("{window}x{window}"),
                    label.to_string(),
                    format!("{mode:?}"),
                    format!("{:.2}", quality.psnr_db),
                    format!("{:.2}", quality.error_percent),
                    format!("{}", hw.luts),
                    format!("{:.2}", hw.energy_per_image_uj),
                ]);
                json_rows.push(json!({
                    "window": window, "multiplier": label, "mode": format!("{mode:?}"),
                    "psnr_db": quality.psnr_db, "error_pct": quality.error_percent,
                    "luts": hw.luts, "energy_uj": hw.energy_per_image_uj,
                }));
                println!(
                    "{window}x{window} {label:>5} {mode:?}: PSNR {:.2} dB, {} LUTs, {:.2} uJ",
                    quality.psnr_db, hw.luts, hw.energy_per_image_uj
                );
            }
        }
    }
    print_table(
        "Window-size DoF sweep (64x64 images)",
        &["window", "mult", "mode", "PSNR dB", "err% vs 3x3 golden", "LUTs", "energy uJ"],
        &rows,
    );
    println!("\nExpected shape: LUTs grow ~quadratically with the window in 2D");
    println!("mode and ~linearly in separable mode; larger windows smooth more");
    println!("(diverging from the 3x3 golden), making separable mode the cheap");
    println!("path to wide windows — the trade-off the window DoF exposes.");
    save_json("window_sweep", &json!({ "rows": json_rows }));
}
