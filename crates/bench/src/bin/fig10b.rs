//! Fig. 10(b): generalization to **unseen multipliers**. The training
//! set contains no configuration using the held-out operators; the test
//! set only contains configurations that use them. PR-coefficient
//! features (C4) let the MLP interpolate to the new operators, while the
//! M4 statistical-metric representation transfers worse.
//!
//! The held-out operators are the LOA multipliers: their *unsigned*
//! statistical metrics (M4) are nearly indistinguishable from the
//! truncated multipliers seen in training, but their systematic error
//! has the opposite sign (OR-based lower parts overestimate, truncation
//! underestimates). Metric-based features cannot express that
//! direction; PR coefficients can.

use clapped_bench::{print_table, save_json};
use clapped_core::{Clapped, MulRepr};
use clapped_dse::Configuration;
use clapped_mlp::{fidelity, mae, TrainConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::json;

fn main() {
    let n_train: usize = 1200;
    let n_test: usize = 300;
    let fw = Clapped::builder()
        .image_size(32)
        .noise_sigma(12.0)
        .seed(8)
        .build()
        .expect("framework construction");
    let holdout1 = vec![fw.catalog().index_of("mul8s_loa8").expect("in catalog")];
    let holdout2 = vec![
        fw.catalog().index_of("mul8s_loa8").expect("in catalog"),
        fw.catalog().index_of("mul8s_loa6").expect("in catalog"),
    ];
    let train_cfg = TrainConfig {
        epochs: 150,
        patience: 25,
        seed: 3,
        ..TrainConfig::default()
    };

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (exp_label, holdout) in [("one new multiplier", holdout1), ("two new multipliers", holdout2)] {
        // Training configurations avoid the held-out operators entirely;
        // test configurations are forced to use them in random taps.
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let space = fw.space().clone();
        let sample_excluding = |rng: &mut ChaCha8Rng| -> Configuration {
            loop {
                let mut c = space.sample(rng);
                for idx in &mut c.mul_indices {
                    if holdout.contains(idx) {
                        *idx = (*idx + 1) % space.catalog_size;
                    }
                }
                if !c.mul_indices.iter().any(|i| holdout.contains(i)) {
                    return c;
                }
            }
        };
        let mut train_configs = Vec::with_capacity(n_train);
        for _ in 0..n_train {
            train_configs.push(sample_excluding(&mut rng));
        }
        let mut test_configs = Vec::with_capacity(n_test);
        for k in 0..n_test {
            let mut c = space.sample(&mut rng);
            // Force the held-out operator(s) into a few taps.
            let ho = holdout[k % holdout.len()];
            let len = c.mul_indices.len();
            let slot = k % len;
            c.mul_indices[slot] = ho;
            c.mul_indices[(slot + 3) % len] = ho;
            test_configs.push(c);
        }
        let label = |configs: &[Configuration]| -> Vec<f64> {
            configs
                .iter()
                .map(|c| fw.evaluate_error(c).expect("evaluation").error_percent)
                .collect()
        };
        println!("[{exp_label}] evaluating {} train + {} test configurations ...", n_train, n_test);
        let ytr = label(&train_configs);
        let yte = label(&test_configs);

        for repr in [MulRepr::Index, MulRepr::M4, MulRepr::Coeffs(4)] {
            let xtr: Vec<Vec<f64>> = train_configs.iter().map(|c| fw.encode(c, repr)).collect();
            let xte: Vec<Vec<f64>> = test_configs.iter().map(|c| fw.encode(c, repr)).collect();
            let model = fw
                .train_error_model(&xtr, &ytr, &train_cfg)
                .expect("training succeeds");
            let ptr = model.predict_batch(&xtr);
            let pte = model.predict_batch(&xte);
            let (mae_tr, mae_te) = (mae(&ytr, &ptr), mae(&yte, &pte));
            let fid_te = fidelity(&yte, &pte);
            rows.push(vec![
                exp_label.to_string(),
                repr.label(),
                format!("{mae_tr:.3}"),
                format!("{mae_te:.3}"),
                format!("{fid_te:.1}"),
            ]);
            json_rows.push(json!({
                "experiment": exp_label, "repr": repr.label(),
                "train_mae": mae_tr, "test_mae": mae_te, "test_fidelity": fid_te,
            }));
        }
    }
    print_table(
        "Fig 10(b): generalization to unseen multipliers",
        &["experiment", "repr", "train MAE", "test MAE (unseen)", "test fid%"],
        &rows,
    );
    println!("\nExpected shape (paper): representations that *correlate* an");
    println!("operator with its impact (C4, and in our library also M4) keep the");
    println!("unseen-operator MAE close to the training MAE, while the arbitrary");
    println!("Index representation cannot generalize at all.");
    save_json("fig10b", &json!({ "rows": json_rows }));
}
