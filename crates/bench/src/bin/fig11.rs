//! Fig. 11: accelerator performance estimation with MLP models —
//! prediction fidelity for PDP, LUTs, latency and power, comparing the
//! IDX multiplier representation against the expanded (EXP, Table-I)
//! feature sets. 1000 designs train the models, 200 test them.

use clapped_accel::{
    characterize, features, AcceleratorSpec, CharacterizeConfig, FeatureMode, OpLibrary,
    PerfMetric,
};
use clapped_axops::Catalog;
use clapped_bench::{print_table, save_json};
use clapped_mlp::{fidelity, Regressor, TrainConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde_json::json;
use std::time::Instant;

fn random_spec(catalog: &Catalog, rng: &mut ChaCha8Rng) -> AcceleratorSpec {
    let image_size = [16usize, 32, 48, 64, 96, 128][rng.gen_range(0..6usize)];
    AcceleratorSpec {
        image_size,
        window: 3,
        stride: rng.gen_range(1..=3),
        downsample: rng.gen_bool(0.5),
        mode: clapped_imgproc::ConvMode::TwoD,
        muls: (0..9)
            .map(|_| catalog.at(rng.gen_range(0..catalog.len())).expect("valid index"))
            .collect(),
    }
}

fn metric_value(metric: PerfMetric, r: &clapped_accel::AccelReport) -> f64 {
    match metric {
        PerfMetric::Pdp => r.pdp_pj,
        PerfMetric::Luts => r.luts as f64,
        PerfMetric::Latency => r.latency_cycles as f64,
        PerfMetric::Power => r.total_power_mw,
    }
}

fn main() {
    let n_train: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(1000);
    let n_test: usize = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(200);
    let catalog = Catalog::standard();
    let char_cfg = CharacterizeConfig::default();
    println!("characterizing the operator library ...");
    let lib = OpLibrary::characterize(&catalog, &char_cfg.synth).expect("library synthesis");

    println!("synthesizing {} accelerator design points (the 'Vivado' stage) ...", n_train + n_test);
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let start = Instant::now();
    let mut specs = Vec::with_capacity(n_train + n_test);
    let mut reports = Vec::with_capacity(n_train + n_test);
    for i in 0..(n_train + n_test) {
        let spec = random_spec(&catalog, &mut rng);
        let report = characterize(&spec, &char_cfg).expect("datapath synthesis");
        specs.push(spec);
        reports.push(report);
        if (i + 1) % 200 == 0 {
            println!("  {}/{} designs ({:.1}s)", i + 1, n_train + n_test, start.elapsed().as_secs_f64());
        }
    }
    println!("true characterization took {:.1}s total", start.elapsed().as_secs_f64());

    let train_cfg = TrainConfig {
        epochs: 200,
        patience: 30,
        seed: 2,
        ..TrainConfig::default()
    };
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for metric in PerfMetric::ALL {
        let ys: Vec<f64> = reports.iter().map(|r| metric_value(metric, r)).collect();
        let (ytr, yte) = ys.split_at(n_train);
        let mut cells = vec![metric.name().to_string()];
        let mut jrow = json!({"metric": metric.name()});
        for mode in [FeatureMode::Idx, FeatureMode::Exp] {
            let xs: Vec<Vec<f64>> = specs
                .iter()
                .map(|s| features(s, metric, mode, &lib).expect("library covers catalog"))
                .collect();
            let (xtr, xte) = xs.split_at(n_train);
            let model = Regressor::fit(xtr, ytr, &[32, 16], &train_cfg).expect("training");
            let fid_tr = fidelity(ytr, &model.predict_batch(xtr));
            let fid_te = fidelity(yte, &model.predict_batch(xte));
            cells.push(format!("{fid_tr:.1}"));
            cells.push(format!("{fid_te:.1}"));
            let key = match mode {
                FeatureMode::Idx => "idx",
                FeatureMode::Exp => "exp",
            };
            jrow[format!("train_fidelity_{key}")] = json!(fid_tr);
            jrow[format!("test_fidelity_{key}")] = json!(fid_te);
            println!(
                "{:>8} {:?}: train fidelity {fid_tr:.1}%, test fidelity {fid_te:.1}%",
                metric.name(),
                mode
            );
        }
        rows.push(cells);
        json_rows.push(jrow);
    }
    print_table(
        "Fig 11: accelerator-metric MLP fidelity (%), IDX vs EXP",
        &["metric", "train IDX", "test IDX", "train EXP", "test EXP"],
        &rows,
    );
    println!("\nExpected shape (paper): EXP beats IDX for every metric on both");
    println!("splits; the latency model (image-size only) is the most accurate.");
    save_json(
        "fig11",
        &json!({ "train_designs": n_train, "test_designs": n_test, "rows": json_rows }),
    );
}
