//! Formal error-bound analysis snapshot: static proved bounds vs
//! exhaustive simulation, and the fault-campaign site reduction the
//! error-cone observability pass buys.
//!
//! 1. per-operator analysis wall-clock — the microsecond interval tier
//!    and the exact BDD tier against the exhaustive 8×8 table build,
//!    with soundness asserted on every run (proved WCE ≥ observed max,
//!    exact counts bit-equal to the table),
//! 2. stuck-at campaign with `skip_masked` observability masking vs the
//!    unmasked reference — bit-identical reports asserted, simulated
//!    sites counted.
//!
//! Emits machine-readable numbers to `results/bench_errbound.json`.
//! Full runs additionally enforce the acceptance floors (interval tier
//! ≥2× faster than the already-wide-simulated table build; ≥10% of
//! fault sites statically skipped on a truncated Booth operator);
//! `--quick` shrinks workloads for CI
//! smoke runs and skips the floors. `--trace[=PATH]` captures an obs
//! JSONL trace.

use clapped_axops::{build_mul_table, Catalog, MulArch};
use clapped_bench::{print_table, save_json};
use clapped_netlist::{analyze_error_bounds, CampaignOptions, ErrBoundConfig};
use serde_json::json;
use std::time::Instant;

/// Best-of-`reps` wall-clock seconds of `f` (a warmup call is dropped
/// first — it is where process-wide memos fault in).
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    std::hint::black_box(f());
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Max |table entry − a·b| and the number of erring input pairs.
fn observed_table_error(table: &[i16]) -> (u64, u64) {
    let mut max_abs = 0u64;
    let mut mismatches = 0u64;
    for (idx, &got) in table.iter().enumerate() {
        let a = (idx >> 8) as u8 as i8;
        let b = (idx & 0xff) as u8 as i8;
        let err = i64::from(i32::from(got) - i32::from(a) * i32::from(b)).unsigned_abs();
        if err > 0 {
            mismatches += 1;
            max_abs = max_abs.max(err);
        }
    }
    (max_abs, mismatches)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "quick");
    clapped_obs::init_trace_from_args();
    let reps = if quick { 2 } else { 5 };
    let catalog = Catalog::standard();
    let reference = MulArch::Exact.build_netlist();
    let interval_cfg = ErrBoundConfig { bdd_node_limit: 0, signed_outputs: true };
    let exact_cfg = ErrBoundConfig { bdd_node_limit: 2_000_000, signed_outputs: true };

    // --- 1. Static analysis vs exhaustive simulation ------------------
    let ops = if quick {
        vec!["mul8s_tr4"]
    } else {
        vec![
            "mul8s_exact",
            "mul8s_tr4",
            "mul8s_bam_v8_h3",
            "mul8s_cmp8",
            "mul8s_loa8",
            "mul8s_log",
            "mul8s_drum4",
            "mul8s_booth",
        ]
    };
    let mut rows = Vec::new();
    let mut ops_json = Vec::new();
    let mut worst_interval_speedup = f64::INFINITY;
    for name in &ops {
        let op = catalog.get(name).expect("catalog operator");
        let n = op.netlist();
        let table = build_mul_table(n);
        let (observed_max, observed_mismatches) = observed_table_error(&table);
        let interval =
            analyze_error_bounds(n, &reference, &interval_cfg).expect("interval analysis");
        assert!(
            interval.proved_wce >= observed_max,
            "{name}: interval WCE {} < observed {observed_max}",
            interval.proved_wce
        );
        let exact = analyze_error_bounds(n, &reference, &exact_cfg).expect("exact analysis");
        let e = exact.exact.expect("gate budget fits every catalog miter");
        assert_eq!(e.wce, observed_max, "{name}: exact WCE disagrees with the table");
        assert_eq!(
            e.mismatch_count,
            u128::from(observed_mismatches),
            "{name}: exact mismatch count disagrees with the table"
        );
        let t_table = time_best(reps, || build_mul_table(n));
        let t_interval =
            time_best(reps, || analyze_error_bounds(n, &reference, &interval_cfg));
        let t_exact = time_best(reps, || analyze_error_bounds(n, &reference, &exact_cfg));
        let interval_speedup = t_table / t_interval;
        worst_interval_speedup = worst_interval_speedup.min(interval_speedup);
        rows.push(vec![
            (*name).to_string(),
            format!("{:.2}", t_table * 1e3),
            format!("{:.3}", t_interval * 1e3),
            format!("{:.1}", t_exact * 1e3),
            format!("{}", interval.proved_wce),
            format!("{}", e.wce),
            format!("{observed_max}"),
        ]);
        ops_json.push(json!({
            "operator": name,
            "table_ms": t_table * 1e3,
            "interval_ms": t_interval * 1e3,
            "exact_ms": t_exact * 1e3,
            "interval_speedup": interval_speedup,
            "interval_wce": interval.proved_wce,
            "exact_wce": e.wce,
            "observed_max": observed_max,
            "mismatches": observed_mismatches,
            "error_rate": e.error_rate,
        }));
    }
    print_table(
        &format!("Static error bounds vs exhaustive table (best of {reps})"),
        &["operator", "table ms", "interval ms", "exact ms", "ival WCE", "exact WCE", "observed"],
        &rows,
    );

    // --- 2. Fault-campaign site reduction ------------------------------
    let camp_name = "mul8s_booth_tr5";
    let camp_op = catalog.get(camp_name).expect("catalog operator");
    let n = camp_op.netlist();
    let n_batches = if quick { 8 } else { 32 };
    let mut state = 0xD1B54A32D192ED03u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let batches: Vec<Vec<u64>> =
        (0..n_batches).map(|_| (0..n.inputs().len()).map(|_| next()).collect()).collect();
    let sites = n.fault_sites();
    let engine = clapped_exec::Engine::serial();
    let full = n
        .stuck_at_campaign_with_options(
            &sites,
            &batches,
            64,
            &engine,
            CampaignOptions { skip_dead: false, ..CampaignOptions::default() },
        )
        .expect("full campaign");
    let masked = n
        .stuck_at_campaign_with_options(
            &sites,
            &batches,
            64,
            &engine,
            CampaignOptions { skip_masked: true, ..CampaignOptions::default() },
        )
        .expect("masked campaign");
    assert_eq!(full.sites, masked.sites, "masking changed campaign reports");
    assert_eq!(full.ranked_sites(), masked.ranked_sites(), "masking changed rankings");
    let skipped = full.simulated_sites - masked.simulated_sites;
    let skipped_pct = 100.0 * skipped as f64 / sites.len() as f64;
    let t_full = time_best(reps, || {
        n.stuck_at_campaign_with_options(
            &sites,
            &batches,
            64,
            &engine,
            CampaignOptions { skip_dead: false, ..CampaignOptions::default() },
        )
    });
    let t_masked = time_best(reps, || {
        n.stuck_at_campaign_with_options(
            &sites,
            &batches,
            64,
            &engine,
            CampaignOptions { skip_masked: true, ..CampaignOptions::default() },
        )
    });
    let campaign_speedup = t_full / t_masked;
    print_table(
        &format!(
            "Stuck-at campaign with observability masking ({camp_name}, {} sites, best of {reps})",
            sites.len()
        ),
        &["path", "simulated sites", "time ms", "speedup"],
        &[
            vec![
                "unmasked".to_string(),
                format!("{}", full.simulated_sites),
                format!("{:.2}", t_full * 1e3),
                "1.0x".to_string(),
            ],
            vec![
                "skip_masked".to_string(),
                format!("{}", masked.simulated_sites),
                format!("{:.2}", t_masked * 1e3),
                format!("{campaign_speedup:.2}x"),
            ],
        ],
    );
    println!("{skipped} of {} sites ({skipped_pct:.1}%) statically skipped", sites.len());

    save_json(
        "bench_errbound",
        &json!({
            "quick": quick,
            "operators": ops_json,
            "campaign_masking": {
                "operator": camp_name,
                "total_sites": sites.len(),
                "unmasked_simulated": full.simulated_sites,
                "masked_simulated": masked.simulated_sites,
                "skipped": skipped,
                "skipped_pct": skipped_pct,
                "unmasked_ms": t_full * 1e3,
                "masked_ms": t_masked * 1e3,
                "speedup": campaign_speedup,
            },
        }),
    );

    if !quick {
        assert!(
            worst_interval_speedup >= 2.0,
            "interval-tier floor missed: {worst_interval_speedup:.2}x < 2x"
        );
        assert!(
            skipped_pct >= 10.0,
            "masking floor missed: {skipped_pct:.1}% of sites skipped < 10%"
        );
    }
    if let Some(report) = clapped_obs::finish() {
        println!("{report}");
    }
}
