//! Ablation of the MBO design choices DESIGN.md calls out: the
//! exploration factor (kappa), the acquisition candidate pool size, and
//! the batch size — each swept with the others held at their defaults,
//! on the ML-estimated error × LUT problem.

use clapped_bench::{print_table, save_json};
use clapped_core::{Clapped, MulRepr};
use clapped_dse::{mbo, MboConfig};
use clapped_mlp::TrainConfig;
use serde_json::json;

fn main() {
    let fw = Clapped::builder()
        .image_size(32)
        .noise_sigma(12.0)
        .seed(5)
        .build()
        .expect("framework construction");
    let repr = MulRepr::Coeffs(4);
    let (configs, xs, ys) = fw
        .make_error_dataset(120, repr, 808)
        .expect("behavioural evaluation");
    let train_cfg = TrainConfig {
        epochs: 120,
        ..TrainConfig::default()
    };
    let err_model = fw.train_error_model(&xs, &ys, &train_cfg).expect("trains");
    let lut_ys: Vec<f64> = configs
        .iter()
        .map(|c| fw.characterize_hw(c).expect("synthesis").luts as f64)
        .collect();
    let hw_xs: Vec<Vec<f64>> = configs
        .iter()
        .map(|c| fw.encode_hw(c).expect("characterized"))
        .collect();
    let lut_model =
        clapped_mlp::Regressor::fit(&hw_xs, &lut_ys, &[32, 16], &train_cfg).expect("trains");
    let objective = |c: &clapped_dse::Configuration| -> Vec<f64> {
        vec![
            err_model.predict(&fw.encode(c, repr)).max(0.0),
            lut_model
                .predict(&fw.encode_hw(c).expect("characterized"))
                .max(0.0),
        ]
    };

    let base = MboConfig {
        initial_samples: 60,
        iterations: 14,
        batch: 10,
        candidates: 50,
        reference: vec![30.0, 4000.0],
        kappa: 1.0,
        explore_fraction: 0.1,
        seed: 77,
    };
    let surrogate_features = |c: &clapped_dse::Configuration| -> Vec<f64> {
        let mut v = fw.encode(c, repr);
        v.extend(fw.encode_hw(c).expect("library characterized"));
        v
    };
    let run = |cfg: &MboConfig| -> f64 {
        let space = fw.space().clone();
        mbo(cfg, |rng| space.sample(rng), surrogate_features, objective)
            .expect("mbo")
            .final_hypervolume()
    };

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for kappa in [0.0, 0.5, 1.0, 2.0] {
        let hv = run(&MboConfig { kappa, ..base.clone() });
        rows.push(vec![format!("kappa={kappa}"), format!("{hv:.0}")]);
        json_rows.push(json!({"knob": "kappa", "value": kappa, "hv": hv}));
        println!("kappa {kappa}: HV {hv:.0}");
    }
    for candidates in [10usize, 50, 150] {
        let hv = run(&MboConfig { candidates, ..base.clone() });
        rows.push(vec![format!("candidates={candidates}"), format!("{hv:.0}")]);
        json_rows.push(json!({"knob": "candidates", "value": candidates, "hv": hv}));
        println!("candidates {candidates}: HV {hv:.0}");
    }
    for batch in [5usize, 10, 20] {
        // Keep the total budget constant: batch × iterations = 140.
        let iterations = 140 / batch;
        let hv = run(&MboConfig { batch, iterations, ..base.clone() });
        rows.push(vec![format!("batch={batch}"), format!("{hv:.0}")]);
        json_rows.push(json!({"knob": "batch", "value": batch, "hv": hv}));
        println!("batch {batch} (x{iterations} iters): HV {hv:.0}");
    }
    print_table("MBO ablation (final hypervolume)", &["setting", "HV"], &rows);
    println!("\nLarger candidate pools and a non-zero exploration factor should");
    println!("help; smaller batches (more surrogate refits per budget) usually");
    println!("help too, at higher surrogate-fitting cost.");
    save_json("ablation_mbo", &json!({ "rows": json_rows }));
}
