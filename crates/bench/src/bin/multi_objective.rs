//! Extension: four-objective cross-layer DSE. The paper's MBO builds
//! "one [probabilistic model] for each design objective"; this harness
//! exercises that generality by jointly minimizing application error,
//! LUTs, power and latency with true evaluations and the general
//! (WFG) hypervolume.

use clapped_bench::{print_table, save_json};
use clapped_core::{Clapped, MulRepr};
use clapped_dse::{mbo, pareto_front, random_search, MboConfig};
use serde_json::json;

fn main() {
    let fw = Clapped::builder()
        .image_size(32)
        .noise_sigma(12.0)
        .seed(5)
        .build()
        .expect("framework construction");
    // Pre-characterize the operator library (hardware features).
    fw.op_library().expect("library characterizes");
    let repr = MulRepr::Coeffs(4);

    let objective = |c: &clapped_dse::Configuration| -> Vec<f64> {
        let err = fw.evaluate_error(c).expect("evaluation").error_percent;
        let hw = fw.characterize_hw(c).expect("synthesis");
        vec![
            err,
            hw.luts as f64,
            hw.total_power_mw,
            hw.latency_cycles as f64,
        ]
    };
    let reference = vec![30.0, 4000.0, 800.0, 3000.0];
    let cfg = MboConfig {
        initial_samples: 60,
        iterations: 9,
        batch: 10,
        candidates: 40,
        reference: reference.clone(),
        kappa: 1.0,
        explore_fraction: 0.1,
        seed: 41,
    };
    let space = fw.space().clone();
    let surrogate_features = |c: &clapped_dse::Configuration| -> Vec<f64> {
        let mut v = fw.encode(c, repr);
        v.extend(fw.encode_hw(c).expect("characterized"));
        v
    };
    println!("running 4-objective MBO (150 true evaluations) ...");
    let run = mbo(&cfg, |rng| space.sample(rng), surrogate_features, objective)
        .expect("mbo");
    println!("running 4-objective random search ...");
    let space2 = fw.space().clone();
    let rnd = random_search(&cfg, |rng| space2.sample(rng), objective).expect("random");

    let objs: Vec<Vec<f64>> = run.evaluated.iter().map(|(_, o)| o.clone()).collect();
    let front = pareto_front(&objs);
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for &i in front.iter().take(20) {
        let (c, o) = &run.evaluated[i];
        rows.push(vec![
            format!("{}", c.stride),
            format!("{}", u8::from(c.downsample)),
            format!("{}", c.scale),
            format!("{:?}", c.mode),
            format!("{:.2}", o[0]),
            format!("{:.0}", o[1]),
            format!("{:.0}", o[2]),
            format!("{:.0}", o[3]),
        ]);
        points.push(json!({
            "stride": c.stride, "downsample": c.downsample, "scale": c.scale,
            "mode": format!("{:?}", c.mode),
            "error_pct": o[0], "luts": o[1], "power_mw": o[2], "latency_cycles": o[3],
        }));
    }
    print_table(
        "4-objective Pareto points (first 20): error x LUTs x power x latency",
        &["stride", "ds", "scale", "mode", "err%", "LUTs", "mW", "cycles"],
        &rows,
    );
    println!(
        "\n4D hypervolume: MBO {:.3e} vs random {:.3e} ({} vs {} Pareto points)",
        run.final_hypervolume(),
        rnd.final_hypervolume(),
        front.len(),
        rnd.pareto_indices().len(),
    );
    save_json(
        "multi_objective",
        &json!({
            "hv_mbo": run.final_hypervolume(),
            "hv_random": rnd.final_hypervolume(),
            "pareto_mbo": front.len(),
            "pareto_random": rnd.pareto_indices().len(),
            "points": points,
        }),
    );
}
