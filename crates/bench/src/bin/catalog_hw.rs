//! Operator-library hardware characterization table — the analogue of
//! the EvoApprox8b library card: LUTs, critical path, power and PDP for
//! every multiplier in the catalog next to its error metrics, i.e. the
//! raw material of the accuracy/cost trade-off CLAppED explores.

use clapped_axops::{Catalog, Mul8s};
use clapped_bench::{print_table, save_json};
use clapped_errmodel::ErrorStats;
use clapped_netlist::{synthesize, SynthConfig};
use serde_json::json;

fn main() {
    let catalog = Catalog::standard();
    let synth_cfg = SynthConfig::default();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for m in catalog.iter() {
        let stats = ErrorStats::of_multiplier(m.as_ref());
        let hw = synthesize(m.netlist(), &synth_cfg).expect("operator synthesizes");
        rows.push(vec![
            m.name().to_string(),
            format!("{:.2}", stats.mae),
            format!("{:.4}", stats.mean_relative),
            format!("{}", hw.lut_count),
            format!("{}", hw.depth),
            format!("{:.2}", hw.cpd_ns),
            format!("{:.1}", hw.power.total_mw()),
            format!("{:.0}", hw.pdp()),
        ]);
        json_rows.push(json!({
            "operator": m.name(),
            "arch": m.arch().describe(),
            "mae": stats.mae,
            "avg_rel": stats.mean_relative,
            "error_prob": stats.error_probability,
            "luts": hw.lut_count,
            "depth": hw.depth,
            "cpd_ns": hw.cpd_ns,
            "power_mw": hw.power.total_mw(),
            "pdp_pj": hw.pdp(),
        }));
    }
    print_table(
        "Operator library: accuracy vs hardware cost",
        &["operator", "MAE", "avg-rel", "LUTs", "depth", "CPD ns", "mW", "PDP pJ"],
        &rows,
    );
    // Pareto analysis over (MAE, LUTs): which operators earn their place?
    let points: Vec<Vec<f64>> = json_rows
        .iter()
        .map(|r| {
            vec![
                r["mae"].as_f64().expect("mae"),
                r["luts"].as_f64().expect("luts"),
            ]
        })
        .collect();
    let front = clapped_dse::pareto_front(&points);
    let names: Vec<&str> = front
        .iter()
        .map(|&i| json_rows[i]["operator"].as_str().expect("name"))
        .collect();
    println!("\nMAE × LUT Pareto-optimal operators: {}", names.join(", "));
    save_json(
        "catalog_hw",
        &json!({ "operators": json_rows, "mae_lut_pareto": names }),
    );
}
