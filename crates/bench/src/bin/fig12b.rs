//! Fig. 12(b): analysis of the Pareto points from MBO-based DSE —
//! MLP-predicted vs actually-evaluated objectives, plus the DoF
//! diversity statistics the paper reports (multiplier permutations,
//! stride, downsampling, scaling).

use clapped_bench::{print_table, save_json};
use clapped_core::{explore, Clapped, EstimationMode, ExploreOptions, MulRepr};
use clapped_dse::MboConfig;
use serde_json::json;

fn main() {
    let fw = Clapped::builder()
        .image_size(32)
        .noise_sigma(12.0)
        .seed(5)
        .build()
        .expect("framework construction");
    let opts = ExploreOptions {
        error_mode: EstimationMode::Ml,
        hw_mode: EstimationMode::Ml,
        repr: MulRepr::Coeffs(4),
        training_samples: 400,
        mbo: MboConfig {
            initial_samples: 100,
            iterations: 30,
            batch: 10,
            candidates: 50,
            reference: vec![30.0, 4000.0],
            kappa: 1.0,
            explore_fraction: 0.1,
            seed: 23,
        },
        actual_eval: true,
        ..ExploreOptions::default()
    };
    println!("running ML-driven MBO exploration with actual re-evaluation ...");
    let result = explore(&fw, &opts).expect("exploration");

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for (i, p) in result.pareto.iter().enumerate() {
        let c = &p.config;
        let actual = p.actual.expect("actual_eval was requested");
        rows.push(vec![
            format!("{i}"),
            format!("{}", c.stride),
            format!("{}", u8::from(c.downsample)),
            format!("{}", c.scale),
            format!("{:?}", c.mode),
            format!("{:.2}", p.searched[0]),
            format!("{:.0}", p.searched[1]),
            format!("{:.2}", actual[0]),
            format!("{:.0}", actual[1]),
        ]);
        points.push(json!({
            "stride": c.stride, "downsample": c.downsample,
            "scale": c.scale, "mode": format!("{:?}", c.mode),
            "mul_indices": c.mul_indices,
            "predicted": {"error_pct": p.searched[0], "luts": p.searched[1]},
            "actual": {"error_pct": actual[0], "luts": actual[1]},
        }));
    }
    print_table(
        "Fig 12(b): MBO_MLP_PARETO vs ACTUAL_EVAL",
        &["#", "stride", "ds", "scale", "mode", "err%(ML)", "LUT(ML)", "err%(act)", "LUT(act)"],
        &rows,
    );
    let s = result.dof_summary();
    println!("\nPareto DoF analysis ({} points):", s.total);
    println!("  all-same-multiplier points : {}", s.uniform_multiplier);
    println!("  stride-2 points            : {}", s.strided);
    println!("  downsampling-enabled points: {}", s.downsampled);
    println!("  scale 1 / 2 / 3+           : {} / {} / {}", s.scale1, s.scale2, s.scale3plus);
    // Mean prediction gap between searched and actual objectives.
    let gaps: Vec<f64> = result
        .pareto
        .iter()
        .filter_map(|p| p.actual.map(|a| (p.searched[1] - a[1]).abs() / a[1].max(1.0)))
        .collect();
    let mean_gap = gaps.iter().sum::<f64>() / gaps.len().max(1) as f64;
    println!("\nmean relative LUT prediction gap on the front: {:.1}%", 100.0 * mean_gap);
    println!("Expected shape (paper): true points lie close to the MLP-predicted");
    println!("ones; only a minority of Pareto points use one multiplier type.");
    save_json(
        "fig12b",
        &json!({
            "points": points,
            "dof_summary": {
                "total": s.total,
                "uniform_multiplier": s.uniform_multiplier,
                "strided": s.strided,
                "downsampled": s.downsampled,
                "scale1": s.scale1, "scale2": s.scale2, "scale3plus": s.scale3plus,
            },
            "mean_lut_prediction_gap": mean_gap,
        }),
    );
}
