//! Validates a `--trace` JSONL file: every line must parse as a JSON
//! object with a `type` field, the file must open with a `start` record
//! and contain at least one event. CI runs this against the trace an
//! example smoke run produced.
//!
//! Usage: `trace_check [path]` (default `results/trace.jsonl`). Exits
//! non-zero with a diagnostic on the first malformed line.

use std::collections::BTreeMap;
use std::process::exit;

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| "results/trace.jsonl".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_check: cannot read {path}: {e}");
            exit(1);
        }
    };

    let mut by_type: BTreeMap<String, usize> = BTreeMap::new();
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        lines += 1;
        let value: serde_json::Value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("trace_check: line {} is not valid JSON: {e}", i + 1);
                exit(1);
            }
        };
        let Some(kind) = value.get("type").and_then(|t| t.as_str()) else {
            eprintln!("trace_check: line {} has no string `type` field", i + 1);
            exit(1);
        };
        if i == 0 && kind != "start" {
            eprintln!("trace_check: first record must be `start`, got `{kind}`");
            exit(1);
        }
        *by_type.entry(kind.to_string()).or_insert(0) += 1;
    }
    if lines < 2 {
        eprintln!("trace_check: {path} holds {lines} record(s); expected a start record plus events");
        exit(1);
    }

    let summary: Vec<String> =
        by_type.iter().map(|(k, n)| format!("{k}:{n}")).collect();
    println!("trace_check: {path} OK — {lines} records ({})", summary.join(", "));
}
