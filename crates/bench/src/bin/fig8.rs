//! Figs. 8 and 9: MLP prediction of the Gaussian-smoothing output
//! quality from cross-layer configurations, sweeping the multiplier
//! representation (Index / M1 / M4 / C2..C10) — mean average error and
//! fidelity on the train and test splits.
//!
//! The paper uses 2000 configurations, an 80/20 train/test split, and
//! 20% of the training set for validation.

use clapped_bench::{print_table, save_json};
use clapped_core::{Clapped, MulRepr};
use clapped_mlp::{fidelity, mae, TrainConfig};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::json;

fn main() {
    let n_configs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2000);
    let fw = Clapped::builder()
        .image_size(32)
        .noise_sigma(12.0)
        .seed(8)
        .build()
        .expect("framework construction");

    // One shared configuration sample + true labels; features re-encoded
    // per representation.
    println!("evaluating {n_configs} random configurations ...");
    let (configs, _, ys) = fw
        .make_error_dataset(n_configs, MulRepr::Index, 100)
        .expect("behavioural evaluation");

    // 80/20 split, fixed across representations.
    let mut order: Vec<usize> = (0..configs.len()).collect();
    order.shuffle(&mut ChaCha8Rng::seed_from_u64(9));
    let n_train = (configs.len() * 8) / 10;
    let (train_idx, test_idx) = order.split_at(n_train);

    let train_cfg = TrainConfig {
        epochs: 150,
        patience: 25,
        seed: 5,
        ..TrainConfig::default()
    };

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for repr in MulRepr::paper_sweep() {
        let xs: Vec<Vec<f64>> = configs.iter().map(|c| fw.encode(c, repr)).collect();
        let xtr: Vec<Vec<f64>> = train_idx.iter().map(|&i| xs[i].clone()).collect();
        let ytr: Vec<f64> = train_idx.iter().map(|&i| ys[i]).collect();
        let xte: Vec<Vec<f64>> = test_idx.iter().map(|&i| xs[i].clone()).collect();
        let yte: Vec<f64> = test_idx.iter().map(|&i| ys[i]).collect();
        let model = fw
            .train_error_model(&xtr, &ytr, &train_cfg)
            .expect("training succeeds");
        let ptr = model.predict_batch(&xtr);
        let pte = model.predict_batch(&xte);
        let (mae_tr, mae_te) = (mae(&ytr, &ptr), mae(&yte, &pte));
        let (fid_tr, fid_te) = (fidelity(&ytr, &ptr), fidelity(&yte, &pte));
        println!(
            "{:>6}: train MAE {mae_tr:.3}, test MAE {mae_te:.3}, train fid {fid_tr:.1}%, test fid {fid_te:.1}%",
            repr.label()
        );
        rows.push(vec![
            repr.label(),
            format!("{mae_tr:.3}"),
            format!("{mae_te:.3}"),
            format!("{fid_tr:.1}"),
            format!("{fid_te:.1}"),
            format!("{}", model.parameter_count()),
        ]);
        json_rows.push(json!({
            "repr": repr.label(),
            "train_mae": mae_tr, "test_mae": mae_te,
            "train_fidelity": fid_tr, "test_fidelity": fid_te,
            "parameters": model.parameter_count(),
        }));
    }
    print_table(
        "Figs 8+9: behavioural MLP by multiplier representation",
        &["repr", "train MAE", "test MAE", "train fid%", "test fid%", "params"],
        &rows,
    );
    println!("\nExpected shape (paper): Index is the worst on both metrics; M1/M4");
    println!("improve on it; the C4..C6 PR representations are the best, with");
    println!("very large coefficient counts hurting again for this dataset size.");
    save_json(
        "fig8_fig9",
        &json!({ "configs": n_configs, "rows": json_rows }),
    );
}
