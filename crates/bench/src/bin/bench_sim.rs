//! Wide-word simulation snapshot: the three gate-level hot paths that
//! bound cross-layer DSE throughput, each measured against its retained
//! 64-lane reference with bit-identity asserted on every run.
//!
//! 1. exhaustive 8×8 behavioural-table derivation (`axops::table`),
//! 2. stuck-at fault campaigns (`netlist::fault`),
//! 3. streaming frame simulation (`accel::streamsim`, warm datapath).
//!
//! Emits machine-readable numbers to `results/bench_sim.json` so perf
//! regressions are diffable. Full runs additionally enforce the
//! acceptance floors (≥4× table build, ≥4× campaign, ≥5× frames/sec);
//! `--quick` shrinks workloads for CI smoke runs and skips the floors
//! (timings on loaded CI runners are advisory only — bit-identity is
//! still asserted). `--trace[=PATH]` captures an obs JSONL trace.

use clapped_accel::{simulate_stream, simulate_stream_ref, AcceleratorSpec};
use clapped_axops::{build_mul_table, build_mul_table_ref64, Catalog};
use clapped_bench::{print_table, save_json};
use clapped_imgproc::{Image, QuantKernel, SynthKind};
use serde_json::json;
use std::time::Instant;

/// Best-of-`reps` wall-clock seconds of `f` (a warmup call is dropped
/// first — it is where process-wide memos fault in).
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    std::hint::black_box(f());
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "quick");
    clapped_obs::init_trace_from_args();
    let reps = if quick { 2 } else { 5 };
    let catalog = Catalog::standard();

    // --- 1. Exhaustive behavioural-table derivation -------------------
    let table_ops = if quick {
        vec!["mul8s_exact"]
    } else {
        vec!["mul8s_exact", "mul8s_tr4", "mul8s_bam_v8_h3"]
    };
    let mut table_rows = Vec::new();
    let mut table_json = Vec::new();
    let mut worst_table_speedup = f64::INFINITY;
    for name in &table_ops {
        let op = catalog.get(name).expect("catalog operator");
        let n = op.netlist();
        assert_eq!(build_mul_table(n), build_mul_table_ref64(n), "{name}: table divergence");
        let t_ref = time_best(reps, || build_mul_table_ref64(n));
        let t_wide = time_best(reps, || build_mul_table(n));
        let speedup = t_ref / t_wide;
        worst_table_speedup = worst_table_speedup.min(speedup);
        table_rows.push(vec![
            (*name).to_string(),
            format!("{:.2}", t_ref * 1e3),
            format!("{:.2}", t_wide * 1e3),
            format!("{speedup:.1}x"),
        ]);
        table_json.push(json!({
            "operator": name,
            "ref64_ms": t_ref * 1e3,
            "wide_ms": t_wide * 1e3,
            "speedup": speedup,
        }));
    }
    print_table(
        &format!("Exhaustive 8x8 table build: wide blocks vs 64-lane (best of {reps})"),
        &["operator", "ref64 ms", "wide ms", "speedup"],
        &table_rows,
    );

    // --- 2. Stuck-at fault campaign -----------------------------------
    let campaign_op = catalog.get("mul8s_exact").expect("catalog operator");
    let n = campaign_op.netlist();
    let n_batches = if quick { 8 } else { 32 };
    let mut state = 0xD1B54A32D192ED03u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let batches: Vec<Vec<u64>> =
        (0..n_batches).map(|_| (0..n.inputs().len()).map(|_| next()).collect()).collect();
    let sites = {
        let all = n.fault_sites();
        let keep = if quick { 64 } else { 256 };
        all.into_iter().take(keep).collect::<Vec<_>>()
    };
    let engine = clapped_exec::Engine::serial();
    let wide_report = n
        .stuck_at_campaign_with(&sites, &batches, 64, &engine)
        .expect("wide campaign runs");
    let ref_report =
        n.stuck_at_campaign_ref(&sites, &batches, 64).expect("reference campaign runs");
    assert_eq!(wide_report, ref_report, "campaign divergence");
    let t_camp_ref = time_best(reps, || n.stuck_at_campaign_ref(&sites, &batches, 64));
    let t_camp_wide = time_best(reps, || n.stuck_at_campaign_with(&sites, &batches, 64, &engine));
    let campaign_speedup = t_camp_ref / t_camp_wide;
    print_table(
        &format!(
            "Stuck-at campaign ({} sites x {} batches, best of {reps})",
            sites.len(),
            n_batches
        ),
        &["path", "time ms", "speedup"],
        &[
            vec![
                "ref64 serial".to_string(),
                format!("{:.2}", t_camp_ref * 1e3),
                "1.0x".to_string(),
            ],
            vec![
                "wide sharded".to_string(),
                format!("{:.2}", t_camp_wide * 1e3),
                format!("{campaign_speedup:.1}x"),
            ],
        ],
    );

    // --- 3. Streaming frame pipeline (warm datapath) ------------------
    let frame_op = catalog.get("mul8s_tr4").expect("catalog operator");
    let size = if quick { 32 } else { 64 };
    let kernel = QuantKernel::gaussian(3, 0.85);
    let img = Image::synthetic(SynthKind::Blobs, size, size, 7);
    let spec = AcceleratorSpec::uniform_2d(size, 3, &frame_op);
    let fast = simulate_stream(&spec, &img, kernel.coeffs_2d(), kernel.shift()).expect("frame");
    let slow = simulate_stream_ref(&spec, &img, kernel.coeffs_2d(), kernel.shift()).expect("frame");
    assert_eq!(fast, slow, "streamsim divergence");
    let t_ref =
        time_best(reps, || simulate_stream_ref(&spec, &img, kernel.coeffs_2d(), kernel.shift()));
    let t_fast =
        time_best(reps, || simulate_stream(&spec, &img, kernel.coeffs_2d(), kernel.shift()));
    let frame_speedup = t_ref / t_fast;
    print_table(
        &format!("Streaming frame pipeline ({size}x{size}, 3x3, best of {reps})"),
        &["path", "frame ms", "frames/s", "speedup"],
        &[
            vec![
                "rebuild + 64-lane".to_string(),
                format!("{:.2}", t_ref * 1e3),
                format!("{:.1}", 1.0 / t_ref),
                "1.0x".to_string(),
            ],
            vec![
                "compiled wide".to_string(),
                format!("{:.2}", t_fast * 1e3),
                format!("{:.1}", 1.0 / t_fast),
                format!("{frame_speedup:.1}x"),
            ],
        ],
    );
    let dp_stats = clapped_accel::datapath_cache_stats();

    save_json(
        "bench_sim",
        &json!({
            "quick": quick,
            "table_build": table_json,
            "campaign": {
                "operator": "mul8s_exact",
                "sites": sites.len(),
                "batches": n_batches,
                "ref64_ms": t_camp_ref * 1e3,
                "wide_ms": t_camp_wide * 1e3,
                "speedup": campaign_speedup,
            },
            "streamsim": {
                "operator": "mul8s_tr4",
                "image_size": size,
                "ref_frame_ms": t_ref * 1e3,
                "wide_frame_ms": t_fast * 1e3,
                "ref_fps": 1.0 / t_ref,
                "wide_fps": 1.0 / t_fast,
                "speedup": frame_speedup,
                "datapath_memo": {
                    "hits": dp_stats.hits,
                    "misses": dp_stats.misses,
                    "entries": dp_stats.entries,
                },
            },
        }),
    );

    if !quick {
        assert!(
            worst_table_speedup >= 4.0,
            "table-build floor missed: {worst_table_speedup:.2}x < 4x"
        );
        assert!(
            campaign_speedup >= 4.0,
            "campaign floor missed: {campaign_speedup:.2}x < 4x"
        );
        assert!(frame_speedup >= 5.0, "streamsim floor missed: {frame_speedup:.2}x < 5x");
    }
    if let Some(report) = clapped_obs::finish() {
        println!("{report}");
    }
}
