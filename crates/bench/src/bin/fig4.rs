//! Fig. 4: estimation-induced error distributions for a highly
//! approximate (mul8s_1KR3 analogue) and a highly accurate
//! (mul8s_1KVA analogue) multiplier, comparing the two best curve fits
//! against polynomial regression.

use clapped_axops::{Catalog, Mul8s};
use clapped_bench::{ascii_histogram, save_json};
use clapped_errmodel::curvefit::{best_curve_fits, LmConfig};
use clapped_errmodel::PrModel;
use serde_json::json;

fn peaks(errors: &[f64]) -> (f64, f64) {
    let min = errors.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = errors.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (min, max)
}

fn main() {
    let catalog = Catalog::standard();
    let mut results = Vec::new();
    for alias in ["mul8s_1KR3", "mul8s_1KVA"] {
        let m = catalog.get(alias).expect("alias resolves");
        println!("\n################ {alias} -> {} ################", m.name());
        let fits = best_curve_fits(m.as_ref(), 2, &LmConfig::default()).expect("LM converges");
        let mut methods = Vec::new();
        for fit in &fits {
            let errors = fit.estimation_errors(m.as_ref());
            let (lo, hi) = peaks(&errors);
            println!("\n-- curve fit ({}) -- peak errors: {:.0}, {:.0}", fit.kind().name(), lo, hi);
            println!("{}", ascii_histogram(&errors, 9, 40));
            methods.push(json!({
                "method": format!("cf_{}", fit.kind().name()),
                "peak_neg": lo, "peak_pos": hi,
                "mae": fit.estimation_mae(m.as_ref()),
            }));
        }
        let pr = PrModel::fit(m.as_ref(), 3);
        let errors = pr.estimation_errors(m.as_ref());
        let (lo, hi) = peaks(&errors);
        println!("\n-- polynomial regression (degree 3) -- peak errors: {:.0}, {:.0}", lo, hi);
        println!("{}", ascii_histogram(&errors, 9, 40));
        methods.push(json!({
            "method": "pr_d3",
            "peak_neg": lo, "peak_pos": hi,
            "mae": pr.estimation_mae(m.as_ref()),
        }));
        results.push(json!({"alias": alias, "operator": m.name(), "methods": methods}));
    }
    println!("\nExpected shape (paper): for both operators the PR model shows");
    println!("fewer and smaller estimation errors than the curve-fit models,");
    println!("with dramatically tighter peaks on the accurate multiplier.");
    save_json("fig4", &json!({ "operators": results }));
}
