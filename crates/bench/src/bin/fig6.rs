//! Fig. 6: actual vs PR-estimated average absolute relative error for
//! the five T_9..T_13 multipliers, with coefficient clipping
//! (Clipped_8 / Clipped_6 / Clipped_5).

use clapped_axops::{Catalog, Mul8s};
use clapped_bench::{print_table, save_json};
use clapped_errmodel::{rank_terms, ErrorStats, PrModel};
use serde_json::json;

/// Average absolute relative error of a PR model used as the operator.
fn est_rel(pr: &PrModel) -> f64 {
    ErrorStats::from_fns(
        |a, b| i32::from(pr.predict_i16(a, b)),
        |a, b| i32::from(a) * i32::from(b),
    )
    .mean_relative
}

fn main() {
    let catalog = Catalog::standard();
    // The paper's T_9..T_13 x-axis; operators chosen from the library's
    // accuracy middle band (see EXPERIMENTS.md for the class mapping).
    let aliases = ["mul8s_loa8", "mul8s_loa6", "mul8s_log", "mul8s_drum4", "mul8s_drum5"];
    let muls: Vec<_> = aliases
        .iter()
        .map(|a| catalog.get(a).expect("alias resolves"))
        .collect();
    let models: Vec<PrModel> = muls.iter().map(|m| PrModel::fit(m.as_ref(), 3)).collect();
    let refs: Vec<&PrModel> = models.iter().collect();
    let ranking = rank_terms(&refs);

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for ((alias, m), pr) in aliases.iter().zip(&muls).zip(&models) {
        let actual = ErrorStats::of_multiplier(m.as_ref()).mean_relative;
        let estimated = est_rel(pr);
        let clipped8 = est_rel(&pr.clipped(&ranking, 8));
        let clipped6 = est_rel(&pr.clipped(&ranking, 6));
        let clipped5 = est_rel(&pr.clipped(&ranking, 5));
        rows.push(vec![
            format!("{alias} ({})", m.name()),
            format!("{actual:.4}"),
            format!("{estimated:.4}"),
            format!("{clipped8:.4}"),
            format!("{clipped6:.4}"),
            format!("{clipped5:.4}"),
        ]);
        json_rows.push(json!({
            "alias": alias, "operator": m.name(),
            "actual": actual, "estimated": estimated,
            "clipped8": clipped8, "clipped6": clipped6, "clipped5": clipped5,
        }));
    }
    print_table(
        "Fig 6: average absolute relative error, actual vs PR estimates",
        &["multiplier", "Actual", "Estimated", "Clipped_8", "Clipped_6", "Clipped_5"],
        &rows,
    );
    let mean_gap: f64 = json_rows
        .iter()
        .map(|r| {
            let a = r["actual"].as_f64().expect("actual");
            let e = r["estimated"].as_f64().expect("estimated");
            if a > 0.0 {
                (a - e).abs() / a
            } else {
                0.0
            }
        })
        .sum::<f64>()
        / json_rows.len() as f64;
    println!("\nmean |actual-estimated|/actual over the five multipliers: {:.1}%", 100.0 * mean_gap);
    println!("Expected shape (paper): estimates track the actual values closely");
    println!("and Clipped_5 degrades the estimates only marginally.");
    save_json("fig6", &json!({ "rows": json_rows, "mean_relative_gap": mean_gap }));
}
