//! Observability overhead snapshot: per-operation cost of the
//! instrumentation entry points, disabled and enabled. The disabled
//! figures are the acceptance numbers — instrumentation lives in hot
//! code unconditionally, so a disabled span enter/exit must stay under
//! 5 ns. Emits `results/bench_obs.json` so overhead regressions are
//! diffable.
//!
//! Usage: `bench_obs [--quick]` — `--quick` shrinks iteration counts
//! for CI smoke runs.

use clapped_bench::{print_table, save_json};
use serde_json::json;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`reps` mean ns/op of `iters` calls to `f` (one warmup rep).
fn ns_per_op(reps: usize, iters: u64, mut f: impl FnMut()) -> f64 {
    let mut run = |iters: u64| {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    };
    run(iters.min(1000)); // warmup
    (0..reps).map(|_| run(iters)).fold(f64::INFINITY, f64::min)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "quick");
    let (reps, iters) = if quick { (3, 200_000) } else { (10, 2_000_000) };

    clapped_obs::reset();
    let disabled_span = ns_per_op(reps, iters, || {
        let _ = black_box(clapped_obs::span(black_box("bench.obs.span")));
    });
    let disabled_count = ns_per_op(reps, iters, || {
        clapped_obs::count(black_box("bench.obs.counter"), black_box(1));
    });
    let disabled_observe = ns_per_op(reps, iters, || {
        clapped_obs::observe(black_box("bench.obs.hist"), black_box(42));
    });

    clapped_obs::enable();
    let enabled_span = ns_per_op(reps, iters, || {
        let _ = black_box(clapped_obs::span(black_box("bench.obs.span")));
    });
    let enabled_count = ns_per_op(reps, iters, || {
        clapped_obs::count(black_box("bench.obs.counter"), black_box(1));
    });
    let enabled_observe = ns_per_op(reps, iters, || {
        clapped_obs::observe(black_box("bench.obs.hist"), black_box(42));
    });
    clapped_obs::reset();

    let rows: Vec<(&str, f64, f64)> = vec![
        ("span enter/exit", disabled_span, enabled_span),
        ("counter add", disabled_count, enabled_count),
        ("histogram observe", disabled_observe, enabled_observe),
    ];
    print_table(
        "observability overhead (ns/op, best of reps)",
        &["operation", "disabled", "enabled"],
        &rows.iter()
            .map(|(name, d, e)| {
                vec![name.to_string(), format!("{d:.2}"), format!("{e:.2}")]
            })
            .collect::<Vec<_>>(),
    );

    let budget_ok = disabled_span < 5.0;
    println!(
        "\ndisabled span enter/exit: {disabled_span:.2} ns/op (budget 5 ns) — {}",
        if budget_ok { "OK" } else { "OVER BUDGET" }
    );

    save_json(
        "bench_obs",
        &json!({
            "quick": quick,
            "iters": iters,
            "reps": reps,
            "ns_per_op": {
                "disabled": {
                    "span": disabled_span,
                    "count": disabled_count,
                    "observe": disabled_observe,
                },
                "enabled": {
                    "span": enabled_span,
                    "count": enabled_count,
                    "observe": enabled_observe,
                },
            },
            "disabled_span_budget_ns": 5.0,
            "disabled_span_within_budget": budget_ok,
        }),
    );
    if !budget_ok {
        std::process::exit(1);
    }
}
