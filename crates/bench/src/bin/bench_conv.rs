//! Hot-path performance snapshot: compiled convolution plans vs the
//! naive reference across the cross-layer DoFs, and batched vs
//! per-point GP acquisition prediction. Emits machine-readable numbers
//! to `results/bench_conv.json` so perf regressions are diffable.
//!
//! Usage: `bench_conv [--quick]` — `--quick` shrinks images and
//! repetitions for CI smoke runs.

use clapped_axops::{Catalog, Mul8s};
use clapped_dse::Gp;
use clapped_imgproc::{ConvConfig, ConvEngine, ConvMode, Image, QuantKernel, SynthKind};
use clapped_bench::{print_table, save_json};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde_json::json;
use std::sync::Arc;
use std::time::Instant;

/// Best-of-`reps` wall-clock seconds of `f` (a warmup call is dropped
/// first — it is where plan-LUT memoization faults in).
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    std::hint::black_box(f());
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "quick");
    let (size, reps) = if quick { (64, 3) } else { (256, 10) };
    let catalog = Catalog::standard();
    let op = catalog.get("mul8s_bam_v8_h3").expect("catalog operator");
    let img = Image::synthetic(SynthKind::Blobs, size, size, 7);

    let configs = [
        ("2d_w3_s1", ConvConfig::default()),
        (
            "2d_w3_s2_down",
            ConvConfig { stride: 2, downsample: true, ..ConvConfig::default() },
        ),
        (
            "2d_w3_s2_replicate",
            ConvConfig { stride: 2, downsample: false, ..ConvConfig::default() },
        ),
        (
            "2d_w5_s1",
            ConvConfig { window: 5, ..ConvConfig::default() },
        ),
        (
            "sep_w3_s1",
            ConvConfig { mode: ConvMode::Separable, ..ConvConfig::default() },
        ),
    ];
    let mut rows = Vec::new();
    let mut conv_json = Vec::new();
    for (name, cfg) in configs {
        let engine = ConvEngine::new(QuantKernel::gaussian(cfg.window, 0.85));
        let muls: Vec<Arc<dyn Mul8s>> =
            (0..cfg.taps()).map(|_| op.clone() as Arc<dyn Mul8s>).collect();
        let fast = engine.convolve(&img, &cfg, &muls).expect("valid config");
        let slow = engine.convolve_naive(&img, &cfg, &muls).expect("valid config");
        assert_eq!(fast, slow, "compiled path must stay bit-identical");
        let t_naive = time_best(reps, || engine.convolve_naive(&img, &cfg, &muls));
        let t_compiled = time_best(reps, || engine.convolve(&img, &cfg, &muls));
        let speedup = t_naive / t_compiled;
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", t_naive * 1e3),
            format!("{:.3}", t_compiled * 1e3),
            format!("{speedup:.1}x"),
        ]);
        conv_json.push(json!({
            "config": name,
            "image_size": size,
            "naive_ms": t_naive * 1e3,
            "compiled_ms": t_compiled * 1e3,
            "speedup": speedup,
        }));
    }
    print_table(
        &format!("Compiled convolution plans vs naive ({size}x{size}, best of {reps})"),
        &["config", "naive ms", "compiled ms", "speedup"],
        &rows,
    );

    // GP acquisition: one surrogate fit, then the per-iteration shape of
    // the MBO acquisition loop — predict every candidate — per-point vs
    // batched.
    let (n_train, n_queries) = if quick { (60, 20) } else { (150, 50) };
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let xs: Vec<Vec<f64>> = (0..n_train)
        .map(|_| (0..10).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| x.iter().sum::<f64>()).collect();
    let gp = Gp::fit(&xs, &ys).expect("fits");
    let queries: Vec<Vec<f64>> = (0..n_queries)
        .map(|_| (0..10).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let per_point = gp
        .predict_batch(&queries)
        .expect("valid queries")
        .into_iter()
        .zip(queries.iter().map(|q| gp.predict(q)))
        .all(|(b, p)| b == p);
    assert!(per_point, "batched prediction must match per-point exactly");
    let t_point = time_best(reps.max(5), || {
        queries.iter().map(|q| gp.predict(q)).collect::<Vec<_>>()
    });
    let t_batch = time_best(reps.max(5), || gp.predict_batch(&queries).expect("valid"));
    let acq_speedup = t_point / t_batch;
    print_table(
        &format!("GP acquisition prediction ({n_train} train pts, {n_queries} candidates)"),
        &["method", "time us"],
        &[
            vec!["per-point".to_string(), format!("{:.1}", t_point * 1e6)],
            vec![
                format!("batched ({acq_speedup:.1}x)"),
                format!("{:.1}", t_batch * 1e6),
            ],
        ],
    );

    save_json(
        "bench_conv",
        &json!({
            "quick": quick,
            "convolution": conv_json,
            "acquisition": {
                "train_points": n_train,
                "candidates": n_queries,
                "per_point_us": t_point * 1e6,
                "batched_us": t_batch * 1e6,
                "speedup": acq_speedup,
            },
        }),
    );
}
