//! Fig. 12(a): DSE quality over evaluation budget — hypervolume of the
//! application-error × LUT-utilization front for MBO vs random search.
//! Both methods use the ML-based estimation of error and LUTs, as in
//! the paper (10 new samples per iteration from 50 candidates).

use clapped_bench::{print_table, save_json};
use clapped_core::{Clapped, MulRepr};
use clapped_dse::{mbo, random_search, MboConfig};
use clapped_mlp::TrainConfig;
use serde_json::json;

fn main() {
    let fw = Clapped::builder()
        .image_size(32)
        .noise_sigma(12.0)
        .seed(5)
        .build()
        .expect("framework construction");
    let repr = MulRepr::Coeffs(4);

    // Train the ML estimators once on a common dataset (error from the
    // behavioural model, LUTs from true synthesis).
    let n_train = 150;
    println!("building the ML estimators ({n_train} training configs) ...");
    let (configs, xs, ys) = fw
        .make_error_dataset(n_train, repr, 1234)
        .expect("behavioural evaluation");
    let train_cfg = TrainConfig {
        epochs: 150,
        patience: 25,
        ..TrainConfig::default()
    };
    let err_model = fw
        .train_error_model(&xs, &ys, &train_cfg)
        .expect("error model trains");
    let lut_ys: Vec<f64> = configs
        .iter()
        .map(|c| fw.characterize_hw(c).expect("synthesis").luts as f64)
        .collect();
    let hw_xs: Vec<Vec<f64>> = configs
        .iter()
        .map(|c| fw.encode_hw(c).expect("library characterized"))
        .collect();
    let lut_model = clapped_mlp::Regressor::fit(&hw_xs, &lut_ys, &[32, 16], &train_cfg)
        .expect("LUT model trains");

    let objective = |c: &clapped_dse::Configuration| -> Vec<f64> {
        let x = fw.encode(c, repr);
        let hx = fw.encode_hw(c).expect("library characterized");
        vec![
            err_model.predict(&x).max(0.0),
            lut_model.predict(&hx).max(0.0),
        ]
    };
    // Average the traces over several search seeds: a single seed's
    // comparison is dominated by which method gets lucky early.
    let seeds: Vec<u64> = vec![17, 23, 71, 101, 137];
    let mut mbo_traces: Vec<Vec<(usize, f64)>> = Vec::new();
    let mut rnd_traces: Vec<Vec<(usize, f64)>> = Vec::new();
    for &seed in &seeds {
        let mbo_cfg = MboConfig {
            initial_samples: 100,
            iterations: 40,
            batch: 10,
            candidates: 50,
            reference: vec![30.0, 4000.0],
            kappa: 1.0,
            explore_fraction: 0.1,
            seed,
        };
        println!(
            "seed {seed}: MBO + random search ({} evaluations each) ...",
            mbo_cfg.initial_samples + mbo_cfg.iterations * mbo_cfg.batch
        );
        let space = fw.space().clone();
        let surrogate_features = |c: &clapped_dse::Configuration| -> Vec<f64> {
            let mut v = fw.encode(c, repr);
            v.extend(fw.encode_hw(c).expect("library characterized"));
            v
        };
        let mbo_run = mbo(
            &mbo_cfg,
            |rng| space.sample(rng),
            surrogate_features,
            objective,
        )
        .expect("MBO run");
        let space2 = fw.space().clone();
        let rnd_run = random_search(&mbo_cfg, |rng| space2.sample(rng), objective)
            .expect("random search run");
        mbo_traces.push(mbo_run.hv_trace);
        rnd_traces.push(rnd_run.hv_trace);
    }
    let mean_at = |traces: &[Vec<(usize, f64)>], idx: usize| -> f64 {
        traces.iter().map(|t| t[idx].1).sum::<f64>() / traces.len() as f64
    };
    let n_points = mbo_traces[0].len();
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for i in 0..n_points {
        let evals = mbo_traces[0][i].0;
        let hm = mean_at(&mbo_traces, i);
        let hr = mean_at(&rnd_traces, i);
        if evals.is_multiple_of(50) {
            rows.push(vec![
                format!("{evals}"),
                format!("{hm:.0}"),
                format!("{hr:.0}"),
            ]);
        }
        series.push(json!({"evaluations": evals, "hv_mbo": hm, "hv_random": hr}));
    }
    print_table(
        &format!("Fig 12(a): mean hypervolume over {} seeds", seeds.len()),
        &["#evals", "HV_MBO", "HV_RANDOM"],
        &rows,
    );
    let final_mbo = mean_at(&mbo_traces, n_points - 1);
    let final_rnd = mean_at(&rnd_traces, n_points - 1);
    let wins = mbo_traces
        .iter()
        .zip(&rnd_traces)
        .filter(|(m, r)| m.last().expect("trace").1 >= r.last().expect("trace").1)
        .count();
    println!("\nmean final hypervolume: MBO {final_mbo:.0} vs random {final_rnd:.0}");
    println!("MBO wins {wins}/{} seeds", seeds.len());
    println!("Expected shape (paper): MBO reaches higher hypervolume with fewer");
    println!("evaluations than random search.");
    save_json(
        "fig12a",
        &json!({
            "seeds": seeds, "series": series,
            "final_mbo_mean": final_mbo, "final_random_mean": final_rnd,
            "mbo_wins": wins,
        }),
    );
}
