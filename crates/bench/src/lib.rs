//! Experiment harnesses reproducing every table and figure of the
//! CLAppED paper's evaluation (Section V).
//!
//! Each `fig*`/`table*` binary in `src/bin/` regenerates one artifact:
//! it prints the same rows/series the paper reports and saves a
//! machine-readable copy under `results/`. EXPERIMENTS.md records the
//! paper-vs-measured comparison.
//!
//! | binary      | paper artifact                                         |
//! |-------------|--------------------------------------------------------|
//! | `fig1c`     | PSNR/energy trade-off of the motivating example        |
//! | `fig3`      | distribution ranking + curve-fit vs PR estimation MAE  |
//! | `fig4`      | estimation-error histograms, curve fit vs PR           |
//! | `fig6`      | actual vs estimated avg-abs-relative error, Clipped_k  |
//! | `fig7`      | retrained C2–C9 models of the 1KR3 analogue            |
//! | `fig8`      | MLP MAE per multiplier representation (plus Fig. 9)    |
//! | `fig10a`    | MAE and inference time vs coefficient count            |
//! | `fig10b`    | generalization to unseen multipliers (M4 vs C4)        |
//! | `fig11`     | accelerator-metric MLP fidelity, IDX vs EXP            |
//! | `table1`    | EXP model dimensions per metric                        |
//! | `fig12a`    | hypervolume progress, MBO vs random search             |
//! | `fig12b`    | Pareto analysis with actual re-evaluation              |
//! | `adders_pr` | Section II-A adder claim (PR vs curve-fit MAE)         |
//!
//! Extension harnesses: `dse_baselines` (NSGA-II/SA/random vs MBO),
//! `ablation_mbo` (acquisition design knobs), `window_sweep` (window-size
//! DoF), `catalog_hw` (operator library hardware card), and
//! `multi_objective` (4-objective DSE with WFG hypervolume).

use std::fs;
use std::path::PathBuf;

/// Formats and prints an aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Directory where harnesses drop machine-readable results.
pub fn results_dir() -> PathBuf {
    // Walk up from the crate to the workspace root.
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir.join("results")
}

/// Saves a JSON value under `results/<name>.json`.
///
/// # Panics
///
/// Panics if the results directory cannot be created or written — a
/// harness without its artifact is a failed run.
pub fn save_json(name: &str, value: &serde_json::Value) {
    let dir = results_dir();
    fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, serde_json::to_string_pretty(value).expect("serializable"))
        .expect("write results file");
    println!("[saved {}]", path.display());
}

/// Builds a histogram of samples as `(bin_center, count)` pairs.
///
/// # Panics
///
/// Panics if `bins == 0` or `samples` is empty.
pub fn histogram(samples: &[f64], bins: usize) -> Vec<(f64, usize)> {
    assert!(bins > 0 && !samples.is_empty());
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let width = ((max - min) / bins as f64).max(1e-12);
    let mut counts = vec![0usize; bins];
    for &s in samples {
        let idx = (((s - min) / width) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| (min + (i as f64 + 0.5) * width, c))
        .collect()
}

/// Renders a histogram as a compact ASCII bar chart.
pub fn ascii_histogram(samples: &[f64], bins: usize, bar_width: usize) -> String {
    let h = histogram(samples, bins);
    let max_count = h.iter().map(|&(_, c)| c).max().unwrap_or(1).max(1);
    h.iter()
        .map(|&(center, count)| {
            let bar = "#".repeat(count * bar_width / max_count);
            format!("{center:>10.1} |{bar} {count}")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_covers_all_samples() {
        let samples = vec![0.0, 1.0, 2.0, 3.0, 4.0, 4.0];
        let h = histogram(&samples, 5);
        let total: usize = h.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, samples.len());
        assert_eq!(h.len(), 5);
    }

    #[test]
    fn histogram_handles_constant_samples() {
        let samples = vec![2.0; 10];
        let h = histogram(&samples, 4);
        let total: usize = h.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn ascii_histogram_renders() {
        let s = ascii_histogram(&[1.0, 1.0, 2.0, 5.0], 4, 10);
        assert!(s.contains('#'));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn results_dir_points_into_workspace() {
        assert!(results_dir().ends_with("results"));
    }
}
