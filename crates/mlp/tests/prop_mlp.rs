//! Property tests for the MLP stack and its metrics.

use clapped_mlp::{fidelity, mae, r2_score, rmse, Activation, Mlp};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Forward passes are deterministic and finite for arbitrary inputs.
    #[test]
    fn forward_is_finite(x in proptest::collection::vec(-100.0f64..100.0, 3), seed: u64) {
        let m = Mlp::new(&[3, 8, 2], Activation::Relu, Activation::Identity, seed);
        let y1 = m.forward(&x);
        let y2 = m.forward(&x);
        prop_assert_eq!(&y1, &y2);
        prop_assert!(y1.iter().all(|v| v.is_finite()));
    }

    /// MAE and RMSE are symmetric, non-negative, translation-covariant;
    /// RMSE dominates MAE (Jensen).
    #[test]
    fn error_metric_axioms(
        a in proptest::collection::vec(-10.0f64..10.0, 2..30),
        shift in -5.0f64..5.0,
    ) {
        let b: Vec<f64> = a.iter().map(|v| v + shift).collect();
        prop_assert!((mae(&a, &b) - shift.abs()).abs() < 1e-12);
        prop_assert!((mae(&a, &b) - mae(&b, &a)).abs() < 1e-12);
        prop_assert!(rmse(&a, &b) + 1e-12 >= mae(&a, &b));
    }

    /// R² of a perfect prediction is 1; adding error can only lower it.
    #[test]
    fn r2_axioms(a in proptest::collection::vec(-10.0f64..10.0, 3..30), noise in 0.1f64..5.0) {
        prop_assume!(clapped_la::population_std(&a) > 1e-6);
        prop_assert!((r2_score(&a, &a) - 1.0).abs() < 1e-12);
        let noisy: Vec<f64> = a.iter().enumerate().map(|(i, v)| v + if i % 2 == 0 { noise } else { -noise }).collect();
        prop_assert!(r2_score(&a, &noisy) <= 1.0);
    }

    /// Fidelity is invariant under strictly increasing transforms of the
    /// predictions.
    #[test]
    fn fidelity_monotone_invariance(
        actual in proptest::collection::vec(-10.0f64..10.0, 2..25),
        scale in 0.1f64..5.0,
        offset in -10.0f64..10.0,
    ) {
        let predicted: Vec<f64> = actual.iter().map(|v| v * 0.5 + 1.0).collect();
        let transformed: Vec<f64> = predicted.iter().map(|v| v * scale + offset).collect();
        let f1 = fidelity(&actual, &predicted);
        let f2 = fidelity(&actual, &transformed);
        prop_assert!((f1 - f2).abs() < 1e-9, "{} vs {}", f1, f2);
    }

    /// Fidelity against the actual values themselves is always 100 %.
    #[test]
    fn self_fidelity_is_perfect(actual in proptest::collection::vec(-10.0f64..10.0, 2..25)) {
        prop_assert_eq!(fidelity(&actual, &actual), 100.0);
    }

    /// Reversing all predictions of a strictly ordered series gives 0 %.
    #[test]
    fn antitone_fidelity_is_zero(n in 2usize..20) {
        let actual: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let reversed: Vec<f64> = (0..n).map(|i| -(i as f64)).collect();
        prop_assert_eq!(fidelity(&actual, &reversed), 0.0);
    }

    /// Parameter counts follow the layer algebra.
    #[test]
    fn parameter_count_formula(h1 in 1usize..16, h2 in 1usize..16) {
        let m = Mlp::new(&[5, h1, h2, 1], Activation::Tanh, Activation::Identity, 0);
        let expect = 5 * h1 + h1 + h1 * h2 + h2 + h2 + 1;
        prop_assert_eq!(m.parameter_count(), expect);
    }
}
