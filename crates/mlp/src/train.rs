//! Deterministic minibatch training (SGD / Adam) and the standardizing
//! [`Regressor`] wrapper.

use crate::net::{Activation, Gradients, Mlp};
use crate::{MlpError, Result};
use clapped_la::{Mat, Standardizer};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Gradient-descent flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Optimizer {
    /// Plain stochastic gradient descent.
    Sgd,
    /// Adam with the usual (0.9, 0.999) moment decays.
    #[default]
    Adam,
}

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Maximum number of epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Optimizer flavour.
    pub optimizer: Optimizer,
    /// Fraction of the training data held out for validation
    /// (the paper uses 20 %).
    pub validation_fraction: f64,
    /// Stop after this many epochs without validation improvement
    /// (0 disables early stopping).
    pub patience: usize,
    /// RNG seed for weight init and shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 200,
            batch_size: 32,
            learning_rate: 1e-3,
            optimizer: Optimizer::Adam,
            validation_fraction: 0.2,
            patience: 30,
            seed: 1,
        }
    }
}

/// Summary of one training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean training loss per epoch (half-MSE).
    pub train_loss: Vec<f64>,
    /// Mean validation loss per epoch (empty when no validation split).
    pub val_loss: Vec<f64>,
    /// Epoch at which training stopped.
    pub stopped_epoch: usize,
    /// Samples used for gradient updates (always at least 1).
    pub n_train: usize,
    /// Samples held out for validation. When 0 — a tiny dataset or a
    /// `validation_fraction` that rounds to nothing — early stopping
    /// monitors the training loss instead.
    pub n_val: usize,
}

/// Adam/SGD state per layer.
struct OptState {
    m_w: Vec<Mat>,
    v_w: Vec<Mat>,
    m_b: Vec<Vec<f64>>,
    v_b: Vec<Vec<f64>>,
    t: usize,
}

impl OptState {
    fn new(mlp: &Mlp) -> OptState {
        OptState {
            m_w: mlp.layers.iter().map(|l| Mat::zeros(l.w.rows(), l.w.cols())).collect(),
            v_w: mlp.layers.iter().map(|l| Mat::zeros(l.w.rows(), l.w.cols())).collect(),
            m_b: mlp.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
            v_b: mlp.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
            t: 0,
        }
    }
}

/// A feature- and target-standardizing MLP regressor with a scalar
/// output — the model CLAppED uses for quality and performance
/// prediction.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Regressor {
    x_std: Standardizer,
    y_mean: f64,
    y_scale: f64,
    mlp: Mlp,
    report: TrainReport,
}

impl Regressor {
    /// Fits a regressor with the given hidden layer sizes.
    ///
    /// Features and targets are z-score standardized internally; hidden
    /// layers use ReLU, the output is linear.
    ///
    /// # Errors
    ///
    /// Returns [`MlpError::BadDataset`] if `xs` is empty, lengths
    /// disagree, or rows have inconsistent dimensions.
    pub fn fit(
        xs: &[Vec<f64>],
        ys: &[f64],
        hidden: &[usize],
        config: &TrainConfig,
    ) -> Result<Regressor> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(MlpError::BadDataset {
                reason: format!("{} feature rows vs {} targets", xs.len(), ys.len()),
            });
        }
        let dim = xs[0].len();
        if dim == 0 || xs.iter().any(|r| r.len() != dim) {
            return Err(MlpError::BadDataset {
                reason: "inconsistent or empty feature rows".to_string(),
            });
        }
        let x_std = Standardizer::fit(xs);
        let xt = x_std.transform(xs);
        let y_mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let y_var = ys.iter().map(|y| (y - y_mean) * (y - y_mean)).sum::<f64>() / ys.len() as f64;
        let y_scale = if y_var > 0.0 { y_var.sqrt() } else { 1.0 };
        let yt: Vec<Vec<f64>> = ys.iter().map(|y| vec![(y - y_mean) / y_scale]).collect();

        let mut sizes = vec![dim];
        sizes.extend_from_slice(hidden);
        sizes.push(1);
        let mut mlp = Mlp::new(&sizes, Activation::Relu, Activation::Identity, config.seed);
        let report = train(&mut mlp, &xt, &yt, config);
        Ok(Regressor {
            x_std,
            y_mean,
            y_scale,
            mlp,
            report,
        })
    }

    /// Predicts the target for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training feature dimension.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let xt = self.x_std.transform_row(x);
        self.mlp.forward(&xt)[0] * self.y_scale + self.y_mean
    }

    /// Predicts a batch of rows.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// The training report.
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    /// Number of trainable parameters in the underlying network.
    pub fn parameter_count(&self) -> usize {
        self.mlp.parameter_count()
    }
}

/// Trains an MLP in place on pre-standardized data; returns the report.
pub(crate) fn train(
    mlp: &mut Mlp,
    xs: &[Vec<f64>],
    ys: &[Vec<f64>],
    config: &TrainConfig,
) -> TrainReport {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(0x9E37_79B9));
    let n = xs.len();
    // Clamp the split so at least one training sample always remains,
    // even when `validation_fraction` rounds up to the whole dataset.
    let n_val = (((n as f64) * config.validation_fraction).round() as usize)
        .min(n.saturating_sub(1));
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let (val_idx, train_idx) = order.split_at(n_val);
    let train_idx: Vec<usize> = train_idx.to_vec();
    let val_idx: Vec<usize> = val_idx.to_vec();

    let mut state = OptState::new(mlp);
    let mut best_val = f64::INFINITY;
    let mut best_weights: Option<Mlp> = None;
    let mut since_best = 0usize;
    let mut train_hist = Vec::new();
    let mut val_hist = Vec::new();
    let mut stopped = config.epochs;

    let mut epoch_order = train_idx.clone();
    for epoch in 0..config.epochs {
        epoch_order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        for batch in epoch_order.chunks(config.batch_size.max(1)) {
            let mut acc: Option<Gradients> = None;
            for &i in batch {
                let trace = mlp.forward_traced(&xs[i]);
                let g = mlp.backward(&trace, &ys[i]);
                let y_hat = mlp.forward(&xs[i]);
                epoch_loss += 0.5
                    * y_hat
                        .iter()
                        .zip(&ys[i])
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>();
                acc = Some(match acc {
                    None => g,
                    Some(mut a) => {
                        for (aw, gw) in a.dw.iter_mut().zip(&g.dw) {
                            *aw = aw.add(gw).expect("same shapes");
                        }
                        for (ab, gb) in a.db.iter_mut().zip(&g.db) {
                            for (x, y) in ab.iter_mut().zip(gb) {
                                *x += y;
                            }
                        }
                        a
                    }
                });
            }
            if let Some(mut g) = acc {
                let scale = 1.0 / batch.len() as f64;
                for gw in &mut g.dw {
                    *gw = gw.scale(scale);
                }
                for gb in &mut g.db {
                    for x in gb.iter_mut() {
                        *x *= scale;
                    }
                }
                apply_update(mlp, &g, &mut state, config);
            }
        }
        let tloss = epoch_loss / train_idx.len().max(1) as f64;
        train_hist.push(tloss);

        // Early stopping monitors validation loss when a split exists,
        // and falls back to the training loss otherwise — an empty
        // validation set must not silently disable best-weight tracking.
        let monitored = if val_idx.is_empty() {
            tloss
        } else {
            let vloss = val_idx
                .iter()
                .map(|&i| {
                    let y_hat = mlp.forward(&xs[i]);
                    0.5 * y_hat
                        .iter()
                        .zip(&ys[i])
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                })
                .sum::<f64>()
                / val_idx.len() as f64;
            val_hist.push(vloss);
            vloss
        };
        if monitored < best_val - 1e-12 {
            best_val = monitored;
            best_weights = Some(mlp.clone());
            since_best = 0;
        } else {
            since_best += 1;
            if config.patience > 0 && since_best >= config.patience {
                stopped = epoch + 1;
                break;
            }
        }
    }
    if let Some(best) = best_weights {
        *mlp = best;
    }
    TrainReport {
        train_loss: train_hist,
        val_loss: val_hist,
        stopped_epoch: stopped,
        n_train: train_idx.len(),
        n_val: val_idx.len(),
    }
}

fn apply_update(mlp: &mut Mlp, g: &Gradients, state: &mut OptState, config: &TrainConfig) {
    let lr = config.learning_rate;
    match config.optimizer {
        Optimizer::Sgd => {
            for (li, layer) in mlp.layers.iter_mut().enumerate() {
                for r in 0..layer.w.rows() {
                    for c in 0..layer.w.cols() {
                        layer.w[(r, c)] -= lr * g.dw[li][(r, c)];
                    }
                }
                for (b, gb) in layer.b.iter_mut().zip(&g.db[li]) {
                    *b -= lr * gb;
                }
            }
        }
        Optimizer::Adam => {
            const B1: f64 = 0.9;
            const B2: f64 = 0.999;
            const EPS: f64 = 1e-8;
            state.t += 1;
            let t = state.t as f64;
            let bc1 = 1.0 - B1.powf(t);
            let bc2 = 1.0 - B2.powf(t);
            for (li, layer) in mlp.layers.iter_mut().enumerate() {
                for r in 0..layer.w.rows() {
                    for c in 0..layer.w.cols() {
                        let grad = g.dw[li][(r, c)];
                        let m = &mut state.m_w[li][(r, c)];
                        *m = B1 * *m + (1.0 - B1) * grad;
                        let v = &mut state.v_w[li][(r, c)];
                        *v = B2 * *v + (1.0 - B2) * grad * grad;
                        let mhat = state.m_w[li][(r, c)] / bc1;
                        let vhat = state.v_w[li][(r, c)] / bc2;
                        layer.w[(r, c)] -= lr * mhat / (vhat.sqrt() + EPS);
                    }
                }
                for bi in 0..layer.b.len() {
                    let grad = g.db[li][bi];
                    state.m_b[li][bi] = B1 * state.m_b[li][bi] + (1.0 - B1) * grad;
                    state.v_b[li][bi] = B2 * state.v_b[li][bi] + (1.0 - B2) * grad * grad;
                    let mhat = state.m_b[li][bi] / bc1;
                    let vhat = state.v_b[li][bi] / bc2;
                    layer.b[bi] -= lr * mhat / (vhat.sqrt() + EPS);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{mae, r2_score};

    fn grid_dataset(f: impl Fn(f64, f64) -> f64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let (a, b) = (i as f64 / 10.0 - 1.0, j as f64 / 10.0 - 1.0);
                xs.push(vec![a, b]);
                ys.push(f(a, b));
            }
        }
        (xs, ys)
    }

    #[test]
    fn learns_linear_function() {
        let (xs, ys) = grid_dataset(|a, b| 3.0 * a - 2.0 * b + 1.0);
        let config = TrainConfig {
            epochs: 300,
            ..TrainConfig::default()
        };
        let model = Regressor::fit(&xs, &ys, &[8], &config).unwrap();
        let preds = model.predict_batch(&xs);
        assert!(r2_score(&ys, &preds) > 0.99, "r2 {}", r2_score(&ys, &preds));
    }

    #[test]
    fn learns_nonlinear_function() {
        let (xs, ys) = grid_dataset(|a, b| a * b + 0.5 * a * a);
        let config = TrainConfig {
            epochs: 600,
            learning_rate: 3e-3,
            patience: 100,
            ..TrainConfig::default()
        };
        let model = Regressor::fit(&xs, &ys, &[24, 24], &config).unwrap();
        let preds = model.predict_batch(&xs);
        assert!(mae(&ys, &preds) < 0.05, "mae {}", mae(&ys, &preds));
    }

    #[test]
    fn training_is_deterministic() {
        let (xs, ys) = grid_dataset(|a, b| a + b);
        let config = TrainConfig {
            epochs: 50,
            ..TrainConfig::default()
        };
        let m1 = Regressor::fit(&xs, &ys, &[8], &config).unwrap();
        let m2 = Regressor::fit(&xs, &ys, &[8], &config).unwrap();
        assert_eq!(m1.predict(&[0.3, 0.4]), m2.predict(&[0.3, 0.4]));
    }

    #[test]
    fn sgd_also_converges_on_linear() {
        let (xs, ys) = grid_dataset(|a, b| a - b);
        let config = TrainConfig {
            epochs: 400,
            optimizer: Optimizer::Sgd,
            learning_rate: 0.05,
            ..TrainConfig::default()
        };
        let model = Regressor::fit(&xs, &ys, &[8], &config).unwrap();
        let preds = model.predict_batch(&xs);
        assert!(r2_score(&ys, &preds) > 0.95);
    }

    #[test]
    fn early_stopping_reports_epoch() {
        let (xs, ys) = grid_dataset(|a, _| a);
        let config = TrainConfig {
            epochs: 1000,
            patience: 5,
            ..TrainConfig::default()
        };
        let model = Regressor::fit(&xs, &ys, &[4], &config).unwrap();
        assert!(model.report().stopped_epoch <= 1000);
        assert!(!model.report().val_loss.is_empty());
    }

    #[test]
    fn tiny_datasets_train_with_any_validation_fraction() {
        for n in 1..=4usize {
            for vf in [0.0, 0.5] {
                let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
                let ys: Vec<f64> = (0..n).map(|i| i as f64).collect();
                let config = TrainConfig {
                    epochs: 30,
                    patience: 3,
                    validation_fraction: vf,
                    ..TrainConfig::default()
                };
                let model = Regressor::fit(&xs, &ys, &[4], &config)
                    .unwrap_or_else(|e| panic!("n={n} vf={vf}: {e:?}"));
                let report = model.report();
                assert_eq!(report.n_train + report.n_val, n, "n={n} vf={vf}");
                assert!(report.n_train >= 1, "at least one training sample must remain");
                assert_eq!(report.val_loss.len().min(1), usize::from(report.n_val > 0));
                if vf == 0.0 {
                    assert_eq!(report.n_val, 0);
                    assert!(report.val_loss.is_empty());
                }
                if n == 4 && vf == 0.5 {
                    assert_eq!((report.n_train, report.n_val), (2, 2));
                }
                assert!(report.train_loss.iter().all(|l| l.is_finite()));
                assert!(model.predict(&[0.5]).is_finite());
            }
        }
    }

    #[test]
    fn early_stopping_falls_back_to_training_loss_without_validation() {
        // validation_fraction rounds to zero: round(4 * 0.1) = 0 held out.
        let xs: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..4).map(|i| i as f64).collect();
        let config = TrainConfig {
            epochs: 100,
            patience: 3,
            validation_fraction: 0.1,
            // Zero learning rate freezes the loss, so the training-loss
            // monitor sees no improvement and patience must trigger.
            learning_rate: 0.0,
            ..TrainConfig::default()
        };
        let model = Regressor::fit(&xs, &ys, &[4], &config).unwrap();
        let report = model.report();
        assert_eq!(report.n_val, 0);
        assert!(report.val_loss.is_empty());
        assert_eq!(
            report.stopped_epoch,
            1 + config.patience,
            "patience over the training loss must stop the run"
        );
        assert!(report.stopped_epoch < config.epochs);
    }

    #[test]
    fn rejects_bad_datasets() {
        let config = TrainConfig::default();
        assert!(Regressor::fit(&[], &[], &[4], &config).is_err());
        assert!(Regressor::fit(&[vec![1.0]], &[1.0, 2.0], &[4], &config).is_err());
        assert!(Regressor::fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0], &[4], &config).is_err());
    }

    #[test]
    fn parameter_count_is_positive() {
        let (xs, ys) = grid_dataset(|a, _| a);
        let model = Regressor::fit(
            &xs,
            &ys,
            &[4],
            &TrainConfig {
                epochs: 1,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        assert_eq!(model.parameter_count(), 2 * 4 + 4 + 4 + 1);
    }
}
