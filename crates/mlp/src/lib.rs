// Index-based loops over multiple coupled arrays are the clearest idiom
// for the numeric kernels in this crate.
#![allow(clippy::needless_range_loop)]

//! From-scratch multi-layer perceptron (MLP) regression plus the quality
//! metrics CLAppED reports (MAE and *fidelity*).
//!
//! The paper trains MLPs to predict (a) an application's output quality
//! from a cross-layer configuration (Section II-B) and (b) accelerator
//! performance metrics from design features (Section III). This crate
//! provides the network, a deterministic Adam/SGD trainer with validation
//! split and early stopping, and a feature-standardizing [`Regressor`]
//! wrapper.
//!
//! # Examples
//!
//! ```
//! use clapped_mlp::{Regressor, TrainConfig};
//!
//! // Learn y = x0 + 2*x1 from a small grid.
//! let xs: Vec<Vec<f64>> = (0..64)
//!     .map(|i| vec![f64::from(i % 8), f64::from(i / 8)])
//!     .collect();
//! let ys: Vec<f64> = xs.iter().map(|x| x[0] + 2.0 * x[1]).collect();
//! let config = TrainConfig { epochs: 400, ..TrainConfig::default() };
//! let model = Regressor::fit(&xs, &ys, &[16], &config).unwrap();
//! let pred = model.predict(&[3.0, 4.0]);
//! assert!((pred - 11.0).abs() < 1.0);
//! ```

mod metrics;
mod net;
mod train;

pub use metrics::{fidelity, mae, r2_score, rmse};
pub use net::{Activation, Mlp};
pub use train::{Optimizer, Regressor, TrainConfig, TrainReport};

use std::error::Error;
use std::fmt;

/// Error type for MLP training.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MlpError {
    /// The dataset is empty or features/targets disagree in length.
    BadDataset {
        /// Description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for MlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlpError::BadDataset { reason } => write!(f, "bad dataset: {reason}"),
        }
    }
}

impl Error for MlpError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, MlpError>;
