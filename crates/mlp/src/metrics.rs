//! Regression quality metrics: MAE, RMSE, R² and the paper's *fidelity*.

/// Mean absolute error between actual and predicted values.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
///
/// # Examples
///
/// ```
/// assert_eq!(clapped_mlp::mae(&[1.0, 2.0], &[2.0, 2.0]), 0.5);
/// ```
pub fn mae(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "length mismatch");
    assert!(!actual.is_empty(), "empty inputs");
    actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p).abs())
        .sum::<f64>()
        / actual.len() as f64
}

/// Root-mean-square error.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn rmse(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "length mismatch");
    assert!(!actual.is_empty(), "empty inputs");
    (actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p) * (a - p))
        .sum::<f64>()
        / actual.len() as f64)
        .sqrt()
}

/// Coefficient of determination R².
///
/// Returns 1.0 for a perfect fit; can be negative for fits worse than the
/// mean predictor. A constant actual series yields 0.0 by convention.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn r2_score(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "length mismatch");
    assert!(!actual.is_empty(), "empty inputs");
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let sst: f64 = actual.iter().map(|a| (a - mean) * (a - mean)).sum();
    let sse: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p) * (a - p))
        .sum();
    if sst <= 0.0 {
        return if sse <= 1e-24 { 1.0 } else { 0.0 };
    }
    1.0 - sse / sst
}

/// The *fidelity* metric (paper Section V-B, after AutoAx): the
/// percentage of sample pairs whose ordering relation (`<`, `=`, `>`)
/// is preserved by the predictions.
///
/// Two values are considered equal when they differ by less than `1e-9`
/// in relative terms. Complexity is O(n²); the paper's sample sizes
/// (hundreds to a few thousand points) are well within range.
///
/// # Panics
///
/// Panics if the slices differ in length or hold fewer than 2 samples.
///
/// # Examples
///
/// ```
/// // Perfectly ordered predictions, even if biased, give 100 % fidelity.
/// let actual = [1.0, 2.0, 3.0];
/// let predicted = [11.0, 12.0, 13.0];
/// assert_eq!(clapped_mlp::fidelity(&actual, &predicted), 100.0);
/// ```
pub fn fidelity(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "length mismatch");
    assert!(actual.len() >= 2, "need at least two samples");
    let rel = |a: f64, b: f64| -> std::cmp::Ordering {
        let scale = a.abs().max(b.abs()).max(1e-12);
        if (a - b).abs() / scale < 1e-9 {
            std::cmp::Ordering::Equal
        } else if a < b {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    };
    let n = actual.len();
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            total += 1;
            if rel(actual[i], actual[j]) == rel(predicted[i], predicted[j]) {
                agree += 1;
            }
        }
    }
    100.0 * agree as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_and_rmse_basics() {
        let a = [1.0, 2.0, 3.0];
        let p = [1.0, 2.0, 3.0];
        assert_eq!(mae(&a, &p), 0.0);
        assert_eq!(rmse(&a, &p), 0.0);
        let p2 = [2.0, 3.0, 4.0];
        assert_eq!(mae(&a, &p2), 1.0);
        assert_eq!(rmse(&a, &p2), 1.0);
    }

    #[test]
    fn r2_perfect_and_mean_predictor() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(r2_score(&a, &a), 1.0);
        let mean = [2.5, 2.5, 2.5, 2.5];
        assert!(r2_score(&a, &mean).abs() < 1e-12);
    }

    #[test]
    fn fidelity_extremes() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let increasing = [0.1, 0.2, 0.3, 0.4];
        assert_eq!(fidelity(&a, &increasing), 100.0);
        let reversed = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(fidelity(&a, &reversed), 0.0);
    }

    #[test]
    fn fidelity_counts_partial_agreement() {
        let a = [1.0, 2.0, 3.0];
        // Pairs: (1,2) ok, (1,3) ok, (2,3) flipped.
        let p = [1.0, 3.0, 2.0];
        let f = fidelity(&a, &p);
        assert!((f - 100.0 * 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn fidelity_handles_ties() {
        let a = [1.0, 1.0, 2.0];
        let p = [5.0, 5.0, 9.0];
        assert_eq!(fidelity(&a, &p), 100.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = mae(&[1.0], &[1.0, 2.0]);
    }
}
