//! The MLP network: dense layers, activations, forward and backward
//! passes.

use clapped_la::Mat;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Activation functions supported by [`Mlp`] layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Identity (linear output layer).
    Identity,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the pre-activation `x` and the
    /// activation output `y`.
    fn derivative(self, x: f64, y: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Identity => 1.0,
        }
    }
}

/// One dense layer: `y = act(W x + b)`.
#[derive(Debug, Clone)]
pub(crate) struct Layer {
    pub(crate) w: Mat,
    pub(crate) b: Vec<f64>,
    pub(crate) act: Activation,
}

/// A multi-layer perceptron for regression.
///
/// Construct with [`Mlp::new`], train through
/// [`Regressor`](crate::Regressor) or drive the
/// [`Mlp::forward`] pass directly (the backward pass is internal to
/// the trainer).
#[derive(Debug, Clone)]
pub struct Mlp {
    pub(crate) layers: Vec<Layer>,
}

/// Per-layer gradients produced by a backward pass.
#[derive(Debug, Clone)]
pub(crate) struct Gradients {
    pub(crate) dw: Vec<Mat>,
    pub(crate) db: Vec<Vec<f64>>,
}

/// Cached forward-pass state needed by backprop.
#[derive(Debug, Clone)]
pub(crate) struct ForwardTrace {
    /// Pre-activations per layer.
    zs: Vec<Vec<f64>>,
    /// Activations per layer (index 0 = input).
    activations: Vec<Vec<f64>>,
}

impl Mlp {
    /// Creates a network with the given layer sizes
    /// (`[input, hidden…, output]`) using Xavier-uniform initialization
    /// seeded deterministically.
    ///
    /// Hidden layers use `hidden_act`; the output layer uses `out_act`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    pub fn new(sizes: &[usize], hidden_act: Activation, out_act: Activation, seed: u64) -> Mlp {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for (li, w) in sizes.windows(2).enumerate() {
            let (fan_in, fan_out) = (w[0], w[1]);
            let bound = (6.0 / (fan_in + fan_out) as f64).sqrt();
            let wmat = Mat::from_fn(fan_out, fan_in, |_, _| rng.gen_range(-bound..bound));
            let act = if li + 2 == sizes.len() { out_act } else { hidden_act };
            layers.push(Layer {
                w: wmat,
                b: vec![0.0; fan_out],
                act,
            });
        }
        Mlp { layers }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].w.cols()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("at least one layer").w.rows()
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.rows() * l.w.cols() + l.b.len())
            .sum()
    }

    /// Runs the forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        self.forward_traced(x).activations.pop().expect("output layer")
    }

    pub(crate) fn forward_traced(&self, x: &[f64]) -> ForwardTrace {
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        let mut activations = vec![x.to_vec()];
        let mut zs = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let prev = activations.last().expect("non-empty");
            let mut z = layer.w.matvec(prev).expect("dimensions verified");
            for (zi, bi) in z.iter_mut().zip(&layer.b) {
                *zi += bi;
            }
            let a: Vec<f64> = z.iter().map(|&v| layer.act.apply(v)).collect();
            zs.push(z);
            activations.push(a);
        }
        ForwardTrace { zs, activations }
    }

    /// Backward pass for a half-MSE loss `0.5 * ||y_hat - y||^2`;
    /// returns per-layer gradients.
    pub(crate) fn backward(&self, trace: &ForwardTrace, target: &[f64]) -> Gradients {
        let l_count = self.layers.len();
        let mut dw = Vec::with_capacity(l_count);
        let mut db = Vec::with_capacity(l_count);
        // delta of the output layer.
        let y_hat = trace.activations.last().expect("output");
        let mut delta: Vec<f64> = y_hat
            .iter()
            .zip(target)
            .zip(&trace.zs[l_count - 1])
            .map(|((&yh, &y), &z)| {
                (yh - y) * self.layers[l_count - 1].act.derivative(z, yh)
            })
            .collect();
        for li in (0..l_count).rev() {
            let prev_a = &trace.activations[li];
            let layer = &self.layers[li];
            let g = Mat::from_fn(layer.w.rows(), layer.w.cols(), |r, c| delta[r] * prev_a[c]);
            dw.push(g);
            db.push(delta.clone());
            if li > 0 {
                let mut next_delta = vec![0.0f64; layer.w.cols()];
                for r in 0..layer.w.rows() {
                    let d = delta[r];
                    if d == 0.0 {
                        continue;
                    }
                    for (nd, &wv) in next_delta.iter_mut().zip(layer.w.row(r)) {
                        *nd += d * wv;
                    }
                }
                let below = &self.layers[li - 1];
                for ((nd, &z), &a) in next_delta
                    .iter_mut()
                    .zip(&trace.zs[li - 1])
                    .zip(&trace.activations[li])
                {
                    *nd *= below.act.derivative(z, a);
                }
                delta = next_delta;
            }
        }
        dw.reverse();
        db.reverse();
        Gradients { dw, db }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_parameter_count() {
        let m = Mlp::new(&[3, 5, 2], Activation::Relu, Activation::Identity, 1);
        assert_eq!(m.input_dim(), 3);
        assert_eq!(m.output_dim(), 2);
        assert_eq!(m.parameter_count(), 3 * 5 + 5 + 5 * 2 + 2);
        let y = m.forward(&[0.1, 0.2, 0.3]);
        assert_eq!(y.len(), 2);
    }

    #[test]
    fn deterministic_initialization() {
        let a = Mlp::new(&[2, 4, 1], Activation::Tanh, Activation::Identity, 42);
        let b = Mlp::new(&[2, 4, 1], Activation::Tanh, Activation::Identity, 42);
        assert_eq!(a.forward(&[0.5, -0.5]), b.forward(&[0.5, -0.5]));
        let c = Mlp::new(&[2, 4, 1], Activation::Tanh, Activation::Identity, 43);
        assert_ne!(a.forward(&[0.5, -0.5]), c.forward(&[0.5, -0.5]));
    }

    #[test]
    fn activations_behave() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert_eq!(Activation::Identity.apply(3.5), 3.5);
        assert!((Activation::Tanh.apply(100.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut m = Mlp::new(&[2, 3, 1], Activation::Tanh, Activation::Identity, 7);
        let x = [0.3, -0.7];
        let target = [0.25];
        let loss = |m: &Mlp| -> f64 {
            let y = m.forward(&x);
            0.5 * (y[0] - target[0]).powi(2)
        };
        let trace = m.forward_traced(&x);
        let grads = m.backward(&trace, &target);
        let eps = 1e-6;
        for li in 0..m.layers.len() {
            for r in 0..m.layers[li].w.rows() {
                for c in 0..m.layers[li].w.cols() {
                    let orig = m.layers[li].w[(r, c)];
                    m.layers[li].w[(r, c)] = orig + eps;
                    let up = loss(&m);
                    m.layers[li].w[(r, c)] = orig - eps;
                    let down = loss(&m);
                    m.layers[li].w[(r, c)] = orig;
                    let numeric = (up - down) / (2.0 * eps);
                    let analytic = grads.dw[li][(r, c)];
                    assert!(
                        (numeric - analytic).abs() < 1e-6,
                        "layer {li} w[{r},{c}]: {numeric} vs {analytic}"
                    );
                }
            }
            for bi in 0..m.layers[li].b.len() {
                let orig = m.layers[li].b[bi];
                m.layers[li].b[bi] = orig + eps;
                let up = loss(&m);
                m.layers[li].b[bi] = orig - eps;
                let down = loss(&m);
                m.layers[li].b[bi] = orig;
                let numeric = (up - down) / (2.0 * eps);
                let analytic = grads.db[li][bi];
                assert!(
                    (numeric - analytic).abs() < 1e-6,
                    "layer {li} b[{bi}]: {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn wrong_input_panics() {
        let m = Mlp::new(&[2, 2], Activation::Relu, Activation::Identity, 1);
        let _ = m.forward(&[1.0]);
    }
}
