//! Switching-activity power estimation for mapped LUT networks.
//!
//! Dynamic power is estimated from per-net toggle rates measured by
//! simulating random input vectors (a vectored analogue of Vivado's
//! default 12.5% toggle-rate assumption, but derived from the actual
//! logic). Power is split into *logic* power (consumed inside LUTs) and
//! *signal* power (consumed charging routed nets, which scales with
//! fanout) — the same decomposition the paper's Table I uses as MLP
//! features — plus a static component proportional to utilized resources.

use crate::map::MappedNetlist;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Power model parameters for the target fabric at a given clock.
///
/// The default constants produce milliwatt-scale dynamic power for
/// hundreds of LUTs at hundreds of MHz, in line with small accelerator
/// datapaths on a Zynq UltraScale+ device. As with [`crate::TimingModel`]
/// the goal is faithful *ranking*, not silicon-calibrated wattage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Energy per LUT output toggle attributed to logic, in picojoules.
    pub logic_energy_pj: f64,
    /// Energy per net toggle per fanout attributed to routing, in
    /// picojoules.
    pub signal_energy_pj: f64,
    /// Static power per utilized LUT, in microwatts.
    pub static_uw_per_lut: f64,
    /// Device base static power, in milliwatts.
    pub static_base_mw: f64,
    /// Clock frequency used to convert energy/toggle into power, in MHz.
    pub clock_mhz: f64,
    /// Number of 64-vector simulation rounds for activity extraction.
    pub rounds: usize,
    /// RNG seed for the random stimulus.
    pub seed: u64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            logic_energy_pj: 0.9,
            signal_energy_pj: 0.35,
            static_uw_per_lut: 1.5,
            static_base_mw: 18.0,
            clock_mhz: 250.0,
            rounds: 16,
            seed: 0xC1A9_9ED5,
        }
    }
}

/// Power estimation result, in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerReport {
    /// Dynamic power dissipated in LUT logic.
    pub logic_mw: f64,
    /// Dynamic power dissipated in routed signals.
    pub signal_mw: f64,
    /// Static power.
    pub static_mw: f64,
    /// Mean toggle rate over all nets (toggles per cycle, 0..=1).
    pub mean_activity: f64,
}

impl PowerReport {
    /// Total power in milliwatts.
    pub fn total_mw(&self) -> f64 {
        self.logic_mw + self.signal_mw + self.static_mw
    }

    /// Dynamic (logic + signal) power in milliwatts.
    pub fn dynamic_mw(&self) -> f64 {
        self.logic_mw + self.signal_mw
    }
}

/// Estimates the power of a mapped netlist under random stimulus.
///
/// # Errors
///
/// Propagates simulation errors from [`MappedNetlist::eval_words`].
pub fn estimate_power(mapped: &MappedNetlist, model: &PowerModel) -> crate::Result<PowerReport> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(model.seed);
    // Fanout of each mapped net = number of LUTs (plus outputs) reading it.
    let mut fanout: BTreeMap<crate::SignalId, f64> = BTreeMap::new();
    for lut in &mapped.luts {
        for inp in &lut.inputs {
            *fanout.entry(*inp).or_insert(0.0) += 1.0;
        }
    }
    for (_, out) in &mapped.outputs {
        *fanout.entry(*out).or_insert(0.0) += 1.0;
    }

    let mut toggles_logic = 0.0f64; // LUT-output toggles
    let mut toggles_signal = 0.0f64; // fanout-weighted net toggles
    let mut transitions = 0.0f64; // total observed net-transitions slots
    let mut toggle_events = 0.0f64;

    let roots: Vec<crate::SignalId> = mapped.luts.iter().map(|l| l.root).collect();
    // Deterministic net order: primary inputs, then LUT roots.
    let mut nets: Vec<crate::SignalId> = mapped.inputs.clone();
    nets.extend(roots.iter().copied());
    for _ in 0..model.rounds.max(1) {
        let words: Vec<u64> = (0..mapped.inputs.len()).map(|_| rng.gen()).collect();
        let vals = mapped.eval_words(&words)?;
        // Adjacent lanes model consecutive random input patterns: count
        // bit flips between lane i and lane i+1 (63 valid pairs per word;
        // bit 63 of v ^ (v >> 1) compares lane 63 against zero fill and is
        // excluded).
        for &sig in &nets {
            let v = vals[&sig];
            let x = v ^ (v >> 1);
            // lint-allow(no-silent-truncation): masked to a single bit
            let flips = f64::from(x.count_ones() - ((v >> 63) & 1) as u32);
            transitions += 63.0;
            toggle_events += flips;
            if roots.binary_search(&sig).is_ok() {
                toggles_logic += flips;
            }
            if let Some(&fo) = fanout.get(&sig) {
                toggles_signal += flips * fo;
            }
        }
    }

    let total_slots = (model.rounds.max(1) * 63) as f64;
    // Energy per cycle = toggles/cycle * energy/toggle. Convert pJ * MHz
    // -> microwatts; divide by 1000 for milliwatts.
    let logic_rate = toggles_logic / total_slots;
    let signal_rate = toggles_signal / total_slots;
    let logic_mw = logic_rate * model.logic_energy_pj * model.clock_mhz / 1000.0;
    let signal_mw = signal_rate * model.signal_energy_pj * model.clock_mhz / 1000.0;
    let static_mw =
        model.static_base_mw + model.static_uw_per_lut * mapped.lut_count() as f64 / 1000.0;
    let mean_activity = if transitions > 0.0 {
        toggle_events / transitions
    } else {
        0.0
    };
    Ok(PowerReport {
        logic_mw,
        signal_mw,
        static_mw,
        mean_activity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bus, map_luts, optimize, MapStrategy, Netlist};

    fn mapped_adder(w: usize) -> MappedNetlist {
        let mut n = Netlist::new("add");
        let a = n.input_bus("a", w);
        let b = n.input_bus("b", w);
        let (s, c) = bus::ripple_carry_add(&mut n, &a, &b, None);
        n.output_bus("s", &s);
        n.output("c", c);
        map_luts(&optimize(&n), 6, MapStrategy::Depth).unwrap()
    }

    #[test]
    fn power_is_positive_and_repeatable() {
        let m = mapped_adder(8);
        let model = PowerModel::default();
        let p1 = estimate_power(&m, &model).unwrap();
        let p2 = estimate_power(&m, &model).unwrap();
        assert!(p1.total_mw() > 0.0);
        assert_eq!(p1, p2, "same seed must give identical results");
    }

    #[test]
    fn bigger_circuits_burn_more_power() {
        let small = estimate_power(&mapped_adder(4), &PowerModel::default()).unwrap();
        let large = estimate_power(&mapped_adder(32), &PowerModel::default()).unwrap();
        assert!(large.dynamic_mw() > small.dynamic_mw());
        assert!(large.static_mw > small.static_mw);
    }

    #[test]
    fn activity_of_random_logic_is_reasonable() {
        let m = mapped_adder(8);
        let p = estimate_power(&m, &PowerModel::default()).unwrap();
        assert!(p.mean_activity > 0.1 && p.mean_activity < 0.9, "{}", p.mean_activity);
    }

    #[test]
    fn higher_clock_means_more_dynamic_power() {
        let m = mapped_adder(8);
        let slow = estimate_power(
            &m,
            &PowerModel {
                clock_mhz: 100.0,
                ..PowerModel::default()
            },
        )
        .unwrap();
        let fast = estimate_power(
            &m,
            &PowerModel {
                clock_mhz: 400.0,
                ..PowerModel::default()
            },
        )
        .unwrap();
        assert!(fast.dynamic_mw() > slow.dynamic_mw());
        assert_eq!(fast.static_mw, slow.static_mw);
    }
}
