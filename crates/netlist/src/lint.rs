//! Structural linting of netlist artifacts.
//!
//! The builder API of [`Netlist`] keeps well-formed netlists well-formed,
//! but netlists also enter the system from less-trusted directions —
//! [`Netlist::from_parts`], deserialization, generators under
//! development — and the downstream layers (word-parallel simulation,
//! LUT mapping, timing/power estimation, fault campaigns) all *assume*
//! the structural invariants hold. This module checks them explicitly:
//!
//! - **`dangling-fanin`** — a gate reads a signal that does not exist or
//!   is defined *after* it (the IR encodes the DAG property as "fanins
//!   precede users"; a forward reference is an undriven net at
//!   evaluation time).
//! - **`combinational-cycle`** — the fanin graph has a cycle (checked by
//!   topological sort, independently of the index ordering convention).
//! - **`input-list-mismatch`** — the declared primary-input list
//!   disagrees with the `Gate::Input` gates actually present.
//! - **`duplicate-port-name`** — two primary outputs (or two inputs)
//!   share a name; the Verilog exporter and report formats key ports by
//!   name, so a collision silently drops a port (the port-level analogue
//!   of a multiply-driven signal).
//! - **`dead-gate`** — a logic gate outside every output's
//!   cone-of-influence. Harmless to function, but it burns area in
//!   synthesis and simulation time in fault campaigns; `optimize`
//!   guarantees none survive.
//! - **`unused-input`** — a primary input with zero fanout. Expected for
//!   aggressively truncated approximate operators, hence a warning.
//! - **`const-output`** — a primary output driven directly by a
//!   constant: legal, but almost always a generator bug in an
//!   arithmetic operator.
//! - **`duplicate-const`** — more than one constant driver of the same
//!   polarity (the builder deduplicates; duplicates indicate hand-built
//!   or corrupted IR).
//!
//! [`live_cone`] (the cone-of-influence computation behind `dead-gate`)
//! is shared with [`crate::fault`], where stuck-at campaigns skip
//! provably-dead sites, and cross-checked against [`crate::optimize`]'s
//! dead-code elimination by the property tests in `clapped-lint`.

use crate::ir::{Gate, Netlist, SignalId};

/// Severity of a structural finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StructSeverity {
    /// Expected or benign on raw generator output; still worth surfacing.
    Warning,
    /// The netlist violates an invariant downstream layers rely on.
    Error,
}

/// One structural finding.
#[derive(Debug, Clone, PartialEq)]
pub struct StructFinding {
    /// Stable rule identifier (e.g. `dangling-fanin`).
    pub rule: &'static str,
    /// Severity of this finding.
    pub severity: StructSeverity,
    /// The offending signal, when the finding is signal-local.
    pub signal: Option<SignalId>,
    /// Human-readable description.
    pub message: String,
}

/// Size/shape statistics of a linted netlist.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetlistStats {
    /// Total gates, including inputs and constants.
    pub gates: usize,
    /// Logic gates (excluding inputs, constants and buffers).
    pub logic_gates: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Maximum logic depth over all outputs (0 if the topology is broken).
    pub depth: u32,
    /// Largest fanout of any signal.
    pub max_fanout: u32,
    /// Mean fanout over signals with at least one reader.
    pub mean_fanout: f64,
    /// Logic gates outside every output cone.
    pub dead_gates: usize,
    /// Primary inputs with zero fanout.
    pub unused_inputs: usize,
}

/// Result of structurally linting one netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct StructReport {
    /// Name of the linted netlist.
    pub name: String,
    /// All findings, in rule-scan order.
    pub findings: Vec<StructFinding>,
    /// Shape statistics.
    pub stats: NetlistStats,
    /// Per-signal liveness: `live[i]` is true iff signal `i` reaches a
    /// primary output (or is a primary input, which always stays to
    /// preserve the interface).
    pub live: Vec<bool>,
}

impl StructReport {
    /// True when no error-severity finding was produced.
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &StructFinding> {
        self.findings
            .iter()
            .filter(|f| f.severity == StructSeverity::Error)
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &StructFinding> {
        self.findings
            .iter()
            .filter(|f| f.severity == StructSeverity::Warning)
    }
}

/// Computes the cone-of-influence of the primary outputs: `live[i]` is
/// true iff signal `i` transitively drives some primary output. Primary
/// inputs are *not* forced live — an input outside every cone really is
/// dead for fault-injection purposes (a stuck-at on it cannot corrupt
/// any output).
///
/// Out-of-range fanin or output references are ignored (they are
/// reported separately by [`lint_netlist`] as `dangling-fanin`), so this
/// function is total over arbitrary [`Netlist::from_parts`] input.
pub fn live_cone(netlist: &Netlist) -> Vec<bool> {
    let n = netlist.len();
    let mut live = vec![false; n];
    let mut stack: Vec<usize> = netlist
        .outputs()
        .iter()
        .map(|(_, s)| s.index())
        .filter(|&i| i < n)
        .collect();
    while let Some(i) = stack.pop() {
        if live[i] {
            continue;
        }
        live[i] = true;
        for f in netlist.gates()[i].fanins() {
            if f.index() < n {
                stack.push(f.index());
            }
        }
    }
    live
}

/// Structurally lints a netlist. Always returns a report; a netlist with
/// broken topology yields `dangling-fanin` / `combinational-cycle`
/// errors rather than a panic, and statistics that depend on a sound
/// topology (depth) are zeroed in that case.
pub fn lint_netlist(netlist: &Netlist) -> StructReport {
    let n = netlist.len();
    let mut findings = Vec::new();

    // dangling-fanin: fanins must exist and precede their user.
    let mut topology_sound = true;
    for (i, gate) in netlist.gates().iter().enumerate() {
        for f in gate.fanins() {
            if f.index() >= n {
                topology_sound = false;
                findings.push(StructFinding {
                    rule: "dangling-fanin",
                    severity: StructSeverity::Error,
                    signal: Some(SignalId::from_index(i)),
                    message: format!(
                        "gate {i} reads signal {} which does not exist ({n} signals)",
                        f.index()
                    ),
                });
            } else if f.index() >= i {
                topology_sound = false;
                findings.push(StructFinding {
                    rule: "dangling-fanin",
                    severity: StructSeverity::Error,
                    signal: Some(SignalId::from_index(i)),
                    message: format!(
                        "gate {i} reads signal {} defined at or after it; \
                         the net is undriven when gate {i} evaluates",
                        f.index()
                    ),
                });
            }
        }
    }
    for (name, s) in netlist.outputs() {
        if s.index() >= n {
            topology_sound = false;
            findings.push(StructFinding {
                rule: "dangling-fanin",
                severity: StructSeverity::Error,
                signal: None,
                message: format!(
                    "output `{name}` references signal {} which does not exist",
                    s.index()
                ),
            });
        }
    }

    // combinational-cycle: Kahn's algorithm over in-range fanin edges.
    // Deliberately independent of the "fanins precede users" index
    // convention: it would still catch cycles if that convention were
    // ever relaxed.
    {
        // indegree[g] = number of in-range fanins of g.
        let mut indegree = vec![0u32; n];
        for (i, gate) in netlist.gates().iter().enumerate() {
            // lint-allow(no-silent-truncation): a gate has at most 3 fanins
            indegree[i] = gate.fanins().filter(|f| f.index() < n).count() as u32;
        }
        let mut readers: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, gate) in netlist.gates().iter().enumerate() {
            for f in gate.fanins() {
                if f.index() < n {
                    // lint-allow(no-silent-truncation): gate index round-trips SignalId(u32)
                    readers[f.index()].push(i as u32);
                }
            }
        }
        let mut queue: Vec<usize> =
            (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut visited = 0usize;
        while let Some(i) = queue.pop() {
            visited += 1;
            for &r in &readers[i] {
                indegree[r as usize] -= 1;
                if indegree[r as usize] == 0 {
                    queue.push(r as usize);
                }
            }
        }
        if visited != n {
            let mut on_cycle: Vec<usize> =
                (0..n).filter(|&i| indegree[i] > 0).collect();
            on_cycle.truncate(8);
            findings.push(StructFinding {
                rule: "combinational-cycle",
                severity: StructSeverity::Error,
                signal: on_cycle.first().map(|&i| SignalId::from_index(i)),
                message: format!(
                    "{} signals participate in a combinational cycle (first few: {:?})",
                    n - visited,
                    on_cycle
                ),
            });
        }
    }

    // input-list-mismatch: the declared input list must be exactly the
    // Input gates, in order.
    let actual_inputs: Vec<usize> = netlist
        .gates()
        .iter()
        .enumerate()
        .filter(|(_, g)| matches!(g, Gate::Input { .. }))
        .map(|(i, _)| i)
        .collect();
    let declared: Vec<usize> = netlist.inputs().iter().map(|s| s.index()).collect();
    if declared != actual_inputs {
        findings.push(StructFinding {
            rule: "input-list-mismatch",
            severity: StructSeverity::Error,
            signal: None,
            message: format!(
                "declared primary inputs {declared:?} do not match the Input gates \
                 present {actual_inputs:?}"
            ),
        });
    }

    // duplicate-port-name: output (and input) names must be unique.
    {
        let mut out_names: Vec<&str> =
            netlist.outputs().iter().map(|(n, _)| n.as_str()).collect();
        out_names.sort_unstable();
        for pair in out_names.windows(2) {
            if pair[0] == pair[1] {
                findings.push(StructFinding {
                    rule: "duplicate-port-name",
                    severity: StructSeverity::Error,
                    signal: None,
                    message: format!("two primary outputs are both named `{}`", pair[0]),
                });
            }
        }
        let mut in_names: Vec<&str> = netlist
            .gates()
            .iter()
            .filter_map(|g| match g {
                Gate::Input { name } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        in_names.sort_unstable();
        for pair in in_names.windows(2) {
            if pair[0] == pair[1] {
                findings.push(StructFinding {
                    rule: "duplicate-port-name",
                    severity: StructSeverity::Error,
                    signal: None,
                    message: format!("two primary inputs are both named `{}`", pair[0]),
                });
            }
        }
    }

    // duplicate-const: at most one constant driver per polarity.
    for polarity in [false, true] {
        let count = netlist
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Const(v) if *v == polarity))
            .count();
        if count > 1 {
            findings.push(StructFinding {
                rule: "duplicate-const",
                severity: StructSeverity::Warning,
                signal: None,
                message: format!(
                    "{count} constant-{} drivers (the builder deduplicates to one)",
                    u8::from(polarity)
                ),
            });
        }
    }

    // Liveness-derived rules and statistics.
    let live = live_cone(netlist);
    let mut dead_gates = 0usize;
    for (i, gate) in netlist.gates().iter().enumerate() {
        if gate.is_logic() && !live[i] {
            dead_gates += 1;
            findings.push(StructFinding {
                rule: "dead-gate",
                severity: StructSeverity::Warning,
                signal: Some(SignalId::from_index(i)),
                message: format!("logic gate {i} drives no primary output"),
            });
        }
    }
    // Bounds-checked fanout (Netlist::fanout_counts assumes sound fanins).
    let mut fanout = vec![0u32; n];
    for gate in netlist.gates() {
        for f in gate.fanins() {
            if f.index() < n {
                fanout[f.index()] += 1;
            }
        }
    }
    let mut unused_inputs = 0usize;
    for &s in netlist.inputs() {
        if s.index() < n && fanout[s.index()] == 0 {
            unused_inputs += 1;
            findings.push(StructFinding {
                rule: "unused-input",
                severity: StructSeverity::Warning,
                signal: Some(s),
                message: format!(
                    "primary input {} has zero fanout (expected for truncated operators)",
                    s.index()
                ),
            });
        }
    }
    for (name, s) in netlist.outputs() {
        if s.index() < n && matches!(netlist.gates()[s.index()], Gate::Const(_)) {
            findings.push(StructFinding {
                rule: "const-output",
                severity: StructSeverity::Warning,
                signal: Some(*s),
                message: format!("output `{name}` is driven directly by a constant"),
            });
        }
    }

    // lint-allow(no-silent-truncation): signal counts are bounded far below 2^32
    let readers: u32 = fanout.iter().filter(|&&c| c > 0).count() as u32;
    let stats = NetlistStats {
        gates: n,
        logic_gates: netlist.logic_gate_count(),
        inputs: netlist.inputs().len(),
        outputs: netlist.outputs().len(),
        depth: if topology_sound { netlist.depth() } else { 0 },
        max_fanout: fanout.iter().copied().max().unwrap_or(0),
        mean_fanout: if readers == 0 {
            0.0
        } else {
            f64::from(fanout.iter().sum::<u32>()) / f64::from(readers)
        },
        dead_gates,
        unused_inputs,
    };
    StructReport {
        name: netlist.name().to_string(),
        findings,
        stats,
        live,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_adder() -> Netlist {
        let mut n = Netlist::new("add2");
        let a = n.input_bus("a", 2);
        let b = n.input_bus("b", 2);
        let (s, c) = crate::bus::ripple_carry_add(&mut n, &a, &b, None);
        n.output_bus("s", &s);
        n.output("cout", c);
        n
    }

    #[test]
    fn clean_netlist_has_no_findings() {
        let report = lint_netlist(&clean_adder());
        assert!(report.is_clean(), "{:?}", report.findings);
        assert!(report.findings.is_empty());
        assert!(report.stats.depth > 0);
        assert!(report.stats.max_fanout >= 1);
        assert!(report.live.iter().all(|&l| l));
    }

    #[test]
    fn dangling_fanin_out_of_range_fires() {
        let n = Netlist::from_parts(
            "bad",
            vec![
                Gate::Input { name: "a".into() },
                Gate::Not(SignalId::from_index(7)),
            ],
            vec![SignalId::from_index(0)],
            vec![("y".into(), SignalId::from_index(1))],
        );
        let report = lint_netlist(&n);
        assert!(report.errors().any(|f| f.rule == "dangling-fanin"));
        assert!(!report.is_clean());
    }

    #[test]
    fn forward_reference_is_an_undriven_net() {
        let n = Netlist::from_parts(
            "fwd",
            vec![
                Gate::Input { name: "a".into() },
                Gate::Not(SignalId::from_index(2)), // reads a later gate
                Gate::Not(SignalId::from_index(0)),
            ],
            vec![SignalId::from_index(0)],
            vec![("y".into(), SignalId::from_index(1))],
        );
        let report = lint_netlist(&n);
        assert!(report.errors().any(|f| f.rule == "dangling-fanin"));
    }

    #[test]
    fn combinational_cycle_is_detected() {
        // 1 -> 2 -> 1: a 2-cycle through two inverters.
        let n = Netlist::from_parts(
            "cyc",
            vec![
                Gate::Input { name: "a".into() },
                Gate::Not(SignalId::from_index(2)),
                Gate::Not(SignalId::from_index(1)),
            ],
            vec![SignalId::from_index(0)],
            vec![("y".into(), SignalId::from_index(2))],
        );
        let report = lint_netlist(&n);
        assert!(report.errors().any(|f| f.rule == "combinational-cycle"));
    }

    #[test]
    fn input_list_mismatch_fires() {
        let n = Netlist::from_parts(
            "mismatch",
            vec![
                Gate::Input { name: "a".into() },
                Gate::Input { name: "b".into() },
            ],
            vec![SignalId::from_index(0)], // forgets b
            vec![("y".into(), SignalId::from_index(0))],
        );
        let report = lint_netlist(&n);
        assert!(report.errors().any(|f| f.rule == "input-list-mismatch"));
    }

    #[test]
    fn duplicate_output_names_fire() {
        let mut n = Netlist::new("dup");
        let a = n.input("a");
        let x = n.not(a);
        n.output("y", a);
        n.output("y", x);
        let report = lint_netlist(&n);
        assert!(report.errors().any(|f| f.rule == "duplicate-port-name"));
    }

    #[test]
    fn duplicate_input_names_fire() {
        let mut n = Netlist::new("dup_in");
        let a = n.input("a");
        let b = n.input("a");
        let x = n.and(a, b);
        n.output("y", x);
        let report = lint_netlist(&n);
        assert!(report.errors().any(|f| f.rule == "duplicate-port-name"));
    }

    #[test]
    fn dead_gate_and_unused_input_warn_but_stay_clean() {
        let mut n = Netlist::new("dead");
        let a = n.input("a");
        let b = n.input("b");
        let _dead = n.xor(a, b);
        let live = n.not(a); // b now feeds only the dead gate
        n.output("y", live);
        let report = lint_netlist(&n);
        assert!(report.is_clean(), "dead logic is a warning, not an error");
        assert_eq!(report.stats.dead_gates, 1);
        assert!(report.warnings().any(|f| f.rule == "dead-gate"));
        // b is read by the dead xor, so it is NOT unused; its fanout > 0.
        assert_eq!(report.stats.unused_inputs, 0);
        assert!(!report.live[2], "the dead xor is outside the cone");
    }

    #[test]
    fn unused_input_warns() {
        let mut n = Netlist::new("unused");
        let a = n.input("a");
        let _b = n.input("b");
        let x = n.not(a);
        n.output("y", x);
        let report = lint_netlist(&n);
        assert!(report.warnings().any(|f| f.rule == "unused-input"));
        assert_eq!(report.stats.unused_inputs, 1);
    }

    #[test]
    fn const_output_warns() {
        let mut n = Netlist::new("konst");
        let _a = n.input("a");
        let c = n.constant(true);
        n.output("y", c);
        let report = lint_netlist(&n);
        assert!(report.warnings().any(|f| f.rule == "const-output"));
    }

    #[test]
    fn duplicate_const_warns() {
        let n = Netlist::from_parts(
            "dupconst",
            vec![
                Gate::Const(true),
                Gate::Const(true),
                Gate::Input { name: "a".into() },
            ],
            vec![SignalId::from_index(2)],
            vec![("y".into(), SignalId::from_index(0))],
        );
        let report = lint_netlist(&n);
        assert!(report.warnings().any(|f| f.rule == "duplicate-const"));
    }

    #[test]
    fn live_cone_matches_optimize_dce() {
        // Every gate the cone marks dead must be gone after optimize,
        // so: live logic count >= optimized logic count is implied, and
        // dead logic never survives.
        let mut n = Netlist::new("mix");
        let a = n.input_bus("a", 4);
        let b = n.input_bus("b", 4);
        let (s, c) = crate::bus::ripple_carry_add(&mut n, &a, &b, None);
        let _dead1 = n.xor(s[0], s[1]);
        let _dead2 = n.and(c, s[2]);
        n.output_bus("s", &s);
        n.output("c", c);
        let live = live_cone(&n);
        let live_logic = n
            .gates()
            .iter()
            .enumerate()
            .filter(|(i, g)| g.is_logic() && live[*i])
            .count();
        let opt = crate::optimize(&n);
        assert!(opt.logic_gate_count() <= live_logic);
        let report = lint_netlist(&n);
        assert_eq!(report.stats.dead_gates, 2);
        assert!(lint_netlist(&opt).stats.dead_gates == 0);
    }
}
