// Index-based loops over multiple coupled arrays are the clearest idiom
// for the numeric kernels in this crate.
#![allow(clippy::needless_range_loop)]

//! Gate-level netlist substrate: IR, simulation, optimization, LUT-K
//! technology mapping, timing and power estimation.
//!
//! This crate is CLAppED's stand-in for the Xilinx Vivado synthesis flow the
//! paper uses as its ground-truth accelerator characterization. It provides:
//!
//! - a combinational gate-level IR ([`Netlist`]) that is a DAG by
//!   construction,
//! - 64-way bit-parallel simulation,
//! - constant folding / dead-code elimination ([`optimize`]),
//! - structural arithmetic builders ([`bus`]): ripple-carry adders,
//!   Baugh-Wooley signed multipliers, compressors, barrel shifters,
//!   leading-one detectors,
//! - a cut-based LUT-K technology mapper ([`map_luts`]),
//! - level-based timing ([`TimingModel`]) and switching-activity power
//!   estimation ([`PowerModel`]),
//! - a one-call synthesis flow ([`synthesize`]) producing a [`SynthReport`].
//!
//! # Examples
//!
//! ```
//! use clapped_netlist::{bus, Netlist, synthesize, SynthConfig};
//!
//! let mut n = Netlist::new("adder4");
//! let a = n.input_bus("a", 4);
//! let b = n.input_bus("b", 4);
//! let (sum, carry) = bus::ripple_carry_add(&mut n, &a, &b, None);
//! n.output_bus("sum", &sum);
//! n.output("cout", carry);
//! let report = synthesize(&n, &SynthConfig::default()).unwrap();
//! assert!(report.lut_count > 0);
//! ```

pub mod bdd;
pub mod bus;
mod digest;
pub mod errbound;
mod fault;
mod ir;
pub mod lint;
mod map;
mod opt;
mod power;
mod sim;
mod sim_wide;
mod synth;
mod timing;
pub mod verilog;

pub use errbound::{
    abstract_values, analyze as analyze_error_bounds, AbsVal, ErrBoundConfig, ErrorBounds,
    ExactError, StuckAtObservability,
};
pub use fault::{
    CampaignOptions, CampaignReport, Fault, FaultKind, FaultSet, FaultSiteReport,
    CAMPAIGN_BLOCK_WORDS,
};
pub use ir::{Gate, Netlist, SignalId};
pub use lint::{lint_netlist, live_cone, NetlistStats, StructFinding, StructReport, StructSeverity};
pub use map::{map_luts, MapStrategy, MappedLut, MappedNetlist};
pub use opt::optimize;
pub use power::{estimate_power, PowerModel, PowerReport};
pub use sim::{pack_bus_samples, unpack_bus_samples};
pub use sim_wide::{pack_bus_samples_blocks, transpose8x8, unpack_bus_samples_blocks};
pub use synth::{synthesize, SynthConfig, SynthReport};
pub use timing::TimingModel;

use std::error::Error;
use std::fmt;

/// Error type for netlist operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// An input value vector did not match the number of netlist inputs.
    InputCountMismatch {
        /// Number of primary inputs in the netlist.
        expected: usize,
        /// Number of values supplied.
        found: usize,
    },
    /// The mapper could not cover a node with a K-feasible cut.
    Unmappable {
        /// The node that could not be covered.
        node: SignalId,
    },
    /// Functional verification after mapping failed.
    MappingMismatch,
    /// A BDD operation exceeded its node budget.
    BddLimit {
        /// The configured node limit.
        limit: usize,
    },
    /// A fault referenced a signal outside the netlist.
    InvalidFaultSite {
        /// The out-of-range signal index.
        index: usize,
        /// Number of signals in the netlist.
        signals: usize,
    },
    /// Two netlists compared by the error-bound analyzer declare
    /// different output counts.
    OutputCountMismatch {
        /// Number of outputs in the reference netlist.
        expected: usize,
        /// Number of outputs in the netlist under analysis.
        found: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::InputCountMismatch { expected, found } => {
                write!(f, "expected {expected} input values, found {found}")
            }
            NetlistError::Unmappable { node } => {
                write!(f, "node {node:?} has no K-feasible cut")
            }
            NetlistError::MappingMismatch => {
                write!(f, "mapped netlist is not functionally equivalent")
            }
            NetlistError::BddLimit { limit } => {
                write!(f, "BDD node budget of {limit} exhausted")
            }
            NetlistError::InvalidFaultSite { index, signals } => {
                write!(f, "fault site {index} outside netlist with {signals} signals")
            }
            NetlistError::OutputCountMismatch { expected, found } => {
                write!(f, "expected {expected} outputs, found {found}")
            }
        }
    }
}

impl Error for NetlistError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, NetlistError>;
