//! Gate-level fault injection and fault campaigns.
//!
//! CLAppED treats synthesized netlists as the hardware ground truth; this
//! module asks the robustness question on top of that substrate: *which
//! nets of an (approximate) operator actually matter when silicon
//! misbehaves?* It supports
//!
//! - **permanent faults** — stuck-at-0 / stuck-at-1 on any net, applied
//!   as per-signal masks inside the 64-lane word-parallel simulator, and
//! - **transient faults** — per-lane bit-flip (XOR) masks modelling SEU
//!   style upsets,
//!
//! plus campaign runners that sweep every injectable site, compare
//! against the fault-free simulation, and rank nets by how often (and
//! how badly, under a positional weighting) they corrupt the outputs.
//! Application-level quality impact of these sites is measured one layer
//! up, in `clapped-core`.

use crate::ir::{Gate, Netlist, SignalId};
use crate::NetlistError;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Words per simulation block in the sharded stuck-at campaign: each
/// wide evaluation pass carries `64 × CAMPAIGN_BLOCK_WORDS` lanes.
pub const CAMPAIGN_BLOCK_WORDS: usize = 8;

/// Input-block groups per `(site, batch-chunk)` shard handed to the
/// execution engine — small enough that campaigns with few sites still
/// fan out over batches, large enough to amortize dispatch.
const CAMPAIGN_GROUPS_PER_SHARD: usize = 16;

/// Integer mismatch statistics from one campaign shard. Folding these
/// across shards is exact in any order, which is what makes the sharded
/// campaign bit-identical to the serial reference.
struct ShardStats {
    /// Lanes with at least one wrong output bit.
    mismatched_lanes: u64,
    /// Wrong-lane count per output bit position.
    bit_mismatches: Vec<u64>,
}

/// The permanent fault models supported on a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The net always reads logic 0.
    StuckAt0,
    /// The net always reads logic 1.
    StuckAt1,
}

/// One permanent fault: a net forced to a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// The faulted net.
    pub signal: SignalId,
    /// Stuck-at polarity.
    pub kind: FaultKind,
}

/// A set of faults to inject in one simulation, stored as per-signal
/// masks so injection costs two bitwise ops per faulted net per pass.
///
/// For every signal the simulator computes
/// `value = (value & and_mask) | or_mask` followed by `value ^= xor_mask`
/// (transient flips), so stuck-ats and transients compose.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSet {
    /// `(signal index, and-mask, or-mask, xor-mask)` — sparse, typically
    /// one or two entries.
    entries: Vec<(usize, u64, u64, u64)>,
}

impl FaultSet {
    /// An empty fault set (simulation is bit-identical to fault-free).
    pub fn empty() -> FaultSet {
        FaultSet::default()
    }

    /// The number of faulted nets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no fault is injected.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds a permanent stuck-at fault.
    pub fn stuck_at(mut self, signal: SignalId, kind: FaultKind) -> FaultSet {
        let (and_mask, or_mask) = match kind {
            FaultKind::StuckAt0 => (0u64, 0u64),
            FaultKind::StuckAt1 => (!0u64, !0u64),
        };
        self.push(signal.index(), and_mask, or_mask, 0);
        self
    }

    /// Adds a transient fault: lanes set in `lanes` read the net
    /// inverted (a bit-flip in those simulation lanes).
    pub fn transient(mut self, signal: SignalId, lanes: u64) -> FaultSet {
        self.push(signal.index(), !0, 0, lanes);
        self
    }

    fn push(&mut self, index: usize, and_mask: u64, or_mask: u64, xor_mask: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == index) {
            // Compose with any fault already on this net: stuck-ats
            // override, transients accumulate.
            e.1 &= and_mask;
            e.2 = (e.2 & and_mask) | or_mask;
            e.3 ^= xor_mask;
        } else {
            self.entries.push((index, and_mask, or_mask, xor_mask));
        }
    }

    /// Largest signal index referenced (validation helper).
    pub(crate) fn max_index(&self) -> Option<usize> {
        self.entries.iter().map(|e| e.0).max()
    }

    /// The raw `(signal index, and, or, xor)` mask entries, for content
    /// digesting.
    pub(crate) fn entries(&self) -> &[(usize, u64, u64, u64)] {
        &self.entries
    }
}

impl From<Fault> for FaultSet {
    fn from(f: Fault) -> FaultSet {
        FaultSet::empty().stuck_at(f.signal, f.kind)
    }
}

/// Per-site outcome of a campaign, comparable across sites.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSiteReport {
    /// The injected fault.
    pub fault: Fault,
    /// Fraction of simulated samples with at least one wrong output bit.
    pub mismatch_rate: f64,
    /// Mean weighted output error per sample: wrong bits weighted by
    /// `2^position` within each output word (so MSB corruption counts
    /// more, matching arithmetic-bus intuition), normalized by the
    /// maximum weight.
    pub weighted_error: f64,
}

/// Result of sweeping faults over a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// One report per injected fault, in injection order.
    pub sites: Vec<FaultSiteReport>,
    /// Total samples (lanes) simulated per site.
    pub samples: usize,
    /// How many of `sites` were actually simulated. Sites proven dead by
    /// the cone-of-influence analysis (see [`CampaignOptions::skip_dead`])
    /// are reported with zero impact without running the simulator, so
    /// this can be smaller than `sites.len()`.
    pub simulated_sites: usize,
}

/// Tuning knobs for a stuck-at campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignOptions {
    /// Skip simulating fault sites on signals outside every primary
    /// output's cone-of-influence (computed by
    /// [`crate::lint::live_cone`]). A stuck-at on a dead net cannot
    /// change any output, so its report — zero mismatch rate, zero
    /// weighted error — is emitted directly. Rankings are bit-identical
    /// to the full campaign; only the work shrinks.
    pub skip_dead: bool,
    /// Skip simulating fault sites the error-cone analysis proves
    /// unobservable ([`crate::errbound::StuckAtObservability`]): the
    /// stuck value equals the net's proved constant (a no-op fault), or
    /// the per-site forward D-propagation shows the corruption blocked
    /// from every primary output by proved-constant siblings. Strictly
    /// subsumes `skip_dead` (a dead site's corruption reaches no
    /// output), and like it provably preserves every per-site report
    /// bit-for-bit — only [`CampaignReport::simulated_sites`] drops.
    pub skip_masked: bool,
}

impl CampaignReport {
    /// Site indices sorted by decreasing impact (weighted error first,
    /// mismatch rate as tie-break). NaN cannot occur: both metrics are
    /// ratios of finite counts.
    pub fn ranked_sites(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.sites.len()).collect();
        idx.sort_by(|&a, &b| {
            let (sa, sb) = (&self.sites[a], &self.sites[b]);
            sb.weighted_error
                .total_cmp(&sa.weighted_error)
                .then(sb.mismatch_rate.total_cmp(&sa.mismatch_rate))
        });
        idx
    }

    /// The most critical sites: ranked, truncated to `k`.
    pub fn critical_sites(&self, k: usize) -> Vec<&FaultSiteReport> {
        self.ranked_sites()
            .into_iter()
            .take(k)
            .map(|i| &self.sites[i])
            .collect()
    }

    /// Fraction of sites that never corrupted an output (logic masking).
    pub fn masked_fraction(&self) -> f64 {
        if self.sites.is_empty() {
            return 0.0;
        }
        let masked = self.sites.iter().filter(|s| s.mismatch_rate == 0.0).count();
        masked as f64 / self.sites.len() as f64
    }
}

impl Netlist {
    /// [`Netlist::eval_words`] with a set of injected faults.
    ///
    /// The fault masks are applied to each net's value immediately after
    /// it is computed, so downstream gates see the faulted value —
    /// exactly the semantics of a defective physical net. An empty fault
    /// set yields bit-identical results to the fault-free evaluator.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidFaultSite`] if a fault references
    /// a signal outside this netlist, and propagates
    /// [`NetlistError::InputCountMismatch`] from the underlying
    /// evaluator.
    pub fn eval_words_with_faults(
        &self,
        input_words: &[u64],
        faults: &FaultSet,
    ) -> crate::Result<Vec<u64>> {
        if let Some(max) = faults.max_index() {
            if max >= self.len() {
                return Err(NetlistError::InvalidFaultSite {
                    index: max,
                    signals: self.len(),
                });
            }
        }
        if input_words.len() != self.inputs().len() {
            return Err(NetlistError::InputCountMismatch {
                expected: self.inputs().len(),
                found: input_words.len(),
            });
        }
        let mut vals = vec![0u64; self.len()];
        let mut next_input = 0;
        // Sparse per-signal fault masks, densified once per call.
        let mut masks: Vec<Option<(u64, u64, u64)>> = vec![None; self.len()];
        for &(i, and_mask, or_mask, xor_mask) in &faults.entries {
            masks[i] = Some((and_mask, or_mask, xor_mask));
        }
        for (i, gate) in self.gates().iter().enumerate() {
            let v = match *gate {
                Gate::Input { .. } => {
                    let w = input_words[next_input];
                    next_input += 1;
                    w
                }
                Gate::Const(c) => {
                    if c {
                        u64::MAX
                    } else {
                        0
                    }
                }
                Gate::Buf(a) => vals[a.index()],
                Gate::Not(a) => !vals[a.index()],
                Gate::And(a, b) => vals[a.index()] & vals[b.index()],
                Gate::Or(a, b) => vals[a.index()] | vals[b.index()],
                Gate::Xor(a, b) => vals[a.index()] ^ vals[b.index()],
                Gate::Nand(a, b) => !(vals[a.index()] & vals[b.index()]),
                Gate::Nor(a, b) => !(vals[a.index()] | vals[b.index()]),
                Gate::Xnor(a, b) => !(vals[a.index()] ^ vals[b.index()]),
                Gate::Mux { sel, t, f } => {
                    let s = vals[sel.index()];
                    (s & vals[t.index()]) | (!s & vals[f.index()])
                }
                Gate::Maj(a, b, c) => {
                    let (x, y, z) = (vals[a.index()], vals[b.index()], vals[c.index()]);
                    (x & y) | (x & z) | (y & z)
                }
            };
            vals[i] = match masks[i] {
                Some((and_mask, or_mask, xor_mask)) => ((v & and_mask) | or_mask) ^ xor_mask,
                None => v,
            };
        }
        Ok(vals)
    }

    /// Primary outputs under injected faults, 64 lanes at a time.
    ///
    /// # Errors
    ///
    /// See [`Netlist::eval_words_with_faults`].
    pub fn simulate_words_with_faults(
        &self,
        input_words: &[u64],
        faults: &FaultSet,
    ) -> crate::Result<Vec<u64>> {
        let vals = self.eval_words_with_faults(input_words, faults)?;
        Ok(self.outputs().iter().map(|(_, s)| vals[s.index()]).collect())
    }

    /// All injectable fault sites: every signal with both stuck-at
    /// polarities. Primary inputs are included (a stuck input models a
    /// broken bond/pin).
    pub fn fault_sites(&self) -> Vec<Fault> {
        let mut sites = Vec::with_capacity(self.len() * 2);
        for i in 0..self.len() {
            let signal = SignalId::from_index(i);
            sites.push(Fault { signal, kind: FaultKind::StuckAt0 });
            sites.push(Fault { signal, kind: FaultKind::StuckAt1 });
        }
        sites
    }

    /// Runs a stuck-at campaign over `sites`, driving every batch in
    /// `input_batches` (each batch is one `eval_words` input vector
    /// carrying up to 64 lane samples; `lanes_per_batch` says how many
    /// lanes of each batch are meaningful).
    ///
    /// # Errors
    ///
    /// See [`Netlist::eval_words_with_faults`].
    pub fn stuck_at_campaign(
        &self,
        sites: &[Fault],
        input_batches: &[Vec<u64>],
        lanes_per_batch: usize,
    ) -> crate::Result<CampaignReport> {
        self.stuck_at_campaign_with(
            sites,
            input_batches,
            lanes_per_batch,
            &clapped_exec::Engine::serial(),
        )
    }

    /// [`Netlist::stuck_at_campaign`] with the per-site sweep fanned out
    /// over `engine`'s thread pool. Each site's simulation is an
    /// independent pure function of the netlist and inputs, and results
    /// are collected in site order, so the report is bit-identical to
    /// the serial campaign at any thread count.
    ///
    /// # Errors
    ///
    /// See [`Netlist::eval_words_with_faults`].
    pub fn stuck_at_campaign_with(
        &self,
        sites: &[Fault],
        input_batches: &[Vec<u64>],
        lanes_per_batch: usize,
        engine: &clapped_exec::Engine,
    ) -> crate::Result<CampaignReport> {
        self.stuck_at_campaign_with_options(
            sites,
            input_batches,
            lanes_per_batch,
            engine,
            CampaignOptions::default(),
        )
    }

    /// [`Netlist::stuck_at_campaign_with`] with explicit
    /// [`CampaignOptions`]. With `skip_dead` set, sites on nets outside
    /// every output cone are reported as zero-impact without simulation
    /// — provably the result the simulator would produce, since no path
    /// carries the forced value to an output. [`CampaignReport::simulated_sites`]
    /// counts the sweeps that actually ran.
    ///
    /// Internally the sweep runs on the wide-word simulator
    /// ([`Netlist::simulate_blocks_with_faults`]): batches are packed
    /// into [`CAMPAIGN_BLOCK_WORDS`]-word blocks once, shared by every
    /// site, and the work fans out over `engine` as
    /// `(site, batch-chunk)` shards. All mismatch statistics are
    /// accumulated as exact integers and folded in a fixed order, so
    /// the report is bit-identical to [`Netlist::stuck_at_campaign_ref`]
    /// at any thread count and any chunking.
    ///
    /// # Errors
    ///
    /// See [`Netlist::eval_words_with_faults`].
    pub fn stuck_at_campaign_with_options(
        &self,
        sites: &[Fault],
        input_batches: &[Vec<u64>],
        lanes_per_batch: usize,
        engine: &clapped_exec::Engine,
        options: CampaignOptions,
    ) -> crate::Result<CampaignReport> {
        const W: usize = CAMPAIGN_BLOCK_WORDS;
        assert!((1..=64).contains(&lanes_per_batch), "1..=64 lanes per batch");
        let lane_mask: u64 = if lanes_per_batch == 64 {
            !0
        } else {
            (1u64 << lanes_per_batch) - 1
        };
        let n_inputs = self.inputs().len();
        // Validate batches in order (the reference's golden pass
        // surfaces the first bad batch), then sites in order (the
        // reference's per-site sweep surfaces the lowest-indexed bad
        // site).
        for batch in input_batches {
            if batch.len() != n_inputs {
                return Err(NetlistError::InputCountMismatch {
                    expected: n_inputs,
                    found: batch.len(),
                });
            }
        }
        for fault in sites {
            if fault.signal.index() >= self.len() {
                return Err(NetlistError::InvalidFaultSite {
                    index: fault.signal.index(),
                    signals: self.len(),
                });
            }
        }
        // Pack the batches into W-word blocks once; padding words of a
        // partial final block stay zero and are masked out of every
        // mismatch count below.
        let n_groups = input_batches.len().div_ceil(W);
        let grouped: Vec<Vec<[u64; W]>> = (0..n_groups)
            .map(|g| {
                (0..n_inputs)
                    .map(|k| {
                        let mut block = [0u64; W];
                        for (w, slot) in block.iter_mut().enumerate() {
                            if let Some(batch) = input_batches.get(g * W + w) {
                                *slot = batch[k];
                            }
                        }
                        block
                    })
                    .collect()
            })
            .collect();
        // Meaningful-lane masks per block word (zero on padding words).
        let word_masks: Vec<[u64; W]> = (0..n_groups)
            .map(|g| {
                let mut m = [0u64; W];
                for (w, slot) in m.iter_mut().enumerate() {
                    if g * W + w < input_batches.len() {
                        *slot = lane_mask;
                    }
                }
                m
            })
            .collect();
        // Wide golden outputs, computed once and shared by all shards.
        let golden: Vec<Vec<[u64; W]>> = grouped
            .iter()
            .map(|blocks| self.simulate_blocks::<W>(blocks))
            .collect::<crate::Result<_>>()?;
        let out_bits = self.outputs().len();
        let max_weight: f64 = (0..out_bits).map(|k| (k as f64).exp2()).sum();
        let samples = input_batches.len() * lanes_per_batch;

        let live = if options.skip_dead { Some(crate::lint::live_cone(self)) } else { None };
        let obs = if options.skip_masked {
            Some(crate::errbound::StuckAtObservability::new(self))
        } else {
            None
        };
        let keep: Vec<bool> = sites
            .iter()
            .map(|f| {
                if let Some(live) = &live {
                    if !live[f.signal.index()] {
                        return false;
                    }
                }
                if let Some(obs) = &obs {
                    let stuck_value = matches!(f.kind, FaultKind::StuckAt1);
                    if !obs.is_observable(f.signal, stuck_value) {
                        return false;
                    }
                }
                true
            })
            .collect();
        let sim_sites: Vec<Fault> =
            sites.iter().copied().zip(&keep).filter(|&(_, &k)| k).map(|(f, _)| f).collect();
        let simulated_sites = sim_sites.len();

        // Shard the sweep over (site, batch-chunk) jobs so both many
        // sites and many batches feed the thread pool.
        let shards_per_site = n_groups.div_ceil(CAMPAIGN_GROUPS_PER_SHARD).max(1);
        let jobs: Vec<(usize, usize, usize)> = (0..sim_sites.len())
            .flat_map(|si| {
                (0..shards_per_site).map(move |s| {
                    let g0 = (s * CAMPAIGN_GROUPS_PER_SHARD).min(n_groups);
                    let g1 = ((s + 1) * CAMPAIGN_GROUPS_PER_SHARD).min(n_groups);
                    (si, g0, g1)
                })
            })
            .collect();
        let partials = engine.try_evaluate_many(&jobs, |_, &(si, g0, g1)| {
            self.sweep_shard(
                sim_sites[si],
                &grouped[g0..g1],
                &golden[g0..g1],
                &word_masks[g0..g1],
                out_bits,
            )
        })?;

        // Fold the shards per site in shard order. Both counters are
        // integers, so the fold is exact and order-insensitive; the
        // weighted sum below adds integer-valued f64 terms (count·2^k,
        // all below 2^53), which is exactly how the reference's
        // per-batch accumulation rounds — bit-identical results.
        let mut site_reports = Vec::with_capacity(sim_sites.len());
        for (si, fault) in sim_sites.iter().enumerate() {
            let mut mismatched: u64 = 0;
            let mut bit_counts = vec![0u64; out_bits];
            for partial in &partials[si * shards_per_site..(si + 1) * shards_per_site] {
                mismatched += partial.mismatched_lanes;
                for (acc, c) in bit_counts.iter_mut().zip(&partial.bit_mismatches) {
                    *acc += c;
                }
            }
            let mut weighted = 0.0f64;
            for (k, &c) in bit_counts.iter().enumerate() {
                weighted += c as f64 * (k as f64).exp2();
            }
            site_reports.push(FaultSiteReport {
                fault: *fault,
                mismatch_rate: mismatched as f64 / samples as f64,
                weighted_error: weighted / (samples as f64 * max_weight),
            });
        }

        // Re-interleave simulated and skipped sites in injection order.
        let sites_out = if keep.iter().all(|&k| k) {
            site_reports
        } else {
            let mut simulated = site_reports.into_iter();
            sites
                .iter()
                .zip(&keep)
                .map(|(&fault, &kept)| {
                    if kept {
                        simulated.next().unwrap_or(FaultSiteReport {
                            fault,
                            mismatch_rate: 0.0,
                            weighted_error: 0.0,
                        })
                    } else {
                        FaultSiteReport { fault, mismatch_rate: 0.0, weighted_error: 0.0 }
                    }
                })
                .collect()
        };
        Ok(CampaignReport { sites: sites_out, samples, simulated_sites })
    }

    /// The retained 64-way serial reference campaign: one
    /// [`Netlist::simulate_words_with_faults`] pass per site per batch,
    /// statistics accumulated batch by batch. The wide sharded
    /// campaign above is pinned bit-identical to this path by the
    /// property tests and benchmarked against it in `bench_sim`.
    ///
    /// # Errors
    ///
    /// See [`Netlist::eval_words_with_faults`].
    pub fn stuck_at_campaign_ref(
        &self,
        sites: &[Fault],
        input_batches: &[Vec<u64>],
        lanes_per_batch: usize,
    ) -> crate::Result<CampaignReport> {
        assert!((1..=64).contains(&lanes_per_batch), "1..=64 lanes per batch");
        let lane_mask: u64 = if lanes_per_batch == 64 {
            !0
        } else {
            (1u64 << lanes_per_batch) - 1
        };
        let golden: Vec<Vec<u64>> = input_batches
            .iter()
            .map(|b| self.simulate_words_with_faults(b, &FaultSet::empty()))
            .collect::<crate::Result<_>>()?;
        let out_bits = self.outputs().len();
        let max_weight: f64 = (0..out_bits).map(|k| (k as f64).exp2()).sum();
        let samples = input_batches.len() * lanes_per_batch;
        let sites_out = sites
            .iter()
            .map(|&fault| {
                self.sweep_one_site(fault, input_batches, &golden, lane_mask, max_weight, samples)
            })
            .collect::<crate::Result<Vec<_>>>()?;
        let simulated_sites = sites_out.len();
        Ok(CampaignReport { sites: sites_out, samples, simulated_sites })
    }

    /// One unit of sharded campaign work: simulates a chunk of input
    /// blocks under one injected fault and counts mismatches as exact
    /// integers.
    fn sweep_shard<const W: usize>(
        &self,
        fault: Fault,
        groups: &[Vec<[u64; W]>],
        golden: &[Vec<[u64; W]>],
        word_masks: &[[u64; W]],
        out_bits: usize,
    ) -> crate::Result<ShardStats> {
        let set = FaultSet::from(fault);
        let masks = set.entries().to_vec();
        let mut vals: Vec<[u64; W]> = Vec::new();
        let mut mismatched = 0u64;
        let mut bit_mismatches = vec![0u64; out_bits];
        for ((blocks, gold), wmask) in groups.iter().zip(golden).zip(word_masks) {
            self.eval_blocks_masked(blocks, &masks, &mut vals)?;
            let mut any_diff = [0u64; W];
            for (k, (_, s)) in self.outputs().iter().enumerate() {
                let o = vals[s.index()];
                let mut count = 0u64;
                for w in 0..W {
                    let diff = (o[w] ^ gold[k][w]) & wmask[w];
                    any_diff[w] |= diff;
                    count += u64::from(diff.count_ones());
                }
                bit_mismatches[k] += count;
            }
            for d in any_diff {
                mismatched += u64::from(d.count_ones());
            }
        }
        Ok(ShardStats { mismatched_lanes: mismatched, bit_mismatches })
    }

    /// Simulates every input batch under one injected fault and folds
    /// the mismatch statistics — the unit of work a campaign fans out.
    fn sweep_one_site(
        &self,
        fault: Fault,
        input_batches: &[Vec<u64>],
        golden: &[Vec<u64>],
        lane_mask: u64,
        max_weight: f64,
        samples: usize,
    ) -> crate::Result<FaultSiteReport> {
        let set = FaultSet::from(fault);
        let mut mismatched_lanes = 0usize;
        let mut weighted = 0.0f64;
        for (batch, gold) in input_batches.iter().zip(golden) {
            let outs = self.simulate_words_with_faults(batch, &set)?;
            let mut any_diff = 0u64;
            for (k, (o, g)) in outs.iter().zip(gold).enumerate() {
                let diff = (o ^ g) & lane_mask;
                any_diff |= diff;
                weighted += diff.count_ones() as f64 * (k as f64).exp2();
            }
            mismatched_lanes += any_diff.count_ones() as usize;
        }
        Ok(FaultSiteReport {
            fault,
            mismatch_rate: mismatched_lanes as f64 / samples as f64,
            weighted_error: weighted / (samples as f64 * max_weight),
        })
    }

    /// Runs a transient (bit-flip) campaign: `rounds` random single-net
    /// upsets per batch, each flipping the chosen net in a random subset
    /// of lanes with density ~1/2. Returns, per signal, the fraction of
    /// flipped lanes whose outputs were corrupted — the net's
    /// *propagation probability* (1 − logic masking).
    ///
    /// Deterministic for a given `seed`.
    ///
    /// # Errors
    ///
    /// See [`Netlist::eval_words_with_faults`].
    pub fn transient_campaign(
        &self,
        input_batches: &[Vec<u64>],
        rounds: usize,
        seed: u64,
    ) -> crate::Result<Vec<f64>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut corrupted = vec![0u64; self.len()];
        let mut flipped = vec![0u64; self.len()];
        let golden: Vec<Vec<u64>> = input_batches
            .iter()
            .map(|b| self.simulate_words_with_faults(b, &FaultSet::empty()))
            .collect::<crate::Result<_>>()?;
        for _ in 0..rounds {
            for (batch, gold) in input_batches.iter().zip(&golden) {
                let target = (rng.next_u64() % self.len() as u64) as usize;
                let lanes = rng.next_u64();
                if lanes == 0 {
                    continue;
                }
                let set = FaultSet::empty().transient(SignalId::from_index(target), lanes);
                let outs = self.simulate_words_with_faults(batch, &set)?;
                let mut any_diff = 0u64;
                for (o, g) in outs.iter().zip(gold) {
                    any_diff |= o ^ g;
                }
                flipped[target] += lanes.count_ones() as u64;
                corrupted[target] += (any_diff & lanes).count_ones() as u64;
            }
        }
        Ok(corrupted
            .iter()
            .zip(&flipped)
            .map(|(&c, &f)| if f == 0 { 0.0 } else { c as f64 / f as f64 })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pack_bus_samples, Netlist};

    fn xor_chain() -> Netlist {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let x = n.xor(a, b);
        let y = n.not(x);
        n.output("x", x);
        n.output("y", y);
        n
    }

    #[test]
    fn empty_fault_set_is_identity() {
        let n = xor_chain();
        let inputs = [0b1010u64, 0b0110u64];
        let plain = n.eval_words(&inputs).unwrap();
        let faulted = n.eval_words_with_faults(&inputs, &FaultSet::empty()).unwrap();
        assert_eq!(plain, faulted);
    }

    #[test]
    fn stuck_at_forces_net() {
        let n = xor_chain();
        // Fault the xor output (signal index 2) to 1: x reads all-ones,
        // y (its inverse computed downstream) reads all-zeros.
        let sid = SignalId::from_index(2);
        let set = FaultSet::empty().stuck_at(sid, FaultKind::StuckAt1);
        let outs = n.simulate_words_with_faults(&[0b1010, 0b0110], &set).unwrap();
        assert_eq!(outs[0], !0u64);
        assert_eq!(outs[1], 0u64);
    }

    #[test]
    fn transient_flips_only_selected_lanes() {
        let n = xor_chain();
        let lanes = 0b1001u64;
        let set = FaultSet::empty().transient(SignalId::from_index(2), lanes);
        let gold = n.simulate_words_with_faults(&[0b1010, 0b0110], &FaultSet::empty()).unwrap();
        let outs = n.simulate_words_with_faults(&[0b1010, 0b0110], &set).unwrap();
        assert_eq!(outs[0] ^ gold[0], lanes);
        assert_eq!(outs[1] ^ gold[1], lanes);
    }

    #[test]
    fn invalid_site_is_reported() {
        let n = xor_chain();
        let set = FaultSet::empty().stuck_at(SignalId::from_index(99), FaultKind::StuckAt0);
        let err = n.eval_words_with_faults(&[0, 0], &set).unwrap_err();
        assert!(matches!(err, NetlistError::InvalidFaultSite { index: 99, .. }));
    }

    #[test]
    fn faults_compose_on_one_net() {
        let n = xor_chain();
        let sid = SignalId::from_index(2);
        // Stuck-at-0 then a transient flip in lane 0: lane 0 reads 1.
        let set = FaultSet::empty()
            .stuck_at(sid, FaultKind::StuckAt0)
            .transient(sid, 0b1);
        let outs = n.simulate_words_with_faults(&[0b1010, 0b0110], &set).unwrap();
        assert_eq!(outs[0], 0b1);
    }

    #[test]
    fn campaign_ranks_live_nets_over_masked_ones() {
        // y = (a & b) | c  — a fault on c propagates whenever a&b is 0;
        // a fault on the dead-end buffer never reaches the output.
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let ab = n.and(a, b);
        let y = n.or(ab, c);
        n.output("y", y);
        let sites = n.fault_sites();
        // Exhaustive 8-combination batch.
        let batch = vec![0b11110000u64, 0b11001100, 0b10101010];
        let report = n.stuck_at_campaign(&sites, &[batch], 8).unwrap();
        assert_eq!(report.samples, 8);
        // The output net stuck at the wrong polarity must corrupt at
        // least as much as any single input fault.
        let rank = report.ranked_sites();
        let top = &report.sites[rank[0]];
        assert!(top.mismatch_rate > 0.0);
        for s in &report.sites {
            assert!(top.weighted_error >= s.weighted_error);
        }
    }

    #[test]
    fn campaign_on_adder_flags_msb_as_critical() {
        let mut n = Netlist::new("add2");
        let a = n.input_bus("a", 2);
        let b = n.input_bus("b", 2);
        let (sum, carry) = crate::bus::ripple_carry_add(&mut n, &a, &b, None);
        n.output_bus("s", &sum);
        n.output("cout", carry);
        // Drive all 16 input combinations in one batch.
        let pairs: Vec<(i64, i64)> = (0..4).flat_map(|x| (0..4).map(move |y| (x, y))).collect();
        let a_words = pack_bus_samples(&pairs.iter().map(|p| p.0).collect::<Vec<_>>(), 2);
        let b_words = pack_bus_samples(&pairs.iter().map(|p| p.1).collect::<Vec<_>>(), 2);
        let mut batch = a_words;
        batch.extend(b_words);
        let report = n.stuck_at_campaign(&n.fault_sites(), &[batch], 16).unwrap();
        // Faulting the carry-out (highest-weight output) must outrank
        // faulting the LSB sum bit.
        let cout_sig = n.outputs().last().unwrap().1;
        let lsb_sig = n.outputs()[0].1;
        let find = |sig: SignalId, kind: FaultKind| {
            report
                .sites
                .iter()
                .find(|s| s.fault.signal == sig && s.fault.kind == kind)
                .unwrap()
                .weighted_error
        };
        assert!(find(cout_sig, FaultKind::StuckAt1) > find(lsb_sig, FaultKind::StuckAt1));
    }

    #[test]
    fn parallel_campaign_matches_serial_bit_for_bit() {
        let mut n = Netlist::new("add2");
        let a = n.input_bus("a", 2);
        let b = n.input_bus("b", 2);
        let (sum, carry) = crate::bus::ripple_carry_add(&mut n, &a, &b, None);
        n.output_bus("s", &sum);
        n.output("cout", carry);
        let pairs: Vec<(i64, i64)> = (0..4).flat_map(|x| (0..4).map(move |y| (x, y))).collect();
        let a_words = pack_bus_samples(&pairs.iter().map(|p| p.0).collect::<Vec<_>>(), 2);
        let b_words = pack_bus_samples(&pairs.iter().map(|p| p.1).collect::<Vec<_>>(), 2);
        let mut batch = a_words;
        batch.extend(b_words);
        let sites = n.fault_sites();
        let serial = n.stuck_at_campaign(&sites, &[batch.clone()], 16).unwrap();
        for jobs in [2, 8] {
            let engine = clapped_exec::Engine::new(clapped_exec::ExecConfig::with_jobs(jobs));
            let par = n.stuck_at_campaign_with(&sites, &[batch.clone()], 16, &engine).unwrap();
            assert_eq!(serial, par, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_campaign_reports_deterministic_error() {
        let n = xor_chain();
        // An out-of-range site mixed into valid ones: the reported error
        // must be the same regardless of thread interleaving.
        let mut sites = n.fault_sites();
        sites.insert(1, Fault { signal: SignalId::from_index(99), kind: FaultKind::StuckAt0 });
        let engine = clapped_exec::Engine::new(clapped_exec::ExecConfig::with_jobs(4));
        let err = n
            .stuck_at_campaign_with(&sites, &[vec![0b1010, 0b0110]], 4, &engine)
            .unwrap_err();
        assert!(matches!(err, NetlistError::InvalidFaultSite { index: 99, .. }));
    }

    #[test]
    fn skip_dead_matches_full_campaign_with_fewer_sweeps() {
        // An adder plus two gates outside the output cone: skipping the
        // dead cone must leave every site report and the ranking
        // bit-identical while counting fewer simulated sweeps.
        let mut n = Netlist::new("deadwood");
        let a = n.input_bus("a", 2);
        let b = n.input_bus("b", 2);
        let (sum, carry) = crate::bus::ripple_carry_add(&mut n, &a, &b, None);
        let d1 = n.xor(sum[0], sum[1]);
        let _d2 = n.and(d1, carry);
        n.output_bus("s", &sum);
        n.output("cout", carry);
        let pairs: Vec<(i64, i64)> = (0..4).flat_map(|x| (0..4).map(move |y| (x, y))).collect();
        let a_words = pack_bus_samples(&pairs.iter().map(|p| p.0).collect::<Vec<_>>(), 2);
        let b_words = pack_bus_samples(&pairs.iter().map(|p| p.1).collect::<Vec<_>>(), 2);
        let mut batch = a_words;
        batch.extend(b_words);
        let sites = n.fault_sites();
        let engine = clapped_exec::Engine::serial();
        let full = n
            .stuck_at_campaign_with_options(
                &sites,
                &[batch.clone()],
                16,
                &engine,
                CampaignOptions { skip_dead: false, ..CampaignOptions::default() },
            )
            .unwrap();
        let skipped = n
            .stuck_at_campaign_with_options(
                &sites,
                &[batch.clone()],
                16,
                &engine,
                CampaignOptions { skip_dead: true, ..CampaignOptions::default() },
            )
            .unwrap();
        assert_eq!(full.sites, skipped.sites, "per-site reports must be bit-identical");
        assert_eq!(full.ranked_sites(), skipped.ranked_sites());
        assert_eq!(full.simulated_sites, sites.len());
        // Two dead gates x two stuck-at polarities are skipped.
        assert_eq!(skipped.simulated_sites, sites.len() - 4);
        // The parallel engine gives the same skipped report.
        let engine8 = clapped_exec::Engine::new(clapped_exec::ExecConfig::with_jobs(8));
        let par = n
            .stuck_at_campaign_with_options(
                &sites,
                &[batch],
                16,
                &engine8,
                CampaignOptions { skip_dead: true, ..CampaignOptions::default() },
            )
            .unwrap();
        assert_eq!(skipped, par);
    }

    #[test]
    fn skip_masked_matches_full_campaign_with_fewer_sweeps() {
        // A circuit with statically provable masking beyond dead-cone
        // analysis: `x` only reaches the output through an AND whose
        // sibling is a proved constant 0, and `gated`'s stuck-at-0 is a
        // no-op on a net proved always-0. All sites are *live* (inside
        // the output cone), so skip_dead removes nothing, while the
        // D-propagation masking must prune measurably — with every
        // report and ranking bit-identical to the unmasked reference.
        let mut n = Netlist::new("masked");
        let x = n.input("x");
        let y = n.input("y");
        let zero = n.constant(false);
        let gated = n.and(x, zero); // proved const 0
        let out = n.or(gated, y);
        n.output("o", out);
        let sites = n.fault_sites();
        let batch = vec![0b1100u64, 0b1010u64];
        let engine = clapped_exec::Engine::serial();
        let full = n
            .stuck_at_campaign_with_options(
                &sites,
                &[batch.clone()],
                4,
                &engine,
                CampaignOptions::default(),
            )
            .unwrap();
        let masked = n
            .stuck_at_campaign_with_options(
                &sites,
                &[batch.clone()],
                4,
                &engine,
                CampaignOptions { skip_dead: false, skip_masked: true },
            )
            .unwrap();
        assert_eq!(full.sites, masked.sites, "reports must be bit-identical");
        assert_eq!(full.ranked_sites(), masked.ranked_sites());
        assert_eq!(full.simulated_sites, sites.len());
        // Provably skipped: x stuck-at-0/1 (blocked by the const-0
        // sibling), zero stuck-at-0 and gated stuck-at-0 (no-op
        // polarity on proved-0 nets).
        assert!(
            masked.simulated_sites <= sites.len() - 4,
            "expected a measurable drop, got {}/{}",
            masked.simulated_sites,
            sites.len()
        );
        // Masking composes with skip_dead and parallel execution.
        let engine8 = clapped_exec::Engine::new(clapped_exec::ExecConfig::with_jobs(8));
        let both = n
            .stuck_at_campaign_with_options(
                &sites,
                &[batch],
                4,
                &engine8,
                CampaignOptions { skip_dead: true, skip_masked: true },
            )
            .unwrap();
        assert_eq!(full.sites, both.sites);
        assert_eq!(both.simulated_sites, masked.simulated_sites);
    }

    #[test]
    fn skip_dead_still_reports_invalid_sites() {
        let n = xor_chain();
        let mut sites = n.fault_sites();
        sites.insert(1, Fault { signal: SignalId::from_index(99), kind: FaultKind::StuckAt0 });
        let err = n
            .stuck_at_campaign_with_options(
                &sites,
                &[vec![0b1010, 0b0110]],
                4,
                &clapped_exec::Engine::serial(),
                CampaignOptions { skip_dead: true, ..CampaignOptions::default() },
            )
            .unwrap_err();
        assert!(matches!(err, NetlistError::InvalidFaultSite { index: 99, .. }));
    }

    #[test]
    fn transient_campaign_is_deterministic_and_bounded() {
        let n = xor_chain();
        let batches = vec![vec![0b1010u64, 0b0110u64]];
        let p1 = n.transient_campaign(&batches, 32, 7).unwrap();
        let p2 = n.transient_campaign(&batches, 32, 7).unwrap();
        assert_eq!(p1, p2);
        assert!(p1.iter().all(|&p| (0.0..=1.0).contains(&p)));
        // The xor-chain has no logic masking: every exercised net
        // propagates every flip.
        assert!(p1.contains(&1.0));
    }
}
