//! Cut-based LUT-K technology mapping.
//!
//! The mapper enumerates K-feasible cuts for every logic node (priority
//! cuts with dominance pruning), selects a representative cut per node
//! (depth-oriented or area-oriented), and covers the netlist from its
//! outputs. Each selected cut becomes one K-input LUT whose truth table is
//! extracted by simulating the cut's cone.

// lint-allow-file(no-silent-truncation): cut leaves store gate indices
// as u32; every cast round-trips a `SignalId(u32)` index through usize,
// so the value always fits.

use crate::ir::{Gate, Netlist, SignalId};
use crate::NetlistError;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Maximum number of cuts kept per node (priority cuts).
const MAX_CUTS: usize = 12;

/// Cut selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MapStrategy {
    /// Minimize mapped depth first, then cut size. Mirrors a
    /// performance-directed FPGA flow.
    #[default]
    Depth,
    /// Minimize LUT count greedily (smallest cuts first), then depth.
    Area,
}

/// A single mapped LUT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappedLut {
    /// The signal (in the source netlist) this LUT produces.
    pub root: SignalId,
    /// Cut leaves (signals in the source netlist), at most K of them.
    pub inputs: Vec<SignalId>,
    /// Truth table over the inputs: bit `i` gives the output when input
    /// `j` takes bit `j` of the index `i`.
    pub truth: u64,
}

/// Result of technology mapping: a LUT network equivalent to the source
/// netlist.
#[derive(Debug, Clone)]
pub struct MappedNetlist {
    /// LUT size the mapping was performed for.
    pub k: usize,
    /// Mapped LUTs in topological order.
    pub luts: Vec<MappedLut>,
    /// Primary inputs of the source netlist.
    pub inputs: Vec<SignalId>,
    /// Primary outputs (name, signal) of the source netlist.
    pub outputs: Vec<(String, SignalId)>,
    /// Constant signals of the source netlist and their values (outputs
    /// may be tied to them directly). Ordered: [`MappedNetlist::to_netlist`]
    /// iterates this map while creating gates, and the rebuilt netlist's
    /// content digest must not depend on per-process hash seeds.
    pub constants: BTreeMap<SignalId, bool>,
    /// Depth of the LUT network in levels.
    pub depth: u32,
}

impl MappedNetlist {
    /// Number of LUTs.
    pub fn lut_count(&self) -> usize {
        self.luts.len()
    }

    /// Evaluates the LUT network for 64 parallel lanes.
    ///
    /// `input_words[k]` drives the k-th primary input. Returns the values
    /// of every signal that the mapping defines (primary inputs, constants
    /// and LUT roots), keyed by source-netlist signal id.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputCountMismatch`] on input arity mismatch.
    // lint-allow(hash-containers): keyed scratch/result values; callers look up by SignalId, never iterate
    pub fn eval_words(&self, input_words: &[u64]) -> crate::Result<HashMap<SignalId, u64>> {
        if input_words.len() != self.inputs.len() {
            return Err(NetlistError::InputCountMismatch {
                expected: self.inputs.len(),
                found: input_words.len(),
            });
        }
        // lint-allow(hash-containers): lookup-only value table, never iterated
        let mut vals: HashMap<SignalId, u64> = HashMap::new();
        for (&sig, &w) in self.inputs.iter().zip(input_words) {
            vals.insert(sig, w);
        }
        for (&sig, &c) in &self.constants {
            vals.insert(sig, if c { u64::MAX } else { 0 });
        }
        for lut in &self.luts {
            let mut out = 0u64;
            // Evaluate per lane: build the truth-table index from input bits.
            for lane in 0..64 {
                let mut idx = 0usize;
                for (j, inp) in lut.inputs.iter().enumerate() {
                    let v = vals
                        .get(inp)
                        .expect("LUT inputs precede the LUT in topological order");
                    if (v >> lane) & 1 == 1 {
                        idx |= 1 << j;
                    }
                }
                if (lut.truth >> idx) & 1 == 1 {
                    out |= 1 << lane;
                }
            }
            vals.insert(lut.root, out);
        }
        Ok(vals)
    }

    /// Rebuilds the LUT network as a gate-level [`Netlist`] (each LUT
    /// becomes a mux tree over its truth table), e.g. for re-synthesis
    /// or formal equivalence checking against the original.
    pub fn to_netlist(&self, name: &str) -> Netlist {
        let mut n = Netlist::new(name);
        // lint-allow(hash-containers): old-id -> new-id lookup table, never iterated
        let mut map: HashMap<SignalId, SignalId> = HashMap::new();
        for (i, &orig) in self.inputs.iter().enumerate() {
            let id = n.input(format!("pi{i}"));
            map.insert(orig, id);
        }
        for (&orig, &c) in &self.constants {
            let id = n.constant(c);
            map.insert(orig, id);
        }
        for lut in &self.luts {
            let ins: Vec<SignalId> = lut
                .inputs
                .iter()
                .map(|s| *map.get(s).expect("inputs precede the LUT"))
                .collect();
            // Shannon expansion: recursively mux the truth table.
            let id = build_truth(&mut n, &ins, lut.truth, lut.inputs.len());
            map.insert(lut.root, id);
        }
        for (name, sig) in &self.outputs {
            n.output(name.clone(), *map.get(sig).expect("outputs are mapped"));
        }
        n
    }

    /// Evaluates the primary outputs for 64 parallel lanes.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputCountMismatch`] on input arity mismatch.
    pub fn simulate_words(&self, input_words: &[u64]) -> crate::Result<Vec<u64>> {
        let vals = self.eval_words(input_words)?;
        Ok(self
            .outputs
            .iter()
            .map(|(_, s)| *vals.get(s).expect("outputs are mapped or primary"))
            .collect())
    }
}

/// Maps `netlist` onto K-input LUTs.
///
/// The netlist should be [`crate::optimize`]d first so cones contain no
/// constants or buffers; [`crate::synthesize`] does this automatically.
///
/// # Errors
///
/// Returns [`NetlistError::Unmappable`] if a node has more than K
/// structural fanins that cannot be decomposed (cannot happen for the
/// gate library in this crate as long as `k >= 3`), and propagates
/// simulation errors from truth-table extraction.
///
/// # Panics
///
/// Panics if `k` is not in `2..=6`.
pub fn map_luts(netlist: &Netlist, k: usize, strategy: MapStrategy) -> crate::Result<MappedNetlist> {
    assert!((2..=6).contains(&k), "LUT size must be between 2 and 6");
    let n = netlist.len();

    // Leaves of the cut graph: primary inputs and constants.
    let is_ci = |g: &Gate| matches!(g, Gate::Input { .. } | Gate::Const(_));

    // Cut enumeration in topological order.
    let mut cuts: Vec<Vec<Vec<u32>>> = vec![Vec::new(); n];
    let mut best_depth: Vec<u32> = vec![0; n];
    let mut best_af: Vec<f64> = vec![0.0; n];
    let mut best_cut: Vec<Option<Vec<u32>>> = vec![None; n];
    let fanout: Vec<u32> = netlist.fanout_counts();

    for (idx, gate) in netlist.gates().iter().enumerate() {
        if is_ci(gate) {
            cuts[idx] = vec![vec![idx as u32]];
            best_depth[idx] = 0;
            continue;
        }
        if let Gate::Buf(a) = gate {
            // Buffers are transparent: reuse the fanin's cuts.
            cuts[idx] = cuts[a.index()].clone();
            // Ensure the trivial cut names this node so fanouts can stop here.
            cuts[idx].push(vec![idx as u32]);
            best_depth[idx] = best_depth[a.index()];
            best_cut[idx] = best_cut[a.index()].clone();
            if best_cut[idx].is_none() {
                best_cut[idx] = Some(vec![a.index() as u32]);
            }
            continue;
        }
        let fanins: Vec<usize> = gate.fanins().map(SignalId::index).collect();
        let mut merged: Vec<Vec<u32>> = vec![Vec::new()];
        for &f in &fanins {
            let mut next: Vec<Vec<u32>> = Vec::new();
            for partial in &merged {
                for fcut in &cuts[f] {
                    let mut union = partial.clone();
                    for &leaf in fcut {
                        if let Err(pos) = union.binary_search(&leaf) {
                            union.insert(pos, leaf);
                        }
                    }
                    if union.len() <= k {
                        next.push(union);
                    }
                }
            }
            next.sort();
            next.dedup();
            merged = next;
            if merged.is_empty() {
                break;
            }
        }
        // Dominance pruning: remove cuts that are supersets of another cut.
        merged = prune_dominated(merged);
        // Rank and truncate.
        let depth_of = |cut: &Vec<u32>| -> u32 {
            cut.iter()
                .map(|&l| best_depth[l as usize])
                .max()
                .unwrap_or(0)
                + 1
        };
        // Area flow: estimated LUTs per fanout path through this cut.
        let af_of = |cut: &Vec<u32>| -> f64 {
            1.0 + cut
                .iter()
                .map(|&l| best_af[l as usize] / f64::from(fanout[l as usize].max(1)))
                .sum::<f64>()
        };
        // Total order (f64::total_cmp) so a NaN area flow can never
        // panic or produce an inconsistent sort.
        match strategy {
            MapStrategy::Depth => {
                merged.sort_by(|a, b| {
                    depth_of(a)
                        .cmp(&depth_of(b))
                        .then(af_of(a).total_cmp(&af_of(b)))
                        .then(a.len().cmp(&b.len()))
                });
            }
            MapStrategy::Area => {
                merged.sort_by(|a, b| {
                    af_of(a)
                        .total_cmp(&af_of(b))
                        .then(depth_of(a).cmp(&depth_of(b)))
                        .then(a.len().cmp(&b.len()))
                });
            }
        }
        merged.truncate(MAX_CUTS);
        if merged.is_empty() {
            return Err(NetlistError::Unmappable {
                node: SignalId(idx as u32),
            });
        }
        best_depth[idx] = depth_of(&merged[0]);
        best_af[idx] = af_of(&merged[0]);
        best_cut[idx] = Some(merged[0].clone());
        // Expose the trivial cut to fanouts.
        merged.push(vec![idx as u32]);
        cuts[idx] = merged;
    }

    // Covering: walk back from outputs, instantiating LUTs for required
    // logic nodes.
    let mut required: Vec<u32> = Vec::new();
    // lint-allow(hash-containers): membership test only, never iterated
    let mut seen: HashSet<u32> = HashSet::new();
    for (_, sig) in netlist.outputs() {
        let root = resolve_buf(netlist, *sig);
        if !is_ci(netlist.gate(root)) && seen.insert(root.0) {
            required.push(root.0);
        }
    }
    let mut luts_by_root: BTreeMap<u32, MappedLut> = BTreeMap::new();
    while let Some(node) = required.pop() {
        let cut = best_cut[node as usize]
            .clone()
            .ok_or(NetlistError::Unmappable {
                node: SignalId(node),
            })?;
        let truth = cone_truth_table(netlist, SignalId(node), &cut)?;
        luts_by_root.insert(
            node,
            MappedLut {
                root: SignalId(node),
                inputs: cut.iter().map(|&l| SignalId(l)).collect(),
                truth,
            },
        );
        for &leaf in &cut {
            if !is_ci(netlist.gate(SignalId(leaf))) && seen.insert(leaf) {
                required.push(leaf);
            }
        }
    }

    // The BTreeMap yields LUTs ordered by root id, which is the source
    // netlist's creation order — already topological.
    let luts: Vec<MappedLut> = luts_by_root.into_values().collect();

    // Collect constants referenced by outputs or LUT inputs.
    let mut constants = BTreeMap::new();
    for (idx, gate) in netlist.gates().iter().enumerate() {
        if let Gate::Const(v) = gate {
            constants.insert(SignalId(idx as u32), *v);
        }
    }

    // Outputs may point at buffers; resolve them to their mapped source.
    let outputs: Vec<(String, SignalId)> = netlist
        .outputs()
        .iter()
        .map(|(name, s)| (name.clone(), resolve_buf(netlist, *s)))
        .collect();

    // LUT-network depth.
    // lint-allow(hash-containers): lookup-only level table, never iterated
    let mut level: HashMap<SignalId, u32> = HashMap::new();
    for lut in &luts {
        let lv = lut
            .inputs
            .iter()
            .map(|i| level.get(i).copied().unwrap_or(0))
            .max()
            .unwrap_or(0)
            + 1;
        level.insert(lut.root, lv);
    }
    let depth = outputs
        .iter()
        .map(|(_, s)| level.get(s).copied().unwrap_or(0))
        .max()
        .unwrap_or(0);

    Ok(MappedNetlist {
        k,
        luts,
        inputs: netlist.inputs().to_vec(),
        outputs,
        constants,
        depth,
    })
}

/// Builds the gate tree of a `k`-input truth table by Shannon expansion
/// on the highest input.
fn build_truth(n: &mut Netlist, ins: &[SignalId], truth: u64, k: usize) -> SignalId {
    if k == 0 {
        return n.constant(truth & 1 == 1);
    }
    let half = 1u64 << (k - 1);
    let mask = if half == 64 { u64::MAX } else { (1u64 << half) - 1 };
    let lo = truth & mask;
    let hi = (truth >> half) & mask;
    if lo == hi {
        return build_truth(n, ins, lo, k - 1);
    }
    let f = build_truth(n, ins, lo, k - 1);
    let t = build_truth(n, ins, hi, k - 1);
    n.mux(ins[k - 1], t, f)
}

fn resolve_buf(netlist: &Netlist, mut sig: SignalId) -> SignalId {
    while let Gate::Buf(a) = netlist.gate(sig) {
        sig = *a;
    }
    sig
}

fn prune_dominated(mut cuts: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
    cuts.sort_by_key(Vec::len);
    let mut kept: Vec<Vec<u32>> = Vec::new();
    'outer: for cut in cuts {
        for k in &kept {
            if k.iter().all(|l| cut.binary_search(l).is_ok()) {
                continue 'outer; // dominated by a smaller kept cut
            }
        }
        kept.push(cut);
    }
    kept
}

/// Extracts the truth table of `root`'s cone over the cut leaves by
/// simulating the cone with the canonical input patterns.
fn cone_truth_table(netlist: &Netlist, root: SignalId, cut: &[u32]) -> crate::Result<u64> {
    debug_assert!(cut.len() <= 6);
    // Canonical variable patterns: var j toggles with period 2^(j+1).
    const PATTERNS: [u64; 6] = [
        0xAAAA_AAAA_AAAA_AAAA,
        0xCCCC_CCCC_CCCC_CCCC,
        0xF0F0_F0F0_F0F0_F0F0,
        0xFF00_FF00_FF00_FF00,
        0xFFFF_0000_FFFF_0000,
        0xFFFF_FFFF_0000_0000,
    ];
    // lint-allow(hash-containers): memoized cone values, looked up by id only
    let mut vals: HashMap<u32, u64> = HashMap::new();
    for (j, &leaf) in cut.iter().enumerate() {
        vals.insert(leaf, PATTERNS[j]);
    }
    let word = eval_cone(netlist, root, &mut vals);
    let bits = 1usize << cut.len();
    let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
    Ok(word & mask)
}

// lint-allow(hash-containers): memoized cone values, looked up by id only
fn eval_cone(netlist: &Netlist, sig: SignalId, vals: &mut HashMap<u32, u64>) -> u64 {
    if let Some(&v) = vals.get(&sig.0) {
        return v;
    }
    let v = match *netlist.gate(sig) {
        Gate::Input { .. } => {
            unreachable!("cut leaves cover all primary inputs of the cone")
        }
        Gate::Const(c) => {
            if c {
                u64::MAX
            } else {
                0
            }
        }
        Gate::Buf(a) => eval_cone(netlist, a, vals),
        Gate::Not(a) => !eval_cone(netlist, a, vals),
        Gate::And(a, b) => eval_cone(netlist, a, vals) & eval_cone(netlist, b, vals),
        Gate::Or(a, b) => eval_cone(netlist, a, vals) | eval_cone(netlist, b, vals),
        Gate::Xor(a, b) => eval_cone(netlist, a, vals) ^ eval_cone(netlist, b, vals),
        Gate::Nand(a, b) => !(eval_cone(netlist, a, vals) & eval_cone(netlist, b, vals)),
        Gate::Nor(a, b) => !(eval_cone(netlist, a, vals) | eval_cone(netlist, b, vals)),
        Gate::Xnor(a, b) => !(eval_cone(netlist, a, vals) ^ eval_cone(netlist, b, vals)),
        Gate::Mux { sel, t, f } => {
            let s = eval_cone(netlist, sel, vals);
            (s & eval_cone(netlist, t, vals)) | (!s & eval_cone(netlist, f, vals))
        }
        Gate::Maj(a, b, c) => {
            let (x, y, z) = (
                eval_cone(netlist, a, vals),
                eval_cone(netlist, b, vals),
                eval_cone(netlist, c, vals),
            );
            (x & y) | (x & z) | (y & z)
        }
    };
    vals.insert(sig.0, v);
    v
}

/// Verifies that a mapping is functionally equivalent to its source
/// netlist on `rounds * 64` random vectors.
///
/// # Errors
///
/// Returns [`NetlistError::MappingMismatch`] when a counterexample is
/// found, or propagates simulation errors.
pub(crate) fn verify_mapping(
    netlist: &Netlist,
    mapped: &MappedNetlist,
    rounds: usize,
    seed: u64,
) -> crate::Result<()> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    for _ in 0..rounds {
        let words: Vec<u64> = (0..netlist.inputs().len()).map(|_| rng.gen()).collect();
        let want = netlist.simulate_words(&words)?;
        let got = mapped.simulate_words(&words)?;
        if want != got {
            return Err(NetlistError::MappingMismatch);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bus, optimize, Netlist};

    fn map_and_verify(n: &Netlist, k: usize, strategy: MapStrategy) -> MappedNetlist {
        let opt = optimize(n);
        let mapped = map_luts(&opt, k, strategy).expect("mapping succeeds");
        verify_mapping(&opt, &mapped, 16, 42).expect("mapping is equivalent");
        mapped
    }

    #[test]
    fn maps_simple_gate() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let x = n.and(a, b);
        n.output("x", x);
        let mapped = map_and_verify(&n, 6, MapStrategy::Depth);
        assert_eq!(mapped.lut_count(), 1);
        assert_eq!(mapped.depth, 1);
    }

    #[test]
    fn maps_adder_and_is_equivalent() {
        let mut n = Netlist::new("add8");
        let a = n.input_bus("a", 8);
        let b = n.input_bus("b", 8);
        let (s, c) = bus::ripple_carry_add(&mut n, &a, &b, None);
        n.output_bus("s", &s);
        n.output("c", c);
        let mapped = map_and_verify(&n, 6, MapStrategy::Depth);
        // A LUT6 mapping of an 8-bit RCA needs far fewer LUTs than gates.
        assert!(mapped.lut_count() <= 20, "lut count {}", mapped.lut_count());
        assert!(mapped.depth <= 8);
    }

    #[test]
    fn maps_multiplier_and_is_equivalent() {
        let mut n = Netlist::new("mul6");
        let a = n.input_bus("a", 6);
        let b = n.input_bus("b", 6);
        let p = bus::baugh_wooley_mul(&mut n, &a, &b);
        n.output_bus("p", &p);
        let mapped = map_and_verify(&n, 6, MapStrategy::Depth);
        assert!(mapped.lut_count() > 10);
    }

    #[test]
    fn area_mode_never_uses_more_luts_on_trees() {
        let mut n = Netlist::new("tree");
        let xs = n.input_bus("x", 16);
        let y = n.or_reduce(&xs);
        n.output("y", y);
        let area = map_and_verify(&n, 6, MapStrategy::Area);
        let depth = map_and_verify(&n, 6, MapStrategy::Depth);
        // A 16-input OR fits in ceil(16/6)-ish LUTs either way.
        assert!(area.lut_count() <= 5);
        assert!(depth.lut_count() <= 5);
    }

    #[test]
    fn lut4_mapping_works() {
        let mut n = Netlist::new("add4");
        let a = n.input_bus("a", 4);
        let b = n.input_bus("b", 4);
        let (s, _) = bus::ripple_carry_add(&mut n, &a, &b, None);
        n.output_bus("s", &s);
        let mapped = map_and_verify(&n, 4, MapStrategy::Depth);
        assert!(mapped.luts.iter().all(|l| l.inputs.len() <= 4));
    }

    #[test]
    fn output_tied_to_input_needs_no_lut() {
        let mut n = Netlist::new("wire");
        let a = n.input("a");
        n.output("y", a);
        let mapped = map_and_verify(&n, 6, MapStrategy::Depth);
        assert_eq!(mapped.lut_count(), 0);
        assert_eq!(mapped.depth, 0);
    }

    #[test]
    fn constant_output_is_preserved() {
        let mut n = Netlist::new("konst");
        let _a = n.input("a");
        let c = n.constant(true);
        n.output("y", c);
        let mapped = map_and_verify(&n, 6, MapStrategy::Depth);
        assert_eq!(mapped.lut_count(), 0);
        let out = mapped.simulate_words(&[0]).unwrap();
        assert_eq!(out[0], u64::MAX);
    }

    #[test]
    fn to_netlist_gate_order_is_deterministic() {
        // `to_netlist` iterates `constants` while creating gates; with an
        // ordered map the rebuilt netlist (and hence its content digest)
        // is identical however the mapping was produced. A circuit with
        // both constant polarities exercises the multi-entry case.
        let mut n = Netlist::new("k2");
        let a = n.input("a");
        let c0 = n.constant(false);
        let c1 = n.constant(true);
        let x = n.and(a, c1);
        n.output("x", x);
        n.output("z", c0);
        n.output("o", c1);
        let mapped = map_luts(&n, 4, MapStrategy::Depth).unwrap();
        let r1 = mapped.to_netlist("r");
        let r2 = mapped.clone().to_netlist("r");
        assert_eq!(r1, r2);
        assert_eq!(r1.content_digest(), r2.content_digest());
    }

    #[test]
    fn depth_mode_is_no_deeper_than_area_mode() {
        let mut n = Netlist::new("mul");
        let a = n.input_bus("a", 8);
        let b = n.input_bus("b", 8);
        let p = bus::baugh_wooley_mul(&mut n, &a, &b);
        n.output_bus("p", &p);
        let d = map_and_verify(&n, 6, MapStrategy::Depth);
        let ar = map_and_verify(&n, 6, MapStrategy::Area);
        assert!(d.depth <= ar.depth, "depth {} vs area-mode depth {}", d.depth, ar.depth);
    }
}
