//! Level-based static timing for mapped LUT networks.

use crate::map::MappedNetlist;

/// Delay parameters of the target FPGA fabric.
///
/// The defaults approximate a Xilinx UltraScale+ -1 speed grade: a LUT6
/// logic delay of 0.124 ns and an average net (routing) delay of 0.45 ns
/// per level. Absolute values are not calibrated against silicon — the
/// model's purpose is to rank designs the way a timing engine would.
///
/// # Examples
///
/// ```
/// use clapped_netlist::TimingModel;
///
/// let t = TimingModel::default();
/// assert!(t.critical_path_ns_for_depth(4) > t.critical_path_ns_for_depth(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Logic delay through one LUT, in nanoseconds.
    pub lut_delay_ns: f64,
    /// Average routed-net delay between consecutive LUT levels, in
    /// nanoseconds.
    pub net_delay_ns: f64,
    /// Fixed input/output boundary delay (IBUF + clock-to-out style), in
    /// nanoseconds.
    pub boundary_delay_ns: f64,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            lut_delay_ns: 0.124,
            net_delay_ns: 0.45,
            boundary_delay_ns: 0.6,
        }
    }
}

impl TimingModel {
    /// Critical path delay for a network of the given LUT depth.
    pub fn critical_path_ns_for_depth(&self, depth: u32) -> f64 {
        if depth == 0 {
            return self.boundary_delay_ns;
        }
        self.boundary_delay_ns
            + depth as f64 * self.lut_delay_ns
            + (depth.saturating_sub(1)) as f64 * self.net_delay_ns
    }

    /// Critical path delay of a mapped netlist.
    pub fn critical_path_ns(&self, mapped: &MappedNetlist) -> f64 {
        self.critical_path_ns_for_depth(mapped.depth)
    }

    /// Maximum clock frequency in MHz for the mapped netlist.
    pub fn fmax_mhz(&self, mapped: &MappedNetlist) -> f64 {
        1000.0 / self.critical_path_ns(mapped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bus, map_luts, optimize, MapStrategy, Netlist};

    #[test]
    fn deeper_networks_are_slower() {
        let t = TimingModel::default();
        assert!(t.critical_path_ns_for_depth(3) > t.critical_path_ns_for_depth(1));
        assert_eq!(t.critical_path_ns_for_depth(0), t.boundary_delay_ns);
    }

    #[test]
    fn wider_adders_have_longer_critical_paths() {
        let t = TimingModel::default();
        let cpd = |w: usize| {
            let mut n = Netlist::new("add");
            let a = n.input_bus("a", w);
            let b = n.input_bus("b", w);
            let (s, c) = bus::ripple_carry_add(&mut n, &a, &b, None);
            n.output_bus("s", &s);
            n.output("c", c);
            let m = map_luts(&optimize(&n), 6, MapStrategy::Depth).unwrap();
            t.critical_path_ns(&m)
        };
        assert!(cpd(16) > cpd(4));
    }

    #[test]
    fn fmax_is_inverse_of_cpd() {
        let t = TimingModel::default();
        let mut n = Netlist::new("x");
        let a = n.input("a");
        let b = n.input("b");
        let y = n.xor(a, b);
        n.output("y", y);
        let m = map_luts(&optimize(&n), 6, MapStrategy::Depth).unwrap();
        let f = t.fmax_mhz(&m);
        assert!((f - 1000.0 / t.critical_path_ns(&m)).abs() < 1e-9);
    }
}
