//! Structural Verilog export.
//!
//! Emits a synthesizable Verilog-2001 module for a [`Netlist`] (gate
//! level) or a [`MappedNetlist`] (LUT level, one `assign` per LUT with
//! an inlined truth-table expression), so designs built with this crate
//! can be taken into a real FPGA flow.

use crate::ir::{Gate, Netlist, SignalId};
use crate::map::MappedNetlist;
use std::fmt::Write as _;

/// Sanitizes a port name into a Verilog identifier (`a[3]` → `a_3`).
fn ident(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, 'n');
    }
    out
}

fn wire(id: SignalId) -> String {
    format!("w{}", id.index())
}

/// Emits gate-level structural Verilog for a netlist.
///
/// Each gate becomes a continuous assignment; primary inputs/outputs use
/// their (sanitized) port names.
///
/// # Examples
///
/// ```
/// use clapped_netlist::{verilog::to_verilog, Netlist};
///
/// let mut n = Netlist::new("xor2");
/// let a = n.input("a");
/// let b = n.input("b");
/// let y = n.xor(a, b);
/// n.output("y", y);
/// let v = to_verilog(&n);
/// assert!(v.contains("module xor2"));
/// assert!(v.contains('^'));
/// ```
pub fn to_verilog(netlist: &Netlist) -> String {
    let mut v = String::new();
    let inputs: Vec<String> = netlist
        .inputs()
        .iter()
        .map(|&s| match netlist.gate(s) {
            Gate::Input { name } => ident(name),
            _ => unreachable!("inputs are Input gates"),
        })
        .collect();
    let outputs: Vec<String> = netlist
        .outputs()
        .iter()
        .map(|(name, _)| ident(name))
        .collect();
    let module = ident(netlist.name());
    let mut ports: Vec<String> = inputs.clone();
    ports.extend(outputs.iter().cloned());
    writeln!(v, "module {module} ({});", ports.join(", ")).expect("string write");
    for i in &inputs {
        writeln!(v, "  input {i};").expect("string write");
    }
    for o in &outputs {
        writeln!(v, "  output {o};").expect("string write");
    }
    // Wires for all non-input gates.
    let mut next_input = 0usize;
    let mut names: Vec<String> = Vec::with_capacity(netlist.len());
    for (idx, gate) in netlist.gates().iter().enumerate() {
        match gate {
            Gate::Input { .. } => {
                names.push(inputs[next_input].clone());
                next_input += 1;
            }
            _ => {
                // lint-allow(no-silent-truncation): gate index round-trips SignalId(u32)
                let w = wire(SignalId(idx as u32));
                writeln!(v, "  wire {w};").expect("string write");
                names.push(w);
            }
        }
    }
    for (idx, gate) in netlist.gates().iter().enumerate() {
        let lhs = &names[idx];
        let expr = match gate {
            Gate::Input { .. } => continue,
            Gate::Const(c) => format!("1'b{}", u8::from(*c)),
            Gate::Buf(a) => names[a.index()].clone(),
            Gate::Not(a) => format!("~{}", names[a.index()]),
            Gate::And(a, b) => format!("{} & {}", names[a.index()], names[b.index()]),
            Gate::Or(a, b) => format!("{} | {}", names[a.index()], names[b.index()]),
            Gate::Xor(a, b) => format!("{} ^ {}", names[a.index()], names[b.index()]),
            Gate::Nand(a, b) => format!("~({} & {})", names[a.index()], names[b.index()]),
            Gate::Nor(a, b) => format!("~({} | {})", names[a.index()], names[b.index()]),
            Gate::Xnor(a, b) => format!("~({} ^ {})", names[a.index()], names[b.index()]),
            Gate::Mux { sel, t, f } => format!(
                "{} ? {} : {}",
                names[sel.index()],
                names[t.index()],
                names[f.index()]
            ),
            Gate::Maj(a, b, c) => {
                let (x, y, z) = (&names[a.index()], &names[b.index()], &names[c.index()]);
                format!("({x} & {y}) | ({x} & {z}) | ({y} & {z})")
            }
        };
        writeln!(v, "  assign {lhs} = {expr};").expect("string write");
    }
    for ((oname, sig), o) in netlist.outputs().iter().zip(&outputs) {
        let _ = oname;
        writeln!(v, "  assign {o} = {};", names[sig.index()]).expect("string write");
    }
    writeln!(v, "endmodule").expect("string write");
    v
}

/// Emits LUT-level Verilog for a mapped netlist: one `assign` per LUT
/// whose right-hand side is the truth table expanded into sum-of-
/// products form over the LUT inputs.
pub fn mapped_to_verilog(mapped: &MappedNetlist, module_name: &str) -> String {
    let mut v = String::new();
    let inputs: Vec<String> = (0..mapped.inputs.len()).map(|i| format!("pi{i}")).collect();
    let outputs: Vec<String> = (0..mapped.outputs.len()).map(|i| format!("po{i}")).collect();
    let mut ports = inputs.clone();
    ports.extend(outputs.iter().cloned());
    writeln!(v, "module {} ({});", ident(module_name), ports.join(", ")).expect("string write");
    for i in &inputs {
        writeln!(v, "  input {i};").expect("string write");
    }
    for o in &outputs {
        writeln!(v, "  output {o};").expect("string write");
    }
    let name_of = |sig: SignalId| -> String {
        if let Some(pos) = mapped.inputs.iter().position(|&s| s == sig) {
            format!("pi{pos}")
        } else if let Some(&c) = mapped.constants.get(&sig) {
            format!("1'b{}", u8::from(c))
        } else {
            wire(sig)
        }
    };
    for lut in &mapped.luts {
        writeln!(v, "  wire {};", wire(lut.root)).expect("string write");
    }
    for lut in &mapped.luts {
        let k = lut.inputs.len();
        let mut terms = Vec::new();
        for row in 0..(1usize << k) {
            if (lut.truth >> row) & 1 == 1 {
                let product: Vec<String> = lut
                    .inputs
                    .iter()
                    .enumerate()
                    .map(|(j, &inp)| {
                        let n = name_of(inp);
                        if (row >> j) & 1 == 1 {
                            n
                        } else {
                            format!("~{n}")
                        }
                    })
                    .collect();
                terms.push(format!("({})", product.join(" & ")));
            }
        }
        let expr = if terms.is_empty() {
            "1'b0".to_string()
        } else {
            terms.join(" | ")
        };
        writeln!(v, "  assign {} = {expr};", wire(lut.root)).expect("string write");
    }
    for ((_, sig), o) in mapped.outputs.iter().zip(&outputs) {
        writeln!(v, "  assign {o} = {};", name_of(*sig)).expect("string write");
    }
    writeln!(v, "endmodule").expect("string write");
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bus, map_luts, optimize, MapStrategy, Netlist};

    fn adder4() -> Netlist {
        let mut n = Netlist::new("add4");
        let a = n.input_bus("a", 4);
        let b = n.input_bus("b", 4);
        let (s, c) = bus::ripple_carry_add(&mut n, &a, &b, None);
        n.output_bus("s", &s);
        n.output("cout", c);
        n
    }

    #[test]
    fn gate_level_export_mentions_every_port() {
        let n = adder4();
        let v = to_verilog(&n);
        assert!(v.starts_with("module add4"));
        for p in ["a_0", "a_3", "b_0", "s_0", "s_3", "cout"] {
            assert!(v.contains(p), "missing port {p}");
        }
        assert!(v.ends_with("endmodule\n"));
        // One assign per logic gate plus output aliases.
        let assigns = v.matches("assign").count();
        assert!(assigns >= n.logic_gate_count());
    }

    #[test]
    fn identifiers_are_sanitized() {
        assert_eq!(ident("a[3]"), "a_3_");
        assert_eq!(ident("3x"), "n3x");
        assert_eq!(ident("ok_name"), "ok_name");
    }

    #[test]
    fn lut_level_export_covers_all_luts() {
        let n = adder4();
        let mapped = map_luts(&optimize(&n), 4, MapStrategy::Depth).expect("maps");
        let v = mapped_to_verilog(&mapped, "add4_lut");
        assert!(v.contains("module add4_lut"));
        let assigns = v.matches("assign").count();
        assert_eq!(assigns, mapped.lut_count() + mapped.outputs.len());
    }

    #[test]
    fn constant_outputs_are_emitted_as_literals() {
        let mut n = Netlist::new("konst");
        let _ = n.input("a");
        let c = n.constant(true);
        n.output("y", c);
        let mapped = map_luts(&optimize(&n), 6, MapStrategy::Depth).expect("maps");
        let v = mapped_to_verilog(&mapped, "konst");
        assert!(v.contains("assign po0 = 1'b1;"), "{v}");
    }
}
