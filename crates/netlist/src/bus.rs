//! Structural builders for multi-bit arithmetic datapaths.
//!
//! A *bus* is simply a `Vec<SignalId>` ordered LSB-first. The functions in
//! this module grow a [`Netlist`] with classic arithmetic structures:
//! ripple-carry adders, carry-save column reduction, the Baugh-Wooley
//! signed array multiplier, barrel shifters and leading-one detectors.
//! The approximate operator library (`clapped-axops`) composes these
//! builders into approximate multiplier and adder architectures.

use crate::ir::{Netlist, SignalId};

/// A bus of signals, LSB first.
pub type Bus = Vec<SignalId>;

/// Builds a constant bus holding `value` (two's complement) over `width`
/// bits.
pub fn constant_bus(n: &mut Netlist, value: i64, width: usize) -> Bus {
    (0..width)
        .map(|k| n.constant((value >> k) & 1 == 1))
        .collect()
}

/// Half adder; returns `(sum, carry)`.
pub fn half_adder(n: &mut Netlist, a: SignalId, b: SignalId) -> (SignalId, SignalId) {
    (n.xor(a, b), n.and(a, b))
}

/// Full adder; returns `(sum, carry)` built from XOR3 and MAJ gates.
pub fn full_adder(
    n: &mut Netlist,
    a: SignalId,
    b: SignalId,
    c: SignalId,
) -> (SignalId, SignalId) {
    (n.xor3(a, b, c), n.maj(a, b, c))
}

/// Ripple-carry addition of two equal-width buses.
///
/// Returns the sum bus (same width as the inputs) and the carry-out.
///
/// # Panics
///
/// Panics if the buses have different widths or are empty.
pub fn ripple_carry_add(
    n: &mut Netlist,
    a: &[SignalId],
    b: &[SignalId],
    cin: Option<SignalId>,
) -> (Bus, SignalId) {
    assert_eq!(a.len(), b.len(), "operand widths must match");
    assert!(!a.is_empty(), "operands must be non-empty");
    let mut carry = cin.unwrap_or_else(|| n.constant(false));
    let mut sum = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        let (s, c) = full_adder(n, x, y, carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Two's-complement subtraction `a - b` via `a + !b + 1`.
///
/// Returns the difference bus and the final carry (1 when no borrow).
///
/// # Panics
///
/// Panics if the buses have different widths or are empty.
pub fn ripple_carry_sub(
    n: &mut Netlist,
    a: &[SignalId],
    b: &[SignalId],
) -> (Bus, SignalId) {
    let nb: Bus = b.iter().map(|&x| n.not(x)).collect();
    let one = n.constant(true);
    ripple_carry_add(n, a, &nb, Some(one))
}

/// Two's-complement negation of a bus.
pub fn negate(n: &mut Netlist, a: &[SignalId]) -> Bus {
    let zero = constant_bus(n, 0, a.len());
    ripple_carry_sub(n, &zero, a).0
}

/// Sign-extends a bus to `width` bits.
///
/// # Panics
///
/// Panics if `width < a.len()` or `a` is empty.
pub fn sign_extend(a: &[SignalId], width: usize) -> Bus {
    assert!(!a.is_empty() && width >= a.len());
    let msb = *a.last().expect("non-empty bus");
    let mut out = a.to_vec();
    out.resize(width, msb);
    out
}

/// Zero-extends a bus to `width` bits.
///
/// # Panics
///
/// Panics if `width < a.len()`.
pub fn zero_extend(n: &mut Netlist, a: &[SignalId], width: usize) -> Bus {
    assert!(width >= a.len());
    let zero = n.constant(false);
    let mut out = a.to_vec();
    out.resize(width, zero);
    out
}

/// Per-bit 2:1 mux between equal-width buses: `sel ? t : f`.
///
/// # Panics
///
/// Panics if the buses have different widths.
pub fn mux_bus(n: &mut Netlist, sel: SignalId, t: &[SignalId], f: &[SignalId]) -> Bus {
    assert_eq!(t.len(), f.len(), "mux operand widths must match");
    t.iter().zip(f).map(|(&x, &y)| n.mux(sel, x, y)).collect()
}

/// Logical left barrel shifter: shifts `a` left by the unsigned value on
/// `amount`, filling with zeros. The result has the same width as `a`.
pub fn barrel_shift_left(n: &mut Netlist, a: &[SignalId], amount: &[SignalId]) -> Bus {
    let zero = n.constant(false);
    let mut cur: Bus = a.to_vec();
    for (k, &bit) in amount.iter().enumerate() {
        let shift = 1usize << k;
        if shift >= cur.len() {
            // Shifting by the full width zeroes everything when the bit is set.
            let zeros = vec![zero; cur.len()];
            cur = mux_bus(n, bit, &zeros, &cur);
            continue;
        }
        let mut shifted = vec![zero; shift];
        shifted.extend_from_slice(&cur[..cur.len() - shift]);
        cur = mux_bus(n, bit, &shifted, &cur);
    }
    cur
}

/// Logical right barrel shifter (zero filling).
pub fn barrel_shift_right(n: &mut Netlist, a: &[SignalId], amount: &[SignalId]) -> Bus {
    let zero = n.constant(false);
    let mut cur: Bus = a.to_vec();
    for (k, &bit) in amount.iter().enumerate() {
        let shift = 1usize << k;
        if shift >= cur.len() {
            let zeros = vec![zero; cur.len()];
            cur = mux_bus(n, bit, &zeros, &cur);
            continue;
        }
        let mut shifted: Bus = cur[shift..].to_vec();
        shifted.resize(cur.len(), zero);
        cur = mux_bus(n, bit, &shifted, &cur);
    }
    cur
}

/// Leading-one detector.
///
/// Returns `(one_hot, nonzero)` where `one_hot[i]` is set iff bit `i` is
/// the most significant set bit of `a`, and `nonzero` is the OR of all
/// bits.
pub fn leading_one_detect(n: &mut Netlist, a: &[SignalId]) -> (Bus, SignalId) {
    let w = a.len();
    // suffix_or[i] = OR of a[i+1..w]
    let mut suffix = vec![n.constant(false); w];
    for i in (0..w.saturating_sub(1)).rev() {
        suffix[i] = n.or(a[i + 1], suffix[i + 1]);
    }
    let one_hot: Bus = (0..w)
        .map(|i| {
            let not_higher = n.not(suffix[i]);
            n.and(a[i], not_higher)
        })
        .collect();
    let nonzero = n.or_reduce(a);
    (one_hot, nonzero)
}

/// Binary priority encoder over a one-hot bus.
///
/// Returns `ceil(log2(len))` bits encoding the index of the set bit
/// (zero when no bit is set).
pub fn encode_one_hot(n: &mut Netlist, one_hot: &[SignalId]) -> Bus {
    let w = one_hot.len();
    let bits = usize::BITS as usize - (w.max(2) - 1).leading_zeros() as usize;
    (0..bits)
        .map(|b| {
            let contributors: Vec<SignalId> = one_hot
                .iter()
                .enumerate()
                .filter(|(i, _)| (i >> b) & 1 == 1)
                .map(|(_, &s)| s)
                .collect();
            n.or_reduce(&contributors)
        })
        .collect()
}

/// Exact 4:2 compressor.
///
/// Compresses four bits plus `cin` into `(sum, carry, cout)` where the
/// arithmetic identity `x1+x2+x3+x4+cin = sum + 2*(carry + cout)` holds.
pub fn compressor_4_2(
    n: &mut Netlist,
    x1: SignalId,
    x2: SignalId,
    x3: SignalId,
    x4: SignalId,
    cin: SignalId,
) -> (SignalId, SignalId, SignalId) {
    let x12 = n.xor(x1, x2);
    let x34 = n.xor(x3, x4);
    let x1234 = n.xor(x12, x34);
    let sum = n.xor(x1234, cin);
    let cout = n.mux(x12, x3, x1);
    let carry = n.mux(x1234, cin, x4);
    (sum, carry, cout)
}

/// Approximate 4:2 compressor (no carry chain).
///
/// Uses the common dual-rail approximation `sum = (x1 ^ x2) | (x3 ^ x4)`,
/// `carry = (x1 & x2) | (x3 & x4)`, ignoring `cin`/`cout` entirely. The
/// approximation underestimates when three or more inputs are set and
/// overestimates the `(1,1)` split; its error probability is 6/16 per
/// compressed column.
pub fn compressor_4_2_approx(
    n: &mut Netlist,
    x1: SignalId,
    x2: SignalId,
    x3: SignalId,
    x4: SignalId,
) -> (SignalId, SignalId) {
    let x12 = n.xor(x1, x2);
    let x34 = n.xor(x3, x4);
    let sum = n.or(x12, x34);
    let a12 = n.and(x1, x2);
    let a34 = n.and(x3, x4);
    let carry = n.or(a12, a34);
    (sum, carry)
}

/// A partial-product matrix: `columns[k]` holds the bits of weight `2^k`.
///
/// Used by multiplier builders; approximate multipliers drop or perturb
/// entries before reduction.
#[derive(Debug, Clone, Default)]
pub struct Columns {
    cols: Vec<Vec<SignalId>>,
}

impl Columns {
    /// Creates an empty matrix with `width` columns.
    pub fn new(width: usize) -> Self {
        Columns {
            cols: vec![Vec::new(); width],
        }
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Adds a bit of weight `2^k`, growing the matrix if needed.
    pub fn push(&mut self, k: usize, bit: SignalId) {
        if k >= self.cols.len() {
            self.cols.resize(k + 1, Vec::new());
        }
        self.cols[k].push(bit);
    }

    /// Borrows the bits of column `k` (empty slice when out of range).
    pub fn col(&self, k: usize) -> &[SignalId] {
        self.cols.get(k).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Removes and returns all bits from column `k`.
    pub fn take_col(&mut self, k: usize) -> Vec<SignalId> {
        if k < self.cols.len() {
            std::mem::take(&mut self.cols[k])
        } else {
            Vec::new()
        }
    }

    /// Maximum column height.
    pub fn max_height(&self) -> usize {
        self.cols.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Reduces the matrix with full/half adders until every column holds
    /// at most `target` bits (callers use 2 before a final carry-propagate
    /// add, or 1 to finish reduction entirely).
    pub fn reduce(&mut self, n: &mut Netlist, target: usize) {
        assert!(target >= 1, "reduction target must be at least 1");
        loop {
            let mut changed = false;
            for k in 0..self.cols.len() {
                while self.cols[k].len() > target {
                    if self.cols[k].len() >= 3 {
                        let a = self.cols[k].pop().expect("len >= 3");
                        let b = self.cols[k].pop().expect("len >= 2");
                        let c = self.cols[k].pop().expect("len >= 1");
                        let (s, cy) = full_adder(n, a, b, c);
                        self.cols[k].insert(0, s);
                        self.push(k + 1, cy);
                    } else {
                        let a = self.cols[k].pop().expect("len >= 2");
                        let b = self.cols[k].pop().expect("len >= 1");
                        let (s, cy) = half_adder(n, a, b);
                        self.cols[k].insert(0, s);
                        self.push(k + 1, cy);
                    }
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Finishes reduction into a single bus of `width` bits: reduces to
    /// two rows and performs a final ripple-carry addition, truncating any
    /// carries beyond `width`.
    pub fn finalize(mut self, n: &mut Netlist, width: usize) -> Bus {
        self.reduce(n, 2);
        let zero = n.constant(false);
        let mut row_a = Vec::with_capacity(width);
        let mut row_b = Vec::with_capacity(width);
        for k in 0..width {
            let col = self.take_col(k);
            let mut it = col.into_iter();
            row_a.push(it.next().unwrap_or(zero));
            row_b.push(it.next().unwrap_or(zero));
        }
        ripple_carry_add(n, &row_a, &row_b, None).0
    }
}

/// Unsigned array multiplier: returns the full `a.len() + b.len()` wide
/// product bus.
///
/// # Panics
///
/// Panics if either operand is empty.
pub fn array_mul_unsigned(n: &mut Netlist, a: &[SignalId], b: &[SignalId]) -> Bus {
    assert!(!a.is_empty() && !b.is_empty());
    let width = a.len() + b.len();
    let mut cols = Columns::new(width);
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let pp = n.and(ai, bj);
            cols.push(i + j, pp);
        }
    }
    cols.finalize(n, width)
}

/// Builds the Baugh-Wooley partial-product matrix for an `n × n` signed
/// multiplication (including the two correction constants), without
/// reducing it. Approximate multipliers perturb this matrix before calling
/// [`Columns::finalize`].
///
/// # Panics
///
/// Panics if the operands differ in width or are narrower than 2 bits.
pub fn baugh_wooley_matrix(n: &mut Netlist, a: &[SignalId], b: &[SignalId]) -> Columns {
    assert_eq!(a.len(), b.len(), "Baugh-Wooley requires equal widths");
    let w = a.len();
    assert!(w >= 2, "signed multiplication needs at least 2 bits");
    let width = 2 * w;
    let mut cols = Columns::new(width);
    for i in 0..w {
        for j in 0..w {
            let and = n.and(a[i], b[j]);
            let pp = if (i == w - 1) ^ (j == w - 1) {
                n.not(and)
            } else {
                and
            };
            cols.push(i + j, pp);
        }
    }
    let one = n.constant(true);
    cols.push(w, one);
    cols.push(2 * w - 1, one);
    cols
}

/// Signed (two's complement) Baugh-Wooley array multiplier. Returns the
/// full `2n`-bit product.
pub fn baugh_wooley_mul(n: &mut Netlist, a: &[SignalId], b: &[SignalId]) -> Bus {
    let w2 = a.len() + b.len();
    let cols = baugh_wooley_matrix(n, a, b);
    cols.finalize(n, w2)
}

/// Lower-part OR adder (LOA): the `k` low bits are approximated with OR
/// gates, the upper bits use an exact ripple-carry adder whose carry-in is
/// `a[k-1] & b[k-1]`.
///
/// Returns `(sum, carry_out)`.
///
/// # Panics
///
/// Panics if `k > a.len()` or widths differ.
pub fn loa_add(
    n: &mut Netlist,
    a: &[SignalId],
    b: &[SignalId],
    k: usize,
) -> (Bus, SignalId) {
    assert_eq!(a.len(), b.len());
    assert!(k <= a.len(), "approximate width exceeds operand width");
    if k == 0 {
        return ripple_carry_add(n, a, b, None);
    }
    let mut sum: Bus = a[..k].iter().zip(&b[..k]).map(|(&x, &y)| n.or(x, y)).collect();
    if k == a.len() {
        let cout = n.constant(false);
        return (sum, cout);
    }
    let cin = n.and(a[k - 1], b[k - 1]);
    let (hi, cout) = ripple_carry_add(n, &a[k..], &b[k..], Some(cin));
    sum.extend(hi);
    (sum, cout)
}

/// Truncated adder: the `k` low result bits are forced to zero and the
/// upper bits are added exactly (no carry from the dropped part).
///
/// Returns `(sum, carry_out)`.
///
/// # Panics
///
/// Panics if `k > a.len()` or widths differ.
pub fn truncated_add(
    n: &mut Netlist,
    a: &[SignalId],
    b: &[SignalId],
    k: usize,
) -> (Bus, SignalId) {
    assert_eq!(a.len(), b.len());
    assert!(k <= a.len());
    if k == 0 {
        return ripple_carry_add(n, a, b, None);
    }
    let zero = n.constant(false);
    let mut sum: Bus = vec![zero; k];
    if k == a.len() {
        return (sum, zero);
    }
    let (hi, cout) = ripple_carry_add(n, &a[k..], &b[k..], None);
    sum.extend(hi);
    (sum, cout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack_bus_samples;

    fn eval_binary(
        n: &Netlist,
        aw: usize,
        bw: usize,
        pairs: &[(i64, i64)],
        signed: bool,
    ) -> Vec<i64> {
        n.simulate_binary_op(aw, bw, pairs, signed).unwrap()
    }

    #[test]
    fn ripple_add_exhaustive_4bit() {
        let mut n = Netlist::new("add4");
        let a = n.input_bus("a", 4);
        let b = n.input_bus("b", 4);
        let (sum, cout) = ripple_carry_add(&mut n, &a, &b, None);
        n.output_bus("s", &sum);
        n.output("c", cout);
        let mut pairs = Vec::new();
        for x in 0..16i64 {
            for y in 0..16i64 {
                pairs.push((x, y));
            }
        }
        for chunk in pairs.chunks(64) {
            let a_w = pack_bus_samples(&chunk.iter().map(|p| p.0).collect::<Vec<_>>(), 4);
            let b_w = pack_bus_samples(&chunk.iter().map(|p| p.1).collect::<Vec<_>>(), 4);
            let mut words = a_w;
            words.extend(b_w);
            let outs = n.simulate_words(&words).unwrap();
            for (lane, &(x, y)) in chunk.iter().enumerate() {
                let mut got = 0i64;
                for k in 0..5 {
                    if (outs[k] >> lane) & 1 == 1 {
                        got |= 1 << k;
                    }
                }
                assert_eq!(got, x + y, "{x}+{y}");
            }
        }
    }

    #[test]
    fn subtraction_matches_reference() {
        let mut n = Netlist::new("sub4");
        let a = n.input_bus("a", 4);
        let b = n.input_bus("b", 4);
        let (diff, _) = ripple_carry_sub(&mut n, &a, &b);
        n.output_bus("d", &diff);
        for (x, y) in [(5i64, 3i64), (0, 1), (7, 7), (-8, 7), (3, -4)] {
            let out = eval_binary(&n, 4, 4, &[(x, y)], true);
            let expect = ((x - y) << 60) >> 60; // wrap to 4-bit two's complement
            assert_eq!(out[0], expect, "{x}-{y}");
        }
    }

    #[test]
    fn baugh_wooley_exhaustive_4bit() {
        let mut n = Netlist::new("bw4");
        let a = n.input_bus("a", 4);
        let b = n.input_bus("b", 4);
        let p = baugh_wooley_mul(&mut n, &a, &b);
        n.output_bus("p", &p);
        let mut pairs = Vec::new();
        for x in -8i64..8 {
            for y in -8i64..8 {
                pairs.push((x, y));
            }
        }
        for chunk in pairs.chunks(64) {
            let outs = eval_binary(&n, 4, 4, chunk, true);
            for (o, &(x, y)) in outs.iter().zip(chunk) {
                assert_eq!(*o, x * y, "{x}*{y}");
            }
        }
    }

    #[test]
    fn unsigned_array_mul_exhaustive_4bit() {
        let mut n = Netlist::new("umul4");
        let a = n.input_bus("a", 4);
        let b = n.input_bus("b", 4);
        let p = array_mul_unsigned(&mut n, &a, &b);
        n.output_bus("p", &p);
        let mut pairs = Vec::new();
        for x in 0..16i64 {
            for y in 0..16i64 {
                pairs.push((x, y));
            }
        }
        for chunk in pairs.chunks(64) {
            let outs = eval_binary(&n, 4, 4, chunk, false);
            for (o, &(x, y)) in outs.iter().zip(chunk) {
                assert_eq!(*o, x * y, "{x}*{y}");
            }
        }
    }

    #[test]
    fn barrel_shifters_work() {
        let mut n = Netlist::new("shl");
        let a = n.input_bus("a", 8);
        let amt = n.input_bus("amt", 3);
        let l = barrel_shift_left(&mut n, &a, &amt);
        let r = barrel_shift_right(&mut n, &a, &amt);
        n.output_bus("l", &l);
        n.output_bus("r", &r);
        for v in [0b1011_0101i64, 1, 0x80] {
            for s in 0..8i64 {
                let out = eval_binary(&n, 8, 3, &[(v, s)], false);
                let l_expect = (v << s) & 0xFF;
                // Outputs are a single 16-bit concatenation: l then r.
                let got = out[0];
                let l_got = got & 0xFF;
                let r_got = (got >> 8) & 0xFF;
                assert_eq!(l_got, l_expect, "shl {v} by {s}");
                assert_eq!(r_got, (v as u64 >> s) as i64 & 0xFF, "shr {v} by {s}");
            }
        }
    }

    #[test]
    fn lod_and_encoder() {
        let mut n = Netlist::new("lod");
        let a = n.input_bus("a", 8);
        let (oh, nz) = leading_one_detect(&mut n, &a);
        let enc = encode_one_hot(&mut n, &oh);
        n.output_bus("oh", &oh);
        n.output("nz", nz);
        n.output_bus("enc", &enc);
        for v in 1..256i64 {
            let bools: Vec<bool> = (0..8).map(|k| (v >> k) & 1 == 1).collect();
            let out = n.simulate_bool(&bools).unwrap();
            let msb = 63 - (v as u64).leading_zeros() as i64;
            for k in 0..8 {
                assert_eq!(out[k], k as i64 == msb, "one-hot bit {k} for {v}");
            }
            assert!(out[8], "nonzero flag for {v}");
            let mut enc_v = 0i64;
            for k in 0..3 {
                if out[9 + k] {
                    enc_v |= 1 << k;
                }
            }
            assert_eq!(enc_v, msb, "encoded position for {v}");
        }
        // All-zero input: no one-hot bit, nz = 0.
        let out = n.simulate_bool(&[false; 8]).unwrap();
        assert!(out[..9].iter().all(|&b| !b));
    }

    #[test]
    fn compressor_identity_exact() {
        let mut n = Netlist::new("c42");
        let x = n.input_bus("x", 5);
        let (s, c, co) = compressor_4_2(&mut n, x[0], x[1], x[2], x[3], x[4]);
        n.output("s", s);
        n.output("c", c);
        n.output("co", co);
        for v in 0..32i64 {
            let bools: Vec<bool> = (0..5).map(|k| (v >> k) & 1 == 1).collect();
            let out = n.simulate_bool(&bools).unwrap();
            let total: i64 = bools.iter().map(|&b| i64::from(b)).sum();
            let got = i64::from(out[0]) + 2 * (i64::from(out[1]) + i64::from(out[2]));
            assert_eq!(got, total, "compressing {v:05b}");
        }
    }

    #[test]
    fn loa_matches_exact_for_k0_and_is_or_for_full_k() {
        let mut n = Netlist::new("loa");
        let a = n.input_bus("a", 4);
        let b = n.input_bus("b", 4);
        let (s0, _) = loa_add(&mut n, &a, &b, 0);
        let (s4, _) = loa_add(&mut n, &a, &b, 4);
        n.output_bus("s0", &s0);
        n.output_bus("s4", &s4);
        for (x, y) in [(3i64, 5i64), (15, 1), (7, 7)] {
            let out = eval_binary(&n, 4, 4, &[(x, y)], false);
            let v = out[0];
            assert_eq!(v & 0xF, (x + y) & 0xF);
            assert_eq!((v >> 4) & 0xF, x | y);
        }
    }

    #[test]
    fn truncated_add_zeroes_low_bits() {
        let mut n = Netlist::new("tr");
        let a = n.input_bus("a", 4);
        let b = n.input_bus("b", 4);
        let (s, _) = truncated_add(&mut n, &a, &b, 2);
        n.output_bus("s", &s);
        let out = eval_binary(&n, 4, 4, &[(0b0111, 0b0110)], false);
        // Low 2 bits zero; upper bits = (1 + 1) = 0b10 -> result 0b1000.
        assert_eq!(out[0], 0b1000);
    }

    #[test]
    fn negate_is_twos_complement() {
        let mut n = Netlist::new("neg");
        let a = n.input_bus("a", 4);
        let na = negate(&mut n, &a);
        n.output_bus("y", &na);
        for x in -8i64..8 {
            if x == -8 {
                continue; // -(-8) overflows 4 bits
            }
            let out = n
                .simulate_binary_op(4, 0, &[(x, 0)], true)
                .unwrap_or_else(|_| panic!("sim failed"));
            assert_eq!(out[0], -x, "negating {x}");
        }
    }
}
