//! Combinational gate-level intermediate representation.

use std::fmt;

/// Identifier of a signal (the output of a gate) inside a [`Netlist`].
///
/// Signal ids are dense indices into the netlist's gate array. Because
/// builder methods only accept ids of gates that already exist, every
/// netlist is a DAG by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// Returns the raw index of this signal.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a signal id from a raw index. Needed to address fault
    /// sites by position; operations that consume the id validate it
    /// against the target netlist and report out-of-range indices as
    /// [`crate::NetlistError::InvalidFaultSite`].
    pub fn from_index(index: usize) -> SignalId {
        // lint-allow(no-silent-truncation): netlists stay far below 2^32 signals; consumers validate the index
        SignalId(index as u32)
    }
}

/// A combinational gate. The variants cover the standard cell library the
/// LUT mapper understands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Gate {
    /// Primary input with a diagnostic name.
    Input {
        /// Port name, used in reports only.
        name: String,
    },
    /// Constant driver.
    Const(bool),
    /// Buffer (identity). Produced by optimization placeholders.
    Buf(SignalId),
    /// Inverter.
    Not(SignalId),
    /// 2-input AND.
    And(SignalId, SignalId),
    /// 2-input OR.
    Or(SignalId, SignalId),
    /// 2-input XOR.
    Xor(SignalId, SignalId),
    /// 2-input NAND.
    Nand(SignalId, SignalId),
    /// 2-input NOR.
    Nor(SignalId, SignalId),
    /// 2-input XNOR.
    Xnor(SignalId, SignalId),
    /// 2:1 multiplexer: output = if sel { t } else { f }.
    Mux {
        /// Select line.
        sel: SignalId,
        /// Value when `sel` is 1.
        t: SignalId,
        /// Value when `sel` is 0.
        f: SignalId,
    },
    /// 3-input majority (the carry function).
    Maj(SignalId, SignalId, SignalId),
}

impl Gate {
    /// Iterates over the fanin signals of this gate.
    pub fn fanins(&self) -> impl Iterator<Item = SignalId> + '_ {
        let (a, b, c): (Option<SignalId>, Option<SignalId>, Option<SignalId>) = match *self {
            Gate::Input { .. } | Gate::Const(_) => (None, None, None),
            Gate::Buf(x) | Gate::Not(x) => (Some(x), None, None),
            Gate::And(a, b)
            | Gate::Or(a, b)
            | Gate::Xor(a, b)
            | Gate::Nand(a, b)
            | Gate::Nor(a, b)
            | Gate::Xnor(a, b) => (Some(a), Some(b), None),
            Gate::Mux { sel, t, f } => (Some(sel), Some(t), Some(f)),
            Gate::Maj(a, b, c) => (Some(a), Some(b), Some(c)),
        };
        [a, b, c].into_iter().flatten()
    }

    /// True for gates that carry logic (not inputs/constants/buffers).
    pub fn is_logic(&self) -> bool {
        !matches!(self, Gate::Input { .. } | Gate::Const(_) | Gate::Buf(_))
    }
}

/// A combinational netlist: a DAG of [`Gate`]s with named primary inputs
/// and outputs.
///
/// # Examples
///
/// ```
/// use clapped_netlist::Netlist;
///
/// let mut n = Netlist::new("xor_gate");
/// let a = n.input("a");
/// let b = n.input("b");
/// let y = n.xor(a, b);
/// n.output("y", y);
/// assert_eq!(n.simulate_bool(&[true, false]).unwrap(), vec![true]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    name: String,
    gates: Vec<Gate>,
    inputs: Vec<SignalId>,
    outputs: Vec<(String, SignalId)>,
    const_cache: [Option<SignalId>; 2],
}

impl Netlist {
    /// Creates an empty netlist with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            const_cache: [None, None],
        }
    }

    /// Builds a netlist directly from its raw parts **without checking
    /// any structural invariant** — fanins may dangle, reference later
    /// gates (breaking the DAG property), or the input list may disagree
    /// with the `Gate::Input` gates present.
    ///
    /// This exists for artifact ingestion (deserialized or externally
    /// generated netlists) and for seeding violations in structural-lint
    /// tests. Always validate the result with [`crate::lint::lint_netlist`]
    /// before simulating it; the simulator and analyses assume the
    /// builder invariants hold.
    pub fn from_parts(
        name: impl Into<String>,
        gates: Vec<Gate>,
        inputs: Vec<SignalId>,
        outputs: Vec<(String, SignalId)>,
    ) -> Self {
        Netlist {
            name: name.into(),
            gates,
            inputs,
            outputs,
            const_cache: [None, None],
        }
    }

    /// Diagnostic name of the netlist.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All gates, in topological (creation) order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Gate that drives `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn gate(&self, id: SignalId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// Named primary outputs in declaration order.
    pub fn outputs(&self) -> &[(String, SignalId)] {
        &self.outputs
    }

    /// Total number of gates (including inputs and constants).
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True when the netlist contains no gates at all.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Number of logic gates (excluding inputs, constants and buffers).
    pub fn logic_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_logic()).count()
    }

    fn push(&mut self, gate: Gate) -> SignalId {
        for f in gate.fanins() {
            assert!(
                f.index() < self.gates.len(),
                "fanin {f:?} does not exist yet (netlists are DAGs by construction)"
            );
        }
        let id = SignalId(u32::try_from(self.gates.len()).expect("netlist too large"));
        self.gates.push(gate);
        id
    }

    /// Adds a primary input.
    pub fn input(&mut self, name: impl Into<String>) -> SignalId {
        let id = self.push(Gate::Input { name: name.into() });
        self.inputs.push(id);
        id
    }

    /// Adds `width` primary inputs named `name[0]`, `name[1]`, … (LSB
    /// first) and returns them as a bus.
    pub fn input_bus(&mut self, name: &str, width: usize) -> Vec<SignalId> {
        (0..width).map(|i| self.input(format!("{name}[{i}]"))).collect()
    }

    /// Returns a constant driver, deduplicated per netlist.
    pub fn constant(&mut self, value: bool) -> SignalId {
        let slot = usize::from(value);
        if let Some(id) = self.const_cache[slot] {
            return id;
        }
        let id = self.push(Gate::Const(value));
        self.const_cache[slot] = Some(id);
        id
    }

    /// Adds an inverter.
    pub fn not(&mut self, a: SignalId) -> SignalId {
        self.push(Gate::Not(a))
    }

    /// Adds a buffer.
    pub fn buf(&mut self, a: SignalId) -> SignalId {
        self.push(Gate::Buf(a))
    }

    /// Adds a 2-input AND gate.
    pub fn and(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.push(Gate::And(a, b))
    }

    /// Adds a 2-input OR gate.
    pub fn or(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.push(Gate::Or(a, b))
    }

    /// Adds a 2-input XOR gate.
    pub fn xor(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.push(Gate::Xor(a, b))
    }

    /// Adds a 2-input NAND gate.
    pub fn nand(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.push(Gate::Nand(a, b))
    }

    /// Adds a 2-input NOR gate.
    pub fn nor(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.push(Gate::Nor(a, b))
    }

    /// Adds a 2-input XNOR gate.
    pub fn xnor(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.push(Gate::Xnor(a, b))
    }

    /// Adds a 2:1 mux (`sel ? t : f`).
    pub fn mux(&mut self, sel: SignalId, t: SignalId, f: SignalId) -> SignalId {
        self.push(Gate::Mux { sel, t, f })
    }

    /// Adds a 3-input majority gate.
    pub fn maj(&mut self, a: SignalId, b: SignalId, c: SignalId) -> SignalId {
        self.push(Gate::Maj(a, b, c))
    }

    /// Adds a 3-input AND as a tree.
    pub fn and3(&mut self, a: SignalId, b: SignalId, c: SignalId) -> SignalId {
        let ab = self.and(a, b);
        self.and(ab, c)
    }

    /// Adds a 3-input OR as a tree.
    pub fn or3(&mut self, a: SignalId, b: SignalId, c: SignalId) -> SignalId {
        let ab = self.or(a, b);
        self.or(ab, c)
    }

    /// Adds a 3-input XOR as a tree (the full-adder sum function).
    pub fn xor3(&mut self, a: SignalId, b: SignalId, c: SignalId) -> SignalId {
        let ab = self.xor(a, b);
        self.xor(ab, c)
    }

    /// Reduces a set of signals with OR; returns constant 0 for an empty set.
    pub fn or_reduce(&mut self, xs: &[SignalId]) -> SignalId {
        match xs {
            [] => self.constant(false),
            [x] => *x,
            _ => {
                let mut acc = xs[0];
                for &x in &xs[1..] {
                    acc = self.or(acc, x);
                }
                acc
            }
        }
    }

    /// Reduces a set of signals with AND; returns constant 1 for an empty set.
    pub fn and_reduce(&mut self, xs: &[SignalId]) -> SignalId {
        match xs {
            [] => self.constant(true),
            [x] => *x,
            _ => {
                let mut acc = xs[0];
                for &x in &xs[1..] {
                    acc = self.and(acc, x);
                }
                acc
            }
        }
    }

    /// Declares a named primary output.
    pub fn output(&mut self, name: impl Into<String>, sig: SignalId) {
        assert!(sig.index() < self.gates.len(), "output signal does not exist");
        self.outputs.push((name.into(), sig));
    }

    /// Declares a named output bus (`name[0]` = LSB).
    pub fn output_bus(&mut self, name: &str, bus: &[SignalId]) {
        for (i, &sig) in bus.iter().enumerate() {
            self.output(format!("{name}[{i}]"), sig);
        }
    }

    /// Instantiates `sub` as a sub-circuit of `self`: the k-th primary
    /// input of `sub` is driven by `inputs[k]`, all of `sub`'s gates are
    /// copied in, and the signals corresponding to `sub`'s primary
    /// outputs are returned (in `sub` output order). `sub`'s output names
    /// are not declared as outputs of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from `sub`'s input count.
    pub fn instantiate(&mut self, sub: &Netlist, inputs: &[SignalId]) -> Vec<SignalId> {
        assert_eq!(
            inputs.len(),
            sub.inputs.len(),
            "instantiation input arity mismatch"
        );
        let mut map: Vec<Option<SignalId>> = vec![None; sub.gates.len()];
        let mut next_input = 0usize;
        for (idx, gate) in sub.gates.iter().enumerate() {
            let m = |s: SignalId, map: &Vec<Option<SignalId>>| -> SignalId {
                map[s.index()].expect("fanins precede users in topological order")
            };
            let new_id = match gate {
                Gate::Input { .. } => {
                    let sig = inputs[next_input];
                    next_input += 1;
                    sig
                }
                Gate::Const(v) => self.constant(*v),
                Gate::Buf(a) => self.buf(m(*a, &map)),
                Gate::Not(a) => self.not(m(*a, &map)),
                Gate::And(a, b) => {
                    let (a, b) = (m(*a, &map), m(*b, &map));
                    self.and(a, b)
                }
                Gate::Or(a, b) => {
                    let (a, b) = (m(*a, &map), m(*b, &map));
                    self.or(a, b)
                }
                Gate::Xor(a, b) => {
                    let (a, b) = (m(*a, &map), m(*b, &map));
                    self.xor(a, b)
                }
                Gate::Nand(a, b) => {
                    let (a, b) = (m(*a, &map), m(*b, &map));
                    self.nand(a, b)
                }
                Gate::Nor(a, b) => {
                    let (a, b) = (m(*a, &map), m(*b, &map));
                    self.nor(a, b)
                }
                Gate::Xnor(a, b) => {
                    let (a, b) = (m(*a, &map), m(*b, &map));
                    self.xnor(a, b)
                }
                Gate::Mux { sel, t, f } => {
                    let (sel, t, f) = (m(*sel, &map), m(*t, &map), m(*f, &map));
                    self.mux(sel, t, f)
                }
                Gate::Maj(a, b, c) => {
                    let (a, b, c) = (m(*a, &map), m(*b, &map), m(*c, &map));
                    self.maj(a, b, c)
                }
            };
            map[idx] = Some(new_id);
        }
        sub.outputs
            .iter()
            .map(|(_, s)| map[s.index()].expect("outputs reference existing gates"))
            .collect()
    }

    /// Computes fanout counts for every signal (output references count
    /// as one fanout each).
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.gates.len()];
        for gate in &self.gates {
            for f in gate.fanins() {
                counts[f.index()] += 1;
            }
        }
        for (_, sig) in &self.outputs {
            counts[sig.index()] += 1;
        }
        counts
    }

    /// Depth of each signal in logic levels (inputs/constants are level 0;
    /// buffers are free).
    pub fn levels(&self) -> Vec<u32> {
        let mut lv = vec![0u32; self.gates.len()];
        for (i, gate) in self.gates.iter().enumerate() {
            lv[i] = match gate {
                Gate::Input { .. } | Gate::Const(_) => 0,
                Gate::Buf(x) => lv[x.index()],
                _ => gate.fanins().map(|f| lv[f.index()]).max().unwrap_or(0) + 1,
            };
        }
        lv
    }

    /// Maximum logic depth over all outputs.
    pub fn depth(&self) -> u32 {
        let lv = self.levels();
        self.outputs
            .iter()
            .map(|(_, s)| lv[s.index()])
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist `{}`: {} inputs, {} outputs, {} gates ({} logic), depth {}",
            self.name,
            self.inputs.len(),
            self.outputs.len(),
            self.len(),
            self.logic_gate_count(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_counts() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let x = n.and(a, b);
        let y = n.not(x);
        n.output("y", y);
        assert_eq!(n.len(), 4);
        assert_eq!(n.logic_gate_count(), 2);
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.outputs().len(), 1);
        assert_eq!(n.depth(), 2);
    }

    #[test]
    fn constants_are_deduplicated() {
        let mut n = Netlist::new("t");
        let c1 = n.constant(true);
        let c2 = n.constant(true);
        let c3 = n.constant(false);
        assert_eq!(c1, c2);
        assert_ne!(c1, c3);
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn fanout_counts_include_outputs() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let x = n.not(a);
        let y = n.not(a);
        n.output("x", x);
        n.output("y", y);
        let counts = n.fanout_counts();
        assert_eq!(counts[a.index()], 2);
        assert_eq!(counts[x.index()], 1);
    }

    #[test]
    fn reduce_helpers() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let or = n.or_reduce(&[a, b, c]);
        let and = n.and_reduce(&[a, b, c]);
        n.output("or", or);
        n.output("and", and);
        assert_eq!(
            n.simulate_bool(&[true, false, false]).unwrap(),
            vec![true, false]
        );
        assert_eq!(
            n.simulate_bool(&[true, true, true]).unwrap(),
            vec![true, true]
        );
    }

    #[test]
    fn buffers_are_depth_free() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b1 = n.buf(a);
        let b2 = n.buf(b1);
        n.output("y", b2);
        assert_eq!(n.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn output_of_unknown_signal_panics() {
        let mut n = Netlist::new("t");
        n.output("y", SignalId(3));
    }

    #[test]
    fn instantiate_copies_function() {
        // Sub-circuit: full adder.
        let mut fa = Netlist::new("fa");
        let a = fa.input("a");
        let b = fa.input("b");
        let c = fa.input("c");
        let s = fa.xor3(a, b, c);
        let cy = fa.maj(a, b, c);
        fa.output("s", s);
        fa.output("cy", cy);

        // Parent instantiates it twice, chained.
        let mut top = Netlist::new("top");
        let xs = top.input_bus("x", 4);
        let zero = top.constant(false);
        let o1 = top.instantiate(&fa, &[xs[0], xs[1], zero]);
        let o2 = top.instantiate(&fa, &[xs[2], xs[3], o1[1]]);
        top.output("s0", o1[0]);
        top.output("s1", o2[0]);
        top.output("c", o2[1]);
        for v in 0..16i64 {
            let bits: Vec<bool> = (0..4).map(|k| (v >> k) & 1 == 1).collect();
            let out = top.simulate_bool(&bits).unwrap();
            let s0 = (v & 1) ^ ((v >> 1) & 1);
            let c0 = (v & 1) & ((v >> 1) & 1);
            let sum2 = ((v >> 2) & 1) + ((v >> 3) & 1) + c0;
            assert_eq!(out[0], s0 == 1);
            assert_eq!(out[1], sum2 & 1 == 1);
            assert_eq!(out[2], sum2 >> 1 == 1);
        }
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn instantiate_wrong_arity_panics() {
        let mut sub = Netlist::new("s");
        let a = sub.input("a");
        sub.output("y", a);
        let mut top = Netlist::new("t");
        top.instantiate(&sub, &[]);
    }
}
