//! 64-way bit-parallel netlist simulation.
//!
//! Every signal is represented by a `u64` word: bit *i* of the word is the
//! signal's value in simulation lane *i*, so a single pass evaluates 64
//! input vectors at once. This is the workhorse behind exhaustive operator
//! characterization (8×8-bit spaces are 1024 words) and switching-activity
//! power estimation.

use crate::ir::{Gate, Netlist};
use crate::NetlistError;

impl Netlist {
    /// Evaluates every signal for 64 parallel input lanes.
    ///
    /// `input_words[k]` supplies the 64 lane values of the k-th primary
    /// input (in [`Netlist::inputs`] order).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputCountMismatch`] if the number of words
    /// differs from the number of primary inputs.
    pub fn eval_words(&self, input_words: &[u64]) -> crate::Result<Vec<u64>> {
        if input_words.len() != self.inputs().len() {
            return Err(NetlistError::InputCountMismatch {
                expected: self.inputs().len(),
                found: input_words.len(),
            });
        }
        let mut vals = vec![0u64; self.len()];
        let mut next_input = 0;
        for (i, gate) in self.gates().iter().enumerate() {
            vals[i] = match *gate {
                Gate::Input { .. } => {
                    let w = input_words[next_input];
                    next_input += 1;
                    w
                }
                Gate::Const(c) => {
                    if c {
                        u64::MAX
                    } else {
                        0
                    }
                }
                Gate::Buf(a) => vals[a.index()],
                Gate::Not(a) => !vals[a.index()],
                Gate::And(a, b) => vals[a.index()] & vals[b.index()],
                Gate::Or(a, b) => vals[a.index()] | vals[b.index()],
                Gate::Xor(a, b) => vals[a.index()] ^ vals[b.index()],
                Gate::Nand(a, b) => !(vals[a.index()] & vals[b.index()]),
                Gate::Nor(a, b) => !(vals[a.index()] | vals[b.index()]),
                Gate::Xnor(a, b) => !(vals[a.index()] ^ vals[b.index()]),
                Gate::Mux { sel, t, f } => {
                    let s = vals[sel.index()];
                    (s & vals[t.index()]) | (!s & vals[f.index()])
                }
                Gate::Maj(a, b, c) => {
                    let (x, y, z) = (vals[a.index()], vals[b.index()], vals[c.index()]);
                    (x & y) | (x & z) | (y & z)
                }
            };
        }
        Ok(vals)
    }

    /// Evaluates the primary outputs for 64 parallel lanes.
    ///
    /// # Errors
    ///
    /// See [`Netlist::eval_words`].
    pub fn simulate_words(&self, input_words: &[u64]) -> crate::Result<Vec<u64>> {
        let vals = self.eval_words(input_words)?;
        Ok(self.outputs().iter().map(|(_, s)| vals[s.index()]).collect())
    }

    /// Evaluates the primary outputs for a single boolean input vector.
    ///
    /// # Errors
    ///
    /// See [`Netlist::eval_words`].
    pub fn simulate_bool(&self, inputs: &[bool]) -> crate::Result<Vec<bool>> {
        let words: Vec<u64> = inputs.iter().map(|&b| if b { 1 } else { 0 }).collect();
        let outs = self.simulate_words(&words)?;
        Ok(outs.iter().map(|&w| w & 1 == 1).collect())
    }

    /// Evaluates an output *bus* for up to 64 integer samples at once.
    ///
    /// `bus` lists the signals of the bus LSB-first. `samples` holds the
    /// integer values to drive on `input_bus` (LSB-first as well); both
    /// buses are driven/read in two's complement when `signed` is set.
    ///
    /// This is a convenience wrapper for operator-style netlists with
    /// exactly two input buses; see `clapped-axops` for typical usage.
    ///
    /// # Errors
    ///
    /// See [`Netlist::eval_words`].
    pub fn simulate_binary_op(
        &self,
        a_width: usize,
        b_width: usize,
        pairs: &[(i64, i64)],
        out_signed: bool,
    ) -> crate::Result<Vec<i64>> {
        assert!(pairs.len() <= 64, "at most 64 samples per call");
        assert_eq!(
            self.inputs().len(),
            a_width + b_width,
            "netlist must have exactly a_width + b_width inputs"
        );
        let a_vals: Vec<i64> = pairs.iter().map(|p| p.0).collect();
        let b_vals: Vec<i64> = pairs.iter().map(|p| p.1).collect();
        let mut words = pack_bus_samples(&a_vals, a_width);
        words.extend(pack_bus_samples(&b_vals, b_width));
        let outs = self.simulate_words(&words)?;
        Ok(unpack_bus_samples(&outs, pairs.len(), out_signed))
    }
}

/// Packs up to 64 integer samples into per-bit simulation words.
///
/// Word *k* of the result carries bit *k* of every sample: bit *i* of word
/// *k* equals bit *k* of `samples[i]`. Negative values are packed in two's
/// complement.
///
/// # Panics
///
/// Panics if more than 64 samples are supplied.
///
/// # Examples
///
/// ```
/// let words = clapped_netlist::pack_bus_samples(&[0b10, 0b01], 2);
/// assert_eq!(words[0] & 0b11, 0b10); // LSBs of samples 0 and 1
/// assert_eq!(words[1] & 0b11, 0b01);
/// ```
pub fn pack_bus_samples(samples: &[i64], width: usize) -> Vec<u64> {
    assert!(samples.len() <= 64, "at most 64 samples per word");
    let mut words = vec![0u64; width];
    for (lane, &v) in samples.iter().enumerate() {
        let bits = v as u64;
        for (k, word) in words.iter_mut().enumerate() {
            if (bits >> k) & 1 == 1 {
                *word |= 1 << lane;
            }
        }
    }
    words
}

/// Unpacks per-bit output words back into `count` integer samples.
///
/// When `signed` is set the most significant supplied word is treated as a
/// sign bit and the result is sign-extended.
pub fn unpack_bus_samples(words: &[u64], count: usize, signed: bool) -> Vec<i64> {
    assert!(count <= 64, "at most 64 samples per word");
    let width = words.len();
    (0..count)
        .map(|lane| {
            let mut v: u64 = 0;
            for (k, &word) in words.iter().enumerate() {
                if (word >> lane) & 1 == 1 {
                    v |= 1 << k;
                }
            }
            if signed && width > 0 && width < 64 && (v >> (width - 1)) & 1 == 1 {
                // Sign-extend.
                (v | (!0u64 << width)) as i64
            } else {
                v as i64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Netlist;

    #[test]
    fn gate_semantics() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let gates = [
            n.and(a, b),
            n.or(a, b),
            n.xor(a, b),
            n.nand(a, b),
            n.nor(a, b),
            n.xnor(a, b),
            n.mux(c, a, b),
            n.maj(a, b, c),
            n.not(a),
        ];
        for (i, g) in gates.into_iter().enumerate() {
            n.output(format!("o{i}"), g);
        }
        // Exhaustive 3-input truth check against Rust semantics.
        for bits in 0..8u8 {
            let (a, b, c) = (bits & 1 == 1, bits & 2 == 2, bits & 4 == 4);
            let out = n.simulate_bool(&[a, b, c]).unwrap();
            assert_eq!(out[0], a & b);
            assert_eq!(out[1], a | b);
            assert_eq!(out[2], a ^ b);
            assert_eq!(out[3], !(a & b));
            assert_eq!(out[4], !(a | b));
            assert_eq!(out[5], !(a ^ b));
            assert_eq!(out[6], if c { a } else { b });
            assert_eq!(out[7], (a & b) | (a & c) | (b & c));
            assert_eq!(out[8], !a);
        }
    }

    #[test]
    fn pack_unpack_roundtrip_unsigned() {
        let samples = [0i64, 1, 5, 12, 15];
        let words = pack_bus_samples(&samples, 4);
        let back = unpack_bus_samples(&words, samples.len(), false);
        assert_eq!(back, samples);
    }

    #[test]
    fn pack_unpack_roundtrip_signed() {
        let samples = [-8i64, -1, 0, 3, 7];
        let words = pack_bus_samples(&samples, 4);
        let back = unpack_bus_samples(&words, samples.len(), true);
        assert_eq!(back, samples);
    }

    #[test]
    fn input_count_mismatch_is_error() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        n.output("y", a);
        assert!(n.simulate_bool(&[]).is_err());
    }

    #[test]
    fn parallel_lanes_agree_with_scalar() {
        let mut n = Netlist::new("t");
        let a = n.input_bus("a", 2);
        let b = n.input_bus("b", 2);
        let x = n.xor(a[0], b[1]);
        let y = n.and(a[1], b[0]);
        n.output("x", x);
        n.output("y", y);
        // Drive all 16 combinations in parallel lanes.
        let mut pairs = Vec::new();
        for av in 0..4i64 {
            for bv in 0..4i64 {
                pairs.push((av, bv));
            }
        }
        let a_words = pack_bus_samples(&pairs.iter().map(|p| p.0).collect::<Vec<_>>(), 2);
        let b_words = pack_bus_samples(&pairs.iter().map(|p| p.1).collect::<Vec<_>>(), 2);
        let mut words = a_words;
        words.extend(b_words);
        let outs = n.simulate_words(&words).unwrap();
        for (lane, &(av, bv)) in pairs.iter().enumerate() {
            let expect_x = ((av & 1) ^ ((bv >> 1) & 1)) == 1;
            let expect_y = (((av >> 1) & 1) & (bv & 1)) == 1;
            assert_eq!((outs[0] >> lane) & 1 == 1, expect_x);
            assert_eq!((outs[1] >> lane) & 1 == 1, expect_y);
        }
    }
}
