//! Reduced ordered binary decision diagrams (ROBDDs) and formal
//! equivalence checking.
//!
//! Random-vector simulation (as used by the mapper's self-check) can
//! miss counterexamples; the BDD backend proves or refutes equivalence
//! *formally*. Variables are ordered by primary-input position. BDDs of
//! multiplier-like functions grow exponentially, so every entry point
//! takes a node budget and fails gracefully when it is exhausted.

// lint-allow-file(hash-containers): the unique table and operation caches
// are keyed lookups, never iterated; node ids are allocated in insertion
// order driven by the deterministic netlist walk.

// lint-allow-file(no-silent-truncation): node ids and variable indices
// are usize→u32 casts bounded far below 2^32 — node counts by the node
// budget, variable counts by the netlist input width.

use crate::ir::{Gate, Netlist};
use crate::NetlistError;
use std::collections::HashMap;

/// Terminal node id for constant false.
const FALSE: u32 = 0;
/// Terminal node id for constant true.
const TRUE: u32 = 1;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    lo: u32,
    hi: u32,
}

/// A BDD manager with a fixed variable order.
///
/// # Examples
///
/// ```
/// use clapped_netlist::bdd::BddManager;
///
/// let mut mgr = BddManager::new(2, 1_000);
/// let x = mgr.var(0).unwrap();
/// let y = mgr.var(1).unwrap();
/// let xy = mgr.and(x, y).unwrap();
/// let yx = mgr.and(y, x).unwrap();
/// assert_eq!(xy, yx); // canonical: same function, same node
/// ```
#[derive(Debug)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<Node, u32>,
    and_cache: HashMap<(u32, u32), u32>,
    xor_cache: HashMap<(u32, u32), u32>,
    not_cache: HashMap<u32, u32>,
    var_count: u32,
    node_limit: usize,
}

impl BddManager {
    /// Creates a manager for `var_count` variables with a node budget.
    pub fn new(var_count: usize, node_limit: usize) -> BddManager {
        BddManager {
            // Slots 0/1 are terminals; their contents are never read.
            nodes: vec![
                Node { var: u32::MAX, lo: 0, hi: 0 },
                Node { var: u32::MAX, lo: 1, hi: 1 },
            ],
            unique: HashMap::new(),
            and_cache: HashMap::new(),
            xor_cache: HashMap::new(),
            not_cache: HashMap::new(),
            var_count: var_count as u32,
            node_limit,
        }
    }

    /// Number of live nodes (including terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Occupancy snapshot: node-store and apply-cache sizes against the
    /// budget. Lets callers that sweep many netlists through one manager
    /// (the error-bound analyzer) decide when a [`BddManager::reset`]
    /// pays off.
    pub fn stats(&self) -> BddStats {
        BddStats {
            nodes: self.nodes.len(),
            node_limit: self.node_limit,
            var_count: self.var_count as usize,
            and_cache_entries: self.and_cache.len(),
            xor_cache_entries: self.xor_cache.len(),
            not_cache_entries: self.not_cache.len(),
        }
    }

    /// Clears every node and apply cache while **preserving allocated
    /// capacity**, and re-declares the variable count. After a reset the
    /// manager behaves like a fresh [`BddManager::new`] but reuses its
    /// buffers, so a pass analyzing hundreds of operators does not churn
    /// the allocator.
    pub fn reset(&mut self, var_count: usize) {
        self.nodes.clear();
        self.nodes.push(Node { var: u32::MAX, lo: 0, hi: 0 });
        self.nodes.push(Node { var: u32::MAX, lo: 1, hi: 1 });
        self.unique.clear();
        self.and_cache.clear();
        self.xor_cache.clear();
        self.not_cache.clear();
        self.var_count = var_count as u32;
    }

    /// The constant-false BDD.
    pub fn zero(&self) -> u32 {
        FALSE
    }

    /// The constant-true BDD.
    pub fn one(&self) -> u32 {
        TRUE
    }

    fn mk(&mut self, var: u32, lo: u32, hi: u32) -> crate::Result<u32> {
        if lo == hi {
            return Ok(lo);
        }
        let node = Node { var, lo, hi };
        if let Some(&id) = self.unique.get(&node) {
            return Ok(id);
        }
        if self.nodes.len() >= self.node_limit {
            clapped_obs::count("bdd.budget_exhausted", 1);
            return Err(NetlistError::BddLimit {
                limit: self.node_limit,
            });
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(node);
        self.unique.insert(node, id);
        Ok(id)
    }

    /// The BDD of a single variable.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BddLimit`] when the budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn var(&mut self, index: usize) -> crate::Result<u32> {
        assert!((index as u32) < self.var_count, "variable out of range");
        self.mk(index as u32, FALSE, TRUE)
    }

    fn var_of(&self, f: u32) -> u32 {
        if f <= 1 {
            u32::MAX
        } else {
            self.nodes[f as usize].var
        }
    }

    fn cofactors(&self, f: u32, var: u32) -> (u32, u32) {
        if f <= 1 || self.nodes[f as usize].var != var {
            (f, f)
        } else {
            let n = self.nodes[f as usize];
            (n.lo, n.hi)
        }
    }

    /// Conjunction.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BddLimit`] when the budget is exhausted.
    pub fn and(&mut self, f: u32, g: u32) -> crate::Result<u32> {
        if f == FALSE || g == FALSE {
            return Ok(FALSE);
        }
        if f == TRUE {
            return Ok(g);
        }
        if g == TRUE || f == g {
            return Ok(f);
        }
        let key = (f.min(g), f.max(g));
        if let Some(&r) = self.and_cache.get(&key) {
            return Ok(r);
        }
        let var = self.var_of(f).min(self.var_of(g));
        let (f0, f1) = self.cofactors(f, var);
        let (g0, g1) = self.cofactors(g, var);
        let lo = self.and(f0, g0)?;
        let hi = self.and(f1, g1)?;
        let r = self.mk(var, lo, hi)?;
        self.and_cache.insert(key, r);
        Ok(r)
    }

    /// Negation.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BddLimit`] when the budget is exhausted.
    pub fn not(&mut self, f: u32) -> crate::Result<u32> {
        if f == FALSE {
            return Ok(TRUE);
        }
        if f == TRUE {
            return Ok(FALSE);
        }
        if let Some(&r) = self.not_cache.get(&f) {
            return Ok(r);
        }
        let n = self.nodes[f as usize];
        let lo = self.not(n.lo)?;
        let hi = self.not(n.hi)?;
        let r = self.mk(n.var, lo, hi)?;
        self.not_cache.insert(f, r);
        self.not_cache.insert(r, f);
        Ok(r)
    }

    /// Disjunction (via De Morgan).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BddLimit`] when the budget is exhausted.
    pub fn or(&mut self, f: u32, g: u32) -> crate::Result<u32> {
        let nf = self.not(f)?;
        let ng = self.not(g)?;
        let a = self.and(nf, ng)?;
        self.not(a)
    }

    /// Exclusive or.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BddLimit`] when the budget is exhausted.
    pub fn xor(&mut self, f: u32, g: u32) -> crate::Result<u32> {
        if f == g {
            return Ok(FALSE);
        }
        if f == FALSE {
            return Ok(g);
        }
        if g == FALSE {
            return Ok(f);
        }
        if f == TRUE {
            return self.not(g);
        }
        if g == TRUE {
            return self.not(f);
        }
        let key = (f.min(g), f.max(g));
        if let Some(&r) = self.xor_cache.get(&key) {
            return Ok(r);
        }
        let var = self.var_of(f).min(self.var_of(g));
        let (f0, f1) = self.cofactors(f, var);
        let (g0, g1) = self.cofactors(g, var);
        let lo = self.xor(f0, g0)?;
        let hi = self.xor(f1, g1)?;
        let r = self.mk(var, lo, hi)?;
        self.xor_cache.insert(key, r);
        Ok(r)
    }

    /// If-then-else `sel ? t : f`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BddLimit`] when the budget is exhausted.
    pub fn ite(&mut self, sel: u32, t: u32, f: u32) -> crate::Result<u32> {
        let st = self.and(sel, t)?;
        let ns = self.not(sel)?;
        let sf = self.and(ns, f)?;
        self.or(st, sf)
    }

    /// Builds BDDs for every output of a netlist (inputs are variables
    /// in declaration order).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BddLimit`] when the budget is exhausted.
    pub fn build_outputs(&mut self, netlist: &Netlist) -> crate::Result<Vec<u32>> {
        let mut map: Vec<u32> = Vec::with_capacity(netlist.len());
        let mut next_input = 0usize;
        for gate in netlist.gates() {
            let id = match *gate {
                Gate::Input { .. } => {
                    let v = self.var(next_input)?;
                    next_input += 1;
                    v
                }
                Gate::Const(c) => {
                    if c {
                        TRUE
                    } else {
                        FALSE
                    }
                }
                Gate::Buf(a) => map[a.index()],
                Gate::Not(a) => {
                    let x = map[a.index()];
                    self.not(x)?
                }
                Gate::And(a, b) => {
                    let (x, y) = (map[a.index()], map[b.index()]);
                    self.and(x, y)?
                }
                Gate::Or(a, b) => {
                    let (x, y) = (map[a.index()], map[b.index()]);
                    self.or(x, y)?
                }
                Gate::Xor(a, b) => {
                    let (x, y) = (map[a.index()], map[b.index()]);
                    self.xor(x, y)?
                }
                Gate::Nand(a, b) => {
                    let (x, y) = (map[a.index()], map[b.index()]);
                    let r = self.and(x, y)?;
                    self.not(r)?
                }
                Gate::Nor(a, b) => {
                    let (x, y) = (map[a.index()], map[b.index()]);
                    let r = self.or(x, y)?;
                    self.not(r)?
                }
                Gate::Xnor(a, b) => {
                    let (x, y) = (map[a.index()], map[b.index()]);
                    let r = self.xor(x, y)?;
                    self.not(r)?
                }
                Gate::Mux { sel, t, f } => {
                    let (s, x, y) = (map[sel.index()], map[t.index()], map[f.index()]);
                    self.ite(s, x, y)?
                }
                Gate::Maj(a, b, c) => {
                    let (x, y, z) = (map[a.index()], map[b.index()], map[c.index()]);
                    let xy = self.and(x, y)?;
                    let xz = self.and(x, z)?;
                    let yz = self.and(y, z)?;
                    let o1 = self.or(xy, xz)?;
                    self.or(o1, yz)?
                }
            };
            map.push(id);
        }
        Ok(netlist
            .outputs()
            .iter()
            .map(|(_, s)| map[s.index()])
            .collect())
    }

    /// Evaluates a BDD under a complete input assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than the variable count a
    /// node refers to.
    pub fn eval(&self, f: u32, inputs: &[bool]) -> bool {
        let mut cur = f;
        while cur > 1 {
            let n = self.nodes[cur as usize];
            cur = if inputs[n.var as usize] { n.hi } else { n.lo };
        }
        cur == TRUE
    }

    /// Finds one satisfying assignment of `f` (as input-index/value
    /// pairs), or `None` for the constant-false function.
    pub fn any_sat(&self, f: u32) -> Option<Vec<(usize, bool)>> {
        if f == FALSE {
            return None;
        }
        let mut assignment = Vec::new();
        let mut cur = f;
        while cur > 1 {
            let n = self.nodes[cur as usize];
            if n.hi != FALSE {
                assignment.push((n.var as usize, true));
                cur = n.hi;
            } else {
                assignment.push((n.var as usize, false));
                cur = n.lo;
            }
        }
        Some(assignment)
    }

    /// Level of a node for model counting: its variable index, or
    /// `var_count` for terminals (one past the last variable).
    fn level(&self, f: u32) -> u32 {
        if f <= 1 {
            self.var_count
        } else {
            self.nodes[f as usize].var
        }
    }

    /// Number of satisfying assignments of `f` over **all**
    /// `var_count` variables (variables the function does not depend on
    /// count as free). Exact in `u128`; panics only if `var_count`
    /// exceeds 127, far beyond any netlist this crate builds.
    pub fn sat_count(&self, f: u32) -> u128 {
        let mut memo: HashMap<u32, u128> = HashMap::new();
        let suffix = self.count_suffix(f, &mut memo);
        suffix << self.level(f).min(self.var_count)
    }

    /// Satisfying assignments of `f` over the variable suffix
    /// `[level(f), var_count)`.
    fn count_suffix(&self, f: u32, memo: &mut HashMap<u32, u128>) -> u128 {
        if f == FALSE {
            return 0;
        }
        if f == TRUE {
            return 1;
        }
        if let Some(&c) = memo.get(&f) {
            return c;
        }
        let n = self.nodes[f as usize];
        let lo = self.count_suffix(n.lo, memo);
        let hi = self.count_suffix(n.hi, memo);
        // Variables skipped between this node and each child are free.
        let c = (lo << (self.level(n.lo) - n.var - 1)) + (hi << (self.level(n.hi) - n.var - 1));
        memo.insert(f, c);
        c
    }
}

/// Occupancy snapshot of a [`BddManager`], from [`BddManager::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BddStats {
    /// Live nodes, terminals included.
    pub nodes: usize,
    /// Node budget the manager was created with.
    pub node_limit: usize,
    /// Declared variable count.
    pub var_count: usize,
    /// Entries in the AND apply cache.
    pub and_cache_entries: usize,
    /// Entries in the XOR apply cache.
    pub xor_cache_entries: usize,
    /// Entries in the NOT cache.
    pub not_cache_entries: usize,
}

/// Outcome of a formal equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// The netlists compute identical functions.
    Equal,
    /// A counterexample was found: output index and a distinguishing
    /// input assignment (input-index/value pairs; unlisted inputs are
    /// don't-care, treat as 0).
    Differ {
        /// Output position at which the functions differ.
        output: usize,
        /// Partial input assignment demonstrating the difference.
        counterexample: Vec<(usize, bool)>,
    },
}

/// Formally checks equivalence of two netlists with matching interfaces
/// using ROBDDs.
///
/// # Errors
///
/// - [`NetlistError::InputCountMismatch`] if the interfaces differ,
/// - [`NetlistError::BddLimit`] if the functions exceed `node_limit`
///   (multiplier-like cones blow up; raise the limit or fall back to
///   random simulation).
///
/// # Examples
///
/// ```
/// use clapped_netlist::bdd::{check_equivalence, Equivalence};
/// use clapped_netlist::{optimize, Netlist};
///
/// let mut n = Netlist::new("t");
/// let a = n.input("a");
/// let b = n.input("b");
/// let y = n.xor(a, b);
/// n.output("y", y);
/// let opt = optimize(&n);
/// assert_eq!(check_equivalence(&n, &opt, 10_000).unwrap(), Equivalence::Equal);
/// ```
pub fn check_equivalence(
    a: &Netlist,
    b: &Netlist,
    node_limit: usize,
) -> crate::Result<Equivalence> {
    if a.inputs().len() != b.inputs().len() || a.outputs().len() != b.outputs().len() {
        return Err(NetlistError::InputCountMismatch {
            expected: a.inputs().len(),
            found: b.inputs().len(),
        });
    }
    let mut mgr = BddManager::new(a.inputs().len(), node_limit);
    let outs_a = mgr.build_outputs(a)?;
    let outs_b = mgr.build_outputs(b)?;
    for (idx, (&fa, &fb)) in outs_a.iter().zip(&outs_b).enumerate() {
        if fa != fb {
            let diff = mgr.xor(fa, fb)?;
            let counterexample = mgr
                .any_sat(diff)
                .expect("differing functions have a witness");
            return Ok(Equivalence::Differ {
                output: idx,
                counterexample,
            });
        }
    }
    Ok(Equivalence::Equal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bus, map_luts, optimize, MapStrategy, Netlist};

    fn adder(w: usize) -> Netlist {
        let mut n = Netlist::new("add");
        let a = n.input_bus("a", w);
        let b = n.input_bus("b", w);
        let (s, c) = bus::ripple_carry_add(&mut n, &a, &b, None);
        n.output_bus("s", &s);
        n.output("c", c);
        n
    }

    #[test]
    fn canonicity_merges_equal_functions() {
        let mut mgr = BddManager::new(3, 1000);
        let x = mgr.var(0).unwrap();
        let y = mgr.var(1).unwrap();
        let a = mgr.and(x, y).unwrap();
        let na = mgr.not(a).unwrap();
        let nx = mgr.not(x).unwrap();
        let ny = mgr.not(y).unwrap();
        let de_morgan = mgr.or(nx, ny).unwrap();
        assert_eq!(na, de_morgan);
    }

    #[test]
    fn optimizer_output_is_formally_equivalent() {
        let n = adder(8);
        let opt = optimize(&n);
        assert_eq!(
            check_equivalence(&n, &opt, 200_000).unwrap(),
            Equivalence::Equal
        );
    }

    #[test]
    fn mapped_netlist_is_formally_equivalent() {
        let n = adder(6);
        let opt = optimize(&n);
        let mapped = map_luts(&opt, 6, MapStrategy::Depth).unwrap();
        let as_netlist = mapped.to_netlist("mapped");
        assert_eq!(
            check_equivalence(&opt, &as_netlist, 200_000).unwrap(),
            Equivalence::Equal
        );
    }

    #[test]
    fn inequivalence_yields_counterexample() {
        let mut a = Netlist::new("a");
        let x = a.input("x");
        let y = a.input("y");
        let o = a.and(x, y);
        a.output("o", o);
        let mut b = Netlist::new("b");
        let x = b.input("x");
        let y = b.input("y");
        let o = b.or(x, y);
        b.output("o", o);
        let result = check_equivalence(&a, &b, 10_000).unwrap();
        let Equivalence::Differ { output, counterexample } = result else {
            panic!("AND and OR must differ");
        };
        assert_eq!(output, 0);
        // Verify the counterexample actually distinguishes them.
        let mut inputs = vec![false; 2];
        for (idx, val) in counterexample {
            inputs[idx] = val;
        }
        let ra = a.simulate_bool(&inputs).unwrap();
        let rb = b.simulate_bool(&inputs).unwrap();
        assert_ne!(ra, rb);
    }

    #[test]
    fn node_limit_is_enforced() {
        // A 6x6 multiplier's middle bits need far more than 50 nodes.
        let mut n = Netlist::new("mul");
        let a = n.input_bus("a", 6);
        let b = n.input_bus("b", 6);
        let p = bus::baugh_wooley_mul(&mut n, &a, &b);
        n.output_bus("p", &p);
        let err = check_equivalence(&n, &n, 50);
        assert!(matches!(err, Err(NetlistError::BddLimit { .. })));
    }

    #[test]
    fn sat_count_matches_truth_table() {
        let mut mgr = BddManager::new(3, 1000);
        let x = mgr.var(0).unwrap();
        let y = mgr.var(1).unwrap();
        let z = mgr.var(2).unwrap();
        let xy = mgr.and(x, y).unwrap();
        let f = mgr.or(xy, z).unwrap();
        // x&y | z over 3 vars: 8 rows, satisfied by z=1 (4) plus x=y=1,z=0 (1).
        assert_eq!(mgr.sat_count(f), 5);
        assert_eq!(mgr.sat_count(mgr.zero()), 0);
        assert_eq!(mgr.sat_count(mgr.one()), 8);
        // A single variable is satisfied by half the space.
        assert_eq!(mgr.sat_count(x), 4);
    }

    #[test]
    fn sat_count_handles_skipped_levels() {
        // f depends only on var 2 of 5: half the 32 rows satisfy it.
        let mut mgr = BddManager::new(5, 1000);
        let v = mgr.var(2).unwrap();
        assert_eq!(mgr.sat_count(v), 16);
        let nv = mgr.not(v).unwrap();
        assert_eq!(mgr.sat_count(nv), 16);
    }

    #[test]
    fn reset_preserves_capacity_and_reuses_manager() {
        let mut mgr = BddManager::new(2, 10_000);
        let x = mgr.var(0).unwrap();
        let y = mgr.var(1).unwrap();
        let _ = mgr.and(x, y).unwrap();
        let before = mgr.stats();
        assert!(before.nodes > 2);
        assert!(before.and_cache_entries > 0);
        mgr.reset(3);
        let after = mgr.stats();
        assert_eq!(after.nodes, 2);
        assert_eq!(after.var_count, 3);
        assert_eq!(after.and_cache_entries, 0);
        // The reset manager produces canonical results again.
        let a = mgr.var(0).unwrap();
        let b = mgr.var(2).unwrap();
        let ab = mgr.and(a, b).unwrap();
        let ba = mgr.and(b, a).unwrap();
        assert_eq!(ab, ba);
        assert_eq!(mgr.sat_count(ab), 2);
    }

    #[test]
    fn small_multiplier_is_tractable() {
        let mut n = Netlist::new("mul4");
        let a = n.input_bus("a", 4);
        let b = n.input_bus("b", 4);
        let p = bus::baugh_wooley_mul(&mut n, &a, &b);
        n.output_bus("p", &p);
        let opt = optimize(&n);
        assert_eq!(
            check_equivalence(&n, &opt, 500_000).unwrap(),
            Equivalence::Equal
        );
    }
}
