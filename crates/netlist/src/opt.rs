//! Netlist optimization: constant folding, identity simplification,
//! structural hashing (CSE), buffer/alias removal and dead-code
//! elimination.
//!
//! [`optimize`] is run before technology mapping so that the mapper never
//! sees constants or buffers inside logic cones.

// lint-allow-file(hash-containers): the CSE/const/inverter tables are keyed
// lookup caches, never iterated; gate emission order comes from the input
// netlist's topological walk, so the rebuilt netlist is deterministic.

use crate::ir::{Gate, Netlist, SignalId};
use std::collections::HashMap;

/// Optimizes a netlist, returning a functionally equivalent netlist whose
/// primary input interface is preserved exactly (unused inputs stay).
///
/// Performed transformations:
/// - constant folding (a gate whose inputs are constants becomes a constant),
/// - boolean identity simplification (`x & 1 = x`, `x ^ x = 0`, mux with a
///   constant select, majority with a constant input, double negation, …),
/// - buffer/alias elimination,
/// - common-subexpression elimination via structural hashing,
/// - dead-code elimination (only logic reachable from the outputs is kept).
///
/// # Examples
///
/// ```
/// use clapped_netlist::{optimize, Netlist};
///
/// let mut n = Netlist::new("t");
/// let a = n.input("a");
/// let one = n.constant(true);
/// let x = n.and(a, one); // = a
/// let y = n.xor(x, x);   // = 0
/// n.output("y", y);
/// let opt = optimize(&n);
/// assert_eq!(opt.logic_gate_count(), 0);
/// ```
pub fn optimize(netlist: &Netlist) -> Netlist {
    let folded = fold_and_hash(netlist);
    eliminate_dead_code(&folded)
}

/// What an old signal resolved to in the new netlist.
#[derive(Clone, Copy)]
enum Resolved {
    Sig(SignalId),
}

fn fold_and_hash(netlist: &Netlist) -> Netlist {
    let mut out = Netlist::new(netlist.name().to_string());
    // old id -> new id
    let mut map: Vec<Option<Resolved>> = vec![None; netlist.len()];
    // constant value of a *new* signal, if known
    let mut const_of: HashMap<SignalId, bool> = HashMap::new();
    // structural hash: canonical gate in the new netlist -> new id
    let mut hash: HashMap<CanonGate, SignalId> = HashMap::new();
    // remember Not gates for double-negation removal: new id -> its operand
    let mut not_of: HashMap<SignalId, SignalId> = HashMap::new();

    let konst = |out: &mut Netlist,
                     const_of: &mut HashMap<SignalId, bool>,
                     v: bool|
     -> SignalId {
        let id = out.constant(v);
        const_of.insert(id, v);
        id
    };

    for (idx, gate) in netlist.gates().iter().enumerate() {
        let resolve = |s: SignalId, map: &Vec<Option<Resolved>>| -> SignalId {
            match map[s.index()] {
                Some(Resolved::Sig(id)) => id,
                None => unreachable!("fanin resolved before use (topological order)"),
            }
        };
        let new_sig: SignalId = match gate {
            Gate::Input { name } => {
                let id = out.input(name.clone());
                map[idx] = Some(Resolved::Sig(id));
                continue;
            }
            Gate::Const(v) => konst(&mut out, &mut const_of, *v),
            Gate::Buf(a) => resolve(*a, &map),
            Gate::Not(a) => {
                let a = resolve(*a, &map);
                if let Some(&v) = const_of.get(&a) {
                    konst(&mut out, &mut const_of, !v)
                } else if let Some(&inner) = not_of.get(&a) {
                    inner // double negation
                } else {
                    let id = emit(&mut out, &mut hash, CanonGate::Not(a));
                    not_of.insert(id, a);
                    id
                }
            }
            Gate::And(a, b) | Gate::Nand(a, b) => {
                let invert = matches!(gate, Gate::Nand(..));
                let (a, b) = (resolve(*a, &map), resolve(*b, &map));
                let base = simplify_and(&mut out, &mut hash, &mut const_of, a, b);
                apply_inv(&mut out, &mut hash, &mut const_of, &mut not_of, base, invert)
            }
            Gate::Or(a, b) | Gate::Nor(a, b) => {
                let invert = matches!(gate, Gate::Nor(..));
                let (a, b) = (resolve(*a, &map), resolve(*b, &map));
                let base = simplify_or(&mut out, &mut hash, &mut const_of, a, b);
                apply_inv(&mut out, &mut hash, &mut const_of, &mut not_of, base, invert)
            }
            Gate::Xor(a, b) | Gate::Xnor(a, b) => {
                let invert = matches!(gate, Gate::Xnor(..));
                let (a, b) = (resolve(*a, &map), resolve(*b, &map));
                let base = simplify_xor(&mut out, &mut hash, &mut const_of, a, b);
                apply_inv(&mut out, &mut hash, &mut const_of, &mut not_of, base, invert)
            }
            Gate::Mux { sel, t, f } => {
                let (sel, t, f) = (resolve(*sel, &map), resolve(*t, &map), resolve(*f, &map));
                if let Some(&sv) = const_of.get(&sel) {
                    if sv {
                        t
                    } else {
                        f
                    }
                } else if t == f {
                    t
                } else {
                    match (const_of.get(&t).copied(), const_of.get(&f).copied()) {
                        (Some(true), Some(false)) => sel,
                        (Some(false), Some(true)) => {
                            emit_not(&mut out, &mut hash, &mut not_of, sel)
                        }
                        (Some(true), None) => simplify_or(&mut out, &mut hash, &mut const_of, sel, f),
                        (Some(false), None) => {
                            let ns = emit_not(&mut out, &mut hash, &mut not_of, sel);
                            simplify_and(&mut out, &mut hash, &mut const_of, ns, f)
                        }
                        (None, Some(true)) => {
                            let ns = emit_not(&mut out, &mut hash, &mut not_of, sel);
                            simplify_or(&mut out, &mut hash, &mut const_of, ns, t)
                        }
                        (None, Some(false)) => {
                            simplify_and(&mut out, &mut hash, &mut const_of, sel, t)
                        }
                        _ => emit(&mut out, &mut hash, CanonGate::Mux(sel, t, f)),
                    }
                }
            }
            Gate::Maj(a, b, c) => {
                let (a, b, c) = (resolve(*a, &map), resolve(*b, &map), resolve(*c, &map));
                let consts = [
                    const_of.get(&a).copied(),
                    const_of.get(&b).copied(),
                    const_of.get(&c).copied(),
                ];
                let sigs = [a, b, c];
                // Pull out constant operands: Maj(x,y,1) = x|y, Maj(x,y,0) = x&y.
                if let Some(pos) = consts.iter().position(Option::is_some) {
                    let cv = consts[pos].expect("position found");
                    let others: Vec<SignalId> = (0..3).filter(|&i| i != pos).map(|i| sigs[i]).collect();
                    if cv {
                        simplify_or(&mut out, &mut hash, &mut const_of, others[0], others[1])
                    } else {
                        simplify_and(&mut out, &mut hash, &mut const_of, others[0], others[1])
                    }
                } else if a == b || a == c {
                    a // Maj(x,x,y) = x
                } else if b == c {
                    b
                } else {
                    let mut s = [a, b, c];
                    s.sort();
                    emit(&mut out, &mut hash, CanonGate::Maj(s[0], s[1], s[2]))
                }
            }
        };
        // Track constants produced by simplification chains.
        map[idx] = Some(Resolved::Sig(new_sig));
    }

    for (name, sig) in netlist.outputs() {
        let new_sig = match map[sig.index()] {
            Some(Resolved::Sig(id)) => id,
            None => unreachable!("outputs reference existing gates"),
        };
        out.output(name.clone(), new_sig);
    }
    out
}

/// Canonical gate form used for structural hashing (commutative inputs are
/// sorted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CanonGate {
    Not(SignalId),
    And(SignalId, SignalId),
    Or(SignalId, SignalId),
    Xor(SignalId, SignalId),
    Mux(SignalId, SignalId, SignalId),
    Maj(SignalId, SignalId, SignalId),
}

fn emit(out: &mut Netlist, hash: &mut HashMap<CanonGate, SignalId>, g: CanonGate) -> SignalId {
    let canon = match g {
        CanonGate::And(a, b) if a > b => CanonGate::And(b, a),
        CanonGate::Or(a, b) if a > b => CanonGate::Or(b, a),
        CanonGate::Xor(a, b) if a > b => CanonGate::Xor(b, a),
        other => other,
    };
    if let Some(&id) = hash.get(&canon) {
        return id;
    }
    let id = match canon {
        CanonGate::Not(a) => out.not(a),
        CanonGate::And(a, b) => out.and(a, b),
        CanonGate::Or(a, b) => out.or(a, b),
        CanonGate::Xor(a, b) => out.xor(a, b),
        CanonGate::Mux(s, t, f) => out.mux(s, t, f),
        CanonGate::Maj(a, b, c) => out.maj(a, b, c),
    };
    hash.insert(canon, id);
    id
}

fn emit_not(
    out: &mut Netlist,
    hash: &mut HashMap<CanonGate, SignalId>,
    not_of: &mut HashMap<SignalId, SignalId>,
    a: SignalId,
) -> SignalId {
    if let Some(&inner) = not_of.get(&a) {
        return inner;
    }
    let id = emit(out, hash, CanonGate::Not(a));
    not_of.insert(id, a);
    id
}

fn apply_inv(
    out: &mut Netlist,
    hash: &mut HashMap<CanonGate, SignalId>,
    const_of: &mut HashMap<SignalId, bool>,
    not_of: &mut HashMap<SignalId, SignalId>,
    base: SignalId,
    invert: bool,
) -> SignalId {
    if !invert {
        return base;
    }
    if let Some(&v) = const_of.get(&base) {
        let id = out.constant(!v);
        const_of.insert(id, !v);
        return id;
    }
    emit_not(out, hash, not_of, base)
}

fn simplify_and(
    out: &mut Netlist,
    hash: &mut HashMap<CanonGate, SignalId>,
    const_of: &mut HashMap<SignalId, bool>,
    a: SignalId,
    b: SignalId,
) -> SignalId {
    match (const_of.get(&a).copied(), const_of.get(&b).copied()) {
        (Some(false), _) | (_, Some(false)) => {
            let id = out.constant(false);
            const_of.insert(id, false);
            id
        }
        (Some(true), _) => b,
        (_, Some(true)) => a,
        _ if a == b => a,
        _ => emit(out, hash, CanonGate::And(a, b)),
    }
}

fn simplify_or(
    out: &mut Netlist,
    hash: &mut HashMap<CanonGate, SignalId>,
    const_of: &mut HashMap<SignalId, bool>,
    a: SignalId,
    b: SignalId,
) -> SignalId {
    match (const_of.get(&a).copied(), const_of.get(&b).copied()) {
        (Some(true), _) | (_, Some(true)) => {
            let id = out.constant(true);
            const_of.insert(id, true);
            id
        }
        (Some(false), _) => b,
        (_, Some(false)) => a,
        _ if a == b => a,
        _ => emit(out, hash, CanonGate::Or(a, b)),
    }
}

fn simplify_xor(
    out: &mut Netlist,
    hash: &mut HashMap<CanonGate, SignalId>,
    const_of: &mut HashMap<SignalId, bool>,
    a: SignalId,
    b: SignalId,
) -> SignalId {
    match (const_of.get(&a).copied(), const_of.get(&b).copied()) {
        (Some(x), Some(y)) => {
            let id = out.constant(x ^ y);
            const_of.insert(id, x ^ y);
            id
        }
        (Some(false), _) => b,
        (_, Some(false)) => a,
        // x ^ 1 handled by caller via apply_inv when needed; emit Not here.
        (Some(true), _) | (_, Some(true)) => {
            let other = if const_of.contains_key(&a) { b } else { a };
            emit(out, hash, CanonGate::Not(other))
        }
        _ if a == b => {
            let id = out.constant(false);
            const_of.insert(id, false);
            id
        }
        _ => emit(out, hash, CanonGate::Xor(a, b)),
    }
}

fn eliminate_dead_code(netlist: &Netlist) -> Netlist {
    let mut live = vec![false; netlist.len()];
    let mut stack: Vec<SignalId> = netlist.outputs().iter().map(|(_, s)| *s).collect();
    while let Some(s) = stack.pop() {
        if live[s.index()] {
            continue;
        }
        live[s.index()] = true;
        for f in netlist.gate(s).fanins() {
            stack.push(f);
        }
    }
    // Inputs always survive to preserve the interface.
    for &i in netlist.inputs() {
        live[i.index()] = true;
    }
    let mut out = Netlist::new(netlist.name().to_string());
    let mut map: Vec<Option<SignalId>> = vec![None; netlist.len()];
    for (idx, gate) in netlist.gates().iter().enumerate() {
        if !live[idx] {
            continue;
        }
        let m = |s: SignalId, map: &Vec<Option<SignalId>>| -> SignalId {
            map[s.index()].expect("live fanins precede their users")
        };
        let new_id = match gate {
            Gate::Input { name } => out.input(name.clone()),
            Gate::Const(v) => out.constant(*v),
            Gate::Buf(a) => out.buf(m(*a, &map)),
            Gate::Not(a) => out.not(m(*a, &map)),
            Gate::And(a, b) => {
                let (a, b) = (m(*a, &map), m(*b, &map));
                out.and(a, b)
            }
            Gate::Or(a, b) => {
                let (a, b) = (m(*a, &map), m(*b, &map));
                out.or(a, b)
            }
            Gate::Xor(a, b) => {
                let (a, b) = (m(*a, &map), m(*b, &map));
                out.xor(a, b)
            }
            Gate::Nand(a, b) => {
                let (a, b) = (m(*a, &map), m(*b, &map));
                out.nand(a, b)
            }
            Gate::Nor(a, b) => {
                let (a, b) = (m(*a, &map), m(*b, &map));
                out.nor(a, b)
            }
            Gate::Xnor(a, b) => {
                let (a, b) = (m(*a, &map), m(*b, &map));
                out.xnor(a, b)
            }
            Gate::Mux { sel, t, f } => {
                let (sel, t, f) = (m(*sel, &map), m(*t, &map), m(*f, &map));
                out.mux(sel, t, f)
            }
            Gate::Maj(a, b, c) => {
                let (a, b, c) = (m(*a, &map), m(*b, &map), m(*c, &map));
                out.maj(a, b, c)
            }
        };
        map[idx] = Some(new_id);
    }
    for (name, sig) in netlist.outputs() {
        out.output(name.clone(), map[sig.index()].expect("outputs are live"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_equivalence_check(orig: &Netlist, opt: &Netlist, seed: u64) {
        assert_eq!(orig.inputs().len(), opt.inputs().len());
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..32 {
            let words: Vec<u64> = (0..orig.inputs().len()).map(|_| rng.gen()).collect();
            let a = orig.simulate_words(&words).unwrap();
            let b = opt.simulate_words(&words).unwrap();
            assert_eq!(a, b, "optimization changed function");
        }
    }

    #[test]
    fn folds_constants() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let zero = n.constant(false);
        let one = n.constant(true);
        let x = n.and(a, zero); // 0
        let y = n.or(x, one); // 1
        let z = n.xor(y, a); // !a
        n.output("z", z);
        let opt = optimize(&n);
        assert_eq!(opt.logic_gate_count(), 1); // a single Not
        random_equivalence_check(&n, &opt, 1);
    }

    #[test]
    fn removes_double_negation() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let x = n.not(a);
        let y = n.not(x);
        n.output("y", y);
        let opt = optimize(&n);
        assert_eq!(opt.logic_gate_count(), 0);
        random_equivalence_check(&n, &opt, 2);
    }

    #[test]
    fn cse_merges_duplicate_gates() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let x = n.and(a, b);
        let y = n.and(b, a); // commutative duplicate
        let z = n.xor(x, y); // = 0
        n.output("z", z);
        let opt = optimize(&n);
        assert_eq!(opt.logic_gate_count(), 0);
        random_equivalence_check(&n, &opt, 3);
    }

    #[test]
    fn mux_with_constant_select_folds() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let one = n.constant(true);
        let m = n.mux(one, a, b);
        n.output("m", m);
        let opt = optimize(&n);
        assert_eq!(opt.logic_gate_count(), 0);
        random_equivalence_check(&n, &opt, 4);
    }

    #[test]
    fn maj_with_constant_folds_to_and_or() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let one = n.constant(true);
        let zero = n.constant(false);
        let or = n.maj(a, b, one);
        let and = n.maj(a, zero, b);
        n.output("or", or);
        n.output("and", and);
        let opt = optimize(&n);
        assert_eq!(opt.logic_gate_count(), 2);
        random_equivalence_check(&n, &opt, 5);
    }

    #[test]
    fn dead_code_is_removed_but_inputs_stay() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let _dead = n.xor(a, b);
        let live = n.and(a, b);
        n.output("y", live);
        let opt = optimize(&n);
        assert_eq!(opt.inputs().len(), 2);
        assert_eq!(opt.logic_gate_count(), 1);
        random_equivalence_check(&n, &opt, 6);
    }

    #[test]
    fn optimizing_adder_preserves_function() {
        let mut n = Netlist::new("add");
        let a = n.input_bus("a", 8);
        let b = n.input_bus("b", 8);
        let (s, c) = crate::bus::ripple_carry_add(&mut n, &a, &b, None);
        n.output_bus("s", &s);
        n.output("c", c);
        let opt = optimize(&n);
        assert!(opt.logic_gate_count() <= n.logic_gate_count());
        random_equivalence_check(&n, &opt, 7);
    }

    #[test]
    fn optimizing_multiplier_preserves_function() {
        let mut n = Netlist::new("mul");
        let a = n.input_bus("a", 6);
        let b = n.input_bus("b", 6);
        let p = crate::bus::baugh_wooley_mul(&mut n, &a, &b);
        n.output_bus("p", &p);
        let opt = optimize(&n);
        assert!(opt.logic_gate_count() < n.logic_gate_count());
        random_equivalence_check(&n, &opt, 8);
    }
}
