//! Wide-word block-parallel netlist simulation.
//!
//! [`crate::Netlist::simulate_words`] evaluates 64 input lanes per pass;
//! this module widens each signal to a *block* of `W` words (`[u64; W]`,
//! const-generic over `W`), so one pass over the gate list evaluates
//! `W × 64` lanes. The per-gate kernels are straight-line loops over the
//! block words — exactly the shape the autovectorizer turns into SIMD
//! (`W = 4` maps a gate onto one AVX2 op) — and the per-gate dispatch
//! (match, bounds checks, fault-mask probe) amortizes over `W` words.
//!
//! Layout: lane *l* of a block lives in word `l / 64`, bit `l % 64`.
//! Padding lanes of a partial final block are driven with zeros; their
//! outputs are well-defined but meaningless, and callers mask them out
//! (see [`unpack_bus_samples_blocks`] and the fault-campaign lane
//! masks).
//!
//! Everything here is bit-identical, lane for lane, to the 64-way
//! reference simulator — pinned by proptest in
//! `tests/prop_wide_sim.rs`.

use crate::fault::FaultSet;
use crate::ir::{Gate, Netlist};
use crate::NetlistError;

/// Applies a unary word operation across a block.
#[inline(always)]
fn un<const W: usize>(a: &[u64; W], f: impl Fn(u64) -> u64) -> [u64; W] {
    let mut out = [0u64; W];
    for i in 0..W {
        out[i] = f(a[i]);
    }
    out
}

/// Applies a binary word operation across a block.
#[inline(always)]
fn bin<const W: usize>(a: &[u64; W], b: &[u64; W], f: impl Fn(u64, u64) -> u64) -> [u64; W] {
    let mut out = [0u64; W];
    for i in 0..W {
        out[i] = f(a[i], b[i]);
    }
    out
}

/// Applies a ternary word operation across a block.
#[inline(always)]
fn tri<const W: usize>(
    a: &[u64; W],
    b: &[u64; W],
    c: &[u64; W],
    f: impl Fn(u64, u64, u64) -> u64,
) -> [u64; W] {
    let mut out = [0u64; W];
    for i in 0..W {
        out[i] = f(a[i], b[i], c[i]);
    }
    out
}

impl Netlist {
    /// Evaluates every signal for `W × 64` parallel input lanes.
    ///
    /// `input_blocks[k]` supplies the lane blocks of the k-th primary
    /// input (in [`Netlist::inputs`] order). Bit-identical, word for
    /// word, to calling [`Netlist::eval_words`] once per block word.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputCountMismatch`] if the number of
    /// blocks differs from the number of primary inputs.
    pub fn eval_blocks<const W: usize>(
        &self,
        input_blocks: &[[u64; W]],
    ) -> crate::Result<Vec<[u64; W]>> {
        let mut vals = Vec::new();
        self.eval_blocks_masked(input_blocks, &[], &mut vals)?;
        Ok(vals)
    }

    /// Evaluates the primary outputs for `W × 64` parallel lanes.
    ///
    /// # Errors
    ///
    /// See [`Netlist::eval_blocks`].
    pub fn simulate_blocks<const W: usize>(
        &self,
        input_blocks: &[[u64; W]],
    ) -> crate::Result<Vec<[u64; W]>> {
        let vals = self.eval_blocks(input_blocks)?;
        Ok(self.outputs().iter().map(|(_, s)| vals[s.index()]).collect())
    }

    /// [`Netlist::simulate_blocks`] with injected faults. The fault
    /// masks broadcast across the `W` words of each block — the same
    /// and/or/xor masks a 64-lane [`FaultSet`] applies per word — so
    /// the result is bit-identical to faulting each word separately
    /// with [`Netlist::simulate_words_with_faults`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidFaultSite`] if a fault references
    /// a signal outside this netlist; see also
    /// [`Netlist::eval_blocks`].
    pub fn simulate_blocks_with_faults<const W: usize>(
        &self,
        input_blocks: &[[u64; W]],
        faults: &FaultSet,
    ) -> crate::Result<Vec<[u64; W]>> {
        if let Some(max) = faults.max_index() {
            if max >= self.len() {
                return Err(NetlistError::InvalidFaultSite { index: max, signals: self.len() });
            }
        }
        let mut masks = faults.entries().to_vec();
        masks.sort_unstable_by_key(|e| e.0);
        let mut vals = Vec::new();
        self.eval_blocks_masked(input_blocks, &masks, &mut vals)?;
        Ok(self.outputs().iter().map(|(_, s)| vals[s.index()]).collect())
    }

    /// Zero-allocation streaming variant: evaluates the primary outputs
    /// into `outputs`, reusing `scratch` for the per-signal values.
    /// Repeated calls with the same buffers never reallocate — this is
    /// the inner loop of table derivation and frame simulation.
    ///
    /// # Errors
    ///
    /// See [`Netlist::eval_blocks`].
    pub fn simulate_blocks_into<const W: usize>(
        &self,
        input_blocks: &[[u64; W]],
        scratch: &mut Vec<[u64; W]>,
        outputs: &mut Vec<[u64; W]>,
    ) -> crate::Result<()> {
        self.eval_blocks_masked(input_blocks, &[], scratch)?;
        outputs.clear();
        outputs.extend(self.outputs().iter().map(|(_, s)| scratch[s.index()]));
        Ok(())
    }

    /// The wide-evaluation kernel: one pass over the gate list with
    /// `masks` — `(signal index, and, or, xor)` entries **sorted by
    /// signal index** — applied as each masked signal is computed, so
    /// downstream gates see the faulted value. An empty mask list costs
    /// one predictable compare per gate.
    pub(crate) fn eval_blocks_masked<const W: usize>(
        &self,
        input_blocks: &[[u64; W]],
        masks: &[(usize, u64, u64, u64)],
        vals: &mut Vec<[u64; W]>,
    ) -> crate::Result<()> {
        if input_blocks.len() != self.inputs().len() {
            return Err(NetlistError::InputCountMismatch {
                expected: self.inputs().len(),
                found: input_blocks.len(),
            });
        }
        vals.clear();
        vals.resize(self.len(), [0u64; W]);
        let mut next_input = 0;
        let mut next_mask = 0;
        for (i, gate) in self.gates().iter().enumerate() {
            let mut v: [u64; W] = match *gate {
                Gate::Input { .. } => {
                    let b = input_blocks[next_input];
                    next_input += 1;
                    b
                }
                Gate::Const(c) => {
                    if c {
                        [u64::MAX; W]
                    } else {
                        [0u64; W]
                    }
                }
                Gate::Buf(a) => vals[a.index()],
                Gate::Not(a) => un(&vals[a.index()], |x| !x),
                Gate::And(a, b) => bin(&vals[a.index()], &vals[b.index()], |x, y| x & y),
                Gate::Or(a, b) => bin(&vals[a.index()], &vals[b.index()], |x, y| x | y),
                Gate::Xor(a, b) => bin(&vals[a.index()], &vals[b.index()], |x, y| x ^ y),
                Gate::Nand(a, b) => bin(&vals[a.index()], &vals[b.index()], |x, y| !(x & y)),
                Gate::Nor(a, b) => bin(&vals[a.index()], &vals[b.index()], |x, y| !(x | y)),
                Gate::Xnor(a, b) => bin(&vals[a.index()], &vals[b.index()], |x, y| !(x ^ y)),
                Gate::Mux { sel, t, f } => tri(
                    &vals[sel.index()],
                    &vals[t.index()],
                    &vals[f.index()],
                    |s, t, f| (s & t) | (!s & f),
                ),
                Gate::Maj(a, b, c) => tri(
                    &vals[a.index()],
                    &vals[b.index()],
                    &vals[c.index()],
                    |x, y, z| (x & y) | (x & z) | (y & z),
                ),
            };
            if next_mask < masks.len() && masks[next_mask].0 == i {
                let (_, and_mask, or_mask, xor_mask) = masks[next_mask];
                for w in 0..W {
                    v[w] = ((v[w] & and_mask) | or_mask) ^ xor_mask;
                }
                next_mask += 1;
            }
            vals[i] = v;
        }
        Ok(())
    }
}

/// Transposes a u64 viewed as an 8×8 bit matrix: bit `8r + c` of the
/// input becomes bit `8c + r` of the output (byte *r* holds row *r*,
/// bit *c* within the byte holds column *c*). The function is an
/// involution, so the same call converts both ways between
/// byte-per-lane form (byte *l* = an 8-bit value for lane *l*) and
/// bitplane form (byte *k* = bit *k* of all eight lanes).
///
/// This is the hot pack/unpack primitive of the wide-word pipelines:
/// eight lanes move between bytes and bitplanes in ~18 word ops instead
/// of 64 per-bit shift/or pairs.
///
/// # Examples
///
/// ```
/// // A matrix with only row 3 set maps to every byte having bit 3 set.
/// let x = 0xffu64 << (8 * 3);
/// assert_eq!(clapped_netlist::transpose8x8(x), 0x0808_0808_0808_0808);
/// assert_eq!(clapped_netlist::transpose8x8(clapped_netlist::transpose8x8(x)), x);
/// ```
#[inline(always)]
#[must_use]
pub fn transpose8x8(x: u64) -> u64 {
    // Three delta-swap rounds (Hacker's Delight §7-3): exchange 1×1,
    // 2×2, then 4×4 sub-blocks across the diagonal.
    let t = (x ^ (x >> 7)) & 0x00aa_00aa_00aa_00aa;
    let x = x ^ t ^ (t << 7);
    let t = (x ^ (x >> 14)) & 0x0000_cccc_0000_cccc;
    let x = x ^ t ^ (t << 14);
    let t = (x ^ (x >> 28)) & 0x0000_0000_f0f0_f0f0;
    x ^ t ^ (t << 28)
}

/// Packs up to `W × 64` integer samples into per-bit lane blocks: block
/// *k* carries bit *k* of every sample, with sample *i* in word
/// `i / 64`, bit `i % 64`. Negative values pack in two's complement.
/// The wide-block analogue of [`crate::pack_bus_samples`].
///
/// # Panics
///
/// Panics if more than `W × 64` samples are supplied.
pub fn pack_bus_samples_blocks<const W: usize>(samples: &[i64], width: usize) -> Vec<[u64; W]> {
    assert!(samples.len() <= W * 64, "at most W*64 samples per block");
    let mut blocks = vec![[0u64; W]; width];
    for (lane, &v) in samples.iter().enumerate() {
        let (word, bit) = (lane / 64, lane % 64);
        let bits = v as u64;
        for (k, block) in blocks.iter_mut().enumerate() {
            block[word] |= ((bits >> k) & 1) << bit;
        }
    }
    blocks
}

/// Unpacks per-bit output blocks back into `count` integer samples
/// (sign-extending from the top block when `signed` is set). The
/// wide-block analogue of [`crate::unpack_bus_samples`].
///
/// # Panics
///
/// Panics if `count` exceeds `W × 64`.
pub fn unpack_bus_samples_blocks<const W: usize>(
    blocks: &[[u64; W]],
    count: usize,
    signed: bool,
) -> Vec<i64> {
    assert!(count <= W * 64, "at most W*64 samples per block");
    let width = blocks.len();
    (0..count)
        .map(|lane| {
            let (word, bit) = (lane / 64, lane % 64);
            let mut v: u64 = 0;
            for (k, block) in blocks.iter().enumerate() {
                v |= ((block[word] >> bit) & 1) << k;
            }
            if signed && width > 0 && width < 64 && (v >> (width - 1)) & 1 == 1 {
                (v | (!0u64 << width)) as i64
            } else {
                v as i64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultKind, Netlist, SignalId};

    fn sample_netlist() -> Netlist {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let x = n.xor(a, b);
        let y = n.maj(a, b, c);
        let z = n.mux(c, x, y);
        n.output("x", x);
        n.output("y", y);
        n.output("z", z);
        n
    }

    #[test]
    fn blocks_agree_with_words_lane_by_lane() {
        let n = sample_netlist();
        let inputs: [[u64; 4]; 3] = [
            [0x0123_4567_89ab_cdef, 1, !0, 0xdead_beef],
            [0xfedc_ba98_7654_3210, 2, 0, 0xbeef_dead],
            [0xaaaa_aaaa_5555_5555, 3, !0, 7],
        ];
        let wide = n.simulate_blocks(&inputs).unwrap();
        for w in 0..4 {
            let words: Vec<u64> = inputs.iter().map(|b| b[w]).collect();
            let narrow = n.simulate_words(&words).unwrap();
            for (k, &word) in narrow.iter().enumerate() {
                assert_eq!(wide[k][w], word, "output {k} word {w}");
            }
        }
    }

    #[test]
    fn w1_blocks_equal_words_exactly() {
        let n = sample_netlist();
        let words = [0x1234u64, 0x5678, 0x9abc];
        let blocks: Vec<[u64; 1]> = words.iter().map(|&w| [w]).collect();
        let wide = n.simulate_blocks(&blocks).unwrap();
        let narrow = n.simulate_words(&words).unwrap();
        assert_eq!(narrow, wide.iter().map(|b| b[0]).collect::<Vec<_>>());
    }

    #[test]
    fn faulted_blocks_broadcast_masks_per_word() {
        let n = sample_netlist();
        let inputs: [[u64; 2]; 3] = [[0xff00, 3], [0x0ff0, 5], [0x00ff, 9]];
        let faults = FaultSet::empty()
            .stuck_at(SignalId::from_index(3), FaultKind::StuckAt1)
            .transient(SignalId::from_index(4), 0b1010);
        let wide = n.simulate_blocks_with_faults(&inputs, &faults).unwrap();
        for w in 0..2 {
            let words: Vec<u64> = inputs.iter().map(|b| b[w]).collect();
            let narrow = n.simulate_words_with_faults(&words, &faults).unwrap();
            for (k, &word) in narrow.iter().enumerate() {
                assert_eq!(wide[k][w], word, "output {k} word {w}");
            }
        }
    }

    #[test]
    fn invalid_fault_site_is_reported() {
        let n = sample_netlist();
        let faults = FaultSet::empty().stuck_at(SignalId::from_index(99), FaultKind::StuckAt0);
        let err = n.simulate_blocks_with_faults(&[[0u64; 2]; 3], &faults).unwrap_err();
        assert!(matches!(err, NetlistError::InvalidFaultSite { index: 99, .. }));
    }

    #[test]
    fn input_count_mismatch_is_error() {
        let n = sample_netlist();
        assert!(n.simulate_blocks(&[[0u64; 4]; 2]).is_err());
    }

    #[test]
    fn streaming_variant_reuses_buffers() {
        let n = sample_netlist();
        let inputs = [[1u64; 4], [2u64; 4], [4u64; 4]];
        let mut scratch = Vec::new();
        let mut outs = Vec::new();
        n.simulate_blocks_into(&inputs, &mut scratch, &mut outs).unwrap();
        let expect = n.simulate_blocks(&inputs).unwrap();
        assert_eq!(outs, expect);
        let (sp, op) = (scratch.as_ptr(), outs.as_ptr());
        n.simulate_blocks_into(&inputs, &mut scratch, &mut outs).unwrap();
        assert_eq!(outs, expect);
        assert_eq!((sp, op), (scratch.as_ptr(), outs.as_ptr()), "no reallocation");
    }

    #[test]
    fn transpose8x8_matches_naive_bit_transpose() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let x = state;
            let y = transpose8x8(x);
            for r in 0..8 {
                for c in 0..8 {
                    assert_eq!(
                        (y >> (8 * c + r)) & 1,
                        (x >> (8 * r + c)) & 1,
                        "x={x:#018x} r={r} c={c}"
                    );
                }
            }
            assert_eq!(transpose8x8(y), x, "involution");
        }
    }

    #[test]
    fn block_pack_unpack_roundtrip() {
        let samples: Vec<i64> = (0..130).map(|i| (i * 37) % 256 - 128).collect();
        let blocks = pack_bus_samples_blocks::<4>(&samples, 9);
        let back = unpack_bus_samples_blocks::<4>(&blocks, samples.len(), true);
        assert_eq!(back, samples);
        // The first 64 lanes match the narrow packer word for word.
        let narrow = crate::pack_bus_samples(&samples[..64], 9);
        for (k, b) in blocks.iter().enumerate() {
            assert_eq!(b[0], narrow[k]);
        }
    }
}
