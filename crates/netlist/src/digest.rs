//! Stable content digests for netlists and fault sets.
//!
//! These digests are the cache keys of everything downstream — operator
//! behavioural tables, fault-campaign results, full cross-layer
//! configuration evaluations — so they must be a pure function of the
//! netlist *content* (structure, connectivity, port names), stable
//! across runs and processes. They are built on the fixed FNV-1a
//! encoding from `clapped-exec`, not on `std::hash`, which guarantees
//! neither.

use crate::fault::FaultSet;
use crate::ir::{Gate, Netlist};
use clapped_exec::{digest_of, Digestible, Fnv64};

impl Digestible for Gate {
    fn feed(&self, h: &mut Fnv64) {
        // Variant tag first, then fanin indices; tags are arbitrary but
        // frozen — reordering this enum must not change digests.
        match self {
            Gate::Input { name } => {
                h.write_u64(1);
                h.write_str(name);
            }
            Gate::Const(c) => {
                h.write_u64(2);
                h.write_u64(u64::from(*c));
            }
            Gate::Buf(a) => {
                h.write_u64(3);
                h.write_u64(a.index() as u64);
            }
            Gate::Not(a) => {
                h.write_u64(4);
                h.write_u64(a.index() as u64);
            }
            Gate::And(a, b) => feed2(h, 5, a.index(), b.index()),
            Gate::Or(a, b) => feed2(h, 6, a.index(), b.index()),
            Gate::Xor(a, b) => feed2(h, 7, a.index(), b.index()),
            Gate::Nand(a, b) => feed2(h, 8, a.index(), b.index()),
            Gate::Nor(a, b) => feed2(h, 9, a.index(), b.index()),
            Gate::Xnor(a, b) => feed2(h, 10, a.index(), b.index()),
            Gate::Mux { sel, t, f } => {
                h.write_u64(11);
                h.write_u64(sel.index() as u64);
                h.write_u64(t.index() as u64);
                h.write_u64(f.index() as u64);
            }
            Gate::Maj(a, b, c) => {
                h.write_u64(12);
                h.write_u64(a.index() as u64);
                h.write_u64(b.index() as u64);
                h.write_u64(c.index() as u64);
            }
        }
    }
}

fn feed2(h: &mut Fnv64, tag: u64, a: usize, b: usize) {
    h.write_u64(tag);
    h.write_u64(a as u64);
    h.write_u64(b as u64);
}

impl Digestible for Netlist {
    fn feed(&self, h: &mut Fnv64) {
        h.write_str(self.name());
        h.write_u64(self.gates().len() as u64);
        for g in self.gates() {
            g.feed(h);
        }
        h.write_u64(self.inputs().len() as u64);
        for s in self.inputs() {
            h.write_u64(s.index() as u64);
        }
        h.write_u64(self.outputs().len() as u64);
        for (name, s) in self.outputs() {
            h.write_str(name);
            h.write_u64(s.index() as u64);
        }
    }
}

impl Netlist {
    /// Stable 64-bit content digest of this netlist (structure,
    /// connectivity and port names). Two structurally identical netlists
    /// digest identically in any process on any platform; use it as a
    /// cache / memo key for anything derived purely from the netlist.
    pub fn content_digest(&self) -> u64 {
        digest_of(self)
    }
}

impl Digestible for FaultSet {
    fn feed(&self, h: &mut Fnv64) {
        h.write_u64(self.entries().len() as u64);
        for &(index, and_mask, or_mask, xor_mask) in self.entries() {
            h.write_u64(index as u64);
            h.write_u64(and_mask);
            h.write_u64(or_mask);
            h.write_u64(xor_mask);
        }
    }
}

impl FaultSet {
    /// Stable 64-bit content digest of the injected fault masks.
    pub fn content_digest(&self) -> u64 {
        digest_of(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use crate::ir::SignalId;

    fn xor_chain(name: &str) -> Netlist {
        let mut n = Netlist::new(name);
        let a = n.input("a");
        let b = n.input("b");
        let x = n.xor(a, b);
        n.output("x", x);
        n
    }

    #[test]
    fn identical_netlists_digest_identically() {
        assert_eq!(xor_chain("t").content_digest(), xor_chain("t").content_digest());
    }

    #[test]
    fn structure_name_and_ports_all_matter() {
        let base = xor_chain("t").content_digest();
        assert_ne!(base, xor_chain("u").content_digest(), "name");
        let mut other = Netlist::new("t");
        let a = other.input("a");
        let b = other.input("b");
        let x = other.and(a, b);
        other.output("x", x);
        assert_ne!(base, other.content_digest(), "gate type");
        let mut renamed = Netlist::new("t");
        let a = renamed.input("a");
        let b = renamed.input("b");
        let x = renamed.xor(a, b);
        renamed.output("y", x);
        assert_ne!(base, renamed.content_digest(), "output port name");
    }

    #[test]
    fn fault_set_digest_tracks_content() {
        let s = SignalId::from_index(3);
        let a = FaultSet::empty().stuck_at(s, FaultKind::StuckAt0);
        let b = FaultSet::empty().stuck_at(s, FaultKind::StuckAt0);
        let c = FaultSet::empty().stuck_at(s, FaultKind::StuckAt1);
        assert_eq!(a.content_digest(), b.content_digest());
        assert_ne!(a.content_digest(), c.content_digest());
        assert_ne!(a.content_digest(), FaultSet::empty().content_digest());
    }
}
