//! Formal error-bound analysis over approximate netlists.
//!
//! Given an approximate netlist and its exact reference, this pass
//! computes **proved** error metrics without a single simulation
//! vector, in two tiers:
//!
//! 1. an *interval/congruence* abstract interpretation over the
//!    combined miter DAG: ternary constant propagation plus structural
//!    hashing assigns every signal an abstract value (a proved constant
//!    or an equivalence class), so output bits whose approximate and
//!    exact cones land in the same class are proved equal. The
//!    remaining bits form the **error cone**, and the weighted sum of
//!    cone bits is a sound worst-case-error (WCE) bound — for both
//!    unsigned and two's-complement output encodings, since
//!    `|x − y| ≤ Σ_{k∈cone} 2^k` covers the sign bit's magnitude;
//! 2. an *exact* pass on [`BddManager`]: the miter is extended with an
//!    XOR-difference predicate and a gate-level `|exact − approx|`
//!    datapath, and BDDs deliver the exact error rate (satisfying
//!    assignment counting) and exact WCE (MSB-first maximization over
//!    the absolute-difference bits). The pass is budget-limited and
//!    falls back to the interval bound when the node limit trips
//!    (counted on `bdd.budget_exhausted`).
//!
//! The same abstract domain powers static fault-site masking
//! ([`StuckAtObservability`]): a per-site forward D-propagation decides
//! whether a stuck-at corruption can possibly reach a primary output,
//! letting fault campaigns skip provably invisible sites. The
//! propagation is deliberately per-site — a global backward
//! observability pass is unsound under reconvergent constant fanout
//! (two "blocked" edges can unblock each other once the shared constant
//! itself is the fault site), which the test suite pins with a
//! counterexample.

// lint-allow-file(hash-containers): the congruence key table and the
// complement map are keyed lookups, never iterated; class ids are
// allocated in deterministic netlist walk order.

use crate::bdd::BddManager;
use crate::ir::{Gate, Netlist, SignalId};
use crate::{bus, NetlistError};
use std::collections::HashMap;

/// Configuration of [`analyze`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErrBoundConfig {
    /// Node budget for the exact BDD tier; when exhausted the analysis
    /// gracefully degrades to the interval bound. `0` disables the
    /// exact tier outright (interval-only analysis, microseconds per
    /// operator — the mode the generative catalog uses per spec).
    pub bdd_node_limit: usize,
    /// Whether output buses encode two's-complement values. Affects
    /// only the exact `|e − a|` datapath (interval bounds are encoding
    /// agnostic).
    pub signed_outputs: bool,
}

impl Default for ErrBoundConfig {
    fn default() -> ErrBoundConfig {
        ErrBoundConfig {
            bdd_node_limit: 400_000,
            signed_outputs: true,
        }
    }
}

/// Exact error metrics from the BDD tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactError {
    /// Number of input assignments on which the outputs differ.
    pub mismatch_count: u128,
    /// Total input-space size (`2^inputs`).
    pub input_space: u128,
    /// `mismatch_count / input_space`.
    pub error_rate: f64,
    /// Exact worst-case `|exact − approx|` over all inputs.
    pub wce: u64,
}

/// Result of a formal error-bound analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorBounds {
    /// Per output bit: `true` when the bit is **not** proved equal to
    /// the reference (it may carry error).
    pub error_cone: Vec<bool>,
    /// Interval-tier WCE bound: `Σ 2^k` over error-cone bits. Always a
    /// sound upper bound on the true worst-case absolute error.
    pub proved_wce: u64,
    /// Exact metrics when the BDD tier fit its node budget.
    pub exact: Option<ExactError>,
}

impl ErrorBounds {
    /// True when every output bit is proved equal to the reference.
    pub fn proved_equal(&self) -> bool {
        !self.error_cone.iter().any(|&b| b)
    }

    /// Number of output bits not proved equal.
    pub fn cone_bits(&self) -> usize {
        self.error_cone.iter().filter(|&&b| b).count()
    }

    /// Tightest proved WCE: the exact value when available, the
    /// interval bound otherwise.
    pub fn best_wce(&self) -> u64 {
        match self.exact {
            Some(e) => e.wce,
            None => self.proved_wce,
        }
    }

    /// Proved error rate: exact when available, else the trivial sound
    /// bound (`0` for proved-equal netlists, `1` otherwise).
    pub fn proved_error_rate(&self) -> f64 {
        match self.exact {
            Some(e) => e.error_rate,
            None => {
                if self.proved_equal() {
                    0.0
                } else {
                    1.0
                }
            }
        }
    }
}

/// Analyzes `approx` against its exact reference with a fresh
/// [`BddManager`].
///
/// # Errors
///
/// - [`NetlistError::InputCountMismatch`] / [`NetlistError::OutputCountMismatch`]
///   when the interfaces differ.
///
/// A BDD budget exhaustion is **not** an error: the result simply
/// carries `exact: None`.
///
/// # Examples
///
/// ```
/// use clapped_netlist::errbound::{analyze, ErrBoundConfig};
/// use clapped_netlist::{bus, Netlist};
///
/// // 4-bit adder vs a copy that drops the LSB (stuck at 0).
/// let build = |drop_lsb: bool| {
///     let mut n = Netlist::new("add");
///     let a = n.input_bus("a", 4);
///     let b = n.input_bus("b", 4);
///     let (mut s, _c) = bus::ripple_carry_add(&mut n, &a, &b, None);
///     if drop_lsb {
///         s[0] = n.constant(false);
///     }
///     n.output_bus("s", &s);
///     n
/// };
/// let bounds = analyze(&build(true), &build(false), &ErrBoundConfig::default())?;
/// assert_eq!(bounds.proved_wce, 1); // only bit 0 is in the error cone
/// let exact = bounds.exact.expect("tiny cone fits any budget");
/// assert_eq!(exact.wce, 1);
/// # Ok::<(), clapped_netlist::NetlistError>(())
/// ```
pub fn analyze(
    approx: &Netlist,
    exact: &Netlist,
    cfg: &ErrBoundConfig,
) -> crate::Result<ErrorBounds> {
    let mut mgr = BddManager::new(exact.inputs().len(), cfg.bdd_node_limit);
    analyze_with(&mut mgr, approx, exact, cfg)
}

/// [`analyze`] reusing a caller-owned manager (reset in place), so a
/// sweep over many operators amortizes the manager's allocations.
///
/// # Errors
///
/// See [`analyze`].
pub fn analyze_with(
    mgr: &mut BddManager,
    approx: &Netlist,
    exact: &Netlist,
    cfg: &ErrBoundConfig,
) -> crate::Result<ErrorBounds> {
    let n_in = exact.inputs().len();
    let out_w = exact.outputs().len();
    if approx.inputs().len() != n_in {
        return Err(NetlistError::InputCountMismatch {
            expected: n_in,
            found: approx.inputs().len(),
        });
    }
    if approx.outputs().len() != out_w {
        return Err(NetlistError::OutputCountMismatch {
            expected: out_w,
            found: approx.outputs().len(),
        });
    }
    if out_w == 0 {
        return Ok(ErrorBounds {
            error_cone: Vec::new(),
            proved_wce: 0,
            exact: Some(ExactError {
                mismatch_count: 0,
                input_space: space_of(n_in),
                error_rate: 0.0,
                wce: 0,
            }),
        });
    }

    // --- Miter: both circuits over shared inputs -------------------
    let mut miter = Netlist::new("errbound_miter");
    let ins: Vec<SignalId> = (0..n_in).map(|k| miter.input(format!("i{k}"))).collect();
    let e_outs = miter.instantiate(exact, &ins);
    let a_outs = miter.instantiate(approx, &ins);

    // --- Tier 1: interval/congruence abstract interpretation -------
    let vals = abstract_values(&miter);
    let error_cone: Vec<bool> = e_outs
        .iter()
        .zip(&a_outs)
        .map(|(&e, &a)| vals[e.index()] != vals[a.index()])
        .collect();
    let proved_wce = cone_weight(&error_cone);

    // A fully proved-equal pair needs no BDD work at all.
    if !error_cone.iter().any(|&b| b) {
        return Ok(ErrorBounds {
            error_cone,
            proved_wce,
            exact: Some(ExactError {
                mismatch_count: 0,
                input_space: space_of(n_in),
                error_rate: 0.0,
                wce: 0,
            }),
        });
    }

    // --- Tier 2: exact BDD pass (budget-limited) -------------------
    if cfg.bdd_node_limit == 0 {
        return Ok(ErrorBounds {
            error_cone,
            proved_wce,
            exact: None,
        });
    }
    // Extend the miter with the mismatch predicate and a gate-level
    // |e − a| datapath, then register them as miter outputs.
    let diffs: Vec<SignalId> = e_outs
        .iter()
        .zip(&a_outs)
        .map(|(&e, &a)| miter.xor(e, a))
        .collect();
    let neq = miter.or_reduce(&diffs);
    let (e_ext, a_ext) = if cfg.signed_outputs {
        (
            bus::sign_extend(&e_outs, out_w + 1),
            bus::sign_extend(&a_outs, out_w + 1),
        )
    } else {
        (
            bus::zero_extend(&mut miter, &e_outs, out_w + 1),
            bus::zero_extend(&mut miter, &a_outs, out_w + 1),
        )
    };
    let (d, _borrow) = bus::ripple_carry_sub(&mut miter, &e_ext, &a_ext);
    let sign = d[out_w];
    // |d| = (d XOR sign) + sign — conditional two's-complement negate.
    let d_flipped: Vec<SignalId> = d.iter().map(|&s| miter.xor(s, sign)).collect();
    let zeros = bus::constant_bus(&mut miter, 0, out_w + 1);
    let (abs, _c) = bus::ripple_carry_add(&mut miter, &d_flipped, &zeros, Some(sign));
    miter.output("errbound_neq", neq);
    miter.output_bus("errbound_abs", &abs);

    mgr.reset(n_in);
    let exact_metrics = match bdd_exact_pass(mgr, &miter, n_in) {
        Ok(m) => Some(m),
        Err(NetlistError::BddLimit { .. }) => None,
        Err(e) => return Err(e),
    };
    Ok(ErrorBounds {
        error_cone,
        proved_wce,
        exact: exact_metrics,
    })
}

/// `2^n_in` with a graceful cap (netlists never approach 128 inputs,
/// but the arithmetic must not overflow regardless).
fn space_of(n_in: usize) -> u128 {
    if n_in >= 128 {
        u128::MAX
    } else {
        1u128 << n_in
    }
}

/// `2^k`, saturating to `u64::MAX` for `k ≥ 64` (buses that wide never
/// occur, but the bound must stay sound if they do).
fn pow2_sat(k: usize) -> u64 {
    u32::try_from(k)
        .ok()
        .and_then(|shift| 1u64.checked_shl(shift))
        .unwrap_or(u64::MAX)
}

/// `Σ 2^k` over set cone bits, saturating for very wide buses.
fn cone_weight(cone: &[bool]) -> u64 {
    let mut w: u64 = 0;
    for (k, &in_cone) in cone.iter().enumerate() {
        if in_cone {
            w = w.saturating_add(pow2_sat(k));
        }
    }
    w
}

fn bdd_exact_pass(
    mgr: &mut BddManager,
    miter: &Netlist,
    n_in: usize,
) -> crate::Result<ExactError> {
    if n_in >= 128 {
        // sat_count cannot represent the space; treat as budget-class
        // fallback rather than returning a wrong rate.
        return Err(NetlistError::BddLimit { limit: 0 });
    }
    let outs = mgr.build_outputs(miter)?;
    let (neq_bdd, abs_bdds) = match outs.split_first() {
        Some((&neq, rest)) => (neq, rest),
        None => return Err(NetlistError::BddLimit { limit: 0 }),
    };
    let mismatch_count = mgr.sat_count(neq_bdd);
    let input_space = space_of(n_in);
    // Exact WCE: greedy MSB-first maximization of |e − a|. At each bit
    // we keep the assignments that can still set it; the accepted bits
    // spell the maximum value the abs bus attains.
    let mut constraint = mgr.one();
    let mut wce: u64 = 0;
    for k in (0..abs_bdds.len()).rev() {
        let t = mgr.and(constraint, abs_bdds[k])?;
        if t != mgr.zero() {
            constraint = t;
            wce = wce.saturating_add(pow2_sat(k));
        }
    }
    Ok(ExactError {
        mismatch_count,
        input_space,
        error_rate: mismatch_count as f64 / input_space as f64,
        wce,
    })
}

// ------------------------------------------------------------------
// Abstract domain: ternary constants + congruence classes
// ------------------------------------------------------------------

/// Abstract value of a signal: a proved constant, or a congruence
/// class id (equal ids ⇒ provably equal functions; distinct ids prove
/// nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbsVal {
    /// The signal is this constant for every input assignment.
    Const(bool),
    /// Canonical class id from structural hashing.
    Class(u32),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Key {
    Input(u32),
    Not(u32),
    And(u32, u32),
    Or(u32, u32),
    Xor(u32, u32),
    Mux(u32, u32, u32),
    Maj(u32, u32, u32),
}

struct AbsDomain {
    keys: HashMap<Key, u32>,
    complement: HashMap<u32, u32>,
    next: u32,
}

impl AbsDomain {
    fn new() -> AbsDomain {
        AbsDomain {
            keys: HashMap::new(),
            complement: HashMap::new(),
            next: 0,
        }
    }

    fn class(&mut self, key: Key) -> u32 {
        if let Some(&id) = self.keys.get(&key) {
            return id;
        }
        let id = self.next;
        self.next += 1;
        self.keys.insert(key, id);
        id
    }

    fn fresh_input(&mut self, ordinal: u32) -> AbsVal {
        AbsVal::Class(self.class(Key::Input(ordinal)))
    }

    fn not1(&mut self, v: AbsVal) -> AbsVal {
        match v {
            AbsVal::Const(c) => AbsVal::Const(!c),
            AbsVal::Class(c) => {
                if let Some(&n) = self.complement.get(&c) {
                    return AbsVal::Class(n);
                }
                let n = self.class(Key::Not(c));
                self.complement.insert(c, n);
                self.complement.insert(n, c);
                AbsVal::Class(n)
            }
        }
    }

    fn complementary(&self, a: u32, b: u32) -> bool {
        self.complement.get(&a) == Some(&b)
    }

    fn and2(&mut self, a: AbsVal, b: AbsVal) -> AbsVal {
        match (a, b) {
            (AbsVal::Const(false), _) | (_, AbsVal::Const(false)) => AbsVal::Const(false),
            (AbsVal::Const(true), x) | (x, AbsVal::Const(true)) => x,
            (AbsVal::Class(x), AbsVal::Class(y)) => {
                if x == y {
                    AbsVal::Class(x)
                } else if self.complementary(x, y) {
                    AbsVal::Const(false)
                } else {
                    AbsVal::Class(self.class(Key::And(x.min(y), x.max(y))))
                }
            }
        }
    }

    fn or2(&mut self, a: AbsVal, b: AbsVal) -> AbsVal {
        match (a, b) {
            (AbsVal::Const(true), _) | (_, AbsVal::Const(true)) => AbsVal::Const(true),
            (AbsVal::Const(false), x) | (x, AbsVal::Const(false)) => x,
            (AbsVal::Class(x), AbsVal::Class(y)) => {
                if x == y {
                    AbsVal::Class(x)
                } else if self.complementary(x, y) {
                    AbsVal::Const(true)
                } else {
                    AbsVal::Class(self.class(Key::Or(x.min(y), x.max(y))))
                }
            }
        }
    }

    fn xor2(&mut self, a: AbsVal, b: AbsVal) -> AbsVal {
        match (a, b) {
            (AbsVal::Const(ca), AbsVal::Const(cb)) => AbsVal::Const(ca != cb),
            (AbsVal::Const(false), x) | (x, AbsVal::Const(false)) => x,
            (AbsVal::Const(true), x) | (x, AbsVal::Const(true)) => self.not1(x),
            (AbsVal::Class(x), AbsVal::Class(y)) => {
                if x == y {
                    AbsVal::Const(false)
                } else if self.complementary(x, y) {
                    AbsVal::Const(true)
                } else {
                    AbsVal::Class(self.class(Key::Xor(x.min(y), x.max(y))))
                }
            }
        }
    }

    fn mux3(&mut self, sel: AbsVal, t: AbsVal, f: AbsVal) -> AbsVal {
        match sel {
            AbsVal::Const(true) => t,
            AbsVal::Const(false) => f,
            AbsVal::Class(s) => {
                if t == f {
                    return t;
                }
                // Canonical 1/0 branches collapse to the select itself.
                if t == AbsVal::Const(true) && f == AbsVal::Const(false) {
                    return AbsVal::Class(s);
                }
                if t == AbsVal::Const(false) && f == AbsVal::Const(true) {
                    return self.not1(AbsVal::Class(s));
                }
                match (t, f) {
                    (AbsVal::Class(tc), AbsVal::Class(fc)) => {
                        AbsVal::Class(self.class(Key::Mux(s, tc, fc)))
                    }
                    // One constant branch: rewrite through AND/OR so the
                    // congruence sees through equivalent formulations.
                    (AbsVal::Const(true), x) => self.or2(AbsVal::Class(s), x),
                    (AbsVal::Const(false), x) => {
                        let ns = self.not1(AbsVal::Class(s));
                        self.and2(ns, x)
                    }
                    (x, AbsVal::Const(true)) => {
                        let ns = self.not1(AbsVal::Class(s));
                        self.or2(ns, x)
                    }
                    (x, AbsVal::Const(false)) => self.and2(AbsVal::Class(s), x),
                }
            }
        }
    }

    fn maj3(&mut self, a: AbsVal, b: AbsVal, c: AbsVal) -> AbsVal {
        // Any agreeing pair decides the majority outright.
        if a == b || a == c {
            return a;
        }
        if b == c {
            return b;
        }
        match (a, b, c) {
            (AbsVal::Class(x), AbsVal::Class(y), AbsVal::Class(z)) => {
                if self.complementary(x, y) {
                    // Maj(x, !x, z) = z
                    return c;
                }
                if self.complementary(x, z) {
                    return b;
                }
                if self.complementary(y, z) {
                    return a;
                }
                let mut ids = [x, y, z];
                ids.sort_unstable();
                AbsVal::Class(self.class(Key::Maj(ids[0], ids[1], ids[2])))
            }
            _ => {
                // At least one constant: Maj(1, y, z) = y|z, Maj(0, y, z) = y&z.
                let (konst, y, z) = if let AbsVal::Const(v) = a {
                    (v, b, c)
                } else if let AbsVal::Const(v) = b {
                    (v, a, c)
                } else if let AbsVal::Const(v) = c {
                    (v, a, b)
                } else {
                    // Unreachable: the all-class case is handled above.
                    return a;
                };
                if konst {
                    self.or2(y, z)
                } else {
                    self.and2(y, z)
                }
            }
        }
    }
}

/// Computes the abstract value of every signal in one topological walk
/// (netlists are DAGs by construction, so a single forward pass is a
/// fixpoint).
pub fn abstract_values(netlist: &Netlist) -> Vec<AbsVal> {
    let mut dom = AbsDomain::new();
    let mut vals: Vec<AbsVal> = Vec::with_capacity(netlist.len());
    let mut next_input: u32 = 0;
    for gate in netlist.gates() {
        let v = |s: SignalId, vals: &Vec<AbsVal>| vals[s.index()];
        let val = match *gate {
            Gate::Input { .. } => {
                let id = dom.fresh_input(next_input);
                next_input += 1;
                id
            }
            Gate::Const(c) => AbsVal::Const(c),
            Gate::Buf(a) => v(a, &vals),
            Gate::Not(a) => {
                let x = v(a, &vals);
                dom.not1(x)
            }
            Gate::And(a, b) => {
                let (x, y) = (v(a, &vals), v(b, &vals));
                dom.and2(x, y)
            }
            Gate::Or(a, b) => {
                let (x, y) = (v(a, &vals), v(b, &vals));
                dom.or2(x, y)
            }
            Gate::Xor(a, b) => {
                let (x, y) = (v(a, &vals), v(b, &vals));
                dom.xor2(x, y)
            }
            Gate::Nand(a, b) => {
                let (x, y) = (v(a, &vals), v(b, &vals));
                let r = dom.and2(x, y);
                dom.not1(r)
            }
            Gate::Nor(a, b) => {
                let (x, y) = (v(a, &vals), v(b, &vals));
                let r = dom.or2(x, y);
                dom.not1(r)
            }
            Gate::Xnor(a, b) => {
                let (x, y) = (v(a, &vals), v(b, &vals));
                let r = dom.xor2(x, y);
                dom.not1(r)
            }
            Gate::Mux { sel, t, f } => {
                let (s, x, y) = (v(sel, &vals), v(t, &vals), v(f, &vals));
                dom.mux3(s, x, y)
            }
            Gate::Maj(a, b, c) => {
                let (x, y, z) = (v(a, &vals), v(b, &vals), v(c, &vals));
                dom.maj3(x, y, z)
            }
        };
        vals.push(val);
    }
    vals
}

// ------------------------------------------------------------------
// Static fault-site masking: per-site forward D-propagation
// ------------------------------------------------------------------

/// Per-netlist precomputation for static stuck-at observability
/// queries.
///
/// A site is *statically skippable* when a stuck-at fault there
/// provably cannot change any primary output: either the fault forces
/// the net to the value it already always has, or the forward
/// D-propagation of "possibly changed" signals never reaches an
/// output. Blocking uses ternary-proved constants on *unchanged*
/// siblings only — a sibling inside the changed set can never block,
/// which is exactly the reconvergence hazard a global backward pass
/// gets wrong.
pub struct StuckAtObservability<'a> {
    netlist: &'a Netlist,
    vals: Vec<AbsVal>,
    is_output: Vec<bool>,
}

impl<'a> StuckAtObservability<'a> {
    /// Runs the abstract-interpretation prepass for `netlist`.
    pub fn new(netlist: &'a Netlist) -> StuckAtObservability<'a> {
        let vals = abstract_values(netlist);
        let mut is_output = vec![false; netlist.len()];
        for (_, s) in netlist.outputs() {
            is_output[s.index()] = true;
        }
        StuckAtObservability {
            netlist,
            vals,
            is_output,
        }
    }

    /// The abstract values computed by the prepass.
    pub fn values(&self) -> &[AbsVal] {
        &self.vals
    }

    fn proved_const(&self, s: SignalId, changed: &[bool]) -> Option<bool> {
        if changed[s.index()] {
            return None;
        }
        match self.vals[s.index()] {
            AbsVal::Const(c) => Some(c),
            AbsVal::Class(_) => None,
        }
    }

    /// Unchanged signals with equal abstract values are provably equal
    /// in both the golden and the faulty circuit.
    fn proved_same(&self, a: SignalId, b: SignalId, changed: &[bool]) -> bool {
        !changed[a.index()] && !changed[b.index()] && self.vals[a.index()] == self.vals[b.index()]
    }

    /// True when a stuck-at-`stuck_value` fault at `site` can possibly
    /// change some primary output; `false` proves the site invisible.
    pub fn is_observable(&self, site: SignalId, stuck_value: bool) -> bool {
        let idx = site.index();
        if idx >= self.netlist.len() {
            return false;
        }
        // Forcing a net to its proved always-value is a no-op fault.
        if self.vals[idx] == AbsVal::Const(stuck_value) {
            return false;
        }
        let mut changed = vec![false; self.netlist.len()];
        changed[idx] = true;
        if self.is_output[idx] {
            return true;
        }
        for (i, gate) in self.netlist.gates().iter().enumerate().skip(idx + 1) {
            let d = self.gate_changed(gate, &changed);
            if d {
                changed[i] = true;
                if self.is_output[i] {
                    return true;
                }
            }
        }
        false
    }

    fn gate_changed(&self, gate: &Gate, changed: &[bool]) -> bool {
        let ch = |s: SignalId| changed[s.index()];
        match *gate {
            Gate::Input { .. } | Gate::Const(_) => false,
            Gate::Buf(a) | Gate::Not(a) => ch(a),
            Gate::And(a, b) | Gate::Nand(a, b) => {
                (ch(a) || ch(b))
                    && self.proved_const(a, changed) != Some(false)
                    && self.proved_const(b, changed) != Some(false)
            }
            Gate::Or(a, b) | Gate::Nor(a, b) => {
                (ch(a) || ch(b))
                    && self.proved_const(a, changed) != Some(true)
                    && self.proved_const(b, changed) != Some(true)
            }
            Gate::Xor(a, b) | Gate::Xnor(a, b) => ch(a) || ch(b),
            Gate::Mux { sel, t, f } => match self.proved_const(sel, changed) {
                Some(true) => ch(t),
                Some(false) => ch(f),
                None => {
                    if ch(sel) {
                        // A changed select is invisible only when both
                        // branches are provably the same unchanged value.
                        !self.proved_same(t, f, changed) || ch(t) || ch(f)
                    } else {
                        ch(t) || ch(f)
                    }
                }
            },
            Gate::Maj(a, b, c) => {
                if !(ch(a) || ch(b) || ch(c)) {
                    return false;
                }
                // An unchanged agreeing pair decides the output alone.
                if self.proved_same(a, b, changed)
                    || self.proved_same(a, c, changed)
                    || self.proved_same(b, c, changed)
                {
                    return false;
                }
                // An unchanged constant reduces Maj to OR/AND of the rest.
                let fanins = [a, b, c];
                for (i, &x) in fanins.iter().enumerate() {
                    if let Some(v) = self.proved_const(x, changed) {
                        let mut rest = fanins.iter().enumerate().filter(|&(j, _)| j != i);
                        let (y, z) = match (rest.next(), rest.next()) {
                            (Some((_, &y)), Some((_, &z))) => (y, z),
                            // Unreachable: a 3-input gate always has two others.
                            _ => return true,
                        };
                        let blocking = Some(!v);
                        return (ch(y) || ch(z))
                            && self.proved_const(y, changed) != blocking
                            && self.proved_const(z, changed) != blocking;
                    }
                }
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus;

    fn mul4(approx_drop_low: usize) -> Netlist {
        let mut n = Netlist::new("mul4");
        let a = n.input_bus("a", 4);
        let b = n.input_bus("b", 4);
        let mut p = bus::baugh_wooley_mul(&mut n, &a, &b);
        for bit in p.iter_mut().take(approx_drop_low) {
            *bit = n.constant(false);
        }
        n.output_bus("p", &p);
        n
    }

    #[test]
    fn identical_netlists_prove_equal_without_bdds() {
        let n = mul4(0);
        let bounds = analyze(&n, &n, &ErrBoundConfig::default()).unwrap();
        assert!(bounds.proved_equal());
        assert_eq!(bounds.proved_wce, 0);
        let exact = bounds.exact.unwrap();
        assert_eq!(exact.mismatch_count, 0);
        assert_eq!(exact.wce, 0);
    }

    #[test]
    fn truncated_multiplier_bounds_are_sound_and_exact() {
        let approx = mul4(2);
        let exact_net = mul4(0);
        let bounds = analyze(&approx, &exact_net, &ErrBoundConfig::default()).unwrap();
        // Bits 0 and 1 are zeroed: cone = {0, 1}, interval WCE = 3.
        assert_eq!(bounds.cone_bits(), 2);
        assert_eq!(bounds.proved_wce, 3);
        let got = bounds.exact.unwrap();
        // Exhaustive ground truth over the 8-bit input space.
        let pairs: Vec<Vec<bool>> = (0..256u32)
            .map(|v| (0..8).map(|k| (v >> k) & 1 == 1).collect())
            .collect();
        let mut mismatches = 0u128;
        let mut wce = 0u64;
        for input in &pairs {
            let pe = exact_net.simulate_bool(input).unwrap();
            let pa = approx.simulate_bool(input).unwrap();
            if pe != pa {
                mismatches += 1;
            }
            let word = |bits: &[bool]| -> i64 {
                let mut raw = 0i64;
                for (k, &bit) in bits.iter().enumerate() {
                    if bit {
                        raw |= 1 << k;
                    }
                }
                // sign-extend 8-bit product
                if raw & (1 << (bits.len() - 1)) != 0 {
                    raw -= 1 << bits.len();
                }
                raw
            };
            wce = wce.max(word(&pe).abs_diff(word(&pa)));
        }
        assert_eq!(got.mismatch_count, mismatches);
        assert_eq!(got.wce, wce);
        assert!(bounds.proved_wce >= got.wce, "interval bound must dominate exact");
    }

    #[test]
    fn budget_exhaustion_falls_back_to_interval() {
        let approx = mul4(1);
        let exact_net = mul4(0);
        let cfg = ErrBoundConfig {
            bdd_node_limit: 8,
            ..ErrBoundConfig::default()
        };
        let bounds = analyze(&approx, &exact_net, &cfg).unwrap();
        assert!(bounds.exact.is_none());
        assert_eq!(bounds.proved_wce, 1);
        assert!((bounds.proved_error_rate() - 1.0).abs() < 1e-12);
        assert_eq!(bounds.best_wce(), 1);
    }

    #[test]
    fn interface_mismatch_is_an_error() {
        let a = mul4(0);
        let mut b = Netlist::new("b");
        let x = b.input("x");
        b.output("y", x);
        assert!(matches!(
            analyze(&a, &b, &ErrBoundConfig::default()),
            Err(NetlistError::InputCountMismatch { .. })
        ));
        let mut c = Netlist::new("c");
        let ins: Vec<_> = (0..8).map(|k| c.input(format!("i{k}"))).collect();
        c.output("y", ins[0]);
        assert!(matches!(
            analyze(&a, &c, &ErrBoundConfig::default()),
            Err(NetlistError::OutputCountMismatch { .. })
        ));
    }

    #[test]
    fn unsigned_exact_wce_matches_truth() {
        // 3-bit unsigned adders: approximate one ORs the low bit.
        let build = |approx: bool| {
            let mut n = Netlist::new("add3");
            let a = n.input_bus("a", 3);
            let b = n.input_bus("b", 3);
            let (mut s, c) = bus::ripple_carry_add(&mut n, &a, &b, None);
            if approx {
                s[0] = n.or(a[0], b[0]);
            }
            n.output_bus("s", &s);
            n.output("c", c);
            n
        };
        let cfg = ErrBoundConfig {
            signed_outputs: false,
            ..ErrBoundConfig::default()
        };
        let bounds = analyze(&build(true), &build(false), &cfg).unwrap();
        let got = bounds.exact.unwrap();
        let mut wce = 0u64;
        let mut mismatches = 0u128;
        for v in 0..64u32 {
            let input: Vec<bool> = (0..6).map(|k| (v >> k) & 1 == 1).collect();
            let pe = build(false).simulate_bool(&input).unwrap();
            let pa = build(true).simulate_bool(&input).unwrap();
            let word = |bits: &[bool]| -> u64 {
                bits.iter()
                    .enumerate()
                    .filter(|&(_, &bit)| bit)
                    .map(|(k, _)| 1u64 << k)
                    .sum()
            };
            if pe != pa {
                mismatches += 1;
            }
            wce = wce.max(word(&pe).abs_diff(word(&pa)));
        }
        assert_eq!(got.wce, wce);
        assert_eq!(got.mismatch_count, mismatches);
    }

    #[test]
    fn abstract_values_prove_constants_through_rewrites() {
        let mut n = Netlist::new("t");
        let x = n.input("x");
        let zero = n.constant(false);
        let dead = n.and(x, zero); // proved 0
        let same = n.xor(x, x); // proved 0
        let nx = n.not(x);
        let taut = n.or(x, nx); // proved 1 via complement tracking
        let merged_a = n.and(x, x);
        n.output("dead", dead);
        n.output("same", same);
        n.output("taut", taut);
        n.output("merged", merged_a);
        let vals = abstract_values(&n);
        assert_eq!(vals[dead.index()], AbsVal::Const(false));
        assert_eq!(vals[same.index()], AbsVal::Const(false));
        assert_eq!(vals[taut.index()], AbsVal::Const(true));
        assert_eq!(vals[merged_a.index()], vals[x.index()]);
    }

    #[test]
    fn observability_skips_blocked_and_noop_sites() {
        let mut n = Netlist::new("obs");
        let x = n.input("x");
        let y = n.input("y");
        let zero = n.constant(false);
        let blocked = n.and(x, zero); // always 0; x's path is dead
        let live = n.or(blocked, y);
        n.output("o", live);
        let obs = StuckAtObservability::new(&n);
        // `blocked` is proved const-0: stuck-at-0 there is a no-op...
        assert!(!obs.is_observable(blocked, false));
        // ...but stuck-at-1 flows into the OR and is visible.
        assert!(obs.is_observable(blocked, true));
        // x only feeds the AND whose sibling is proved 0: invisible
        // for either polarity.
        assert!(!obs.is_observable(x, false));
        assert!(!obs.is_observable(x, true));
        // y reaches the output directly.
        assert!(obs.is_observable(y, true));
    }

    #[test]
    fn reconvergent_constant_fanout_is_not_wrongly_skipped() {
        // c = 0 feeds BOTH inputs of an AND through buffers. A naive
        // backward pass calls each edge blocked by the other's proved
        // constant; the per-site forward pass must keep the site.
        let mut n = Netlist::new("reconv");
        let _x = n.input("x"); // keep an input so simulation is meaningful
        let c = n.constant(false);
        let a = n.buf(c);
        let b = n.buf(c);
        let g = n.and(a, b);
        n.output("g", g);
        let obs = StuckAtObservability::new(&n);
        // stuck-at-1 at c flips both AND legs in every assignment:
        // the output provably changes, so the site must be simulated.
        assert!(obs.is_observable(c, true));
        // stuck-at-0 is the no-op polarity.
        assert!(!obs.is_observable(c, false));
    }

    #[test]
    fn mux_and_maj_masking_rules() {
        let mut n = Netlist::new("m");
        let x = n.input("x");
        let y = n.input("y");
        let one = n.constant(true);
        let zero = n.constant(false);
        // Mux with proved-const select: only the taken branch is live.
        let m = n.mux(one, x, y);
        n.output("m", m);
        // Maj with an unchanged agreeing constant pair: third input dead.
        let mj = n.maj(zero, zero, y);
        n.output("mj", mj);
        let obs = StuckAtObservability::new(&n);
        assert!(obs.is_observable(x, true), "selected branch is live");
        // y's only paths: the un-selected mux branch and the
        // const-pair-decided maj — both provably invisible.
        assert!(!obs.is_observable(y, true));
        assert!(!obs.is_observable(y, false));
    }
}
