//! One-call synthesis flow: optimize → map → time → power.
//!
//! [`synthesize`] is the crate's analogue of running a design through
//! Vivado: it is deliberately the *slow, accurate* path of CLAppED's
//! accelerator characterization, which the ML-based predictors are trained
//! to approximate.

use crate::map::{map_luts, verify_mapping, MapStrategy, MappedNetlist};
use crate::opt::optimize;
use crate::power::{estimate_power, PowerModel, PowerReport};
use crate::timing::TimingModel;
use crate::Netlist;

/// Configuration of the synthesis flow.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// LUT input size (2..=6).
    pub k: usize,
    /// Cut selection strategy.
    pub strategy: MapStrategy,
    /// Timing parameters.
    pub timing: TimingModel,
    /// Power parameters.
    pub power: PowerModel,
    /// Verify functional equivalence of the mapping with this many
    /// 64-vector random rounds (0 disables verification).
    pub verify_rounds: usize,
    /// Additionally prove equivalence formally with BDDs under this node
    /// budget; falls back to the random check when the budget is
    /// exceeded (multiplier-like cones). `None` disables formal
    /// verification.
    pub formal_verify_limit: Option<usize>,
    /// Seed for verification stimulus.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            k: 6,
            strategy: MapStrategy::Depth,
            timing: TimingModel::default(),
            power: PowerModel::default(),
            verify_rounds: 4,
            formal_verify_limit: None,
            seed: 7,
        }
    }
}

/// Synthesis result: resource, timing and power characterization of one
/// netlist.
#[derive(Debug, Clone)]
pub struct SynthReport {
    /// Name of the synthesized netlist.
    pub name: String,
    /// Logic gates before mapping (after optimization).
    pub gate_count: usize,
    /// LUTs after mapping.
    pub lut_count: usize,
    /// Mapped depth in LUT levels.
    pub depth: u32,
    /// Critical path delay in nanoseconds.
    pub cpd_ns: f64,
    /// Maximum clock frequency in MHz.
    pub fmax_mhz: f64,
    /// Power breakdown at the configured clock.
    pub power: PowerReport,
    /// The mapped netlist itself (for downstream composition).
    pub mapped: MappedNetlist,
}

impl SynthReport {
    /// Power-delay product in milliwatt-nanoseconds (picojoules).
    pub fn pdp(&self) -> f64 {
        self.power.total_mw() * self.cpd_ns
    }
}

/// Runs the full synthesis flow on a netlist.
///
/// # Errors
///
/// Propagates mapping and verification errors; in particular
/// [`crate::NetlistError::MappingMismatch`] if the mapped network is not
/// functionally equivalent to the optimized netlist.
pub fn synthesize(netlist: &Netlist, config: &SynthConfig) -> crate::Result<SynthReport> {
    let opt = optimize(netlist);
    let mapped = map_luts(&opt, config.k, config.strategy)?;
    if config.verify_rounds > 0 {
        verify_mapping(&opt, &mapped, config.verify_rounds, config.seed)?;
    }
    if let Some(limit) = config.formal_verify_limit {
        match crate::bdd::check_equivalence(&opt, &mapped.to_netlist("mapped"), limit) {
            Ok(crate::bdd::Equivalence::Equal) => {}
            Ok(crate::bdd::Equivalence::Differ { .. }) => {
                return Err(crate::NetlistError::MappingMismatch)
            }
            // Budget exceeded: the random check above already ran.
            Err(crate::NetlistError::BddLimit { .. }) => {}
            Err(e) => return Err(e),
        }
    }
    let cpd_ns = config.timing.critical_path_ns(&mapped);
    let fmax_mhz = config.timing.fmax_mhz(&mapped);
    let power = estimate_power(&mapped, &config.power)?;
    Ok(SynthReport {
        name: netlist.name().to_string(),
        gate_count: opt.logic_gate_count(),
        lut_count: mapped.lut_count(),
        depth: mapped.depth,
        cpd_ns,
        fmax_mhz,
        power,
        mapped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus;

    fn multiplier_netlist(w: usize) -> Netlist {
        let mut n = Netlist::new(format!("mul{w}"));
        let a = n.input_bus("a", w);
        let b = n.input_bus("b", w);
        let p = bus::baugh_wooley_mul(&mut n, &a, &b);
        n.output_bus("p", &p);
        n
    }

    #[test]
    fn synthesizes_multiplier() {
        let n = multiplier_netlist(8);
        let r = synthesize(&n, &SynthConfig::default()).unwrap();
        assert!(r.lut_count > 30, "8x8 multiplier should need >30 LUTs, got {}", r.lut_count);
        assert!(r.depth >= 3);
        assert!(r.cpd_ns > 0.0);
        assert!(r.power.total_mw() > 0.0);
        assert!(r.pdp() > 0.0);
    }

    #[test]
    fn bigger_multipliers_cost_more() {
        let small = synthesize(&multiplier_netlist(4), &SynthConfig::default()).unwrap();
        let big = synthesize(&multiplier_netlist(8), &SynthConfig::default()).unwrap();
        assert!(big.lut_count > small.lut_count);
        assert!(big.cpd_ns > small.cpd_ns);
        assert!(big.power.dynamic_mw() > small.power.dynamic_mw());
    }

    #[test]
    fn formal_verification_passes_on_adders() {
        let mut n = Netlist::new("add");
        let a = n.input_bus("a", 8);
        let b = n.input_bus("b", 8);
        let (s, c) = crate::bus::ripple_carry_add(&mut n, &a, &b, None);
        n.output_bus("s", &s);
        n.output("c", c);
        let cfg = SynthConfig {
            formal_verify_limit: Some(200_000),
            ..SynthConfig::default()
        };
        let r = synthesize(&n, &cfg).unwrap();
        assert!(r.lut_count > 0);
    }

    #[test]
    fn formal_verification_budget_falls_back_gracefully() {
        // Multipliers blow the BDD budget; the flow must still succeed
        // because the random check already passed.
        let n = multiplier_netlist(8);
        let cfg = SynthConfig {
            formal_verify_limit: Some(1_000),
            ..SynthConfig::default()
        };
        assert!(synthesize(&n, &cfg).is_ok());
    }

    #[test]
    fn report_is_deterministic() {
        let n = multiplier_netlist(6);
        let a = synthesize(&n, &SynthConfig::default()).unwrap();
        let b = synthesize(&n, &SynthConfig::default()).unwrap();
        assert_eq!(a.lut_count, b.lut_count);
        assert_eq!(a.depth, b.depth);
        assert_eq!(a.power, b.power);
    }
}
