//! Property tests pinning the static error-bound analyzer sound against
//! exhaustive simulation on random logic: interval/exact worst-case
//! error bounds dominate observed errors, the exact tier's mismatch
//! count equals the simulated count, congruence classes are
//! semantically real, and every fault site the observability pass skips
//! provably never changes an output.

use clapped_netlist::{
    abstract_values, analyze_error_bounds, AbsVal, CampaignOptions, ErrBoundConfig, FaultKind,
    FaultSet, Netlist, SignalId, StuckAtObservability,
};
use proptest::prelude::*;

/// Builds a random DAG of gates over `n_inputs` inputs from an opcode
/// stream (same construction as `prop_wide_sim.rs`).
fn random_netlist(n_inputs: usize, ops: &[u8]) -> Netlist {
    let mut n = Netlist::new("rand");
    let mut sigs: Vec<_> = (0..n_inputs).map(|i| n.input(format!("i{i}"))).collect();
    for (k, &op) in ops.iter().enumerate() {
        let a = sigs[(k * 7 + 1) % sigs.len()];
        let b = sigs[(k * 13 + 3) % sigs.len()];
        let c = sigs[(k * 5 + 2) % sigs.len()];
        let s = match op % 9 {
            0 => n.and(a, b),
            1 => n.or(a, b),
            2 => n.xor(a, b),
            3 => n.nand(a, b),
            4 => n.nor(a, b),
            5 => n.xnor(a, b),
            6 => n.not(a),
            7 => n.mux(a, b, c),
            _ => n.maj(a, b, c),
        };
        sigs.push(s);
    }
    for (i, &s) in sigs.iter().rev().take(4).enumerate() {
        n.output(format!("o{i}"), s);
    }
    n
}

const N_IN: usize = 5;
const PATTERNS: usize = 1 << N_IN;

/// One 64-lane input vector whose lane `p` drives input `k` with bit
/// `k` of the pattern index `p` — lanes `0..32` enumerate the whole
/// 5-input space in one `eval_words` call.
fn exhaustive_words() -> Vec<u64> {
    (0..N_IN)
        .map(|k| {
            let mut w = 0u64;
            for p in 0..PATTERNS {
                w |= (((p >> k) & 1) as u64) << p;
            }
            w
        })
        .collect()
}

/// The 4-output bus of `outs` read as an unsigned value for lane `p`.
fn bus_value(outs: &[u64], p: usize) -> u64 {
    outs.iter().enumerate().map(|(k, &w)| ((w >> p) & 1) << k).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Proved bounds dominate exhaustively observed errors, per bit and
    /// in magnitude; the exact tier (which always fits for 5-variable
    /// BDDs) reproduces the simulated mismatch count and max error
    /// bit-exactly.
    #[test]
    fn proved_bounds_dominate_exhaustive_error(
        ops in proptest::collection::vec(any::<u8>(), 6..40),
        mutate_at in any::<usize>(),
        delta in 1u8..=255,
    ) {
        let exact = random_netlist(N_IN, &ops);
        let mut approx_ops = ops.clone();
        let j = mutate_at % approx_ops.len();
        approx_ops[j] = approx_ops[j].wrapping_add(delta);
        let approx = random_netlist(N_IN, &approx_ops);

        let cfg = ErrBoundConfig { bdd_node_limit: 200_000, signed_outputs: false };
        let bounds = analyze_error_bounds(&approx, &exact, &cfg).expect("analysis");

        let words = exhaustive_words();
        let e_outs = exact.simulate_words(&words).expect("exact simulates");
        let a_outs = approx.simulate_words(&words).expect("approx simulates");
        let mut observed_max = 0u64;
        let mut observed_mismatches = 0u128;
        for p in 0..PATTERNS {
            let ev = bus_value(&e_outs, p);
            let av = bus_value(&a_outs, p);
            if ev != av {
                observed_mismatches += 1;
                observed_max = observed_max.max(ev.abs_diff(av));
            }
            // Per-bit cone soundness: a differing output bit must be in
            // the proved error cone.
            for k in 0..4 {
                if (e_outs[k] >> p) & 1 != (a_outs[k] >> p) & 1 {
                    prop_assert!(bounds.error_cone[k], "bit {} differs outside the cone", k);
                }
            }
        }
        prop_assert!(bounds.proved_wce >= observed_max,
            "interval WCE {} < observed {}", bounds.proved_wce, observed_max);
        let e = bounds.exact.expect("5-var BDDs always fit the budget");
        prop_assert_eq!(e.mismatch_count, observed_mismatches);
        prop_assert_eq!(e.wce, observed_max);
        prop_assert_eq!(e.input_space, 1u128 << N_IN);
        // Proved-equal must agree with zero observed mismatches.
        prop_assert_eq!(observed_mismatches == 0, e.mismatch_count == 0);
    }

    /// The congruence abstract domain is semantically sound: a signal
    /// proved `Const(v)` holds `v` under every input, and two signals
    /// sharing a class id are equal under every input.
    #[test]
    fn congruence_classes_are_semantically_sound(
        ops in proptest::collection::vec(any::<u8>(), 4..50),
    ) {
        let n = random_netlist(N_IN, &ops);
        let vals = abstract_values(&n);
        let words = n.eval_words(&exhaustive_words()).expect("simulates");
        let mask: u64 = (1u64 << PATTERNS) - 1;
        for (i, v) in vals.iter().enumerate() {
            if let AbsVal::Const(c) = v {
                let want = if *c { mask } else { 0 };
                prop_assert_eq!(words[i] & mask, want, "signal {} proved Const({})", i, c);
            }
        }
        for (i, vi) in vals.iter().enumerate() {
            for (j, vj) in vals.iter().enumerate().skip(i + 1) {
                if let (AbsVal::Class(a), AbsVal::Class(b)) = (vi, vj) {
                    if a == b {
                        prop_assert_eq!(words[i] & mask, words[j] & mask,
                            "signals {} and {} share class {}", i, j, a);
                    }
                }
            }
        }
    }

    /// Every fault site the static observability pass skips is provably
    /// invisible: injecting the stuck-at over the exhaustive input space
    /// never changes any primary output.
    #[test]
    fn unobservable_sites_never_change_outputs(
        ops in proptest::collection::vec(any::<u8>(), 4..40),
    ) {
        let n = random_netlist(N_IN, &ops);
        let obs = StuckAtObservability::new(&n);
        let words = exhaustive_words();
        let clean = n.simulate_words(&words).expect("simulates");
        let mask: u64 = (1u64 << PATTERNS) - 1;
        let mut skipped = 0usize;
        for i in 0..n.len() {
            for (kind, stuck) in [(FaultKind::StuckAt0, false), (FaultKind::StuckAt1, true)] {
                let sig = SignalId::from_index(i);
                if obs.is_observable(sig, stuck) {
                    continue;
                }
                skipped += 1;
                let faults = FaultSet::empty().stuck_at(sig, kind);
                let faulted = n.simulate_words_with_faults(&words, &faults).expect("simulates");
                for (k, (&c, &f)) in clean.iter().zip(&faulted).enumerate() {
                    prop_assert_eq!(c & mask, f & mask,
                        "skipped site {}/{:?} changes output {}", i, kind, k);
                }
            }
        }
        // The pass always skips something on these netlists: at minimum
        // every no-op polarity of an input-fed gate cone's constants —
        // but never require it for tiny fully-live netlists.
        let _ = skipped;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A campaign with observability masking returns bit-identical
    /// reports and rankings to the unmasked reference on random logic,
    /// while simulating no more sites.
    #[test]
    fn masked_campaign_matches_unmasked(
        ops in proptest::collection::vec(any::<u8>(), 4..40),
        batches in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), N_IN), 1..=4),
    ) {
        let n = random_netlist(N_IN, &ops);
        let sites = n.fault_sites();
        let engine = clapped_exec::Engine::serial();
        let full = n
            .stuck_at_campaign_with_options(
                &sites, &batches, 64, &engine,
                CampaignOptions { skip_dead: false, ..CampaignOptions::default() },
            )
            .expect("full campaign");
        let masked = n
            .stuck_at_campaign_with_options(
                &sites, &batches, 64, &engine,
                CampaignOptions { skip_masked: true, skip_dead: false, ..CampaignOptions::default() },
            )
            .expect("masked campaign");
        prop_assert_eq!(&full.sites, &masked.sites);
        prop_assert_eq!(full.samples, masked.samples);
        prop_assert_eq!(full.ranked_sites(), masked.ranked_sites());
        prop_assert!(masked.simulated_sites <= full.simulated_sites);
    }
}
