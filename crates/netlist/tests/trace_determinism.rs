//! Observability must never perturb the fault campaign: a traced
//! sharded stuck-at campaign is bit-identical to an untraced run —
//! instrumentation only reads clocks and bumps atomics, it never
//! touches the wide-word evaluation or the shard fold.

use clapped_netlist::{bus, CampaignReport, Netlist};

fn adder() -> Netlist {
    let mut n = Netlist::new("add3");
    let a = n.input_bus("a", 3);
    let b = n.input_bus("b", 3);
    let (sum, carry) = bus::ripple_carry_add(&mut n, &a, &b, None);
    n.output_bus("s", &sum);
    n.output("cout", carry);
    n
}

fn run() -> CampaignReport {
    let n = adder();
    // Ten batches of deterministic stimulus: three W=4 block groups,
    // the last one partial, so the sharded path is fully exercised.
    let mut state = 0x243F6A8885A308D3u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let batches: Vec<Vec<u64>> = (0..10).map(|_| (0..6).map(|_| next()).collect()).collect();
    let engine = clapped_exec::Engine::new(clapped_exec::ExecConfig::with_jobs(3));
    n.stuck_at_campaign_with(&n.fault_sites(), &batches, 64, &engine).unwrap()
}

#[test]
fn traced_and_untraced_campaigns_are_bit_identical() {
    let untraced = run();

    let path = std::env::temp_dir()
        .join(format!("clapped-netlist-trace-test-{}.jsonl", std::process::id()));
    clapped_obs::enable_jsonl(&path).unwrap();
    let traced = run();
    clapped_obs::reset();

    assert_eq!(traced, untraced, "tracing must not change a single campaign statistic");

    // The trace itself is well-formed JSONL carrying the engine's batch
    // spans for the sharded sweep.
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 3, "start + events + trailing metrics");
    for line in &lines {
        let v: serde_json::Value =
            serde_json::from_str(line).expect("every trace line parses as JSON");
        assert!(v.get("type").and_then(|t| t.as_str()).is_some());
    }
    assert!(
        text.contains("\"exec.batch\""),
        "the sharded sweep must run through the traced engine"
    );
    let _ = std::fs::remove_file(&path);
}
